#!/usr/bin/env bash
# Model-quality observability smoke: boots a server on the tiny dataset (the
# cold start runs the first re-inference synchronously), triggers a second
# re-inference over the same data, and asserts the quality surface came up
# end to end — GET /v1/debug/swaps holds a churn report per swap, and the
# churn / confidence / data-quality metric families are present and sampled
# in /v1/metrics. Run via `make smoke-quality`.
set -euo pipefail

PORT="${PORT:-18380}"
TMP="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/dlinfma" ./cmd/dlinfma
go build -o "$TMP/metricscheck" ./cmd/metricscheck

"$TMP/dlinfma" generate -profile tiny -out "$TMP/data.json.gz" >/dev/null
"$TMP/dlinfma" serve -data "$TMP/data.json.gz" -listen "127.0.0.1:$PORT" \
  -swap-history 8 -low-confidence 0.5 >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# Wait for readiness: the cold start trains before the listener answers ready.
READY=""
for _ in $(seq 1 600); do
  if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then
    READY=1
    break
  fi
  sleep 0.2
done
if [ -z "$READY" ]; then
  echo "quality smoke: server never became ready" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi

# Swap #1 (the cold-start re-inference) must already have a churn report.
curl -fsS "http://127.0.0.1:$PORT/v1/debug/swaps" >"$TMP/swaps1.json"
if ! grep -q '"count":1' "$TMP/swaps1.json"; then
  echo "quality smoke: expected one swap report after cold start: $(cat "$TMP/swaps1.json")" >&2
  exit 1
fi

# Swap #2: a background re-inference over the same accumulated data.
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$PORT/v1/reinfer")"
if [ "$CODE" != "202" ] && [ "$CODE" != "409" ]; then
  echo "quality smoke: POST /v1/reinfer answered $CODE" >&2
  exit 1
fi
DONE=""
for _ in $(seq 1 600); do
  if curl -fsS "http://127.0.0.1:$PORT/v1/reinfer" | grep -q '"state": *"done"'; then
    DONE=1
    break
  fi
  sleep 0.2
done
if [ -z "$DONE" ]; then
  echo "quality smoke: second re-inference never finished" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi

curl -fsS "http://127.0.0.1:$PORT/v1/debug/swaps" >"$TMP/swaps2.json"
if ! grep -q '"count":2' "$TMP/swaps2.json"; then
  echo "quality smoke: expected two swap reports: $(cat "$TMP/swaps2.json")" >&2
  exit 1
fi
for field in '"kind":"reinfer"' '"churn_ratio"' '"retained"' '"before"' '"after"'; do
  if ! grep -q "$field" "$TMP/swaps2.json"; then
    echo "quality smoke: swap report missing $field: $(cat "$TMP/swaps2.json")" >&2
    exit 1
  fi
done
# The ?limit= contract: asking for one report answers exactly the newest.
if ! curl -fsS "http://127.0.0.1:$PORT/v1/debug/swaps?limit=1" | grep -q '"count":1'; then
  echo "quality smoke: ?limit=1 did not bound the report list" >&2
  exit 1
fi

# A couple of reads so the query-path counters tick.
curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/locations/1" || true
curl -sS -o /dev/null -X POST -d '{"addrs":[1,2,3]}' "http://127.0.0.1:$PORT/v1/locations:batch" || true

# The exposition must parse and carry every quality family on top of the
# baseline HTTP contract.
"$TMP/metricscheck" -url "http://127.0.0.1:$PORT/v1/metrics" -require \
"dlinfma_http_requests_total,dlinfma_http_request_duration_seconds,dlinfma_http_in_flight_requests,\
dlinfma_engine_queries_total,dlinfma_engine_reinfer_duration_seconds,\
dlinfma_reinfer_churn_ratio,dlinfma_reinfer_moved_distance_meters,dlinfma_reinfer_confidence,\
dlinfma_serving_low_confidence_addresses,dlinfma_engine_low_confidence_queries_total,\
dlinfma_pipeline_noise_points_total,dlinfma_pipeline_stays_per_trip,\
dlinfma_engine_ingest_shard_trips,dlinfma_engine_ingest_skew"

# Registered families is not enough — the swaps must have produced samples.
curl -fsS "http://127.0.0.1:$PORT/v1/metrics" >"$TMP/metrics.txt"
if ! grep -q '^dlinfma_reinfer_churn_ratio{shard="global"}' "$TMP/metrics.txt"; then
  echo "quality smoke: churn ratio gauge has no sample" >&2
  exit 1
fi
if ! grep -q '^dlinfma_reinfer_confidence_count{shard="global"} [1-9]' "$TMP/metrics.txt"; then
  echo "quality smoke: confidence histogram recorded nothing" >&2
  exit 1
fi
if ! grep -q '^dlinfma_pipeline_stays_per_trip_count [1-9]' "$TMP/metrics.txt"; then
  echo "quality smoke: stays-per-trip histogram recorded nothing" >&2
  exit 1
fi
echo "quality smoke: OK"
