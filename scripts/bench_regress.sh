#!/usr/bin/env bash
# Re-runs the parallel-client serving benchmark and gates the single-shard
# queries/sec against the committed BENCH_locmatcher.json baseline: benchjson
# exits non-zero when throughput regressed by more than MAX_REGRESS_PCT
# (default 15%). The fresh run is written to a temp file so the committed
# baseline is never clobbered by a gating run. Run via `make bench-regress`.
set -euo pipefail

BASELINE="${BASELINE:-BENCH_locmatcher.json}"
GATE="${GATE:-BenchmarkServeQueriesParallel/shards=1}"
GATE_METRIC="${GATE_METRIC:-queries/sec}"
MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-15}"
BENCHTIME="${BENCHTIME:-1s}"

if [ ! -f "$BASELINE" ]; then
  echo "bench_regress: no baseline at $BASELINE" >&2
  exit 1
fi

BIN_DIR="$(mktemp -d)"
trap 'rm -rf "$BIN_DIR"' EXIT

go build -o "$BIN_DIR/benchjson" ./cmd/benchjson

go test -run '^$' -bench 'ServeQueriesParallel' -benchtime "$BENCHTIME" . |
  "$BIN_DIR/benchjson" \
    -out "$BIN_DIR/bench_run.json" \
    -baseline "$BASELINE" \
    -gate "$GATE" \
    -gate-metric "$GATE_METRIC" \
    -max-regress-pct "$MAX_REGRESS_PCT"
