#!/usr/bin/env bash
# Measures the capacity model: for each deployment configuration — 1, 2, and
# 4 in-process shards, then a real two-peer cluster behind a replicated
# frontend — boots the server(s) on the tiny dataset, ramps an open-loop
# swarm against it until the SLO (p99 or error rate) breaks, and collects
# the per-config verdicts into BENCH_capacity.json via benchjson -capacity.
# Run via `make bench-capacity`; tune with the env knobs below. On small
# shared runners rows may come back client_saturated — the generator, not
# the server, hit its ceiling; such rows are flagged in the report and
# skipped by the regression gate.
set -euo pipefail

BASE_PORT="${BASE_PORT:-18300}"
STAGE="${STAGE:-6s}"
RAMP_START="${RAMP_START:-100}"
RAMP_GROWTH="${RAMP_GROWTH:-1.5}"
RAMP_MAX="${RAMP_MAX:-0}"
SLO_P99="${SLO_P99:-250ms}"
SLO_ERRORS="${SLO_ERRORS:-0.01}"
MIX="${MIX:-lookup=80,batch=10,stream=10}"
# The cluster frontend proxies batch windows but not NDJSON streams (streaming
# ingest requires in-process shards — couriers stream to the shard processes
# directly), so the cluster leg swaps the stream share into lookups.
CLUSTER_MIX="${CLUSTER_MIX:-lookup=90,batch=10}"
OUT="${OUT:-BENCH_capacity.json}"

TMP="$(mktemp -d)"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/dlinfma" ./cmd/dlinfma
go build -o "$TMP/swarm" ./cmd/swarm
go build -o "$TMP/benchjson" ./cmd/benchjson
"$TMP/dlinfma" generate -profile tiny -out "$TMP/data.json.gz" >/dev/null

ROWS="$TMP/rows.json"
: >"$ROWS"

run_swarm() { # config shards peers port mix
  echo "bench-capacity: ramping $1 (target port $4)" >&2
  "$TMP/swarm" -target "http://127.0.0.1:$4" \
    -config "$1" -shards "$2" -peers "$3" \
    -ramp-start "$RAMP_START" -ramp-growth "$RAMP_GROWTH" -ramp-max "$RAMP_MAX" \
    -stage "$STAGE" -slo-p99 "$SLO_P99" -slo-errors "$SLO_ERRORS" \
    -mix "$5" -wait 120s >>"$ROWS"
}

kill_all() {
  kill -9 "${PIDS[@]}" 2>/dev/null || true
  for pid in "${PIDS[@]}"; do
    while kill -0 "$pid" 2>/dev/null; do sleep 0.05; done
  done
  PIDS=()
}

# In-process shard counts. The server ingests and retrains before listening,
# so the swarm's readiness wait covers training time.
for SHARDS in 1 2 4; do
  PORT=$((BASE_PORT + SHARDS))
  "$TMP/dlinfma" serve -data "$TMP/data.json.gz" -listen "127.0.0.1:$PORT" \
    -shards "$SHARDS" >"$TMP/serve_$SHARDS.log" 2>&1 &
  PIDS+=($!)
  disown "${PIDS[-1]}"
  if ! run_swarm "shards=$SHARDS" "$SHARDS" 0 "$PORT" "$MIX"; then
    echo "bench-capacity: shards=$SHARDS ramp failed" >&2
    cat "$TMP/serve_$SHARDS.log" >&2
    exit 1
  fi
  kill_all
done

# Two-peer cluster: two shard-owner processes behind a -peers frontend with
# replication 2, the same topology cluster_smoke.sh exercises.
PEER_A=$((BASE_PORT + 10))
PEER_B=$((BASE_PORT + 11))
FRONT=$((BASE_PORT + 12))
for P in "$PEER_A" "$PEER_B"; do
  "$TMP/dlinfma" serve -data "" -listen "127.0.0.1:$P" >"$TMP/peer_$P.log" 2>&1 &
  PIDS+=($!)
  disown "${PIDS[-1]}"
done
"$TMP/dlinfma" serve -data "$TMP/data.json.gz" -listen "127.0.0.1:$FRONT" \
  -peers "http://127.0.0.1:$PEER_A,http://127.0.0.1:$PEER_B" \
  -replication 2 -shards 4 >"$TMP/front.log" 2>&1 &
PIDS+=($!)
disown "${PIDS[-1]}"
if ! run_swarm "cluster=2" 0 2 "$FRONT" "$CLUSTER_MIX"; then
  echo "bench-capacity: cluster ramp failed" >&2
  cat "$TMP/front.log" >&2
  exit 1
fi
kill_all

"$TMP/benchjson" -capacity -out "$OUT" <"$ROWS"
echo "bench-capacity: wrote $OUT"
