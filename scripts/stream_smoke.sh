#!/usr/bin/env bash
# End-to-end durability smoke for the streaming ingest path: boots a server
# with a write-ahead log, streams two complete courier trips plus one
# still-open stream over POST /v1/trajectories:stream, kills the server with
# SIGKILL (no shutdown, no snapshot), restarts it on the same -wal-dir, and
# asserts the replayed engine still holds every acknowledged point: the same
# pending trips, the same open stream, and a replay count matching exactly
# what was acked. Run via `make smoke-stream`.
set -euo pipefail

PORT="${PORT:-18081}"
BIN_DIR="$(mktemp -d)"
WAL_DIR="$(mktemp -d)"
trap 'kill -9 "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$BIN_DIR" "$WAL_DIR"' EXIT

go build -o "$BIN_DIR/dlinfma" ./cmd/dlinfma

start_server() {
  "$BIN_DIR/dlinfma" serve -data "" -listen "127.0.0.1:$PORT" \
    -wal-dir "$WAL_DIR" -wal-fsync always >"$1" 2>&1 &
  SERVER_PID=$!
  disown "$SERVER_PID" # keep bash from reporting the deliberate SIGKILL
  for _ in $(seq 1 50); do
    # A cold engine answers 503 on /v1/healthz; any response means the
    # listener is up.
    if curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/healthz" 2>/dev/null; then
      return
    fi
    sleep 0.1
  done
  echo "stream smoke: server never came up" >&2
  cat "$1" >&2
  exit 1
}

start_server "$BIN_DIR/server1.log"

# Two complete trips (10 fixes each, explicit end) and one open stream
# (3 fixes, no end): 23 points + 2 ends = 25 WAL records.
BODY=""
for i in $(seq 0 9); do
  BODY+="{\"courier\":1,\"x\":100,\"y\":100,\"t\":$((i * 10))}"$'\n'
done
BODY+='{"courier":1,"end":true}'$'\n'
for i in $(seq 0 9); do
  BODY+="{\"courier\":2,\"x\":400,\"y\":250,\"t\":$((500 + i * 10))}"$'\n'
done
BODY+='{"courier":2,"end":true}'$'\n'
for i in $(seq 0 2); do
  BODY+="{\"courier\":3,\"x\":100,\"y\":100,\"t\":$((900 + i * 10))}"$'\n'
done

ACK="$(curl -sS -X POST --data-binary "$BODY" "http://127.0.0.1:$PORT/v1/trajectories:stream")"
if ! grep -q '"points":23' <<<"$ACK" || ! grep -q '"ends":2' <<<"$ACK"; then
  echo "stream smoke: unexpected ack: $ACK" >&2
  exit 1
fi

BEFORE="$(curl -sS "http://127.0.0.1:$PORT/v1/healthz")"
if ! grep -q '"pending_trips":2' <<<"$BEFORE" || ! grep -q '"open_streams":1' <<<"$BEFORE"; then
  echo "stream smoke: pre-kill status wrong: $BEFORE" >&2
  exit 1
fi

# Crash: no graceful shutdown, no snapshot — the WAL is all that survives.
kill -9 "$SERVER_PID"
while kill -0 "$SERVER_PID" 2>/dev/null; do sleep 0.05; done

start_server "$BIN_DIR/server2.log"

if ! grep -q "replayed 25 WAL records" "$BIN_DIR/server2.log"; then
  echo "stream smoke: restart did not replay all 25 acked records" >&2
  cat "$BIN_DIR/server2.log" >&2
  exit 1
fi
AFTER="$(curl -sS "http://127.0.0.1:$PORT/v1/healthz")"
if ! grep -q '"pending_trips":2' <<<"$AFTER" || ! grep -q '"open_streams":1' <<<"$AFTER"; then
  echo "stream smoke: acked state lost across the crash: $AFTER" >&2
  exit 1
fi

# The recovered stream keeps going: closing courier 3 yields a third trip.
CLOSE="$(curl -sS -X POST --data-binary '{"courier":3,"end":true}' "http://127.0.0.1:$PORT/v1/trajectories:stream")"
if ! grep -q '"ends":1' <<<"$CLOSE"; then
  echo "stream smoke: close after recovery failed: $CLOSE" >&2
  exit 1
fi
FINAL="$(curl -sS "http://127.0.0.1:$PORT/v1/healthz")"
# open_streams is omitempty: absence means zero.
if ! grep -q '"pending_trips":3' <<<"$FINAL" || grep -q '"open_streams"' <<<"$FINAL"; then
  echo "stream smoke: post-recovery close not reflected: $FINAL" >&2
  exit 1
fi

echo "stream smoke: OK"
