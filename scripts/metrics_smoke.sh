#!/usr/bin/env bash
# Boots a dlinfma server with no dataset (instant cold start), drives a few
# requests through the v1 and legacy surfaces, then scrapes /v1/metrics with
# metricscheck: the build fails if the exposition doesn't parse or a required
# family is missing. Run via `make smoke-metrics`.
set -euo pipefail

PORT="${PORT:-18080}"
BIN_DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$BIN_DIR"' EXIT

go build -o "$BIN_DIR/dlinfma" ./cmd/dlinfma
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

"$BIN_DIR/dlinfma" serve -data "" -listen "127.0.0.1:$PORT" -log-level debug &
SERVER_PID=$!

# Wait for the listener (cold start with -data "" is immediate, but be safe).
for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    break
  fi
  if curl -sS -o /dev/null "http://127.0.0.1:$PORT/healthz" 2>/dev/null; then
    break # 503 from a cold engine still means the listener is up
  fi
  sleep 0.1
done

# Drive traffic: v1 query (503/404 paths count too), batch, legacy alias,
# health, an unmatched route — enough to populate every HTTP family.
curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/locations/1" || true
curl -sS -o /dev/null -X POST -d '{"addrs":[1,2,3]}' "http://127.0.0.1:$PORT/v1/locations:batch" || true
curl -sS -o /dev/null "http://127.0.0.1:$PORT/location?addr=1" || true
curl -sS -o /dev/null "http://127.0.0.1:$PORT/healthz" || true
curl -sS -o /dev/null "http://127.0.0.1:$PORT/no/such/route" || true

"$BIN_DIR/metricscheck" -url "http://127.0.0.1:$PORT/v1/metrics"
echo "metrics smoke: OK"
