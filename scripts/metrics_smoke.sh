#!/usr/bin/env bash
# Boots a dlinfma server with no dataset (instant cold start), drives a few
# requests through the /v1 surface (plus a retired legacy alias, which must
# answer 410), then scrapes /v1/metrics with
# metricscheck: the build fails if the exposition doesn't parse or a required
# family is missing. Also sends one traced request (synthetic traceparent +
# X-Request-ID) and asserts the correlation headers echo back and the trace
# lands in /v1/debug/traces. Run via `make smoke-metrics`.
set -euo pipefail

PORT="${PORT:-18080}"
BIN_DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$BIN_DIR"' EXIT

go build -o "$BIN_DIR/dlinfma" ./cmd/dlinfma
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

"$BIN_DIR/dlinfma" serve -data "" -listen "127.0.0.1:$PORT" -log-level debug \
  -trace-sample 1 -trace-buffer 64 &
SERVER_PID=$!

# Wait for the listener (cold start with -data "" is immediate, but be safe).
for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  if curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/healthz" 2>/dev/null; then
    break # 503 from a cold engine still means the listener is up
  fi
  sleep 0.1
done

# Drive traffic: v1 query (503/404 paths count too), batch, tombstoned
# legacy alias, health, an unmatched route — enough to populate every HTTP
# family.
curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/locations/1" || true
curl -sS -o /dev/null -X POST -d '{"addrs":[1,2,3]}' "http://127.0.0.1:$PORT/v1/locations:batch" || true
GONE_CODE="$(curl -sS -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/location?addr=1")"
if [ "$GONE_CODE" != "410" ]; then
  echo "metrics smoke: retired /location answered $GONE_CODE, want 410" >&2
  exit 1
fi
curl -sS -o /dev/null "http://127.0.0.1:$PORT/v1/healthz" || true
curl -sS -o /dev/null "http://127.0.0.1:$PORT/no/such/route" || true

# Traced request: the server must echo the correlation id, continue the
# incoming trace id in its Traceparent echo, and (the root span publishes
# after the response flushes, so retry briefly) surface the trace through
# the debug API with the route as its root span.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
HEADERS="$(curl -sS -D - -o /dev/null \
  -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
  -H "X-Request-ID: smoke-req-1" \
  "http://127.0.0.1:$PORT/v1/locations/1" || true)"
if ! grep -qi "^X-Request-ID: smoke-req-1" <<<"$HEADERS"; then
  echo "trace smoke: X-Request-ID not echoed" >&2
  exit 1
fi
if ! grep -qi "^Traceparent: 00-$TRACE_ID-" <<<"$HEADERS"; then
  echo "trace smoke: response traceparent does not continue the trace" >&2
  exit 1
fi

FOUND=""
for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:$PORT/v1/debug/traces" | grep -q "$TRACE_ID"; then
    FOUND=1
    break
  fi
  sleep 0.1
done
if [ -z "$FOUND" ]; then
  echo "trace smoke: trace $TRACE_ID never reached /v1/debug/traces" >&2
  exit 1
fi
if ! curl -fsS "http://127.0.0.1:$PORT/v1/debug/traces/$TRACE_ID" | grep -q "/v1/locations/{key}"; then
  echo "trace smoke: span tree missing the route's root span" >&2
  exit 1
fi
echo "trace smoke: OK"

"$BIN_DIR/metricscheck" -url "http://127.0.0.1:$PORT/v1/metrics"
echo "metrics smoke: OK"
