#!/usr/bin/env bash
# End-to-end smoke for the cluster topology: boots two real shard-peer
# processes plus a frontend started with -peers and -replication 2, lets the
# frontend ingest and retrain the tiny dataset through the cluster (writes
# replicate to every replica), records every answer, SIGKILLs one peer, and
# asserts the surviving replica serves byte-identical answers through
# ring-ordered failover — with the failover visible in /v1/metrics and the
# cross-process hop visible in /v1/debug/traces. Run via `make smoke-cluster`.
set -euo pipefail

FRONT_PORT="${FRONT_PORT:-18200}"
PEER_A_PORT="${PEER_A_PORT:-18201}"
PEER_B_PORT="${PEER_B_PORT:-18202}"
TMP="$(mktemp -d)"
trap 'kill -9 "${PEER_A_PID:-}" "${PEER_B_PID:-}" "${FRONT_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/dlinfma" ./cmd/dlinfma
"$TMP/dlinfma" generate -profile tiny -out "$TMP/data.json.gz" >/dev/null

start_peer() { # port logfile -> pid on stdout
  "$TMP/dlinfma" serve -data "" -listen "127.0.0.1:$1" >"$2" 2>&1 &
  local pid=$!
  disown "$pid" # the SIGKILL at the end is deliberate; keep bash quiet
  echo "$pid"
}

wait_listener() { # port name logfile
  for _ in $(seq 1 100); do
    # A cold peer answers 503 on /v1/healthz; any response means it is up.
    if curl -sS -o /dev/null "http://127.0.0.1:$1/v1/healthz" 2>/dev/null; then
      return
    fi
    sleep 0.1
  done
  echo "cluster smoke: $2 never came up" >&2
  cat "$3" >&2
  exit 1
}

PEER_A_PID="$(start_peer "$PEER_A_PORT" "$TMP/peer_a.log")"
PEER_B_PID="$(start_peer "$PEER_B_PORT" "$TMP/peer_b.log")"
wait_listener "$PEER_A_PORT" "peer A" "$TMP/peer_a.log"
wait_listener "$PEER_B_PORT" "peer B" "$TMP/peer_b.log"

# The frontend ingests and retrains through the cluster before it starts
# listening, so its listener appearing means the cluster is trained.
"$TMP/dlinfma" serve -data "$TMP/data.json.gz" -listen "127.0.0.1:$FRONT_PORT" \
  -peers "http://127.0.0.1:$PEER_A_PORT,http://127.0.0.1:$PEER_B_PORT" \
  -replication 2 -shards 4 \
  -trace-sample 1 -trace-buffer 64 >"$TMP/front.log" 2>&1 &
FRONT_PID=$!
disown "$FRONT_PID"
for _ in $(seq 1 600); do
  if curl -fsS "http://127.0.0.1:$FRONT_PORT/v1/healthz" >"$TMP/health.json" 2>/dev/null; then
    break
  fi
  sleep 0.5
done
if ! grep -q '"ready":true' "$TMP/health.json" 2>/dev/null; then
  echo "cluster smoke: frontend never became ready" >&2
  cat "$TMP/front.log" >&2
  exit 1
fi

# Replicated writes: both peers must hold the full (identical, non-empty)
# trip universe after the frontend's startup ingest.
trips_of() { curl -fsS "http://127.0.0.1:$1/v1/healthz" | sed -E 's/.*"trips":([0-9]+).*/\1/'; }
TRIPS_A="$(trips_of "$PEER_A_PORT")"
TRIPS_B="$(trips_of "$PEER_B_PORT")"
if [ -z "$TRIPS_A" ] || [ "$TRIPS_A" = "0" ] || [ "$TRIPS_A" != "$TRIPS_B" ]; then
  echo "cluster smoke: replicated ingest diverged (peer A: $TRIPS_A trips, peer B: $TRIPS_B)" >&2
  exit 1
fi

# Record every answer while both replicas are alive.
query_all() { # outfile
  : >"$1"
  for id in $(seq 0 120); do
    printf '%s ' "$id" >>"$1"
    curl -sS "http://127.0.0.1:$FRONT_PORT/v1/locations/$id" >>"$1"
    printf '\n' >>"$1"
  done
}
query_all "$TMP/before.txt"
if ! grep -q '"source"' "$TMP/before.txt"; then
  echo "cluster smoke: no address answered before the kill" >&2
  exit 1
fi

# The cross-process hop must be visible in the frontend's trace buffer: some
# buffered query trace must carry a cluster.rpc span under its root.
FOUND_RPC=""
for tid in $(curl -fsS "http://127.0.0.1:$FRONT_PORT/v1/debug/traces" \
  | grep -oE '"trace_id":"[0-9a-f]{32}"' | grep -oE '[0-9a-f]{32}'); do
  if curl -fsS "http://127.0.0.1:$FRONT_PORT/v1/debug/traces/$tid" | grep -q 'cluster.rpc'; then
    FOUND_RPC=1
    break
  fi
done
if [ -z "$FOUND_RPC" ]; then
  echo "cluster smoke: no cluster.rpc span in any /v1/debug/traces trace" >&2
  exit 1
fi

# Kill one replica owner outright: no shutdown, no drain.
kill -9 "$PEER_A_PID"
while kill -0 "$PEER_A_PID" 2>/dev/null; do sleep 0.05; done

query_all "$TMP/after.txt"
if ! diff -u "$TMP/before.txt" "$TMP/after.txt" >&2; then
  echo "cluster smoke: answers changed after killing peer A" >&2
  exit 1
fi
if ! curl -fsS "http://127.0.0.1:$FRONT_PORT/v1/healthz" | grep -q '"ready":true'; then
  echo "cluster smoke: frontend lost readiness after a single-peer failure" >&2
  exit 1
fi

# The failover must have been counted: some shards' ring owner was peer A,
# so serving the full key range again forces replica attempts.
METRICS="$(curl -fsS "http://127.0.0.1:$FRONT_PORT/v1/metrics")"
if ! grep -E '^dlinfma_cluster_rpc_failovers_total [1-9]' <<<"$METRICS" >/dev/null; then
  echo "cluster smoke: no rpc failovers recorded after the kill" >&2
  grep '^dlinfma_cluster' <<<"$METRICS" >&2 || true
  exit 1
fi

echo "cluster smoke: OK (trips=$TRIPS_A replicated, answers stable across peer kill)"
