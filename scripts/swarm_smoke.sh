#!/usr/bin/env bash
# End-to-end smoke for the load-generation swarm: boots a server on the tiny
# dataset, drives a short fixed-rate open-loop swarm against it and asserts
# the run completed with zero errors and zero dropped arrivals, then runs a
# two-stage mini-ramp and asserts benchjson -capacity turns the verdict into
# a populated capacity report. Run via `make smoke-swarm`.
set -euo pipefail

PORT="${PORT:-18290}"
RATE="${RATE:-40}"
DURATION="${DURATION:-3s}"
TMP="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/dlinfma" ./cmd/dlinfma
go build -o "$TMP/swarm" ./cmd/swarm
go build -o "$TMP/benchjson" ./cmd/benchjson

"$TMP/dlinfma" generate -profile tiny -out "$TMP/data.json.gz" >/dev/null
"$TMP/dlinfma" serve -data "$TMP/data.json.gz" -listen "127.0.0.1:$PORT" >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# Fixed-rate leg: the swarm itself waits for /v1/healthz readiness.
if ! "$TMP/swarm" -target "http://127.0.0.1:$PORT" -rate "$RATE" -duration "$DURATION" \
  -mix 'lookup=80,batch=10,stream=10' -wait 60s >"$TMP/fixed.json" 2>"$TMP/fixed.log"; then
  echo "swarm smoke: fixed-rate run failed" >&2
  cat "$TMP/fixed.log" "$TMP/server.log" >&2
  exit 1
fi
REQS="$(grep -o '"requests": [0-9]*' "$TMP/fixed.json" | head -1 | grep -o '[0-9]*')"
ERRS="$(grep -o '"errors": [0-9]*' "$TMP/fixed.json" | head -1 | grep -o '[0-9]*')"
DROPS="$(grep -o '"dropped": [0-9]*' "$TMP/fixed.json" | head -1 | grep -o '[0-9]*')"
if [ -z "$REQS" ] || [ "$REQS" -eq 0 ]; then
  echo "swarm smoke: no requests completed: $(cat "$TMP/fixed.json")" >&2
  exit 1
fi
if [ "$ERRS" != "0" ] || [ "$DROPS" != "0" ]; then
  echo "swarm smoke: fixed-rate run had errors=$ERRS dropped=$DROPS" >&2
  cat "$TMP/fixed.json" >&2
  exit 1
fi

# Ramp leg: two tiny stages capped by -ramp-max are enough to prove the
# orchestrator and the capacity report plumbing end to end.
if ! "$TMP/swarm" -target "http://127.0.0.1:$PORT" \
  -ramp-start "$RATE" -ramp-growth 1.5 -ramp-max "$RATE" -stage 2s \
  -config smoke -shards 1 -mix 'lookup=90,batch=10' >"$TMP/row.json" 2>"$TMP/ramp.log"; then
  echo "swarm smoke: ramp run failed" >&2
  cat "$TMP/ramp.log" "$TMP/server.log" >&2
  exit 1
fi
"$TMP/benchjson" -capacity -out "$TMP/capacity.json" <"$TMP/row.json"
if ! grep -q '"config": "smoke"' "$TMP/capacity.json"; then
  echo "swarm smoke: capacity report missing the smoke row" >&2
  cat "$TMP/capacity.json" >&2
  exit 1
fi
QPS="$(grep -o '"max_sustainable_qps": [0-9.]*' "$TMP/capacity.json" | head -1 | grep -o '[0-9.]*$')"
if [ -z "$QPS" ] || [ "${QPS%%.*}" -eq 0 ]; then
  echo "swarm smoke: capacity report has no sustainable rate: $(cat "$TMP/capacity.json")" >&2
  cat "$TMP/ramp.log" >&2
  exit 1
fi

echo "swarm smoke: OK ($REQS requests, 0 errors, capacity row at $QPS qps)"
