package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"dlinfma/internal/loadgen"
)

// capacityMain is the -capacity mode: it collects swarm capacity rows (one
// JSON object per row — either raw on stdin, NDJSON-style, or indented
// multi-line objects back to back, which is what `swarm | ...` emits) into
// the committed BENCH_capacity.json, and optionally gates a config's
// max_sustainable_qps against a baseline report.
func capacityMain(out, baseline, gate string, maxRegress float64) {
	rows, err := readCapacityRows(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: capacity:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: capacity: no rows on stdin")
		os.Exit(1)
	}
	rep := loadgen.CapacityReport{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Rows:   rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d capacity rows to %s\n", len(rows), out)

	if baseline != "" && gate != "" {
		base, err := loadCapacityReport(baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		if err := capacityGate(rep, base, gate, maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %s within %.0f%% of baseline capacity\n",
			gate, maxRegress)
	}
}

// readCapacityRows decodes a stream of JSON capacity-row objects. A JSON
// decoder handles both one-object-per-line and indented objects; stray
// non-JSON noise lines (swarm's stderr should not be piped here, but be
// forgiving about blank lines) abort with a clear error.
func readCapacityRows(r io.Reader) ([]loadgen.CapacityRow, error) {
	br := bufio.NewReader(r)
	dec := json.NewDecoder(br)
	var rows []loadgen.CapacityRow
	for {
		var row loadgen.CapacityRow
		err := dec.Decode(&row)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", len(rows)+1, err)
		}
		if strings.TrimSpace(row.Config) == "" {
			return nil, fmt.Errorf("row %d: missing config label", len(rows)+1)
		}
		rows = append(rows, row)
	}
}

// loadCapacityReport reads a previously committed capacity report.
func loadCapacityReport(path string) (loadgen.CapacityReport, error) {
	var rep loadgen.CapacityReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

// capacityRow finds one config's row.
func capacityRow(rep loadgen.CapacityReport, config string) (loadgen.CapacityRow, bool) {
	for _, r := range rep.Rows {
		if r.Config == config {
			return r, true
		}
	}
	return loadgen.CapacityRow{}, false
}

// capacityGate fails when a config's max sustainable qps fell more than
// maxPct percent below the baseline. Capacity is higher-is-better, and
// client-saturated rows (in either run) only warn: the number measures the
// generator's ceiling, not the server's, so gating on it would flake.
func capacityGate(cur, base loadgen.CapacityReport, config string, maxPct float64) error {
	cr, ok := capacityRow(cur, config)
	if !ok {
		return fmt.Errorf("run has no capacity row %q", config)
	}
	br, ok := capacityRow(base, config)
	if !ok {
		return fmt.Errorf("baseline has no capacity row %q", config)
	}
	if cr.ClientSaturated || br.ClientSaturated {
		fmt.Fprintf(os.Stderr, "benchjson: gate %s skipped: client-saturated row (cur=%v base=%v)\n",
			config, cr.ClientSaturated, br.ClientSaturated)
		return nil
	}
	if br.MaxSustainableQPS <= 0 {
		return fmt.Errorf("baseline %s capacity is %v, cannot gate", config, br.MaxSustainableQPS)
	}
	regressPct := (br.MaxSustainableQPS - cr.MaxSustainableQPS) / br.MaxSustainableQPS * 100
	if regressPct > maxPct {
		return fmt.Errorf("%s capacity regressed %.1f%% (baseline %.1f qps, got %.1f qps, limit %.0f%%)",
			config, regressPct, br.MaxSustainableQPS, cr.MaxSustainableQPS, maxPct)
	}
	return nil
}
