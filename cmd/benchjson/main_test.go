package main

import "testing"

func TestParseBench(t *testing.T) {
	r, ok := parseBench("BenchmarkFitParallel/workers=2-8  12  94811304 ns/op  1200 B/op  24 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkFitParallel/workers=2-8" || r.Iterations != 12 {
		t.Errorf("parsed %+v", r)
	}
	if r.NsPerOp != 94811304 || r.BytesPerOp != 1200 || r.AllocsOp != 24 {
		t.Errorf("metrics %+v", r)
	}
	if r.Shards != 0 {
		t.Errorf("worker benchmark got shards=%d", r.Shards)
	}

	r, ok = parseBench("BenchmarkServeQueries/shards=4-8  5000  240124 ns/op  4164 queries/sec")
	if !ok {
		t.Fatal("sharded line not parsed")
	}
	if r.Shards != 4 {
		t.Errorf("shards = %d, want 4", r.Shards)
	}
	if r.Extra["queries/sec"] != 4164 {
		t.Errorf("extra metric lost: %+v", r.Extra)
	}

	if _, ok := parseBench("BenchmarkBroken notanumber"); ok {
		t.Error("malformed line accepted")
	}

	r, ok = parseBench("BenchmarkServeQueriesBatch/shards=2-8  500  352115 ns/op  1454072 queries/sec")
	if !ok {
		t.Fatal("batch line not parsed")
	}
	if !r.Batch || r.Traced || r.Shards != 2 {
		t.Errorf("batch row flags %+v", r)
	}
}

func TestGateCheck(t *testing.T) {
	rep := func(qps, ns float64) Report {
		return Report{Results: []Result{{
			Name:    "BenchmarkServeQueriesParallel/shards=1-8",
			NsPerOp: ns,
			Extra:   map[string]float64{"queries/sec": qps},
		}}}
	}
	gate := "BenchmarkServeQueriesParallel/shards=1"

	// Within the limit (including improvements) passes.
	if err := gateCheck(rep(900, 110), rep(1000, 100), gate, "queries/sec", 15); err != nil {
		t.Errorf("10%% drop with 15%% limit: %v", err)
	}
	if err := gateCheck(rep(2000, 50), rep(1000, 100), gate, "queries/sec", 15); err != nil {
		t.Errorf("improvement flagged: %v", err)
	}
	// Beyond the limit fails.
	if err := gateCheck(rep(800, 130), rep(1000, 100), gate, "queries/sec", 15); err == nil {
		t.Error("20% throughput drop passed the 15% gate")
	}
	// ns/op gates in the other direction: bigger is worse.
	if err := gateCheck(rep(800, 130), rep(1000, 100), gate, "ns/op", 15); err == nil {
		t.Error("30% latency growth passed the 15% ns/op gate")
	}
	if err := gateCheck(rep(800, 90), rep(1000, 100), gate, "ns/op", 15); err != nil {
		t.Errorf("latency improvement flagged: %v", err)
	}
	// Missing rows are explicit errors, not silent passes.
	if err := gateCheck(Report{}, rep(1000, 100), gate, "queries/sec", 15); err == nil {
		t.Error("empty run passed the gate")
	}
	if err := gateCheck(rep(900, 110), Report{}, gate, "queries/sec", 15); err == nil {
		t.Error("empty baseline passed the gate")
	}
}

func TestParseShards(t *testing.T) {
	cases := map[string]int{
		"BenchmarkServeQueries/shards=1-8":   1,
		"BenchmarkServeQueries/shards=16-4":  16,
		"BenchmarkServeQueries/shards=2/hot": 2,
		"BenchmarkServeQueries":              0,
		"BenchmarkServeQueries/shards=x-8":   0,
		"BenchmarkFitParallel/workers=2-8":   0,
	}
	for name, want := range cases {
		if got := parseShards(name); got != want {
			t.Errorf("parseShards(%q) = %d, want %d", name, got, want)
		}
	}
}
