package main

import "testing"

func TestParseBench(t *testing.T) {
	r, ok := parseBench("BenchmarkFitParallel/workers=2-8  12  94811304 ns/op  1200 B/op  24 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkFitParallel/workers=2-8" || r.Iterations != 12 {
		t.Errorf("parsed %+v", r)
	}
	if r.NsPerOp != 94811304 || r.BytesPerOp != 1200 || r.AllocsOp != 24 {
		t.Errorf("metrics %+v", r)
	}
	if r.Shards != 0 {
		t.Errorf("worker benchmark got shards=%d", r.Shards)
	}

	r, ok = parseBench("BenchmarkServeQueries/shards=4-8  5000  240124 ns/op  4164 queries/sec")
	if !ok {
		t.Fatal("sharded line not parsed")
	}
	if r.Shards != 4 {
		t.Errorf("shards = %d, want 4", r.Shards)
	}
	if r.Extra["queries/sec"] != 4164 {
		t.Errorf("extra metric lost: %+v", r.Extra)
	}

	if _, ok := parseBench("BenchmarkBroken notanumber"); ok {
		t.Error("malformed line accepted")
	}
}

func TestParseShards(t *testing.T) {
	cases := map[string]int{
		"BenchmarkServeQueries/shards=1-8":   1,
		"BenchmarkServeQueries/shards=16-4":  16,
		"BenchmarkServeQueries/shards=2/hot": 2,
		"BenchmarkServeQueries":              0,
		"BenchmarkServeQueries/shards=x-8":   0,
		"BenchmarkFitParallel/workers=2-8":   0,
	}
	for name, want := range cases {
		if got := parseShards(name); got != want {
			t.Errorf("parseShards(%q) = %d, want %d", name, got, want)
		}
	}
}
