package main

import (
	"strings"
	"testing"

	"dlinfma/internal/loadgen"
)

// TestReadCapacityRows decodes the concatenated indented JSON objects swarm
// runs emit (no separators beyond whitespace).
func TestReadCapacityRows(t *testing.T) {
	in := `{
  "config": "shards=1",
  "max_sustainable_qps": 450.5,
  "p50_ms": 1.2,
  "p99_ms": 40,
  "error_rate": 0,
  "breach": "p99"
}
{"config":"cluster=2","peers":2,"max_sustainable_qps":300,"client_saturated":true}
`
	rows, err := readCapacityRows(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(rows))
	}
	if rows[0].Config != "shards=1" || rows[0].MaxSustainableQPS != 450.5 || rows[0].Breach != "p99" {
		t.Fatalf("row 0: %+v", rows[0])
	}
	if rows[1].Peers != 2 || !rows[1].ClientSaturated {
		t.Fatalf("row 1: %+v", rows[1])
	}
}

// TestReadCapacityRowsRejectsUnlabelled: a row without a config label can't
// be gated or charted, so it's an input error, not a silent blank.
func TestReadCapacityRowsRejectsUnlabelled(t *testing.T) {
	if _, err := readCapacityRows(strings.NewReader(`{"max_sustainable_qps":1}`)); err == nil {
		t.Fatal("unlabelled row accepted")
	}
}

// TestCapacityGate covers pass, regression failure, and the client-saturated
// skip.
func TestCapacityGate(t *testing.T) {
	base := loadgen.CapacityReport{Rows: []loadgen.CapacityRow{
		{Config: "shards=1", MaxSustainableQPS: 1000},
		{Config: "cluster=2", MaxSustainableQPS: 500, ClientSaturated: true},
	}}
	cur := loadgen.CapacityReport{Rows: []loadgen.CapacityRow{
		{Config: "shards=1", MaxSustainableQPS: 900},
		{Config: "cluster=2", MaxSustainableQPS: 100},
	}}
	// 10% down, limit 15%: pass.
	if err := capacityGate(cur, base, "shards=1", 15); err != nil {
		t.Fatalf("10%% regression failed a 15%% gate: %v", err)
	}
	// Limit 5%: fail.
	if err := capacityGate(cur, base, "shards=1", 5); err == nil {
		t.Fatal("10% regression passed a 5% gate")
	}
	// Baseline row was client-saturated: only warn, never fail.
	if err := capacityGate(cur, base, "cluster=2", 5); err != nil {
		t.Fatalf("client-saturated baseline must skip the gate: %v", err)
	}
	// Unknown config: error.
	if err := capacityGate(cur, base, "shards=64", 5); err == nil {
		t.Fatal("unknown config gated successfully")
	}
}
