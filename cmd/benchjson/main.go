// Command benchjson converts `go test -bench` output into a machine-readable
// JSON file while passing the text through unchanged, so it sits in a pipe:
//
//	go test -bench 'FitParallel|PredictBatch' -benchmem -run '^$' . | benchjson -out BENCH_locmatcher.json
//
// Each benchmark result line becomes one record with ns/op, B/op and
// allocs/op (when -benchmem is on) plus any custom ReportMetric units.
//
// With -capacity it instead collects cmd/swarm capacity rows from stdin
// into BENCH_capacity.json (see capacity.go):
//
//	cat rows.ndjson | benchjson -capacity -out BENCH_capacity.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Shards is the shard-count dimension parsed from a "shards=N" sub-
	// benchmark segment (BenchmarkServeQueries/shards=4-8), so per-shard
	// throughput rows can be charted without re-parsing names. Zero when the
	// benchmark has no shard dimension.
	Shards int `json:"shards,omitempty"`
	// Traced marks rows from a tracing-enabled benchmark variant
	// (BenchmarkServeQueriesTraced), so trace overhead can be compared
	// against the untraced row of the same shape.
	Traced bool `json:"traced,omitempty"`
	// Batch marks rows from batched-operation benchmarks
	// (BenchmarkServeQueriesBatch, BenchmarkPredictBatch), where one op
	// covers many items and the per-item throughput metric is the
	// comparable number, not ns/op.
	Batch      bool               `json:"batch,omitempty"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted file: environment header plus all results.
type Report struct {
	Goos     string   `json:"goos,omitempty"`
	Goarch   string   `json:"goarch,omitempty"`
	Pkg      string   `json:"pkg,omitempty"`
	CPU      string   `json:"cpu,omitempty"`
	Results  []Result `json:"results"`
	Failures int      `json:"failures"`
}

func main() {
	out := flag.String("out", "BENCH_locmatcher.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed report to gate against (empty: no gating)")
	gate := flag.String("gate", "", "benchmark name prefix to gate, e.g. BenchmarkServeQueriesParallel/shards=1")
	gateMetric := flag.String("gate-metric", "queries/sec", "metric to compare: ns/op (lower is better) or a ReportMetric unit (higher is better)")
	maxRegress := flag.Float64("max-regress-pct", 15, "fail when the gated metric regresses by more than this percentage")
	capacity := flag.Bool("capacity", false, "capacity mode: collect swarm CapacityRow JSON from stdin into -out instead of parsing go test -bench output; -gate then names a config label")
	flag.Parse()

	if *capacity {
		capacityMain(*out, *baseline, *gate, *maxRegress)
		return
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
			}
		case strings.Contains(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			rep.Failures++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)

	if *baseline != "" && *gate != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		if err := gateCheck(rep, base, *gate, *gateMetric, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %s (%s) within %.0f%% of baseline\n",
			*gate, *gateMetric, *maxRegress)
	}
}

// loadReport reads a previously emitted report file.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

// metricOf pulls the gated metric out of one result; ok is false when the
// row doesn't carry it.
func metricOf(r Result, metric string) (float64, bool) {
	if metric == "ns/op" {
		return r.NsPerOp, r.NsPerOp > 0
	}
	v, ok := r.Extra[metric]
	return v, ok
}

// gateRow finds the first result whose name starts with the gate prefix and
// carries the metric. Prefix matching keeps gates portable across machines:
// result names end in "-GOMAXPROCS", which differs between runners.
func gateRow(rep Report, gate, metric string) (Result, bool) {
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, gate) {
			continue
		}
		if _, ok := metricOf(r, metric); ok {
			return r, true
		}
	}
	return Result{}, false
}

// gateCheck compares the gated metric of the fresh run against the baseline
// and errors when it regressed by more than maxPct percent. "ns/op" is
// treated as lower-is-better; every other metric (custom ReportMetric units
// like "queries/sec") as higher-is-better.
func gateCheck(cur, base Report, gate, metric string, maxPct float64) error {
	cr, ok := gateRow(cur, gate, metric)
	if !ok {
		return fmt.Errorf("run has no result %q with metric %q", gate, metric)
	}
	br, ok := gateRow(base, gate, metric)
	if !ok {
		return fmt.Errorf("baseline has no result %q with metric %q", gate, metric)
	}
	curV, _ := metricOf(cr, metric)
	baseV, _ := metricOf(br, metric)
	if baseV <= 0 {
		return fmt.Errorf("baseline %s %s is %v, cannot gate", gate, metric, baseV)
	}
	var regressPct float64
	if metric == "ns/op" {
		regressPct = (curV - baseV) / baseV * 100
	} else {
		regressPct = (baseV - curV) / baseV * 100
	}
	if regressPct > maxPct {
		return fmt.Errorf("%s %s regressed %.1f%% (baseline %.1f, got %.1f, limit %.0f%%)",
			gate, metric, regressPct, baseV, curV, maxPct)
	}
	return nil
}

// parseBench parses one result line, e.g.
// "BenchmarkFitParallel/workers=2-8  12  94811304 ns/op  1200 B/op  24 allocs/op".
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       fields[0],
		Iterations: iters,
		Shards:     parseShards(fields[0]),
		Traced:     strings.Contains(fields[0], "Traced"),
		Batch:      strings.Contains(fields[0], "Batch"),
	}
	// The rest alternate value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}

// parseShards extracts N from a "shards=N" segment of a benchmark name
// (segments are separated by '/', with the trailing "-GOMAXPROCS" suffix on
// the last one). Returns 0 when the name carries no shard dimension.
func parseShards(name string) int {
	i := strings.Index(name, "shards=")
	if i < 0 {
		return 0
	}
	rest := name[i+len("shards="):]
	if j := strings.IndexAny(rest, "-/"); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}
