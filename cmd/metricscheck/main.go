// Command metricscheck scrapes a Prometheus text exposition from a URL (or
// stdin with -url "-"), validates that it parses, and asserts a required set
// of metric families is present. CI boots a dlinfma server and runs it
// against /v1/metrics so a malformed exposition or a silently dropped family
// fails the build instead of the first real scrape in production.
//
// Usage:
//
//	metricscheck -url http://localhost:8080/v1/metrics [-require name1,name2]
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dlinfma/internal/obs"
)

// defaultRequired is the exposition contract: families every serving binary
// must expose once traffic has flowed.
var defaultRequired = []string{
	"dlinfma_http_requests_total",
	"dlinfma_http_request_duration_seconds",
	"dlinfma_http_in_flight_requests",
	"dlinfma_engine_queries_total",
}

func main() {
	url := flag.String("url", "http://localhost:8080/v1/metrics", "exposition URL (\"-\" reads stdin)")
	require := flag.String("require", strings.Join(defaultRequired, ","),
		"comma-separated metric families that must be present (\"\" skips the check)")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP timeout")
	flag.Parse()

	if err := run(*url, *require, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

func run(url, require string, timeout time.Duration) error {
	var body io.ReadCloser
	if url == "-" {
		body = os.Stdin
	} else {
		c := &http.Client{Timeout: timeout}
		resp, err := c.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			return fmt.Errorf("GET %s: Content-Type %q, want text/plain", url, ct)
		}
		body = resp.Body
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}

	var missing []string
	if require != "" {
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := fams[name]; !ok {
				missing = append(missing, name)
			}
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("parsed %d families, %d samples\n", len(names), samples)
	for _, name := range names {
		fmt.Printf("  %-55s %s (%d samples)\n", name, fams[name].Type, len(fams[name].Samples))
	}
	if len(missing) > 0 {
		return fmt.Errorf("required families missing: %s", strings.Join(missing, ", "))
	}
	return nil
}
