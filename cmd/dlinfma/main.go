// Command dlinfma is the end-to-end CLI for the delivery-location inference
// system: generate a synthetic dataset, run the DLInfMA pipeline (train
// LocMatcher, infer every address), evaluate against ground truth, and serve
// the inferred locations over the deployed query API.
//
// Usage:
//
//	dlinfma generate -profile dowbj -out data.json.gz
//	dlinfma infer    -data data.json.gz -out locations.json
//	dlinfma eval     -data data.json.gz
//	dlinfma serve    -data data.json.gz -listen :8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "infer":
		err = cmdInfer(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlinfma:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlinfma <generate|infer|eval|serve> [flags]")
	os.Exit(2)
}

func profileByName(name string) (synth.Profile, error) {
	switch name {
	case "dowbj":
		return synth.DowBJ(), nil
	case "subbj":
		return synth.SubBJ(), nil
	case "tiny":
		return synth.Tiny(), nil
	default:
		return synth.Profile{}, fmt.Errorf("unknown profile %q (dowbj|subbj|tiny)", name)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	profile := fs.String("profile", "dowbj", "dataset profile: dowbj|subbj|tiny")
	out := fs.String("out", "data.json.gz", "output path (.gz for compression)")
	pd := fs.Float64("pd", -1, "override batch-delay probability (default: profile's)")
	fs.Parse(args)
	p, err := profileByName(*profile)
	if err != nil {
		return err
	}
	if *pd >= 0 {
		p.DelayProb = *pd
	}
	ds, _, err := synth.Generate(p)
	if err != nil {
		return err
	}
	if err := ds.SaveFile(*out); err != nil {
		return err
	}
	st := synth.MeasureDelays(ds)
	fmt.Printf("wrote %s: %d trips, %d waybills, %d addresses, %d GPS points, %.0f%% batch-delayed\n",
		*out, len(ds.Trips), ds.Deliveries(), len(ds.Addresses), ds.TrajectoryPoints(),
		100*float64(st.Delayed)/float64(st.Waybills))
	return nil
}

// trainAndInfer runs the full pipeline and returns the inferred location of
// every address with at least one candidate. workers bounds the pipeline's
// parallelism (0 = GOMAXPROCS for extraction/featurization/inference, serial
// training; >1 also parallelizes LocMatcher training).
func trainAndInfer(ds *model.Dataset, workers int) (map[model.AddressID]geo.Point, error) {
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	pipe := core.NewPipeline(ds, cfg)
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples := pipe.BuildSamples(ids, core.DefaultSampleOptions())
	core.LabelSamples(samples, ds.Truth)
	var labelled []*core.Sample
	for _, s := range samples {
		if s.Label >= 0 {
			labelled = append(labelled, s)
		}
	}
	nVal := len(labelled) / 5
	mcfg := eval.ExperimentLocMatcherConfig()
	mcfg.Workers = workers
	m := core.NewLocMatcher(mcfg)
	if _, err := m.Fit(labelled[nVal:], labelled[:nVal]); err != nil {
		return nil, err
	}
	preds := m.PredictAll(samples)
	out := make(map[model.AddressID]geo.Point, len(samples))
	for i, s := range samples {
		out[s.Addr] = s.PredictedLocation(preds[i])
	}
	return out, nil
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path")
	out := fs.String("out", "locations.json", "output path for inferred locations")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	fs.Parse(args)
	ds, err := model.LoadFile(*data)
	if err != nil {
		return err
	}
	locs, err := trainAndInfer(ds, *workers)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	table := make(map[string][2]float64, len(locs))
	for id, p := range locs {
		table[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	if err := json.NewEncoder(f).Encode(table); err != nil {
		return err
	}
	fmt.Printf("inferred %d delivery locations -> %s\n", len(locs), *out)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	fs.Parse(args)
	ds, err := model.LoadFile(*data)
	if err != nil {
		return err
	}
	locs, err := trainAndInfer(ds, *workers)
	if err != nil {
		return err
	}
	var errs []float64
	for id, truth := range ds.Truth {
		if pred, ok := locs[id]; ok {
			errs = append(errs, geo.Dist(pred, truth))
		}
	}
	m := eval.Compute(errs)
	fmt.Printf("DLInfMA on %s (all addresses, including training regions):\n", ds.Name)
	fmt.Printf("  MAE=%.1f m  P95=%.1f m  beta50=%.1f%%  n=%d\n", m.MAE, m.P95, m.Beta50, m.N)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path")
	listen := fs.String("listen", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	fs.Parse(args)
	ds, err := model.LoadFile(*data)
	if err != nil {
		return err
	}
	locs, err := trainAndInfer(ds, *workers)
	if err != nil {
		return err
	}
	store := deploy.NewStore()
	store.LoadDataset(ds)
	for id, p := range locs {
		store.Put(id, p)
	}
	fmt.Printf("serving %d inferred locations on %s (GET /location?addr=N)\n", store.Len(), *listen)
	return http.ListenAndServe(*listen, deploy.Handler(store))
}
