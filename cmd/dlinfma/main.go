// Command dlinfma is the end-to-end CLI for the delivery-location inference
// system: generate a synthetic dataset, run the DLInfMA pipeline (train
// LocMatcher, infer every address), evaluate against ground truth, and serve
// the inferred locations over the deployed online API.
//
// Usage:
//
//	dlinfma generate -profile dowbj -out data.json.gz
//	dlinfma infer    -data data.json.gz -out locations.json
//	dlinfma eval     -data data.json.gz
//	dlinfma serve    -data data.json.gz -listen :8080 -snapshot state.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dlinfma/internal/cluster"
	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
	"dlinfma/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// One signal context for every subcommand: the first SIGINT/SIGTERM
	// cancels ctx (training and pool builds abort at their next cooperative
	// check, the server drains), a second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "infer":
		err = cmdInfer(ctx, os.Args[2:])
	case "eval":
		err = cmdEval(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlinfma:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlinfma <generate|infer|eval|serve> [flags]")
	os.Exit(2)
}

func profileByName(name string) (synth.Profile, error) {
	switch name {
	case "dowbj":
		return synth.DowBJ(), nil
	case "subbj":
		return synth.SubBJ(), nil
	case "tiny":
		return synth.Tiny(), nil
	default:
		return synth.Profile{}, fmt.Errorf("unknown profile %q (dowbj|subbj|tiny)", name)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	profile := fs.String("profile", "dowbj", "dataset profile: dowbj|subbj|tiny")
	out := fs.String("out", "data.json.gz", "output path (.gz for compression)")
	pd := fs.Float64("pd", -1, "override batch-delay probability (default: profile's)")
	fs.Parse(args)
	p, err := profileByName(*profile)
	if err != nil {
		return err
	}
	if *pd >= 0 {
		p.DelayProb = *pd
	}
	ds, _, err := synth.Generate(p)
	if err != nil {
		return err
	}
	if err := ds.SaveFile(*out); err != nil {
		return err
	}
	st := synth.MeasureDelays(ds)
	fmt.Printf("wrote %s: %d trips, %d waybills, %d addresses, %d GPS points, %.0f%% batch-delayed\n",
		*out, len(ds.Trips), ds.Deliveries(), len(ds.Addresses), ds.TrajectoryPoints(),
		100*float64(st.Delayed)/float64(st.Waybills))
	return nil
}

// engineConfig assembles the CLI's engine configuration: the paper's
// pipeline defaults, the experiment harness's LocMatcher tuning, a 20%
// validation holdout, and one workers knob for both stages.
func engineConfig(workers int) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Core.Workers = workers
	cfg.Matcher = eval.ExperimentLocMatcherConfig()
	cfg.Matcher.Workers = workers
	return cfg
}

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// shardFlags adds the shard topology flags shared by infer, eval, and serve.
func shardFlags(fs *flag.FlagSet) (shards, precision *int) {
	shards = fs.Int("shards", 1, "geographic shards (1 = single global engine)")
	precision = fs.Int("shard-precision", 0,
		fmt.Sprintf("geohash precision of the shard routing key (0 = default %d)", shard.DefaultPrecision))
	return shards, precision
}

// newEngine picks the engine shape from the shard flags: one global engine,
// or N regional shards behind a geohash router. Both satisfy engine.Runtime,
// so every subcommand drives them identically. log and tracer may be nil
// (batch subcommands report through stdout and don't trace).
func newEngine(workers, shards, precision, maxPending, swapHistory int, lowConf float64, log *obs.Logger, tracer *trace.Tracer) (engine.Runtime, error) {
	cfg := engineConfig(workers)
	cfg.Logger = log
	cfg.Tracer = tracer
	cfg.MaxPendingTrips = maxPending
	cfg.SwapHistory = swapHistory
	cfg.LowConfidence = lowConf
	if shards <= 1 {
		return engine.New(cfg), nil
	}
	r, err := shard.NewRouter(shards, precision)
	if err != nil {
		return nil, err
	}
	return engine.NewSharded(cfg, r), nil
}

// runPipeline feeds the dataset through the engine in incremental windows
// and runs one full re-inference — the same path the serve subcommand's
// background jobs take, so batch and online runs cannot drift apart.
func runPipeline(ctx context.Context, ds *model.Dataset, workers, shards, precision int) (engine.Runtime, error) {
	e, err := newEngine(workers, shards, precision, 0, 0, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := e.IngestDataset(ctx, ds); err != nil {
		e.Close()
		return nil, err
	}
	if err := e.Reinfer(ctx); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

func cmdInfer(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path")
	out := fs.String("out", "locations.json", "output path for inferred locations")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	shards, precision := shardFlags(fs)
	fs.Parse(args)
	ds, err := model.LoadFile(*data)
	if err != nil {
		return err
	}
	e, err := runPipeline(ctx, ds, *workers, *shards, *precision)
	if err != nil {
		return err
	}
	defer e.Close()
	locs := e.InferredLocations()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	table := make(map[string][2]float64, len(locs))
	for id, p := range locs {
		table[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	if err := json.NewEncoder(f).Encode(table); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("inferred %d delivery locations -> %s\n", len(locs), *out)
	return nil
}

func cmdEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	shards, precision := shardFlags(fs)
	fs.Parse(args)
	ds, err := model.LoadFile(*data)
	if err != nil {
		return err
	}
	e, err := runPipeline(ctx, ds, *workers, *shards, *precision)
	if err != nil {
		return err
	}
	defer e.Close()
	locs := e.InferredLocations()
	var errs []float64
	for id, truth := range ds.Truth {
		if pred, ok := locs[id]; ok {
			errs = append(errs, geo.Dist(pred, truth))
		}
	}
	m := eval.Compute(errs)
	fmt.Printf("DLInfMA on %s (all addresses, including training regions):\n", ds.Name)
	fmt.Printf("  MAE=%.1f m  P95=%.1f m  beta50=%.1f%%  n=%d\n", m.MAE, m.P95, m.Beta50, m.N)
	return nil
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "data.json.gz", "dataset path (\"\" to start empty and POST /v1/ingest)")
	listen := fs.String("listen", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores; >1 also parallelizes training)")
	snap := fs.String("snapshot", "", "snapshot path: restored on start if present, saved on shutdown")
	walDir := fs.String("wal-dir", "",
		"write-ahead-log directory: existing records are replayed on start, every accepted ingest is logged while serving (\"\" disables durability)")
	walFsync := fs.String("wal-fsync", "interval",
		"WAL fsync policy: always (fsync every append), interval (flush every append, fsync periodically), never")
	maxPending := fs.Int("max-pending-trips", 0,
		"reject ingest with 429 once this many trips await re-inference (0 = unbounded)")
	autoPending := fs.Int("auto-reinfer-pending", 0,
		"start a re-inference automatically once this many trips await one (0 disables the size trigger)")
	autoAge := fs.Duration("auto-reinfer-age", 0,
		"start a re-inference automatically once the oldest pending trip has waited this long (0 disables the age trigger)")
	autoInterval := fs.Duration("auto-reinfer-interval", engine.DefaultAutoReinferInterval,
		"how often the auto-reinfer monitor polls the engine status")
	logLevel := fs.String("log-level", "info", "log level: debug|info|warn|error (debug adds per-request access lines)")
	logFormat := fs.String("log-format", "logfmt", "log line encoding: logfmt|json")
	debugListen := fs.String("debug-listen", "",
		"optional second listen address for net/http/pprof and /metrics (keep it private)")
	traceSample := fs.Float64("trace-sample", 0.1,
		"head-sampling probability of request traces in [0,1] (slow or errored requests are kept regardless)")
	traceSlow := fs.Duration("trace-slow", time.Second,
		"requests at least this slow are traced even when head sampling passed (0 disables the rule)")
	traceBuffer := fs.Int("trace-buffer", 256,
		"completed traces kept in the in-memory ring buffer behind /v1/debug/traces (0 disables tracing)")
	peers := fs.String("peers", "",
		"comma-separated peer base URLs (http://host:port); turns this process into a cluster frontend that routes every shard to its ring owner in the peer set instead of running engines in-process")
	replication := fs.Int("replication", 1,
		"with -peers: distinct peers serving each shard (owner + replicas); writes go to all, reads fail over in ring order")
	peerTimeout := fs.Duration("peer-timeout", cluster.DefaultTimeout, "with -peers: per-call timeout of one peer RPC")
	peerRetries := fs.Int("peer-retries", 1, "with -peers: extra retry rounds over a shard's replica list after the first pass")
	swapHistory := fs.Int("swap-history", 0,
		"hot-swap churn reports kept per engine shard behind GET /v1/debug/swaps (0 = default 32)")
	lowConfidence := fs.Float64("low-confidence", 0,
		"top-1 probability below which a re-inferred address counts as low-confidence in churn reports and metrics (0 = default 0.5)")
	shards, precision := shardFlags(fs)
	fs.Parse(args)

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	log := obs.NewLogger(os.Stderr, lvl, format)

	var tracer *trace.Tracer
	if *traceBuffer > 0 {
		tracer = trace.NewTracer(trace.Options{
			SampleProb:    *traceSample,
			SlowThreshold: *traceSlow,
			Store:         trace.NewStore(*traceBuffer),
		})
	}

	var e engine.Runtime
	if *peers != "" {
		// Frontend mode: shards live in the peer processes; this process
		// routes, replicates, and aggregates. Durability (snapshots, WAL)
		// belongs to each peer, so the local persistence flags must be off.
		if *snap != "" || *walDir != "" {
			return errors.New("-snapshot and -wal-dir are per-shard-process concerns; unset them when -peers is given")
		}
		peerList := splitPeers(*peers)
		if len(peerList) == 0 {
			return errors.New("-peers is set but names no peers")
		}
		r, rerr := shard.NewRouter(*shards, *precision)
		if rerr != nil {
			return rerr
		}
		cfg := engineConfig(*workers)
		cfg.Logger = log.With("component", "engine")
		cfg.Tracer = tracer
		cfg.SwapHistory = *swapHistory
		cfg.LowConfidence = *lowConfidence
		backends, ring, berr := cluster.NewFrontendBackends(r, cluster.FrontendOptions{
			Peers:       peerList,
			Replication: *replication,
			Timeout:     *peerTimeout,
			Retries:     *peerRetries,
			Logger:      log.With("component", "cluster"),
		})
		if berr != nil {
			return berr
		}
		if e, err = engine.NewShardedBackends(cfg, r, backends); err != nil {
			return err
		}
		// The frontend's own registry has no model quality (its shards live in
		// the peers), so re-export each peer's quality families under
		// dlinfma_peer_* with a peer label.
		qp, qerr := cluster.StartQualityPoller(cluster.QualityOptions{
			Peers:   peerList,
			Timeout: *peerTimeout,
			Logger:  log.With("component", "cluster_quality"),
		})
		if qerr != nil {
			return qerr
		}
		defer qp.Stop()
		fmt.Printf("cluster frontend: %d shards over %d peers (replication %d)\n",
			r.N(), ring.NumPeers(), *replication)
	} else {
		if e, err = newEngine(*workers, *shards, *precision, *maxPending, *swapHistory, *lowConfidence, log.With("component", "engine"), tracer); err != nil {
			return err
		}
	}
	defer e.Close()

	restored := false
	if *snap != "" {
		if _, err := os.Stat(*snap); err == nil {
			if err := e.LoadSnapshotFile(*snap); err != nil {
				return fmt.Errorf("restore snapshot %s: %w", *snap, err)
			}
			restored = true
			fmt.Printf("restored serving state from %s\n", *snap)
		}
	}
	// The WAL replays on top of the restored snapshot, rebuilding the ingest
	// state (pending trips, open streams) the snapshot omits; from then on
	// every accepted ingest is logged before it is acknowledged.
	replayed := 0
	if *walDir != "" {
		policy, perr := wal.ParsePolicy(*walFsync)
		if perr != nil {
			return perr
		}
		w, werr := wal.Open(*walDir, wal.Options{Policy: policy})
		if werr != nil {
			return fmt.Errorf("open wal %s: %w", *walDir, werr)
		}
		defer w.Close()
		if replayed, err = e.ReplayWAL(ctx, w); err != nil {
			return fmt.Errorf("replay wal %s: %w", *walDir, err)
		}
		e.AttachWAL(w)
		if replayed > 0 {
			fmt.Printf("replayed %d WAL records from %s\n", replayed, *walDir)
		}
	}
	if *data != "" && replayed > 0 {
		// The WAL already rebuilt the ingest state; re-ingesting the dataset
		// file would duplicate every trip it covers.
		fmt.Printf("skipping -data %s: WAL replay is the ingest authority\n", *data)
	} else if *data != "" {
		ds, err := model.LoadFile(*data)
		if err != nil {
			if !restored {
				return err
			}
			fmt.Fprintf(os.Stderr, "dlinfma: serving from snapshot only; load %s: %v\n", *data, err)
		} else {
			if err := e.IngestDataset(ctx, ds); err != nil {
				return err
			}
			// With a restored snapshot queries are already answerable; leave
			// retraining to POST /reinfer so startup stays fast. Cold starts
			// train synchronously before accepting traffic.
			if !restored {
				if err := e.Reinfer(ctx); err != nil {
					return err
				}
			}
		}
	}

	st := e.Status()
	if n := len(st.Shards); n > 0 {
		p := *precision
		if p == 0 {
			p = shard.DefaultPrecision
		}
		fmt.Printf("sharded engine: %d shards at geohash precision %d\n", n, p)
	}
	fmt.Printf("serving %d inferred locations on %s (GET /v1/locations/{key}, POST /v1/locations:batch, POST /v1/ingest, POST /v1/trajectories:stream, POST /v1/reinfer, GET /v1/snapshot, GET /v1/metrics)\n",
		st.Inferred, *listen)
	if *debugListen != "" {
		sw, _ := e.(deploy.SwapReporter)
		dsrv := deploy.NewServer(*debugListen, deploy.DebugHandler(tracer, sw))
		go func() {
			if derr := deploy.Serve(ctx, dsrv); derr != nil {
				log.Error("debug listener failed", "addr", *debugListen, "err", derr)
			}
		}()
		log.Info("debug listener up", "addr", *debugListen)
	}
	auto := engine.StartAutoReinfer(e, engine.AutoReinferConfig{
		MaxPending: *autoPending,
		MaxAge:     *autoAge,
		Interval:   *autoInterval,
	}, log.With("component", "auto_reinfer"))
	srv := deploy.NewServer(*listen, deploy.NewService(e, deploy.Options{
		Logger: log.With("component", "http"),
		Tracer: tracer,
	}))
	err = deploy.Serve(ctx, srv)
	// Stop the staleness monitor first so no new job starts mid-shutdown,
	// then join any in-flight background re-inference before persisting, so
	// the snapshot observes a settled engine (Close is idempotent; the
	// deferred call becomes a no-op).
	auto.Stop()
	e.Close()
	if *snap != "" && e.Status().Ready {
		if serr := e.SaveSnapshotFile(*snap); serr != nil {
			if err == nil {
				err = serr
			}
		} else {
			fmt.Printf("saved serving state to %s\n", *snap)
		}
	}
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
