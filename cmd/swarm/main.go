// Command swarm is the open-loop load generator for a live dlinfma server
// or cluster frontend. It offers a mixed workload — single and batched
// address lookups, NDJSON trajectory-streaming bursts, optional re-inference
// storms — on a timer-driven arrival schedule that never waits for
// responses, so slow servers get measured instead of accidentally throttling
// the load (coordinated omission).
//
// Two modes:
//
//	swarm -target http://host:port -rate 200 -duration 30s
//	    holds a fixed arrival rate and reports the stage summary.
//
//	swarm -target http://host:port -ramp-start 50 -ramp-growth 1.5 -stage 10s
//	    ramps the rate until the SLO (p99, error rate) breaks and reports
//	    the capacity verdict as a loadgen.CapacityRow.
//
// Machine-readable JSON goes to stdout; progress and the optional -tui
// dashboard go to stderr, so output pipes cleanly into benchjson -capacity.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dlinfma/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "", "base URL of the server under test (required)")
		config   = flag.String("config", "", "configuration label for the capacity row, e.g. shards=2")
		shards   = flag.Int("shards", 0, "in-process shard count of the target (report metadata)")
		peers    = flag.Int("peers", 0, "remote cluster peer count of the target (report metadata)")
		mix      = flag.String("mix", "lookup=80,batch=10,stream=10", "endpoint weights, name=weight comma-separated (lookup, batch, stream, reinfer), or a preset: default, read-heavy, ingest-heavy")
		seed     = flag.Int64("seed", 1, "seed for address sampling, bodies, and Poisson arrivals")
		poisson  = flag.Bool("poisson", false, "Poisson arrivals instead of uniform pacing")
		inFlight = flag.Int("max-in-flight", 0, "bound on concurrent requests (0: default)")
		batchKey = flag.Int("batch-keys", 64, "addresses per batch request")
		wait     = flag.Duration("wait", 30*time.Second, "how long to wait for the target's /v1/healthz to answer ready")
		interval = flag.Duration("interval", time.Second, "timeseries sampling interval")
		tui      = flag.Bool("tui", false, "live terminal dashboard on stderr")
		out      = flag.String("out", "", "also write the JSON verdict to this file")

		rate     = flag.Float64("rate", 0, "fixed arrival rate (qps); selects fixed mode")
		duration = flag.Duration("duration", 10*time.Second, "fixed-mode run duration")

		rampStart  = flag.Float64("ramp-start", 0, "first ramp stage rate (qps); selects ramp mode")
		rampStep   = flag.Float64("ramp-step", 0, "additive rate increase per stage")
		rampGrowth = flag.Float64("ramp-growth", 0, "multiplicative rate increase per stage (overrides -ramp-step)")
		rampMax    = flag.Float64("ramp-max", 0, "stop ramping past this rate even if the SLO holds (0: unbounded)")
		stage      = flag.Duration("stage", 10*time.Second, "ramp stage duration")
		sloP99     = flag.Duration("slo-p99", 250*time.Millisecond, "p99 latency SLO")
		sloErrors  = flag.Float64("slo-errors", 0.01, "error-rate SLO (fraction)")
	)
	flag.Parse()
	if *target == "" {
		fatal("swarm: -target is required")
	}
	if (*rate > 0) == (*rampStart > 0) {
		fatal("swarm: pick exactly one of -rate (fixed) or -ramp-start (ramp)")
	}
	m, err := parseMix(*mix)
	if err != nil {
		fatal("swarm: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := waitReady(ctx, *target, m, *seed, *batchKey, *wait)
	if err != nil {
		fatal("swarm: %v", err)
	}

	// The sampler sees the currently offered rate through an atomic cell the
	// stage loop updates; float bits through a uint64.
	var targetRate atomic.Uint64
	setRate := func(r float64) { targetRate.Store(math.Float64bits(r)) }
	getRate := func() float64 { return math.Float64frombits(targetRate.Load()) }

	ts := loadgen.NewTimeseries()
	var onSample func(loadgen.SeriesPoint)
	if *tui {
		dash := loadgen.NewDashboard(os.Stderr, w.Stats(), ts)
		onSample = dash.Render
	}
	sampleCtx, stopSampler := context.WithCancel(ctx)
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		loadgen.Sample(sampleCtx, w.Stats(), ts, *interval, time.Now(), getRate, onSample)
	}()

	opts := loadgen.StageOptions{Poisson: *poisson, Seed: *seed, MaxInFlight: *inFlight}
	var verdict any
	if *rate > 0 {
		setRate(*rate)
		res := loadgen.RunStage(ctx, w, *rate, *duration, opts)
		verdict = fixedReport{
			Config: *config, Stage: res,
			Endpoints: endpointSummaries(w.Stats()),
			Series:    ts.Points(),
		}
	} else {
		stageN := 0
		outcome, err := loadgen.Ramp(ctx, loadgen.RampConfig{
			StartQPS:      *rampStart,
			StepQPS:       *rampStep,
			Growth:        *rampGrowth,
			MaxQPS:        *rampMax,
			StageDuration: *stage,
			SLO:           loadgen.SLO{P99: *sloP99, MaxErrorRate: *sloErrors},
		}, func(ctx context.Context, r float64, d time.Duration) (loadgen.StageResult, error) {
			stageN++
			setRate(r)
			fmt.Fprintf(os.Stderr, "swarm: stage %d at %.0f qps for %s\n", stageN, r, d)
			res := loadgen.RunStage(ctx, w, r, d, opts)
			fmt.Fprintf(os.Stderr, "swarm:   achieved %.0f qps, p99 %s, errors %d, backpressure %d, dropped %d\n",
				res.AchievedQPS, res.P99, res.Errors, res.Backpressure, res.Dropped)
			return res, nil
		})
		if err != nil {
			fatal("swarm: ramp: %v", err)
		}
		label := *config
		if label == "" {
			label = fmt.Sprintf("shards=%d", *shards)
		}
		verdict = outcome.Row(label, *shards, *peers)
	}
	stopSampler()
	<-samplerDone

	data, err := json.MarshalIndent(verdict, "", "  ")
	if err != nil {
		fatal("swarm: %v", err)
	}
	data = append(data, '\n')
	if _, err := os.Stdout.Write(data); err != nil {
		fatal("swarm: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal("swarm: %v", err)
		}
	}
}

// fixedReport is the stdout JSON of a fixed-rate run.
type fixedReport struct {
	Config    string                `json:"config,omitempty"`
	Stage     loadgen.StageResult   `json:"stage"`
	Endpoints []endpointSummary     `json:"endpoints"`
	Series    []loadgen.SeriesPoint `json:"series,omitempty"`
}

type endpointSummary struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// Backpressure counts 429 answers — the server shedding load by design,
	// reported separately so an ingest-heavy run's flow control is visible
	// without polluting the error rate.
	Backpressure int64   `json:"backpressure,omitempty"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	LastErr      string  `json:"last_error,omitempty"`
}

func endpointSummaries(stats *loadgen.Stats) []endpointSummary {
	snap := stats.Snapshot()
	var out []endpointSummary
	for _, ep := range loadgen.Endpoints() {
		e := snap.Endpoints[ep]
		if e.OK+e.Errors+e.Backpressure == 0 {
			continue
		}
		out = append(out, endpointSummary{
			Endpoint:     ep.String(),
			Requests:     e.OK + e.Errors + e.Backpressure,
			Errors:       e.Errors,
			Backpressure: e.Backpressure,
			P50MS:        float64(e.Hist.Quantile(0.50)) / 1e6,
			P99MS:        float64(e.Hist.Quantile(0.99)) / 1e6,
			LastErr:      e.LastErr,
		})
	}
	return out
}

// waitReady polls the target's typed health status until it reports ready
// (or the deadline passes), then builds the workload. Building after
// readiness matters: the workload sizes its address universe from the
// deployed engine's status.
func waitReady(ctx context.Context, target string, m loadgen.Mix, seed int64, batchKeys int, wait time.Duration) (*loadgen.Workload, error) {
	deadline := time.Now().Add(wait)
	for {
		w, err := loadgen.NewWorkload(loadgen.WorkloadConfig{
			Target:    target,
			Mix:       m,
			Seed:      seed,
			BatchKeys: batchKeys,
		})
		if err == nil {
			st, herr := w.Health(ctx)
			if herr == nil && (st.Ready || wait == 0) {
				return w, nil
			}
			if wait == 0 {
				return w, nil
			}
			err = fmt.Errorf("target not ready (ready=%v)", st.Ready)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wait for %s: %w", target, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// parseMix reads "lookup=80,batch=10,stream=10,reinfer=0" or a named preset
// (default, read-heavy, ingest-heavy).
func parseMix(s string) (loadgen.Mix, error) {
	if m, ok := loadgen.MixPreset(strings.TrimSpace(s)); ok {
		return m, nil
	}
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return m, fmt.Errorf("mix weight %q must be a non-negative integer", val)
		}
		switch name {
		case "lookup":
			m.Lookup = n
		case "batch":
			m.Batch = n
		case "stream":
			m.Stream = n
		case "reinfer":
			m.Reinfer = n
		default:
			return m, fmt.Errorf("unknown mix endpoint %q (lookup, batch, stream, reinfer)", name)
		}
	}
	if m.Total() == 0 {
		return m, fmt.Errorf("mix %q has no positive weights", s)
	}
	return m, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
