// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic DowBJ/SubBJ datasets (see DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -exp all                 # everything (several minutes)
//	experiments -exp table2 -variants    # Table II including variant rows
//	experiments -exp fig10a -profile dowbj
//	experiments -quick                   # tiny profiles for a fast smoke run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dlinfma/internal/core"
	"dlinfma/internal/eval"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all|table1|fig9|table2|fig10a|fig10b|table3|fig13|extension|staysweep|efficiency")
		profile  = flag.String("profile", "both", "dataset profile: dowbj|subbj|both")
		variants = flag.Bool("variants", false, "include Table II variant and ablation rows (slow)")
		quick    = flag.Bool("quick", false, "use the tiny test profile instead of the full ones")
		workers  = flag.Int("workers", 0, "pipeline workers (0 = all cores; >1 also parallelizes LocMatcher training)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancels the context: in-flight training and pool
	// builds abort at their next cooperative check instead of running on.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	profiles := selectProfiles(*profile, *quick)
	run := func(name string) bool { return *exp == "all" || *exp == name }

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	var prepared []*eval.Prepared
	for _, p := range profiles {
		pr, err := eval.Prepare(ctx, p, cfg)
		if err != nil {
			fatal(err)
		}
		prepared = append(prepared, pr)
	}

	if run("table1") {
		var rows []eval.Table1Row
		for _, pr := range prepared {
			rows = append(rows, eval.Table1(pr))
		}
		eval.RenderTable1(os.Stdout, rows)
	}
	if run("fig9") {
		for _, pr := range prepared {
			eval.RenderFig9(os.Stdout, pr.Profile.Name, eval.Fig9(pr))
		}
	}
	if run("table2") {
		for _, pr := range prepared {
			rows := eval.Table2(ctx, pr, *variants)
			eval.RenderMethodTable(os.Stdout, fmt.Sprintf("Table II (%s)", pr.Profile.Name), rows)
		}
	}
	if run("fig10a") {
		for _, pr := range prepared {
			pts := eval.Fig10a(ctx, pr, []float64{20, 30, 40, 50, 60})
			eval.RenderFig10a(os.Stdout, pr.Profile.Name, pts)
		}
	}
	if run("fig10b") {
		// The paper reports Figure 10(b) on DowBJ only.
		eval.RenderFig10b(os.Stdout, prepared[0].Profile.Name, eval.Fig10b(ctx, prepared[0]))
	}
	if run("table3") {
		for _, pr := range prepared {
			res, err := eval.Table3(ctx, pr.Profile, []float64{0.2, 0.6, 1.0}, cfg)
			if err != nil {
				fatal(err)
			}
			eval.RenderTable3(os.Stdout, pr.Profile.Name, res)
		}
	}
	if run("extension") {
		for _, pr := range prepared {
			r, err := eval.BuildingFallback(ctx, pr)
			if err != nil {
				fatal(err)
			}
			eval.RenderBuildingFallback(os.Stdout, pr.Profile.Name, r)
		}
	}
	if run("staysweep") {
		for _, pr := range prepared {
			pts := eval.StaySweep(ctx, pr, []traj.StayPointConfig{
				{DMax: 10, TMin: 30},
				{DMax: 20, TMin: 30},
				{DMax: 40, TMin: 30},
				{DMax: 20, TMin: 60},
				{DMax: 20, TMin: 120},
			})
			eval.RenderStaySweep(os.Stdout, pr.Profile.Name, pts)
		}
	}
	if run("fig13") {
		sizes := []int{1000, 2000, 4000, 8000}
		if *quick {
			sizes = []int{200, 400}
		}
		eval.RenderFig13(os.Stdout, prepared[0].Profile.Name, eval.Fig13(ctx, prepared[0], sizes))
	}
	if run("efficiency") {
		counts := []int{1, 2, 4, 8}
		epochs := 5
		if *quick {
			counts = []int{1, 2, 4}
			epochs = 3
		}
		for _, pr := range prepared {
			eval.RenderEfficiency(os.Stdout, pr.Profile.Name, eval.Efficiency(ctx, pr, counts, epochs))
		}
	}
}

func selectProfiles(which string, quick bool) []synth.Profile {
	if quick {
		return []synth.Profile{synth.Tiny()}
	}
	switch strings.ToLower(which) {
	case "dowbj":
		return []synth.Profile{synth.DowBJ()}
	case "subbj":
		return []synth.Profile{synth.SubBJ()}
	default:
		return []synth.Profile{synth.DowBJ(), synth.SubBJ()}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
