// Package dlinfma is a from-scratch Go reproduction of "Discovering Actual
// Delivery Locations from Mis-Annotated Couriers' Trajectories" (Ruan et
// al., ICDE 2022): the DLInfMA pipeline, the LocMatcher attention model, all
// baselines of the paper's evaluation, a synthetic delivery-world generator
// standing in for the proprietary JD Logistics datasets, and the deployed
// system of Section VI.
//
// See README.md for an overview, DESIGN.md for the system inventory and the
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section; the cmd/experiments binary prints them in one
// run.
package dlinfma
