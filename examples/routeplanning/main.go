// Route planning (Application 1, Section VI-B): plan a courier's delivery
// tour with the TSP heuristic over three location sources — raw geocodes,
// DLInfMA-inferred locations, and the ground truth — and compare how far the
// courier would actually walk. Routes planned on wrong coordinates look
// short on paper but are executed against reality.
package main

import (
	"context"
	"fmt"
	"log"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

func main() {
	ds, w, err := synth.Generate(synth.Tiny())
	if err != nil {
		log.Fatal(err)
	}

	// Train DLInfMA and infer a location for every address.
	pipe, err := core.NewPipeline(context.Background(), ds, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples := pipe.BuildSamples(ids, core.DefaultSampleOptions())
	core.LabelSamples(samples, ds.Truth)
	matcher := core.NewLocMatcher(eval.ExperimentLocMatcherConfig())
	if _, err := matcher.Fit(context.Background(), samples, nil); err != nil {
		log.Fatal(err)
	}
	inferred := make(map[model.AddressID]geo.Point)
	for _, s := range samples {
		inferred[s.Addr] = s.PredictedLocation(matcher.Predict(s))
	}

	truthOf := func(a model.AddressID) geo.Point { return ds.Truth[a] }
	geocodeOf := func(a model.AddressID) geo.Point {
		info, _ := ds.AddressByID(a)
		return info.Geocode
	}
	inferredOf := func(a model.AddressID) geo.Point {
		if p, ok := inferred[a]; ok {
			return p
		}
		return geocodeOf(a)
	}

	// A tour planned on source X is *executed* on the true locations: the
	// courier follows the planned visit order but walks to where parcels
	// actually go. Average over every trip in the dataset.
	walkedTotal := map[string]float64{}
	sources := []struct {
		name  string
		locOf func(model.AddressID) geo.Point
	}{
		{"geocodes", geocodeOf},
		{"DLInfMA inferred", inferredOf},
		{"ground truth (oracle)", truthOf},
	}
	nTrips := 0
	for _, trip := range ds.Trips {
		var addrs []model.AddressID
		seen := map[model.AddressID]bool{}
		for _, wb := range trip.Waybills {
			if !seen[wb.Addr] {
				seen[wb.Addr] = true
				addrs = append(addrs, wb.Addr)
			}
		}
		if len(addrs) < 3 {
			continue
		}
		nTrips++
		start := trip.Traj[0].P
		actual := make([]geo.Point, len(addrs))
		for i, a := range addrs {
			actual[i] = truthOf(a)
		}
		for _, src := range sources {
			planned := make([]geo.Point, len(addrs))
			for i, a := range addrs {
				planned[i] = src.locOf(a)
			}
			order := deploy.PlanRoute(start, planned)
			walkedTotal[src.name] += deploy.RouteLength(start, actual, order)
		}
	}
	fmt.Printf("mean executed tour length over %d trips:\n", nTrips)
	for _, src := range sources {
		fmt.Printf("  %-22s %6.0f m\n", src.name, walkedTotal[src.name]/float64(nTrips))
	}
	_ = w
}
