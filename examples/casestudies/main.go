// Case studies (Section V-E, Figure 12): show the three geocoding failure
// modes on the synthetic data and how DLInfMA corrects each:
//
//	(a) wrong address parsing — the geocode lands in a similarly named
//	    sibling community, hundreds of meters away;
//	(b) coarse POI database — several buildings share one geocode at the
//	    residential-area centroid;
//	(c) customer preference — two addresses in the same building are
//	    delivered to different locations (doorstep vs a parcel point),
//	    which a single geocode can never capture.
package main

import (
	"context"
	"fmt"
	"log"

	"dlinfma/internal/core"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/geocode"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

func main() {
	ds, w, err := synth.Generate(synth.Tiny())
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(context.Background(), ds, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples := pipe.BuildSamples(ids, core.DefaultSampleOptions())
	core.LabelSamples(samples, ds.Truth)
	matcher := core.NewLocMatcher(eval.ExperimentLocMatcherConfig())
	if _, err := matcher.Fit(context.Background(), samples, nil); err != nil {
		log.Fatal(err)
	}
	bySample := make(map[model.AddressID]*core.Sample)
	for _, s := range samples {
		bySample[s.Addr] = s
	}
	predict := func(addr model.AddressID) (geo.Point, bool) {
		s, ok := bySample[addr]
		if !ok {
			return geo.Point{}, false
		}
		return s.PredictedLocation(matcher.Predict(s)), true
	}

	// Case (a): wrong parse.
	fmt.Println("Case (a): wrong address parsing (similar community names)")
	shown := 0
	for _, a := range ds.Addresses {
		if a.GeocodeMode != geocode.ErrWrongParse || shown >= 2 {
			continue
		}
		truth := ds.Truth[a.ID]
		pred, ok := predict(a.ID)
		if !ok {
			continue
		}
		shown++
		fmt.Printf("  addr %4d: geocode error %4.0f m -> DLInfMA error %4.0f m\n",
			a.ID, geo.Dist(a.Geocode, truth), geo.Dist(pred, truth))
	}

	// Case (b): coarse POI — several buildings, one geocode.
	fmt.Println("\nCase (b): coarse POI database (buildings sharing one geocode)")
	byGeocode := make(map[geo.Point][]model.AddressInfo)
	for _, a := range ds.Addresses {
		if a.GeocodeMode == geocode.ErrCoarsePOI {
			byGeocode[a.Geocode] = append(byGeocode[a.Geocode], a)
		}
	}
	for gc, as := range byGeocode {
		blds := map[model.BuildingID]bool{}
		for _, a := range as {
			blds[a.Building] = true
		}
		if len(blds) < 2 {
			continue
		}
		fmt.Printf("  geocode (%.0f,%.0f) shared by %d addresses in %d buildings\n",
			gc.X, gc.Y, len(as), len(blds))
		for _, a := range as[:min(3, len(as))] {
			truth := ds.Truth[a.ID]
			if pred, ok := predict(a.ID); ok {
				fmt.Printf("    addr %4d (bldg %3d): geocode error %4.0f m -> DLInfMA %4.0f m\n",
					a.ID, a.Building, geo.Dist(gc, truth), geo.Dist(pred, truth))
			}
		}
		break
	}

	// Case (c): same building, different preferences.
	fmt.Println("\nCase (c): customer preferences within one building")
	for b, addrs := range addrsByBuilding(ds) {
		kinds := map[synth.DeliveryKind]bool{}
		for _, id := range addrs {
			kinds[w.TruthKind[id]] = true
		}
		if len(kinds) < 2 || len(addrs) < 2 {
			continue
		}
		fmt.Printf("  building %d:\n", b)
		for _, id := range addrs[:min(3, len(addrs))] {
			truth := ds.Truth[id]
			info, _ := ds.AddressByID(id)
			pred, ok := predict(id)
			if !ok {
				continue
			}
			fmt.Printf("    addr %4d prefers %-9s: geocode error %4.0f m -> DLInfMA %4.0f m\n",
				id, w.TruthKind[id], geo.Dist(info.Geocode, truth), geo.Dist(pred, truth))
		}
		break
	}
}

func addrsByBuilding(ds *model.Dataset) map[model.BuildingID][]model.AddressID {
	out := make(map[model.BuildingID][]model.AddressID)
	for _, a := range ds.Addresses {
		out[a.Building] = append(out[a.Building], a.ID)
	}
	return out
}
