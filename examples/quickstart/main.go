// Quickstart: generate a small synthetic delivery dataset, run the full
// DLInfMA pipeline (candidate generation -> features -> LocMatcher), and
// print inferred delivery locations next to the ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

func main() {
	// 1. A synthetic city with couriers, trips, GPS trajectories and
	//    batch-confirmation delays (stands in for the JD Logistics data).
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d trips, %d waybills, %d addresses\n",
		ds.Name, len(ds.Trips), ds.Deliveries(), len(ds.Addresses))

	// 2. Location candidate generation: stay points -> hierarchical
	//    clustering (D = 40 m) -> temporal-upper-bound retrieval.
	pipe, err := core.NewPipeline(context.Background(), ds, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate pool: %d locations\n", len(pipe.Pool.Locations))

	// 3. Featurize and label every address; train LocMatcher.
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples := pipe.BuildSamples(ids, core.DefaultSampleOptions())
	core.LabelSamples(samples, ds.Truth)

	cfg := core.DefaultLocMatcherConfig()
	cfg.LR = 2e-3 // small dataset: converge within few epochs
	cfg.MaxEpochs = 30
	matcher := core.NewLocMatcher(cfg)
	nVal := len(samples) / 5
	res, err := matcher.Fit(context.Background(), samples[nVal:], samples[:nVal])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained LocMatcher: %d epochs, best val loss %.3f, %.1fs\n",
		res.Epochs, res.BestValLoss, res.TrainTime.Seconds())

	// 4. Infer delivery locations for a few addresses.
	fmt.Println("\naddr  inferred            truth               error")
	shown := 0
	for _, s := range samples {
		if !s.HasTruth || shown >= 8 {
			continue
		}
		pred := s.PredictedLocation(matcher.Predict(s))
		fmt.Printf("%4d  (%7.1f,%7.1f)  (%7.1f,%7.1f)  %5.1f m\n",
			s.Addr, pred.X, pred.Y, s.Truth.X, s.Truth.Y, geo.Dist(pred, s.Truth))
		shown++
	}
}
