// Production ingestion (Figure 14's data path): raw all-day GPS streams are
// stored in the spatio-temporal engine, segmented into delivery trips,
// compressed for archival, and fed window by window into the incremental
// candidate-pool builder — the bi-weekly maintenance loop of Section V-F.
package main

import (
	"context"
	"fmt"
	"log"

	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/ststore"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func main() {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Ingest every trip into the spatio-temporal store.
	store := ststore.New(100, 3600)
	ids := store.IngestDataset(ds)
	fmt.Printf("ingested %d trajectories, %d GPS fixes\n", store.Len(), store.Points())

	// 2. Spatio-temporal query: who passed through this block this morning?
	block := geo.NewRect(geo.Point{X: 200, Y: 100}, geo.Point{X: 500, Y: 400})
	day0 := ds.Trips[0].StartT
	couriers := store.VisitingCouriers(block, day0, day0+6*3600)
	fmt.Printf("couriers in the 300x300 m block during the first morning: %v\n", couriers)

	// 3. Archive compression: Douglas-Peucker at 5 m tolerance.
	var before, after int
	for _, id := range ids[:10] {
		tr, _ := store.Trajectory(id)
		before += len(tr)
		after += len(traj.Simplify(tr, 5))
	}
	fmt.Printf("archival compression on 10 trips: %d -> %d points (%.0f%%)\n",
		before, after, 100*float64(after)/float64(before))

	// 4. Incremental pool maintenance: feed trips to the builder in weekly
	//    windows, exactly as the deployed bi-weekly job would.
	builder := core.NewIncrementalPoolBuilder(core.DefaultConfig())
	const window = 7 * 86400
	var batch []model.Trip
	windowEnd := ds.Trips[0].StartT + window
	flushed := 0
	for _, tr := range ds.Trips {
		if tr.StartT >= windowEnd {
			if err := builder.AddWindow(context.Background(), batch); err != nil {
				log.Fatal(err)
			}
			flushed++
			fmt.Printf("  window %d: pool now has %d locations\n",
				flushed, len(builder.Finalize().Locations))
			batch = nil
			for tr.StartT >= windowEnd {
				windowEnd += window
			}
		}
		batch = append(batch, tr)
	}
	if err := builder.AddWindow(context.Background(), batch); err != nil {
		log.Fatal(err)
	}
	pool := builder.Finalize()
	fmt.Printf("final pool: %d location candidates\n", len(pool.Locations))

	// 5. The pipeline consumes the incrementally built pool directly.
	pipe := core.NewPipelineWithPool(ds, core.DefaultConfig(), pool)
	total, withCands := 0, 0
	for _, a := range ds.Addresses {
		total++
		if len(pipe.RetrieveCandidates(a.ID)) > 0 {
			withCands++
		}
	}
	fmt.Printf("candidate retrieval covers %d/%d addresses\n", withCands, total)
}
