// Customer availability inference (Application 2, Section VI-C): recover the
// actual delivery hour of each waybill from the stay point nearest the
// inferred delivery location, and compare the learned availability windows
// against windows learned from the (possibly batch-delayed) recorded times.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func main() {
	// Generate with heavy batch delays and long trips (many orders per
	// courier-day) so recorded hours are skewed across hour boundaries.
	p := synth.Tiny()
	p.DelayProb = 0.9
	p.MinOrders, p.MaxOrders = 35, 45
	p.Days = 20
	ds, _, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}

	// Infer delivery locations with DLInfMA.
	pipe, err := core.NewPipeline(context.Background(), ds, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		ids[i] = a.ID
	}
	samples := pipe.BuildSamples(ids, core.DefaultSampleOptions())
	core.LabelSamples(samples, ds.Truth)
	matcher := core.NewLocMatcher(eval.ExperimentLocMatcherConfig())
	if _, err := matcher.Fit(context.Background(), samples, nil); err != nil {
		log.Fatal(err)
	}
	inferred := make(map[model.AddressID]geo.Point)
	for _, s := range samples {
		inferred[s.Addr] = s.PredictedLocation(matcher.Predict(s))
	}

	// Availability from recorded times vs from recovered actual times.
	recorded := deploy.NewAvailabilityModel()
	recorded.ObserveDataset(ds, nil, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig(), 50)
	actual := deploy.NewAvailabilityModel()
	actual.ObserveDataset(ds, inferred, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig(), 50)

	// Pick the busiest addresses and show their weekday windows.
	type busy struct {
		addr model.AddressID
		n    float64
	}
	var top []busy
	for _, a := range ds.Addresses {
		if n := actual.Deliveries(a.ID); n >= 6 {
			top = append(top, busy{a.ID, n})
		}
	}
	fmt.Println("weekday availability windows (threshold: p >= 0.08)")
	fmt.Println("addr  deliveries  from recorded times     from recovered actual times")
	shown := 0
	for _, b := range top {
		if shown >= 6 {
			break
		}
		shown++
		fmt.Printf("%4d  %10.0f  %-22s  %s\n", b.addr, b.n,
			windows(recorded, b.addr), windows(actual, b.addr))
	}
	fmt.Println("\nBatch confirmations pile recorded times onto late batch stops, smearing")
	fmt.Println("windows toward the end of the trip; recovered actual times restore the")
	fmt.Println("true morning delivery pattern.")
}

func windows(m *deploy.AvailabilityModel, addr model.AddressID) string {
	var parts []string
	for _, w := range m.Windows(addr, 0.08) {
		if w.Weekend {
			continue
		}
		parts = append(parts, fmt.Sprintf("%02d-%02dh", w.StartHour, w.EndHour))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, ",")
}
