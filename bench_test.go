package dlinfma

// One benchmark per table and figure of the paper's evaluation section,
// plus the Section V-F cost measurements and the ablation benches called
// out in DESIGN.md. Benchmarks print the regenerated rows/series on their
// first iteration, so `go test -bench=. -benchmem` both measures cost and
// reproduces the artefacts. Heavy benches run on the Tiny profile; substrate
// micro-benches use the full DowBJ profile.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"dlinfma/internal/baselines"
	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/eval"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

var benchState struct {
	onceTiny  sync.Once
	tiny      *eval.Prepared
	onceDow   sync.Once
	dow       *model.Dataset
	dowWorld  *synth.World
	dowPipe   *core.Pipeline
	onceTrain sync.Once
	samples   []*core.Sample
}

func tinyPrepared(b *testing.B) *eval.Prepared {
	b.Helper()
	benchState.onceTiny.Do(func() {
		p, err := eval.Prepare(context.Background(), synth.Tiny(), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchState.tiny = p
	})
	return benchState.tiny
}

func dowDataset(b *testing.B) (*model.Dataset, *synth.World) {
	b.Helper()
	benchState.onceDow.Do(func() {
		ds, w, err := synth.Generate(synth.DowBJ())
		if err != nil {
			b.Fatal(err)
		}
		benchState.dow, benchState.dowWorld = ds, w
	})
	return benchState.dow, benchState.dowWorld
}

func dowPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	ds, _ := dowDataset(b)
	if benchState.dowPipe == nil {
		pipe, err := core.NewPipeline(context.Background(), ds, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchState.dowPipe = pipe
	}
	return benchState.dowPipe
}

func tinySamples(b *testing.B) []*core.Sample {
	b.Helper()
	p := tinyPrepared(b)
	benchState.onceTrain.Do(func() {
		ids := make([]model.AddressID, len(p.DS.Addresses))
		for i, a := range p.DS.Addresses {
			ids[i] = a.ID
		}
		ss := p.Env.Pipe.BuildSamples(ids, core.DefaultSampleOptions())
		core.LabelSamples(ss, p.DS.Truth)
		benchState.samples = ss
	})
	return benchState.samples
}

var printedArtefacts sync.Map

// out returns os.Stdout exactly once per benchmark (the framework reruns
// the loop body with growing b.N, so iteration index alone is not enough)
// and io.Discard afterwards, so each artefact prints a single time.
func out(name string) io.Writer {
	if _, loaded := printedArtefacts.LoadOrStore(name, true); !loaded {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkTable1DatasetStats regenerates Table I.
func BenchmarkTable1DatasetStats(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderTable1(out(b.Name()), []eval.Table1Row{eval.Table1(p)})
	}
}

// BenchmarkFig9Distributions regenerates the four Figure 9 distributions.
func BenchmarkFig9Distributions(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderFig9(out(b.Name()), p.Profile.Name, eval.Fig9(p))
	}
}

// BenchmarkTable2Overall regenerates Table II (baselines; variants are
// covered by cmd/experiments -variants).
func BenchmarkTable2Overall(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderMethodTable(out(b.Name()), "Table II ("+p.Profile.Name+")", eval.Table2(context.Background(), p, false))
	}
}

// BenchmarkFig10aClusteringDistance regenerates the Figure 10(a) sweep.
func BenchmarkFig10aClusteringDistance(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderFig10a(out(b.Name()), p.Profile.Name, eval.Fig10a(context.Background(), p, []float64{20, 40, 60}))
	}
}

// BenchmarkFig10bDeliveryGroups regenerates Figure 10(b).
func BenchmarkFig10bDeliveryGroups(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderFig10b(out(b.Name()), p.Profile.Name, eval.Fig10b(context.Background(), p))
	}
}

// BenchmarkTable3SyntheticDelays regenerates Table III at one delay level
// per iteration set (the full sweep runs in cmd/experiments).
func BenchmarkTable3SyntheticDelays(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Table3(context.Background(), synth.Tiny(), []float64{0.6}, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		eval.RenderTable3(out(b.Name()), "Tiny", res)
	}
}

// BenchmarkFig13InferenceScalability regenerates Figure 13.
func BenchmarkFig13InferenceScalability(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderFig13(out(b.Name()), p.Profile.Name, eval.Fig13(context.Background(), p, []int{1000, 2000}))
	}
}

// BenchmarkStayPointExtraction measures Section V-F's first pipeline stage
// over the full DowBJ trajectories.
func BenchmarkStayPointExtraction(b *testing.B) {
	ds, _ := dowDataset(b)
	cfg := core.DefaultConfig()
	pts := ds.TrajectoryPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExtractAllStayPoints(context.Background(), ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts), "gps_points")
}

// BenchmarkCandidatePool measures Section V-F's bi-weekly pool construction.
func BenchmarkCandidatePool(b *testing.B) {
	ds, _ := dowDataset(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	var pool *core.Pool
	for i := 0; i < b.N; i++ {
		var err error
		if pool, err = core.BuildPool(context.Background(), ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pool.Locations)), "locations")
}

// BenchmarkTrainingTimeLocMatcher measures DLInfMA's model training
// (Section V-F training-time comparison).
func BenchmarkTrainingTimeLocMatcher(b *testing.B) {
	ss := tinySamples(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewLocMatcher(eval.ExperimentLocMatcherConfig())
		if _, err := m.Fit(context.Background(), ss, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingTimeGeoRank measures GeoRank's training — the fastest of
// the supervised methods in the paper.
func BenchmarkTrainingTimeGeoRank(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &baselines.GeoRank{}
		if err := g.Fit(context.Background(), p.Env, p.Split.Train, p.Split.Val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingTimeUNet measures the UNet baseline's training — the
// slowest in the paper's comparison.
func BenchmarkTrainingTimeUNet(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := &baselines.UNetBased{}
		if err := u.Fit(context.Background(), p.Env, p.Split.Train, p.Split.Val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocMatcherInference measures single-address inference latency
// (the paper reports DLInfMA infers 1K addresses/s).
func BenchmarkLocMatcherInference(b *testing.B) {
	ss := tinySamples(b)
	m := core.NewLocMatcher(core.DefaultLocMatcherConfig())
	cfg := m.Cfg
	cfg.MaxEpochs = 2
	m = core.NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), ss, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ss[i%len(ss)])
	}
}

// BenchmarkFitParallel measures one LocMatcher training epoch at several
// worker counts (Workers=1 is the serial reference path; higher counts train
// each batch's samples on replica parameters). Allocation counts show the
// tape arena's effect: graph storage is recycled sample to sample.
func BenchmarkFitParallel(b *testing.B) {
	ss := tinySamples(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := eval.ExperimentLocMatcherConfig()
				cfg.MaxEpochs = 1
				cfg.Patience = 1
				cfg.Workers = workers
				m := core.NewLocMatcher(cfg)
				if _, err := m.Fit(context.Background(), ss, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures batch inference over every tiny-profile
// sample at several worker counts (PredictAll's fan-out).
func BenchmarkPredictBatch(b *testing.B) {
	ss := tinySamples(b)
	cfg := core.DefaultLocMatcherConfig()
	cfg.MaxEpochs = 2
	m := core.NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), ss, nil); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			m.Cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictAll(context.Background(), ss); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCandidateRetrieval measures Section III-C retrieval on DowBJ.
func BenchmarkCandidateRetrieval(b *testing.B) {
	pipe := dowPipeline(b)
	ds, _ := dowDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.RetrieveCandidates(ds.Addresses[i%len(ds.Addresses)].ID)
	}
}

// BenchmarkFeatureExtraction measures full per-address featurization.
func BenchmarkFeatureExtraction(b *testing.B) {
	pipe := dowPipeline(b)
	ds, _ := dowDataset(b)
	opt := core.DefaultSampleOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.BuildSample(ds.Addresses[i%len(ds.Addresses)].ID, opt)
	}
}

// BenchmarkAblationTemporalFilter compares labeled-candidate quality with
// and without the recorded-time upper bound of Section III-C: the filter
// should shrink candidate sets without losing the true location.
func BenchmarkAblationTemporalFilter(b *testing.B) {
	p := tinyPrepared(b)
	ids := make([]model.AddressID, len(p.DS.Addresses))
	for i, a := range p.DS.Addresses {
		ids[i] = a.ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := p.Env.Pipe.BuildSamples(ids, core.DefaultSampleOptions())
		opt := core.DefaultSampleOptions()
		opt.NoTemporalFilter = true
		without := p.Env.Pipe.BuildSamples(ids, opt)
		if i == 0 {
			nWith, nWithout := 0, 0
			for _, s := range with {
				nWith += len(s.Cands)
			}
			for _, s := range without {
				nWithout += len(s.Cands)
			}
			b.Logf("temporal filter: %.1f vs %.1f candidates/address",
				float64(nWith)/float64(len(with)), float64(nWithout)/float64(len(without)))
		}
	}
}

// BenchmarkDelayInjection measures the Table III synthetic-delay generator.
func BenchmarkDelayInjection(b *testing.B) {
	ds, _ := dowDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.InjectDelays(ds, 0.6, 2, int64(i))
	}
}

// BenchmarkNoiseFilter measures the GPS noise filter on one long trajectory.
func BenchmarkNoiseFilter(b *testing.B) {
	ds, _ := dowDataset(b)
	tr := ds.Trips[0].Traj
	cfg := traj.DefaultNoiseFilter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traj.FilterNoise(tr, cfg)
	}
}

// BenchmarkRoutePlanning measures the Application-1 TSP heuristic on a
// realistic 25-stop tour.
func BenchmarkRoutePlanning(b *testing.B) {
	ds, w := dowDataset(b)
	var stops []geo.Point
	seen := map[geo.Point]bool{}
	for _, wb := range ds.Trips[0].Waybills {
		p := w.Truth[wb.Addr]
		if !seen[p] {
			seen[p] = true
			stops = append(stops, p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deploy.PlanRoute(geo.Point{}, stops)
	}
}

// BenchmarkExtensionBuildingFallback measures the building-level fallback
// experiment (the paper's Section II note that DLInfMA adapts to building
// granularity, realized through the deployed store's query chain).
func BenchmarkExtensionBuildingFallback(b *testing.B) {
	p := tinyPrepared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.BuildingFallback(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		eval.RenderBuildingFallback(out(b.Name()), p.Profile.Name, r)
	}
}

// BenchmarkAblationStayThresholds sweeps the stay-point thresholds of
// Section III-A, reporting pool size, labelling ceiling, and the heuristic
// selector's MAE per configuration.
func BenchmarkAblationStayThresholds(b *testing.B) {
	p := tinyPrepared(b)
	configs := []traj.StayPointConfig{
		{DMax: 10, TMin: 30},
		{DMax: 20, TMin: 30}, // the paper's setting
		{DMax: 40, TMin: 30},
		{DMax: 20, TMin: 60},
		{DMax: 20, TMin: 120},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RenderStaySweep(out(b.Name()), p.Profile.Name, eval.StaySweep(context.Background(), p, configs))
	}
}

// BenchmarkServeQueries measures the engine-backed HTTP service's query
// throughput under concurrent load (the Section V-F deployment: one query
// per dispatched waybill) across shard counts. Every engine serves a
// restored store-only state — shards=1 restores the legacy single-engine
// snapshot directly, the sharded runs migrate the same document through the
// geohash router — so the benchmark isolates the serving/routing path from
// training cost.
func BenchmarkServeQueries(b *testing.B) {
	p := tinyPrepared(b)
	doc := storeSnapshotDoc(b, p)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runServeQueries(b, shards, doc, p.DS.Addresses, deploy.Options{})
		})
	}
}

// BenchmarkServeQueriesTraced is BenchmarkServeQueries with request tracing
// on at 100% head sampling — the worst-case tracing overhead (target: <5%
// over the untraced shards=1 row). Every query mints a root span, records
// its attributes, and publishes the trace into the ring buffer.
func BenchmarkServeQueriesTraced(b *testing.B) {
	p := tinyPrepared(b)
	doc := storeSnapshotDoc(b, p)
	b.Run("shards=1", func(b *testing.B) {
		tracer := trace.NewTracer(trace.Options{SampleProb: 1, Store: trace.NewStore(256)})
		runServeQueries(b, 1, doc, p.DS.Addresses, deploy.Options{Tracer: tracer})
	})
}

// benchClient returns an HTTP client tuned for a parallel benchmark load:
// enough pooled keep-alive connections that concurrent client goroutines
// measure the serving path, not connection churn.
func benchClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

// BenchmarkServeQueriesParallel is the parallel-client variant of
// BenchmarkServeQueries: several client goroutines per core over a pooled
// keep-alive transport, all hammering single-key lookups. With the lock-free
// frozen-store read path, throughput must not decay as shards are added —
// this is the row scripts/bench_regress.sh gates on.
func BenchmarkServeQueriesParallel(b *testing.B) {
	p := tinyPrepared(b)
	doc := storeSnapshotDoc(b, p)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetParallelism(4)
			runServeQueriesClient(b, shards, doc, p.DS.Addresses, deploy.Options{}, benchClient())
		})
	}
}

// BenchmarkServeQueriesBatch measures the bulk read path: every request is a
// POST /v1/locations:batch resolving batchKeys addresses through the
// scatter/gather fan-out, so the reported queries/sec counts keys, not HTTP
// round trips. This is the path where sharding pays: per-request work splits
// across shard workers instead of adding routing cost per key.
func BenchmarkServeQueriesBatch(b *testing.B) {
	const batchKeys = 512
	p := tinyPrepared(b)
	doc := storeSnapshotDoc(b, p)
	addrs := p.DS.Addresses
	// Pre-marshal a few rotated request bodies so the client side costs one
	// bytes.Reader per request.
	bodies := make([][]byte, 8)
	for r := range bodies {
		req := struct {
			Addrs []int64 `json:"addrs"`
		}{Addrs: make([]int64, batchKeys)}
		for i := range req.Addrs {
			req.Addrs[i] = int64(addrs[(r*batchKeys+i)%len(addrs)].ID)
		}
		doc, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[r] = doc
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, shards, doc)
			defer e.Close()
			srv := httptest.NewServer(deploy.NewService(e, deploy.Options{}))
			defer srv.Close()
			client := benchClient()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					resp, err := client.Post(srv.URL+"/v1/locations:batch", "application/json",
						bytes.NewReader(bodies[i%len(bodies)]))
					if err != nil {
						b.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)*batchKeys/sec, "queries/sec")
			}
		})
	}
}

// storeSnapshotDoc builds the store-only snapshot document both serve
// benchmarks restore: ground-truth locations for every tiny-profile address.
func storeSnapshotDoc(b *testing.B, p *eval.Prepared) []byte {
	b.Helper()
	sn := struct {
		Name      string                `json:"name"`
		Addresses []model.AddressInfo   `json:"addresses"`
		Locations map[string][2]float64 `json:"locations"`
	}{Name: "bench", Addresses: p.DS.Addresses, Locations: map[string][2]float64{}}
	for id, pt := range p.DS.Truth {
		sn.Locations[fmt.Sprint(id)] = [2]float64{pt.X, pt.Y}
	}
	doc, err := json.Marshal(sn)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

// benchEngine restores the snapshot into a fresh engine of the given shard
// count.
func benchEngine(b *testing.B, shards int, doc []byte) engine.Runtime {
	b.Helper()
	var e engine.Runtime
	if shards == 1 {
		e = engine.New(engine.DefaultConfig())
	} else {
		r, err := shard.NewRouter(shards, 8)
		if err != nil {
			b.Fatal(err)
		}
		e = engine.NewSharded(engine.DefaultConfig(), r)
	}
	if err := e.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		b.Fatal(err)
	}
	return e
}

// runServeQueries restores the snapshot into a fresh engine of the given
// shard count and drives concurrent GET /v1/locations/{key} queries through an
// httptest server built with opts, using the default HTTP client (the
// long-standing baseline configuration).
func runServeQueries(b *testing.B, shards int, doc []byte, addrs []model.AddressInfo, opts deploy.Options) {
	b.Helper()
	runServeQueriesClient(b, shards, doc, addrs, opts, http.DefaultClient)
}

// runServeQueriesClient is runServeQueries with a caller-supplied client, so
// the parallel-client variant can bring a pooled keep-alive transport.
func runServeQueriesClient(b *testing.B, shards int, doc []byte, addrs []model.AddressInfo, opts deploy.Options, client *http.Client) {
	b.Helper()
	e := benchEngine(b, shards, doc)
	defer e.Close()
	srv := httptest.NewServer(deploy.NewService(e, opts))
	defer srv.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := client.Get(fmt.Sprintf("%s/v1/locations/%d", srv.URL, addrs[i%len(addrs)].ID))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "queries/sec")
	}
}
