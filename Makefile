# Build/test/bench entry points. The race target covers the packages with
# concurrency (tensor engine, pipeline, serving engine, HTTP service, the
# obs metrics/logging layer, and the load generator); bench regenerates the LocMatcher + serving
# performance numbers and their machine-readable BENCH_locmatcher.json; cover
# enforces a coverage floor; smoke-metrics boots a server and validates the
# /v1/metrics exposition end to end.

GO ?= go
COVER_FLOOR ?= 75

.PHONY: build test race vet cover bench bench-all bench-read bench-regress bench-capacity smoke-metrics smoke-stream smoke-cluster smoke-swarm smoke-quality

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/nn/... ./internal/engine/... ./internal/deploy/... ./internal/shard/... ./internal/cluster/... ./internal/obs/... ./internal/wal/... ./internal/loadgen/...

vet:
	$(GO) vet ./...
	@# Library code must log through internal/obs, never the stdlib printers:
	@# fmt.Print*/log.Print* bypass levels, formats, and the component fields.
	@bad=$$(grep -rnE '\b(fmt|log)\.Print(f|ln)?\(' internal/ --include='*.go' | grep -v '_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "vet: stdlib printing in internal/ (use internal/obs logging):"; \
		echo "$$bad"; \
		exit 1; \
	fi

# Boot a server and verify the Prometheus exposition parses with every
# required family present.
smoke-metrics:
	bash scripts/metrics_smoke.sh

# Boot a WAL-backed server, stream trajectories, SIGKILL it, restart on the
# same -wal-dir, and verify no acknowledged point was lost.
smoke-stream:
	bash scripts/stream_smoke.sh

# Boot a real two-peer cluster behind a -peers frontend with replication 2,
# SIGKILL one peer, and verify every answer survives byte-identically via
# ring-ordered replica failover.
smoke-cluster:
	bash scripts/cluster_smoke.sh

# Boot a server, drive a short fixed-rate open-loop swarm (zero errors
# required), then a mini-ramp whose verdict must land in a populated
# capacity report.
smoke-swarm:
	bash scripts/swarm_smoke.sh

# Boot a server on the tiny dataset, run two re-inferences, and assert the
# model-quality surface end to end: /v1/debug/swaps churn reports plus the
# churn/confidence/data-quality metric families in /v1/metrics.
smoke-quality:
	bash scripts/quality_smoke.sh

# Aggregate statement coverage with a floor (override: make cover COVER_FLOOR=60).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { gsub("%","",$$3); printf "total coverage %.1f%% (floor %d%%)\n", $$3, floor; \
		 if ($$3+0 < floor+0) exit 1 }'

# LocMatcher training/inference + serving-throughput benchmarks
# -> BENCH_locmatcher.json.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'FitParallel|PredictBatch|ServeQueries' -benchmem . | bin/benchjson -out BENCH_locmatcher.json

# Every benchmark (regenerates all paper artefacts; slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

# Serving read-path benchmarks only (frozen-store queries, parallel clients,
# batched scatter/gather) with allocation counts — the quick loop while
# working on the hot path. Does not rewrite BENCH_locmatcher.json.
bench-read:
	$(GO) test -run '^$$' -bench 'ServeQueriesParallel|ServeQueriesBatch' -benchmem .

# Re-run the parallel read benchmark and fail on a >15% single-shard
# queries/sec regression against the committed BENCH_locmatcher.json.
bench-regress:
	bash scripts/bench_regress.sh

# Capacity model: ramp the open-loop swarm against shards=1/2/4 in-process
# plus a two-peer cluster until the SLO breaks -> BENCH_capacity.json.
# Tune with STAGE/RAMP_START/RAMP_GROWTH/SLO_P99/MIX env knobs.
bench-capacity:
	bash scripts/bench_capacity.sh
