# Build/test/bench entry points. The race target covers the packages with
# concurrency (tensor engine, pipeline, serving engine and HTTP service);
# bench regenerates the LocMatcher + serving performance numbers and their
# machine-readable BENCH_locmatcher.json; cover enforces a coverage floor.

GO ?= go
COVER_FLOOR ?= 75

.PHONY: build test race vet cover bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/nn/... ./internal/engine/... ./internal/deploy/... ./internal/shard/...

vet:
	$(GO) vet ./...

# Aggregate statement coverage with a floor (override: make cover COVER_FLOOR=60).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { gsub("%","",$$3); printf "total coverage %.1f%% (floor %d%%)\n", $$3, floor; \
		 if ($$3+0 < floor+0) exit 1 }'

# LocMatcher training/inference + serving-throughput benchmarks
# -> BENCH_locmatcher.json.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'FitParallel|PredictBatch|ServeQueries' -benchmem . | bin/benchjson -out BENCH_locmatcher.json

# Every benchmark (regenerates all paper artefacts; slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .
