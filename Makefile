# Build/test/bench entry points. The race target covers the packages with
# concurrency (tensor engine and pipeline); bench regenerates the LocMatcher
# performance numbers and their machine-readable BENCH_locmatcher.json.

GO ?= go

.PHONY: build test race vet bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/nn/...

vet:
	$(GO) vet ./...

# LocMatcher training/inference benchmarks -> BENCH_locmatcher.json.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'FitParallel|PredictBatch' -benchmem . | bin/benchjson -out BENCH_locmatcher.json

# Every benchmark (regenerates all paper artefacts; slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .
