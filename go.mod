module dlinfma

go 1.22
