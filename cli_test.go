package dlinfma

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the dlinfma binary and drives the full
// generate -> infer -> eval flow on the tiny profile.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dlinfma")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dlinfma")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	data := filepath.Join(dir, "data.json.gz")
	out, err := exec.Command(bin, "generate", "-profile", "tiny", "-out", data).CombinedOutput()
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "waybills") {
		t.Errorf("generate output: %s", out)
	}
	if fi, err := os.Stat(data); err != nil || fi.Size() == 0 {
		t.Fatalf("dataset not written: %v", err)
	}

	locs := filepath.Join(dir, "locations.json")
	out, err = exec.Command(bin, "infer", "-data", data, "-out", locs).CombinedOutput()
	if err != nil {
		t.Fatalf("infer: %v\n%s", err, out)
	}
	if fi, err := os.Stat(locs); err != nil || fi.Size() == 0 {
		t.Fatalf("locations not written: %v", err)
	}

	out, err = exec.Command(bin, "eval", "-data", data).CombinedOutput()
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "MAE=") {
		t.Errorf("eval output: %s", out)
	}

	// Unknown subcommand and bad profile fail fast.
	if _, err := exec.Command(bin, "bogus").CombinedOutput(); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if _, err := exec.Command(bin, "generate", "-profile", "mars").CombinedOutput(); err == nil {
		t.Error("unknown profile should fail")
	}
}
