package core

import (
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

func partAddr(id model.AddressID) model.AddressInfo {
	return model.AddressInfo{ID: id, Geocode: geo.Point{X: float64(id)}}
}

func tripFor(addrs ...model.AddressID) model.Trip {
	tr := model.Trip{}
	for _, a := range addrs {
		tr.Waybills = append(tr.Waybills, model.Waybill{Addr: a})
	}
	return tr
}

func TestPartitionWindowRoutesAddressesAndTruth(t *testing.T) {
	shardOf := func(id model.AddressID) (int, bool) {
		if id >= 100 {
			return 0, false
		}
		return int(id) % 3, true
	}
	addrs := []model.AddressInfo{partAddr(0), partAddr(1), partAddr(2), partAddr(4), partAddr(100)}
	truth := map[model.AddressID]geo.Point{1: {X: 10}, 4: {X: 40}, 100: {X: 1}}
	parts := PartitionWindow(3, nil, addrs, truth, shardOf, nil)
	if len(parts) != 3 {
		t.Fatalf("%d partitions", len(parts))
	}
	if len(parts[0].Addrs) != 1 || parts[0].Addrs[0].ID != 0 {
		t.Errorf("shard 0 addrs %+v", parts[0].Addrs)
	}
	if len(parts[1].Addrs) != 2 {
		t.Errorf("shard 1 addrs %+v", parts[1].Addrs)
	}
	if _, ok := parts[1].Truth[1]; !ok {
		t.Error("truth for addr 1 missing on shard 1")
	}
	if _, ok := parts[1].Truth[4]; !ok {
		t.Error("truth for addr 4 missing on shard 1")
	}
	// The unknown address 100 is dropped rather than misrouted.
	for i, p := range parts {
		for _, a := range p.Addrs {
			if a.ID == 100 {
				t.Errorf("unknown addr on shard %d", i)
			}
		}
		if _, ok := p.Truth[100]; ok {
			t.Errorf("unknown truth on shard %d", i)
		}
	}
}

// TestPartitionWindowReplicatesTrips: a trip serving addresses on two shards
// appears on both (each shard needs the full trajectory to retrieve its own
// addresses' candidates) but never twice on one.
func TestPartitionWindowReplicatesTrips(t *testing.T) {
	shardOf := func(id model.AddressID) (int, bool) { return int(id) % 2, true }
	trips := []model.Trip{
		tripFor(0, 2, 4),    // all shard 0
		tripFor(1, 2),       // spans both
		tripFor(3, 3, 5, 1), // shard 1 only, duplicate waybills
	}
	parts := PartitionWindow(2, trips, nil, nil, shardOf, nil)
	if got := len(parts[0].Trips); got != 2 {
		t.Errorf("shard 0 got %d trips, want 2", got)
	}
	if got := len(parts[1].Trips); got != 2 {
		t.Errorf("shard 1 got %d trips, want 2", got)
	}
	// Input order is preserved per shard.
	if len(parts[1].Trips) == 2 && parts[1].Trips[0].Waybills[0].Addr != 1 {
		t.Error("shard 1 trips out of input order")
	}
}

// TestPartitionWindowFallbackTrip: a trip with no known waybill addresses
// routes by tripShard instead of being dropped.
func TestPartitionWindowFallbackTrip(t *testing.T) {
	shardOf := func(model.AddressID) (int, bool) { return 0, false }
	calls := 0
	tripShard := func(model.Trip) int { calls++; return 1 }
	parts := PartitionWindow(2, []model.Trip{tripFor(7)}, nil, nil, shardOf, tripShard)
	if calls != 1 {
		t.Fatalf("tripShard called %d times", calls)
	}
	if len(parts[1].Trips) != 1 || len(parts[0].Trips) != 0 {
		t.Errorf("fallback routing: shard0=%d shard1=%d trips", len(parts[0].Trips), len(parts[1].Trips))
	}
}

// TestPartitionWindowSingleShard: n=1 passes everything through untouched,
// without consulting the routing callbacks for trips.
func TestPartitionWindowSingleShard(t *testing.T) {
	shardOf := func(model.AddressID) (int, bool) { return 0, true }
	trips := []model.Trip{tripFor(1), tripFor(2)}
	parts := PartitionWindow(1, trips, []model.AddressInfo{partAddr(1)}, nil, shardOf, nil)
	if len(parts[0].Trips) != 2 || len(parts[0].Addrs) != 1 {
		t.Errorf("single shard partition %+v", parts[0])
	}
	if parts[0].Empty() {
		t.Error("Empty() on a loaded partition")
	}
	if !(WindowPartition{}).Empty() {
		t.Error("Empty() false on zero partition")
	}
}

func TestPartitionDataset(t *testing.T) {
	ds := &model.Dataset{
		Name:      "p",
		Trips:     []model.Trip{tripFor(0), tripFor(1), tripFor(0, 1)},
		Addresses: []model.AddressInfo{partAddr(0), partAddr(1)},
		Truth:     map[model.AddressID]geo.Point{0: {X: 1}, 1: {X: 2}},
	}
	parts := PartitionDataset(ds, 2,
		func(a model.AddressInfo) int { return int(a.ID) % 2 },
		func(model.Trip) int { return 0 })
	if len(parts) != 2 {
		t.Fatalf("%d parts", len(parts))
	}
	for i, p := range parts {
		if p.Name != "p" {
			t.Errorf("part %d name %q", i, p.Name)
		}
		if len(p.Trips) != 2 || len(p.Addresses) != 1 || len(p.Truth) != 1 {
			t.Errorf("part %d: %d trips, %d addrs, %d truth", i, len(p.Trips), len(p.Addresses), len(p.Truth))
		}
	}
}

// TestLCTotalTripsOverride: with the override set to the dataset's own size
// the feature is unchanged; with a larger universe the denominator grows.
func TestLCTotalTripsOverride(t *testing.T) {
	ds, _, pipe := tiny(t)
	pool := pipe.Pool
	cfg := DefaultConfig()
	base := NewPipelineWithPool(ds, cfg, pool)
	cfg.LCTotalTrips = len(ds.Trips)
	same := NewPipelineWithPool(ds, cfg, pool)
	cfg.LCTotalTrips = len(ds.Trips) * 2
	wide := NewPipelineWithPool(ds, cfg, pool)

	addr, loc := model.AddressID(-1), -1
	for _, a := range ds.Addresses {
		if cands := base.RetrieveCandidates(a.ID); len(cands) > 0 {
			addr, loc = a.ID, cands[0]
			break
		}
	}
	if loc < 0 {
		t.Fatal("fixture produced no candidates for any address")
	}
	b := base.LocationCommonality(loc, addr, false)
	if s := same.LocationCommonality(loc, addr, false); s != b {
		t.Errorf("override = dataset size changed LC: %v vs %v", s, b)
	}
	if b > 0 {
		if w := wide.LocationCommonality(loc, addr, false); w >= b {
			t.Errorf("doubling the trip universe did not shrink LC: %v vs %v", w, b)
		}
	}
}
