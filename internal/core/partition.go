package core

import (
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// WindowPartition is one shard's slice of an ingest window: the addresses and
// truth it owns plus every trip that can carry candidate evidence for them.
type WindowPartition struct {
	Trips []model.Trip
	Addrs []model.AddressInfo
	Truth map[model.AddressID]geo.Point
}

// Empty reports whether the partition carries nothing to ingest.
func (wp WindowPartition) Empty() bool {
	return len(wp.Trips) == 0 && len(wp.Addrs) == 0 && len(wp.Truth) == 0
}

// PartitionWindow splits one ingest window across n shards. Addresses and
// ground truth follow addrShardOf. Each trip is replicated to every shard
// owning at least one of its waybill addresses, so per-address candidate
// retrieval on a shard sees the complete evidence even when the trajectory's
// stay points straddle routing-cell edges — the address key decides
// placement, never the individual point. A trip none of whose waybill
// addresses are known routes to tripShard. Trips keep their input order
// within each shard, which keeps downstream clustering deterministic.
func PartitionWindow(
	n int,
	trips []model.Trip,
	addrs []model.AddressInfo,
	truth map[model.AddressID]geo.Point,
	addrShardOf func(model.AddressID) (int, bool),
	tripShard func(model.Trip) int,
) []WindowPartition {
	parts := make([]WindowPartition, n)
	for _, a := range addrs {
		if s, ok := addrShardOf(a.ID); ok && s >= 0 && s < n {
			parts[s].Addrs = append(parts[s].Addrs, a)
		}
	}
	for id, p := range truth {
		s, ok := addrShardOf(id)
		if !ok || s < 0 || s >= n {
			continue
		}
		if parts[s].Truth == nil {
			parts[s].Truth = make(map[model.AddressID]geo.Point)
		}
		parts[s].Truth[id] = p
	}
	var hit []bool
	if n > 1 {
		hit = make([]bool, n)
	}
	for _, tr := range trips {
		if n == 1 {
			parts[0].Trips = append(parts[0].Trips, tr)
			continue
		}
		for i := range hit {
			hit[i] = false
		}
		routed := false
		for _, w := range tr.Waybills {
			if s, ok := addrShardOf(w.Addr); ok && s >= 0 && s < n && !hit[s] {
				hit[s] = true
				routed = true
				parts[s].Trips = append(parts[s].Trips, tr)
			}
		}
		if !routed {
			if s := tripShard(tr); s >= 0 && s < n {
				parts[s].Trips = append(parts[s].Trips, tr)
			}
		}
	}
	return parts
}

// PartitionDataset splits a whole dataset the same way PartitionWindow splits
// one window, returning one self-contained dataset per shard (used by the
// sharded-vs-global equivalence check to build per-shard reference runs).
func PartitionDataset(
	ds *model.Dataset,
	n int,
	addrShard func(model.AddressInfo) int,
	tripShard func(model.Trip) int,
) []*model.Dataset {
	shardOf := make(map[model.AddressID]int, len(ds.Addresses))
	for _, a := range ds.Addresses {
		shardOf[a.ID] = addrShard(a)
	}
	lookup := func(id model.AddressID) (int, bool) {
		s, ok := shardOf[id]
		return s, ok
	}
	parts := PartitionWindow(n, ds.Trips, ds.Addresses, ds.Truth, lookup, tripShard)
	out := make([]*model.Dataset, n)
	for i, p := range parts {
		out[i] = &model.Dataset{
			Name:      ds.Name,
			Trips:     p.Trips,
			Addresses: p.Addrs,
			Truth:     p.Truth,
		}
		if out[i].Truth == nil {
			out[i].Truth = map[model.AddressID]geo.Point{}
		}
	}
	return out
}
