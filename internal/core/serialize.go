package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dlinfma/internal/nn"
)

// savedMatcher is the serialized form of a trained LocMatcher: architecture
// config, feature scaler, and parameters.
type savedMatcher struct {
	Cfg    LocMatcherConfig `json:"cfg"`
	Mean   []float64        `json:"mean"`
	Std    []float64        `json:"std"`
	Params json.RawMessage  `json:"params"`
}

// Save writes the trained model to w as JSON. The deployed system stores
// trained matchers so periodic re-inference does not retrain from scratch.
func (m *LocMatcher) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, m.Params()); err != nil {
		return err
	}
	sm := savedMatcher{Cfg: m.Cfg, Params: json.RawMessage(buf.Bytes())}
	if m.scaler != nil {
		sm.Mean = append(sm.Mean, m.scaler.mean[:]...)
		sm.Std = append(sm.Std, m.scaler.std[:]...)
	}
	return json.NewEncoder(w).Encode(&sm)
}

// LoadLocMatcher reads a model written by Save, reconstructing the
// architecture from the stored config.
func LoadLocMatcher(r io.Reader) (*LocMatcher, error) {
	var sm savedMatcher
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("core: decode matcher: %w", err)
	}
	m := NewLocMatcher(sm.Cfg)
	if err := nn.LoadParams(bytes.NewReader(sm.Params), m.Params()); err != nil {
		return nil, err
	}
	if len(sm.Mean) == nScalarFeats+1 && len(sm.Std) == nScalarFeats+1 {
		sc := &featScaler{}
		copy(sc.mean[:], sm.Mean)
		copy(sc.std[:], sm.Std)
		m.scaler = sc
	}
	return m, nil
}
