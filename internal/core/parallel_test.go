package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/nn"
)

// trainSamples returns the tiny dataset's labelled samples once.
func trainSamples(t *testing.T) []*Sample {
	t.Helper()
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds), DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	return labelled(samples)
}

func quickCfg(workers int) LocMatcherConfig {
	cfg := DefaultLocMatcherConfig()
	cfg.MaxEpochs = 3
	cfg.LR = 1e-3
	cfg.Workers = workers
	return cfg
}

func fitParams(t *testing.T, cfg LocMatcherConfig, samples []*Sample) (*LocMatcher, []*nn.Tensor) {
	t.Helper()
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}
	return m, m.Params()
}

func requireSameParams(t *testing.T, a, b []*nn.Tensor, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("%s: param %d element %d differs: %v vs %v",
					what, i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// Workers 0 and 1 both take the serial reference path and must produce
// bit-identical parameters for a fixed seed — the backward-compatibility
// contract of the Workers knob.
func TestFitSerialPathDeterministic(t *testing.T) {
	samples := trainSamples(t)
	_, p0 := fitParams(t, quickCfg(0), samples)
	_, p1 := fitParams(t, quickCfg(1), samples)
	requireSameParams(t, p0, p1, "Workers=0 vs Workers=1")
}

// Parallel training must be reproducible for a fixed worker count.
func TestFitParallelReproducible(t *testing.T) {
	samples := trainSamples(t)
	ma, pa := fitParams(t, quickCfg(4), samples)
	_, pb := fitParams(t, quickCfg(4), samples)
	requireSameParams(t, pa, pb, "two Workers=4 runs")

	preds, err := ma.PredictAll(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if preds[i] < 0 || preds[i] >= len(s.Cands) {
			t.Fatalf("sample %d: invalid parallel-trained prediction %d", i, preds[i])
		}
	}
}

// Parallel training should reach a loss comparable to serial training — the
// update schedule is identical, only the floating-point summation order and
// dropout streams differ.
func TestFitParallelLearns(t *testing.T) {
	samples := trainSamples(t)
	cfg := quickCfg(4)
	cfg.MaxEpochs = 10
	m := NewLocMatcher(cfg)
	res, err := m.Fit(context.Background(), samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 || math.IsInf(res.BestValLoss, 1) || math.IsNaN(res.BestValLoss) {
		t.Fatalf("parallel training did not run: %+v", res)
	}
	scfg := quickCfg(1)
	scfg.MaxEpochs = 10
	sm := NewLocMatcher(scfg)
	sres, err := sm.Fit(context.Background(), samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValLoss > 2*sres.BestValLoss+0.5 {
		t.Errorf("parallel loss %.4f much worse than serial %.4f", res.BestValLoss, sres.BestValLoss)
	}
}

// The inference fan-outs are deterministic at any worker count: per-sample
// results do not depend on scheduling and the loss reduction is ordered.
func TestInferenceIndependentOfWorkers(t *testing.T) {
	samples := trainSamples(t)
	m, _ := fitParams(t, quickCfg(1), samples)
	ctx := context.Background()

	m.Cfg.Workers = 1
	serialPreds := make([]int, len(samples))
	for i, s := range samples {
		serialPreds[i] = m.Predict(s)
	}
	serialProbs, err := m.ProbabilitiesAll(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}
	serialLoss, err := m.meanLoss(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}

	m.Cfg.Workers = 4
	preds, err := m.PredictAll(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.ProbabilitiesAll(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}
	if loss, err := m.meanLoss(ctx, samples); err != nil {
		t.Fatal(err)
	} else if loss != serialLoss {
		t.Fatalf("meanLoss with 4 workers %v != serial %v", loss, serialLoss)
	}
	for i := range samples {
		if preds[i] != serialPreds[i] {
			t.Fatalf("sample %d: parallel prediction %d != serial %d", i, preds[i], serialPreds[i])
		}
		for j := range serialProbs[i] {
			if probs[i][j] != serialProbs[i][j] {
				t.Fatalf("sample %d prob %d: parallel %v != serial %v", i, j, probs[i][j], serialProbs[i][j])
			}
		}
	}
}

// BuildSamples must return the same samples in the same order at any worker
// count.
func TestBuildSamplesParallelMatchesSerial(t *testing.T) {
	ds, _, pipe := tiny(t)
	ids := addressIDs(ds)

	serial := *pipe
	serial.Cfg.Workers = 1
	want := serial.BuildSamples(ids, DefaultSampleOptions())

	par := *pipe
	par.Cfg.Workers = 4
	got := par.BuildSamples(ids, DefaultSampleOptions())

	if len(got) != len(want) {
		t.Fatalf("parallel BuildSamples returned %d samples, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Addr != want[i].Addr {
			t.Fatalf("sample %d: addr %v != %v (order not preserved)", i, got[i].Addr, want[i].Addr)
		}
		if len(got[i].Cands) != len(want[i].Cands) {
			t.Fatalf("sample %d: %d candidates vs %d", i, len(got[i].Cands), len(want[i].Cands))
		}
		for j := range want[i].Cands {
			if got[i].Cands[j] != want[i].Cands[j] {
				t.Fatalf("sample %d candidate %d differs", i, j)
			}
		}
	}
}

// Cancelling mid-training must abort promptly with context.Canceled on both
// the serial and data-parallel paths, and the inference fan-outs must refuse
// a dead context instead of computing.
func TestFitAndInferenceCancelled(t *testing.T) {
	samples := trainSamples(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		m := NewLocMatcher(quickCfg(workers))
		if _, err := m.Fit(ctx, samples, nil); err != context.Canceled {
			t.Fatalf("Fit workers=%d: got %v, want context.Canceled", workers, err)
		}
		if _, err := m.PredictAll(ctx, samples); err != context.Canceled {
			t.Fatalf("PredictAll workers=%d: got %v, want context.Canceled", workers, err)
		}
		if _, err := m.ProbabilitiesAll(ctx, samples); err != context.Canceled {
			t.Fatalf("ProbabilitiesAll workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

// Nearest's lazy index build must be safe under concurrent first use (the
// pre-sync.Once code raced here).
func TestPoolNearestConcurrent(t *testing.T) {
	ds, _, pipe := tiny(t)
	fresh := &Pool{Locations: pipe.Pool.Locations, Visits: pipe.Pool.Visits}
	truths := make([]geo.Point, 0, len(ds.Truth))
	for _, p := range ds.Truth {
		truths = append(truths, p)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range truths {
				id, d := fresh.Nearest(q)
				if id < 0 || math.IsInf(d, 1) {
					panic("Nearest failed on non-empty pool")
				}
			}
		}()
	}
	wg.Wait()
}
