package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// streamTripStays runs a trip's trajectory through the incremental
// StreamExtractor, the way the serving engine does point by point.
func streamTripStays(tr traj.Trajectory, cfg Config) []traj.StayPoint {
	x := traj.NewStreamExtractor(cfg.Noise, cfg.Stay)
	var out []traj.StayPoint
	for _, p := range tr {
		out = append(out, x.Push(p)...)
	}
	return append(out, x.Flush()...)
}

// TestStreamedFeedMatchesAddWindow is the core half of the streaming
// bit-identity contract: appending each trip's streamed stay points and
// sealing at the same window boundaries must produce the same pool as the
// batch AddWindow path — same locations, same visit logs, same ids.
func TestStreamedFeedMatchesAddWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sites := []geo.Point{{X: 100, Y: 100}, {X: 130, Y: 100}, {X: 500, Y: 400}, {X: 90, Y: 420}}
	var windows [][]model.Trip
	t0 := 0.0
	for w := 0; w < 3; w++ {
		var trips []model.Trip
		for c := 0; c < 4; c++ {
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			trips = append(trips, dwellTrip(rng, model.CourierID(c), t0, a, b))
			t0 += 400
		}
		windows = append(windows, trips)
		t0 += 14 * 86400
	}

	cfg := DefaultConfig()
	cfg.Workers = 1

	batch := NewIncrementalPoolBuilder(cfg)
	for _, w := range windows {
		if err := batch.AddWindow(context.Background(), w); err != nil {
			t.Fatal(err)
		}
	}
	streamed := NewIncrementalPoolBuilder(cfg)
	for _, w := range windows {
		for _, trip := range w {
			streamed.AppendTripStays(trip.Courier, streamTripStays(trip.Traj, cfg))
		}
		if err := streamed.SealWindow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	pb, ps := batch.Finalize(), streamed.Finalize()
	if !reflect.DeepEqual(pb.Locations, ps.Locations) {
		t.Fatalf("location pools differ\nbatch:    %+v\nstreamed: %+v", pb.Locations, ps.Locations)
	}
	if !reflect.DeepEqual(pb.Visits, ps.Visits) {
		t.Fatalf("visit logs differ\nbatch:    %+v\nstreamed: %+v", pb.Visits, ps.Visits)
	}
}

// TestFinalizeSealsPending checks that Finalize treats an unsealed tail of
// appended trips as one last window instead of dropping it.
func TestFinalizeSealsPending(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := DefaultConfig()
	b := NewIncrementalPoolBuilder(cfg)
	trip := dwellTrip(rng, 0, 0, geo.Point{X: 60, Y: 60})
	b.AppendTripStays(trip.Courier, streamTripStays(trip.Traj, cfg))
	if b.PendingTrips() != 1 {
		t.Fatalf("PendingTrips = %d, want 1", b.PendingTrips())
	}
	pool := b.Finalize()
	if b.PendingTrips() != 0 {
		t.Fatalf("PendingTrips after Finalize = %d, want 0", b.PendingTrips())
	}
	if len(pool.Locations) != 1 || len(pool.Visits) != 1 || len(pool.Visits[0]) == 0 {
		t.Fatalf("pending trip missing from pool: %d locations, %d visit lists",
			len(pool.Locations), len(pool.Visits))
	}
}
