package core

import (
	"time"

	"dlinfma/internal/obs"
	"dlinfma/internal/traj"
)

// StaysPerTripBuckets are the upper edges of the stays-per-trip histogram.
// A delivery trip yields a handful of stays (one per stop); zero is the
// interesting edge (trip too short or too noisy to anchor any).
var StaysPerTripBuckets = []float64{0, 1, 2, 3, 5, 8, 13, 21, 50}

// Pipeline-stage metrics. One histogram family carries every stage's
// latency; granularity differs by stage and is part of the contract:
// noise_filter and stay_detect observe per trip (the parallel fan-out's unit
// of work), pool_window per ingested window, and the rest per batch call.
var (
	stageDuration = obs.Default.HistogramVec("dlinfma_pipeline_stage_duration_seconds",
		"Latency of each DLInfMA pipeline stage (noise_filter and stay_detect per trip, pool_window per window, cluster/pool_finalize/feature_build/fit/predict per call).",
		obs.JobDurationBuckets, "stage")
	stageNoise        = stageDuration.With("noise_filter")
	stageStayDetect   = stageDuration.With("stay_detect")
	stageCluster      = stageDuration.With("cluster")
	stagePoolWindow   = stageDuration.With("pool_window")
	stagePoolFinalize = stageDuration.With("pool_finalize")
	stageFeatures     = stageDuration.With("feature_build")
	stageFit          = stageDuration.With("fit")
	stagePredict      = stageDuration.With("predict")

	stayPointsTotal = obs.Default.Counter("dlinfma_pipeline_stay_points_total",
		"Stay points extracted from trajectories.")
	noisePoints = obs.Default.CounterVec("dlinfma_pipeline_noise_points_total",
		"GPS fixes through the noise filter by result; dropped/accepted is the data-quality drop rate.",
		"result")
	noiseAccepted = noisePoints.With("accepted")
	noiseDropped  = noisePoints.With("dropped")
	staysPerTrip  = obs.Default.Histogram("dlinfma_pipeline_stays_per_trip",
		"Stay points detected per trip. A mass at zero means trajectories too short or too noisy to anchor a stay.",
		StaysPerTripBuckets)
	poolLocationsGauge = obs.Default.Gauge("dlinfma_pipeline_pool_locations",
		"Candidate locations in the most recently built pool.")
	candidatesTotal = obs.Default.Counter("dlinfma_pipeline_candidates_total",
		"Candidates retrieved across all featurized addresses.")
	samplesBuilt = obs.Default.CounterVec("dlinfma_pipeline_samples_total",
		"Featurized addresses by retrieval outcome; empty/with_candidates is the retrieval miss/hit rate.",
		"result")
	samplesWithCands = samplesBuilt.With("with_candidates")
	samplesEmpty     = samplesBuilt.With("empty")
)

// extractStayPoints is the instrumented per-trip extraction step: it splits
// traj.ExtractStayPoints into its two stages so each gets its own timing,
// and counts the stay points produced. Both one-shot pool construction and
// the incremental builder funnel through it.
func extractStayPoints(tr traj.Trajectory, cfg Config) []traj.StayPoint {
	t0 := time.Now()
	filtered := traj.FilterNoise(tr, cfg.Noise)
	t1 := time.Now()
	sps := traj.DetectStayPoints(filtered, cfg.Stay)
	t2 := time.Now()
	stageNoise.Observe(t1.Sub(t0).Seconds())
	stageStayDetect.Observe(t2.Sub(t1).Seconds())
	stayPointsTotal.Add(int64(len(sps)))
	noiseAccepted.Add(int64(len(filtered)))
	noiseDropped.Add(int64(len(tr) - len(filtered)))
	staysPerTrip.Observe(float64(len(sps)))
	return sps
}

// RecordTripQuality feeds one streamed trip's data-quality counts into the
// same pipeline families the batch extractor populates, so drop rate and
// stays-per-trip read identically whichever ingest path a trip took. traj
// stays dependency-free; the serving engine calls this when it closes a trip.
func RecordTripQuality(accepted, dropped, stays int) {
	noiseAccepted.Add(int64(accepted))
	noiseDropped.Add(int64(dropped))
	staysPerTrip.Observe(float64(stays))
}
