package core

import (
	"time"

	"dlinfma/internal/obs"
	"dlinfma/internal/traj"
)

// Pipeline-stage metrics. One histogram family carries every stage's
// latency; granularity differs by stage and is part of the contract:
// noise_filter and stay_detect observe per trip (the parallel fan-out's unit
// of work), pool_window per ingested window, and the rest per batch call.
var (
	stageDuration = obs.Default.HistogramVec("dlinfma_pipeline_stage_duration_seconds",
		"Latency of each DLInfMA pipeline stage (noise_filter and stay_detect per trip, pool_window per window, cluster/pool_finalize/feature_build/fit/predict per call).",
		obs.JobDurationBuckets, "stage")
	stageNoise        = stageDuration.With("noise_filter")
	stageStayDetect   = stageDuration.With("stay_detect")
	stageCluster      = stageDuration.With("cluster")
	stagePoolWindow   = stageDuration.With("pool_window")
	stagePoolFinalize = stageDuration.With("pool_finalize")
	stageFeatures     = stageDuration.With("feature_build")
	stageFit          = stageDuration.With("fit")
	stagePredict      = stageDuration.With("predict")

	stayPointsTotal = obs.Default.Counter("dlinfma_pipeline_stay_points_total",
		"Stay points extracted from trajectories.")
	poolLocationsGauge = obs.Default.Gauge("dlinfma_pipeline_pool_locations",
		"Candidate locations in the most recently built pool.")
	candidatesTotal = obs.Default.Counter("dlinfma_pipeline_candidates_total",
		"Candidates retrieved across all featurized addresses.")
	samplesBuilt = obs.Default.CounterVec("dlinfma_pipeline_samples_total",
		"Featurized addresses by retrieval outcome; empty/with_candidates is the retrieval miss/hit rate.",
		"result")
	samplesWithCands = samplesBuilt.With("with_candidates")
	samplesEmpty     = samplesBuilt.With("empty")
)

// extractStayPoints is the instrumented per-trip extraction step: it splits
// traj.ExtractStayPoints into its two stages so each gets its own timing,
// and counts the stay points produced. Both one-shot pool construction and
// the incremental builder funnel through it.
func extractStayPoints(tr traj.Trajectory, cfg Config) []traj.StayPoint {
	t0 := time.Now()
	filtered := traj.FilterNoise(tr, cfg.Noise)
	t1 := time.Now()
	sps := traj.DetectStayPoints(filtered, cfg.Stay)
	t2 := time.Now()
	stageNoise.Observe(t1.Sub(t0).Seconds())
	stageStayDetect.Observe(t2.Sub(t1).Seconds())
	stayPointsTotal.Add(int64(len(sps)))
	return sps
}
