package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"dlinfma/internal/geocode"
	"dlinfma/internal/nn"
	"dlinfma/internal/obs"
)

// LocMatcherConfig holds the model hyper-parameters; defaults follow
// Section V-B exactly: POI embedded in R^3, r = 3, z = 8, p = 32, a
// 3-layer/2-head transformer encoder with 32 feed-forward neurons, dropout
// 0.1, Adam with lr 1e-4 halved every 5 epochs, batch size 16, early
// stopping on validation loss.
type LocMatcherConfig struct {
	TimeDenseDim  int // r
	Hidden        int // z
	AttnHidden    int // p
	POIEmbDim     int
	EncoderLayers int
	Heads         int
	FF            int
	Dropout       float64
	LR            float64
	Batch         int
	LRStepEpochs  int
	MaxEpochs     int
	Patience      int
	Seed          int64
	// NoContext removes the U·c context term from Equation (3) — the
	// DLInfMA-nA ablation.
	NoContext bool
	// UseLSTM replaces the transformer encoder with an LSTM over the
	// candidate sequence (the DLInfMA-PN variant, following [18]).
	UseLSTM bool
	// LSTMHidden is the LSTM's hidden size (the paper uses 32).
	LSTMHidden int
	// Workers bounds the model's parallelism (the paper's Section V-F
	// trajectory-level parallelization applied to the second stage). For
	// training, values <= 1 select the deterministic serial reference path;
	// Workers > 1 trains each mini-batch's samples concurrently on
	// per-worker parameter replicas with ordered gradient reduction —
	// reproducible for a fixed worker count, but with a different
	// floating-point summation order than the serial path. For the
	// inference fan-outs (PredictAll, ProbabilitiesAll, meanLoss), whose
	// per-sample results are independent of scheduling, 0 means GOMAXPROCS.
	Workers int
}

// DefaultLocMatcherConfig returns the paper's hyper-parameters.
func DefaultLocMatcherConfig() LocMatcherConfig {
	return LocMatcherConfig{
		TimeDenseDim: 3, Hidden: 8, AttnHidden: 32, POIEmbDim: 3,
		EncoderLayers: 3, Heads: 2, FF: 32, Dropout: 0.1,
		LR: 1e-4, Batch: 16, LRStepEpochs: 5,
		MaxEpochs: 60, Patience: 6, Seed: 1,
	}
}

// nScalarFeats is the number of scalar per-candidate features (TC, LC,
// distance, average duration, #couriers).
const nScalarFeats = 5

// featScaler standardizes scalar inputs with training-set statistics.
type featScaler struct {
	mean [nScalarFeats + 1]float64 // candidate scalars + NDeliveries
	std  [nScalarFeats + 1]float64
}

func fitScaler(samples []*Sample) *featScaler {
	s := &featScaler{}
	var n float64
	for _, sm := range samples {
		for i := range sm.Cands {
			f := candScalars(sm, i)
			for k, v := range f {
				s.mean[k] += v
			}
			s.mean[nScalarFeats] += sm.NDeliveries
			n++
		}
	}
	if n == 0 {
		for k := range s.std {
			s.std[k] = 1
		}
		return s
	}
	for k := range s.mean {
		s.mean[k] /= n
	}
	for _, sm := range samples {
		for i := range sm.Cands {
			f := candScalars(sm, i)
			for k, v := range f {
				d := v - s.mean[k]
				s.std[k] += d * d
			}
			d := sm.NDeliveries - s.mean[nScalarFeats]
			s.std[nScalarFeats] += d * d
		}
	}
	for k := range s.std {
		s.std[k] = math.Sqrt(s.std[k] / n)
		if s.std[k] < 1e-9 {
			s.std[k] = 1
		}
	}
	return s
}

func candScalars(s *Sample, i int) [nScalarFeats]float64 {
	c := s.Cands[i]
	return [nScalarFeats]float64{c.TC, c.LC, c.Dist, c.AvgDur, c.NCouriers}
}

// LocMatcher is the paper's attention-based selection model (Figure 8).
type LocMatcher struct {
	Cfg LocMatcherConfig

	timeDense *nn.Dense
	inDense   *nn.Dense
	enc       *nn.TransformerEncoder
	lstm      *nn.LSTM
	poiEmb    *nn.Embedding
	attn      *nn.AdditiveAttention
	scaler    *featScaler
	rng       *rand.Rand

	// tapes pools inference arenas so concurrent Predict calls each reuse
	// graph storage without sharing it.
	tapes sync.Pool
}

// getTape borrows an arena from the pool; putTape resets and returns it.
func (m *LocMatcher) getTape() *nn.Tape {
	if t, ok := m.tapes.Get().(*nn.Tape); ok {
		return t
	}
	return nn.NewTape()
}

func (m *LocMatcher) putTape(t *nn.Tape) {
	t.Reset()
	m.tapes.Put(t)
}

// inferWorkers resolves the worker count for inference fan-outs.
func (m *LocMatcher) inferWorkers() int {
	if m.Cfg.Workers > 0 {
		return m.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// NewLocMatcher builds an untrained LocMatcher.
func NewLocMatcher(cfg LocMatcherConfig) *LocMatcher {
	if cfg.Hidden == 0 {
		cfg = DefaultLocMatcherConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctxDim := cfg.POIEmbDim + 1
	m := &LocMatcher{
		Cfg:       cfg,
		timeDense: nn.NewDense(rng, 24, cfg.TimeDenseDim),
		inDense:   nn.NewDense(rng, cfg.TimeDenseDim+nScalarFeats, cfg.Hidden),
		poiEmb:    nn.NewEmbedding(rng, geocode.NumPOICategories, cfg.POIEmbDim),
		rng:       rng,
	}
	encOut := cfg.Hidden
	if cfg.UseLSTM {
		if cfg.LSTMHidden <= 0 {
			cfg.LSTMHidden = 32
			m.Cfg.LSTMHidden = 32
		}
		m.lstm = nn.NewLSTM(rng, cfg.Hidden, cfg.LSTMHidden)
		encOut = cfg.LSTMHidden
	} else {
		m.enc = nn.NewTransformerEncoder(rng, cfg.EncoderLayers, cfg.Hidden, cfg.Heads, cfg.FF, cfg.Dropout)
	}
	m.attn = nn.NewAdditiveAttention(rng, encOut, ctxDim, cfg.AttnHidden)
	return m
}

// Params returns all trainable tensors.
func (m *LocMatcher) Params() []*nn.Tensor {
	ps := m.timeDense.Params()
	ps = append(ps, m.inDense.Params()...)
	if m.enc != nil {
		ps = append(ps, m.enc.Params()...)
	}
	if m.lstm != nil {
		ps = append(ps, m.lstm.Params()...)
	}
	ps = append(ps, m.poiEmb.Params()...)
	ps = append(ps, m.attn.Params()...)
	return ps
}

// forward computes candidate scores [n,1] for one sample. The graph's
// intermediates are allocated on tape (recycled by the caller's Reset); rng
// drives dropout and is only consulted when train is true. Concurrent
// forwards are safe as long as each call has its own tape (parameters are
// only read).
func (m *LocMatcher) forward(s *Sample, train bool, tape *nn.Tape, rng *rand.Rand) *nn.Tensor {
	n := len(s.Cands)
	sc := m.scaler
	if sc == nil {
		sc = &featScaler{}
		for k := range sc.std {
			sc.std[k] = 1
		}
	}
	td := tape.NewLeaf(n, 24)
	scalars := tape.NewLeaf(n, nScalarFeats)
	for i := range s.Cands {
		copy(td.Data[i*24:(i+1)*24], s.Cands[i].TimeDist[:])
		f := candScalars(s, i)
		for k, v := range f {
			scalars.Data[i*nScalarFeats+k] = (v - sc.mean[k]) / sc.std[k]
		}
	}

	x := nn.ConcatCols(m.timeDense.Forward(td), scalars) // [n, r+5]
	x = m.inDense.Forward(x)                             // [n, z]
	var z *nn.Tensor
	if m.lstm != nil {
		z = m.lstm.Forward(x) // [n, lstmHidden]
	} else {
		z = m.enc.Forward(x, train, rng) // [n, z]
	}

	var ctx *nn.Tensor
	if !m.Cfg.NoContext {
		poi := int(s.POI)
		if poi < 0 || poi >= geocode.NumPOICategories {
			poi = int(geocode.POIOther)
		}
		emb := m.poiEmb.Forward([]int{poi}) // [1, e]
		nd := tape.NewLeaf(1, 1)
		nd.Data[0] = (s.NDeliveries - sc.mean[nScalarFeats]) / sc.std[nScalarFeats]
		ctx = nn.ConcatCols(emb, nd) // [1, e+1]
	}
	return m.attn.Scores(z, ctx) // [n, 1]
}

// TrainResult reports the outcome of Fit.
type TrainResult struct {
	Epochs      int
	BestValLoss float64
	TrainTime   time.Duration
}

// Fit trains LocMatcher on labelled samples with the paper's procedure:
// cross-entropy over the candidates' softmax, Adam with step-decayed
// learning rate, mini-batches of Batch samples with gradient accumulation,
// early stopping when validation loss stops improving, restoring the best
// checkpoint.
//
// With Cfg.Workers <= 1 the epoch loop is the serial reference path —
// bit-identical results for a fixed seed. With Workers > 1 each
// mini-batch's samples are evaluated concurrently: every worker runs
// forward/backward on its own parameter replica (with its own tape and
// dropout RNG, seeded from Cfg.Seed and the worker index), gradients are
// reduced into the shared parameters in worker order, and one optimizer
// step is taken per batch — the same update schedule as the serial path, so
// loss trajectories are statistically equivalent and reproducible for a
// fixed worker count.
//
// Cancellation is cooperative: ctx is checked between batches (serial path)
// or between per-batch parallel runs (data-parallel path) and between
// epochs; on cancellation Fit returns ctx.Err() promptly without stepping
// the optimizer on a partial batch, leaving the parameters at the last
// completed update.
func (m *LocMatcher) Fit(ctx context.Context, train, val []*Sample) (TrainResult, error) {
	defer obs.StartSpanCtx(ctx, "fit", stageFit).End()
	train = labelled(train)
	val = labelled(val)
	if len(train) == 0 {
		return TrainResult{}, errors.New("core: no labelled training samples")
	}
	start := time.Now()
	m.scaler = fitScaler(train)
	params := m.Params()
	opt := nn.NewAdam(m.Cfg.LR)
	opt.ClipNorm = 5
	sched := nn.NewStepLR(m.Cfg.LR, m.Cfg.LRStepEpochs)
	stopper := nn.NewEarlyStopper(max(1, m.Cfg.Patience))
	best := nn.CloneParams(params)

	// Data-parallel setup: worker-local model replicas sharing the scaler,
	// each with a distinct dropout stream and its own arena.
	var dp *nn.DataParallel
	var replicas []*LocMatcher
	var tapes []*nn.Tape
	if w := m.Cfg.Workers; w > 1 {
		replicas = make([]*LocMatcher, w)
		repParams := make([][]*nn.Tensor, w)
		tapes = make([]*nn.Tape, w)
		for k := range replicas {
			rcfg := m.Cfg
			rcfg.Seed = m.Cfg.Seed + int64(k+1)
			r := NewLocMatcher(rcfg)
			r.scaler = m.scaler
			replicas[k] = r
			repParams[k] = r.Params()
			tapes[k] = nn.NewTape()
		}
		dp = nn.NewDataParallel(params, repParams...)
	}

	tape := nn.NewTape()
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	res := TrainResult{BestValLoss: math.Inf(1)}
	for epoch := 0; epoch < m.Cfg.MaxEpochs; epoch++ {
		opt.LR = sched.At(epoch)
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		if dp != nil {
			batchSize := m.Cfg.Batch
			if batchSize <= 0 {
				batchSize = len(idx)
			}
			nn.ZeroGrads(params)
			for lo := 0; lo < len(idx); lo += batchSize {
				hi := min(lo+batchSize, len(idx))
				batch := idx[lo:hi]
				dp.Sync()
				err := dp.RunCtx(ctx, len(batch), func(w, j int) {
					r := replicas[w]
					s := train[batch[j]]
					nn.Backward(nn.CrossEntropy(r.forward(s, true, tapes[w], r.rng), s.Label))
					tapes[w].Reset()
				})
				if err != nil {
					return res, err
				}
				dp.Reduce()
				opt.Step(params, float64(len(batch)))
				nn.ZeroGrads(params)
			}
		} else {
			nn.ZeroGrads(params)
			inBatch := 0
			for _, i := range idx {
				if inBatch == 0 {
					if err := ctx.Err(); err != nil {
						return res, err
					}
				}
				s := train[i]
				loss := nn.CrossEntropy(m.forward(s, true, tape, m.rng), s.Label)
				nn.Backward(loss)
				tape.Reset()
				inBatch++
				if inBatch == m.Cfg.Batch {
					opt.Step(params, float64(inBatch))
					nn.ZeroGrads(params)
					inBatch = 0
				}
			}
			if inBatch > 0 {
				opt.Step(params, float64(inBatch))
				nn.ZeroGrads(params)
			}
		}
		res.Epochs = epoch + 1

		vl, err := m.meanLoss(ctx, val)
		if err != nil {
			return res, err
		}
		if len(val) == 0 {
			if vl, err = m.meanLoss(ctx, train); err != nil {
				return res, err
			}
		}
		stop, improved := stopper.Observe(vl)
		if improved {
			nn.CopyParams(best, params)
			res.BestValLoss = vl
		}
		if stop {
			break
		}
	}
	nn.CopyParams(params, best)
	res.TrainTime = time.Since(start)
	return res, nil
}

func labelled(samples []*Sample) []*Sample {
	var out []*Sample
	for _, s := range samples {
		if s != nil && s.Label >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// meanLoss computes the mean cross-entropy over samples, fanning the
// per-sample forwards across inferWorkers() goroutines. The per-sample
// losses land in an index-ordered slice that is summed serially, so the
// result is bit-identical at any worker count.
func (m *LocMatcher) meanLoss(ctx context.Context, samples []*Sample) (float64, error) {
	if len(samples) == 0 {
		return math.Inf(1), nil
	}
	losses := make([]float64, len(samples))
	err := nn.ParallelForCtx(ctx, m.inferWorkers(), len(samples), func(i int) {
		s := samples[i]
		tape := m.getTape()
		losses[i] = nn.CrossEntropy(m.forward(s, false, tape, nil), s.Label).Value()
		m.putTape(tape)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / float64(len(samples)), nil
}

// Predict returns the index of the candidate with maximum predicted
// probability (the inference rule of Section IV-B).
func (m *LocMatcher) Predict(s *Sample) int {
	if len(s.Cands) == 0 {
		return -1
	}
	if len(s.Cands) == 1 {
		return 0
	}
	probs := m.Probabilities(s)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// PredictAll runs Predict over a batch of samples on inferWorkers()
// goroutines and returns the predictions in sample order. Cancelling ctx
// stops the fan-out between samples and returns ctx.Err().
func (m *LocMatcher) PredictAll(ctx context.Context, samples []*Sample) ([]int, error) {
	defer obs.StartSpanCtx(ctx, "predict", stagePredict).End()
	out := make([]int, len(samples))
	err := nn.ParallelForCtx(ctx, m.inferWorkers(), len(samples), func(i int) {
		out[i] = m.Predict(samples[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Probabilities returns the softmax distribution over candidates.
func (m *LocMatcher) Probabilities(s *Sample) []float64 {
	if len(s.Cands) == 0 {
		return nil
	}
	tape := m.getTape()
	probs := nn.Softmax1D(m.forward(s, false, tape, nil))
	m.putTape(tape)
	return probs
}

// ProbabilitiesAll runs Probabilities over a batch of samples on
// inferWorkers() goroutines and returns the distributions in sample order.
// Cancelling ctx stops the fan-out between samples and returns ctx.Err().
func (m *LocMatcher) ProbabilitiesAll(ctx context.Context, samples []*Sample) ([][]float64, error) {
	defer obs.StartSpanCtx(ctx, "predict", stagePredict).End()
	out := make([][]float64, len(samples))
	err := nn.ParallelForCtx(ctx, m.inferWorkers(), len(samples), func(i int) {
		out[i] = m.Probabilities(samples[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CandidateScore pairs a candidate with its predicted probability and the
// matching features that drive it — the explanation surface used by case
// studies and operator tooling.
type CandidateScore struct {
	Index int
	LocID int
	Prob  float64
	TC    float64
	LC    float64
	Dist  float64
}

// Explain returns the sample's candidates ranked by predicted probability.
func (m *LocMatcher) Explain(s *Sample) []CandidateScore {
	if len(s.Cands) == 0 {
		return nil
	}
	probs := m.Probabilities(s)
	out := make([]CandidateScore, len(s.Cands))
	for i, c := range s.Cands {
		out[i] = CandidateScore{Index: i, LocID: c.LocID, Prob: probs[i], TC: c.TC, LC: c.LC, Dist: c.Dist}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Prob > out[b].Prob })
	return out
}
