package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
)

// tinyData memoizes a generated tiny dataset across tests.
var tinyData struct {
	ds   *model.Dataset
	w    *synth.World
	pipe *Pipeline
}

func tiny(t *testing.T) (*model.Dataset, *synth.World, *Pipeline) {
	t.Helper()
	if tinyData.ds == nil {
		ds, w, err := synth.Generate(synth.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		tinyData.ds, tinyData.w = ds, w
		pipe, err := NewPipeline(context.Background(), ds, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tinyData.pipe = pipe
	}
	return tinyData.ds, tinyData.w, tinyData.pipe
}

func TestBuildPoolBasics(t *testing.T) {
	_, _, pipe := tiny(t)
	pool := pipe.Pool
	if len(pool.Locations) == 0 {
		t.Fatal("empty pool")
	}
	// No two pool locations within the clustering cutoff.
	for i := range pool.Locations {
		for j := i + 1; j < len(pool.Locations); j++ {
			if geo.Dist(pool.Locations[i].Loc, pool.Locations[j].Loc) <= 1 {
				t.Fatalf("locations %d and %d coincide", i, j)
			}
		}
	}
	for _, l := range pool.Locations {
		if l.NStays <= 0 {
			t.Errorf("location %d has no stays", l.ID)
		}
		if l.AvgDuration <= 0 {
			t.Errorf("location %d has non-positive avg duration", l.ID)
		}
		if l.NCouriers < 1 {
			t.Errorf("location %d has no couriers", l.ID)
		}
		var sum float64
		for _, v := range l.TimeDist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("location %d time distribution sums to %v", l.ID, sum)
		}
	}
}

func TestPoolVisitsChronological(t *testing.T) {
	_, _, pipe := tiny(t)
	for ti, vs := range pipe.Pool.Visits {
		for i := 1; i < len(vs); i++ {
			if vs[i].ArriveT < vs[i-1].LeaveT {
				t.Fatalf("trip %d visits overlap", ti)
			}
		}
		for _, v := range vs {
			if v.MidT < v.ArriveT || v.MidT > v.LeaveT {
				t.Fatalf("trip %d visit MidT outside interval", ti)
			}
		}
	}
}

func TestPoolCoversGroundTruth(t *testing.T) {
	// For most addresses some pool location should be near the true
	// delivery location — otherwise candidate generation lost the signal.
	ds, _, pipe := tiny(t)
	covered, total := 0, 0
	for addr, truth := range ds.Truth {
		if len(pipe.tripsOfAddr[addr]) == 0 {
			continue
		}
		total++
		if _, d := pipe.Pool.Nearest(truth); d < 30 {
			covered++
		}
	}
	if frac := float64(covered) / float64(total); frac < 0.85 {
		t.Errorf("pool covers only %.0f%% of delivered addresses", frac*100)
	}
}

func TestIncrementalPoolMatchesSingleShotApproximately(t *testing.T) {
	ds, _, _ := tiny(t)
	cfgOnce := DefaultConfig()
	cfgOnce.PoolWindowSeconds = 0
	cfgInc := DefaultConfig() // 14-day windows
	pOnce, err := BuildPool(context.Background(), ds, cfgOnce)
	if err != nil {
		t.Fatal(err)
	}
	pInc, err := BuildPool(context.Background(), ds, cfgInc)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(pInc.Locations)) / float64(len(pOnce.Locations))
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("incremental pool size %d vs single-shot %d (ratio %.2f)",
			len(pInc.Locations), len(pOnce.Locations), ratio)
	}
}

func TestGridPoolLargerThanHierarchical(t *testing.T) {
	// The paper observes DLInfMA-Grid generates many more locations.
	ds, _, pipe := tiny(t)
	cfg := DefaultConfig()
	cfg.UseGridMerge = true
	grid, err := BuildPool(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Locations) < len(pipe.Pool.Locations) {
		t.Errorf("grid pool %d smaller than hierarchical %d",
			len(grid.Locations), len(pipe.Pool.Locations))
	}
}

func TestRetrieveCandidates(t *testing.T) {
	ds, _, pipe := tiny(t)
	any := false
	for _, a := range ds.Addresses {
		cands := pipe.RetrieveCandidates(a.ID)
		if len(pipe.tripsOfAddr[a.ID]) == 0 {
			if len(cands) != 0 {
				t.Fatalf("address %d has candidates but no trips", a.ID)
			}
			continue
		}
		any = true
		seen := map[int]bool{}
		for _, c := range cands {
			if c < 0 || c >= len(pipe.Pool.Locations) {
				t.Fatalf("candidate id %d out of range", c)
			}
			if seen[c] {
				t.Fatalf("duplicate candidate %d for address %d", c, a.ID)
			}
			seen[c] = true
		}
	}
	if !any {
		t.Fatal("no address had candidates")
	}
}

func TestTemporalFilterReducesCandidates(t *testing.T) {
	ds, _, pipe := tiny(t)
	filtered, unfiltered := 0, 0
	for _, a := range ds.Addresses {
		filtered += len(pipe.RetrieveCandidates(a.ID))
		unfiltered += len(pipe.retrieveAllVisited(a.ID))
	}
	if filtered > unfiltered {
		t.Fatalf("temporal filter added candidates: %d > %d", filtered, unfiltered)
	}
	if filtered == unfiltered {
		t.Error("temporal filter had no effect; expected some late stays to be excluded")
	}
}

func TestTemporalFilterExcludesLateStays(t *testing.T) {
	// Candidates must never come only from stays after the recorded time.
	ds, _, pipe := tiny(t)
	for _, a := range ds.Addresses[:50] {
		cands := pipe.RetrieveCandidates(a.ID)
		for _, c := range cands {
			ok := false
			for _, ti := range pipe.tripsOfAddr[a.ID] {
				var td float64 = math.Inf(-1)
				for _, w := range ds.Trips[ti].Waybills {
					if w.Addr == a.ID && w.RecordedDeliveryT > td {
						td = w.RecordedDeliveryT
					}
				}
				for _, v := range pipe.Pool.Visits[ti] {
					if v.LocID == c && v.MidT <= td {
						ok = true
					}
				}
			}
			if !ok {
				t.Fatalf("candidate %d of address %d justified by no admissible stay", c, a.ID)
			}
		}
	}
}

func TestTripCoverageBounds(t *testing.T) {
	ds, _, pipe := tiny(t)
	for _, a := range ds.Addresses[:30] {
		for _, c := range pipe.RetrieveCandidates(a.ID) {
			tc := pipe.TripCoverage(c, a.ID)
			if tc < 0 || tc > 1 {
				t.Fatalf("TC out of range: %v", tc)
			}
		}
	}
	// Unknown location yields TC with zero numerator.
	if len(ds.Addresses) > 0 {
		a := ds.Addresses[0].ID
		if len(pipe.tripsOfAddr[a]) > 0 {
			// A location never visited by the address's trips: find one.
			visited := map[int]bool{}
			for _, t := range pipe.tripsOfAddr[a] {
				for _, v := range pipe.Pool.Visits[t] {
					visited[v.LocID] = true
				}
			}
			for id := range pipe.Pool.Locations {
				if !visited[id] {
					if tc := pipe.TripCoverage(id, a); tc != 0 {
						t.Fatalf("unvisited location has TC %v", tc)
					}
					break
				}
			}
		}
	}
}

func TestLocationCommonalityStationHigh(t *testing.T) {
	// The courier station is visited in every trip, so its LC must be much
	// higher than a typical doorstep's. Find the pool location nearest the
	// station of courier 0.
	ds, w, pipe := tiny(t)
	_ = w
	stationLoc, _ := pipe.Pool.Nearest(geo.Point{X: 300, Y: -120})
	var someAddr model.AddressID = -1
	for _, a := range ds.Addresses {
		if len(pipe.tripsOfAddr[a.ID]) >= 2 {
			someAddr = a.ID
			break
		}
	}
	if someAddr < 0 {
		t.Skip("no multi-trip address")
	}
	lcStation := pipe.LocationCommonality(stationLoc, someAddr, false)
	// Average LC across that address's candidates.
	var lcSum float64
	cands := pipe.RetrieveCandidates(someAddr)
	for _, c := range cands {
		lcSum += pipe.LocationCommonality(c, someAddr, false)
	}
	if len(cands) > 0 && lcStation <= lcSum/float64(len(cands)) {
		t.Errorf("station LC %.3f not above mean candidate LC %.3f",
			lcStation, lcSum/float64(len(cands)))
	}
}

func TestBuildSampleAndLabel(t *testing.T) {
	ds, _, pipe := tiny(t)
	opt := DefaultSampleOptions()
	samples := pipe.BuildSamples(addressIDs(ds), opt)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	LabelSamples(samples, ds.Truth)
	labelled := 0
	for _, s := range samples {
		if len(s.Cands) == 0 {
			t.Fatal("sample without candidates")
		}
		if s.NDeliveries < 1 {
			t.Fatal("sample with zero deliveries")
		}
		if s.Label >= 0 {
			labelled++
			if s.Label >= len(s.Cands) {
				t.Fatal("label out of range")
			}
		}
		for i := range s.Cands {
			f := s.FlatFeatures(i)
			if len(f) != FlatDim {
				t.Fatalf("flat features length %d, want %d", len(f), FlatDim)
			}
		}
	}
	if labelled < len(samples)*9/10 {
		t.Errorf("only %d/%d samples labelled", labelled, len(samples))
	}

	// Label quality: the nearest candidate should usually be close to the
	// truth (candidate generation recall).
	var within30 int
	for _, s := range samples {
		if s.Label >= 0 && s.LabelDist < 30 {
			within30++
		}
	}
	if frac := float64(within30) / float64(labelled); frac < 0.8 {
		t.Errorf("nearest candidate within 30 m for only %.0f%%", frac*100)
	}
}

func TestFeatureMaskZeroesGroups(t *testing.T) {
	ds, _, pipe := tiny(t)
	opt := DefaultSampleOptions()
	opt.Mask.TC = false
	opt.Mask.Profile = false
	s := pipe.BuildSamples(addressIDs(ds)[:20], opt)
	for _, sm := range s {
		for _, c := range sm.Cands {
			if c.TC != 0 || c.AvgDur != 0 || c.NCouriers != 0 {
				t.Fatal("masked features not zeroed")
			}
			if c.Dist == 0 && c.LC == 0 {
				continue // possible but rare; not an error
			}
		}
	}
}

func TestPredictedLocationFallback(t *testing.T) {
	s := &Sample{Geocode: geo.Point{X: 1, Y: 2}}
	if s.PredictedLocation(-1) != (geo.Point{X: 1, Y: 2}) {
		t.Error("out-of-range prediction should fall back to the geocode")
	}
}

func addressIDs(ds *model.Dataset) []model.AddressID {
	out := make([]model.AddressID, len(ds.Addresses))
	for i, a := range ds.Addresses {
		out[i] = a.ID
	}
	return out
}

func TestLocMatcherTrainsAndPredicts(t *testing.T) {
	ds, w, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds), DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	split := synth.SplitSpatial(ds, w, 0.6, 0.2)
	inSet := func(ids []model.AddressID) []*Sample {
		var out []*Sample
		for _, s := range samples {
			if synth.Contains(ids, s.Addr) {
				out = append(out, s)
			}
		}
		return out
	}
	train, val, test := inSet(split.Train), inSet(split.Val), inSet(split.Test)

	cfg := DefaultLocMatcherConfig()
	cfg.MaxEpochs = 15
	cfg.LR = 1e-3 // tiny data: larger rate converges within the epoch budget
	m := NewLocMatcher(cfg)
	res, err := m.Fit(context.Background(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 || math.IsInf(res.BestValLoss, 1) {
		t.Fatalf("training did not run: %+v", res)
	}

	// Accuracy on test: correct if predicted location within 50 m of truth.
	correct, total := 0, 0
	baselineCorrect := 0 // random candidate baseline: first candidate
	for _, s := range test {
		if s.Label < 0 {
			continue
		}
		total++
		pred := m.Predict(s)
		if pred < 0 || pred >= len(s.Cands) {
			t.Fatalf("invalid prediction %d", pred)
		}
		if geo.Dist(s.PredictedLocation(pred), s.Truth) < 50 {
			correct++
		}
		if geo.Dist(s.PredictedLocation(0), s.Truth) < 50 {
			baselineCorrect++
		}
	}
	if total == 0 {
		t.Fatal("no test samples")
	}
	acc := float64(correct) / float64(total)
	base := float64(baselineCorrect) / float64(total)
	if acc < base {
		t.Errorf("LocMatcher accuracy %.2f below trivial baseline %.2f", acc, base)
	}
	if acc < 0.4 {
		t.Errorf("LocMatcher accuracy %.2f too low", acc)
	}

	probs := m.Probabilities(test[0])
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestLocMatcherNoContextVariant(t *testing.T) {
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds)[:60], DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	cfg := DefaultLocMatcherConfig()
	cfg.NoContext = true
	cfg.MaxEpochs = 2
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(samples[0]); p < 0 || p >= len(samples[0].Cands) {
		t.Fatalf("invalid prediction %d", p)
	}
}

func TestLocMatcherFitRequiresLabels(t *testing.T) {
	m := NewLocMatcher(DefaultLocMatcherConfig())
	if _, err := m.Fit(context.Background(), nil, nil); err == nil {
		t.Error("expected error for empty training set")
	}
}

func TestLocMatcherSingleCandidate(t *testing.T) {
	m := NewLocMatcher(DefaultLocMatcherConfig())
	s := &Sample{Cands: []Candidate{{LocID: 0}}}
	if m.Predict(s) != 0 {
		t.Error("single candidate must be chosen")
	}
	if m.Predict(&Sample{}) != -1 {
		t.Error("no candidates must yield -1")
	}
}

func TestLocMatcherExplain(t *testing.T) {
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds)[:40], DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	cfg := DefaultLocMatcherConfig()
	cfg.MaxEpochs = 3
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	ex := m.Explain(s)
	if len(ex) != len(s.Cands) {
		t.Fatalf("explanation has %d entries, want %d", len(ex), len(s.Cands))
	}
	var sum float64
	for i, e := range ex {
		sum += e.Prob
		if i > 0 && e.Prob > ex[i-1].Prob {
			t.Fatal("explanation not sorted by probability")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if ex[0].Index != m.Predict(s) {
		t.Error("top explanation disagrees with Predict")
	}
	if m.Explain(&Sample{}) != nil {
		t.Error("empty sample should have nil explanation")
	}
}

func TestLocMatcherPermutationInvariance(t *testing.T) {
	// With the transformer encoder (no positional encoding) and per-sample
	// softmax, shuffling the candidate order must not change which location
	// is predicted — the property that justifies the set-based design
	// (Section IV-B).
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds)[:50], DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	cfg := DefaultLocMatcherConfig()
	cfg.MaxEpochs = 3
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, s := range samples[:15] {
		if len(s.Cands) < 2 {
			continue
		}
		want := s.Cands[m.Predict(s)].LocID
		perm := &Sample{
			Addr: s.Addr, POI: s.POI, NDeliveries: s.NDeliveries,
			Geocode: s.Geocode, Label: -1,
			Cands: append([]Candidate(nil), s.Cands...),
		}
		rng.Shuffle(len(perm.Cands), func(i, j int) {
			perm.Cands[i], perm.Cands[j] = perm.Cands[j], perm.Cands[i]
		})
		if got := perm.Cands[m.Predict(perm)].LocID; got != want {
			t.Fatalf("address %d: prediction changed under permutation (%d vs %d)", s.Addr, got, want)
		}
	}
}
