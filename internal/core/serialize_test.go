package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dlinfma/internal/nn"
)

func TestLocMatcherSaveLoadRoundTrip(t *testing.T) {
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds)[:80], DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	cfg := DefaultLocMatcherConfig()
	cfg.MaxEpochs = 3
	cfg.LR = 1e-3
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLocMatcher(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Loaded model produces identical probabilities on every sample.
	for _, s := range samples[:20] {
		a := m.Probabilities(s)
		b := loaded.Probabilities(s)
		if len(a) != len(b) {
			t.Fatal("probability lengths differ")
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("probabilities differ at %d: %v vs %v", i, a[i], b[i])
			}
		}
		if m.Predict(s) != loaded.Predict(s) {
			t.Fatal("predictions differ after round trip")
		}
	}
}

func TestLocMatcherSaveLoadLSTMVariant(t *testing.T) {
	ds, _, pipe := tiny(t)
	samples := pipe.BuildSamples(addressIDs(ds)[:40], DefaultSampleOptions())
	LabelSamples(samples, ds.Truth)
	cfg := DefaultLocMatcherConfig()
	cfg.UseLSTM = true
	cfg.MaxEpochs = 2
	m := NewLocMatcher(cfg)
	if _, err := m.Fit(context.Background(), samples, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLocMatcher(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Predict(samples[0]) != m.Predict(samples[0]) {
		t.Fatal("LSTM variant round trip differs")
	}
}

func TestLoadLocMatcherBadInput(t *testing.T) {
	if _, err := LoadLocMatcher(strings.NewReader("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
	// Params from a different architecture must be rejected.
	a := NewLocMatcher(DefaultLocMatcherConfig())
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	_ = decodeJSON(buf.Bytes(), &doc)
	cfg := doc["cfg"].(map[string]interface{})
	cfg["Hidden"] = 16.0 // architecture mismatch vs saved 8-dim params
	if _, err := LoadLocMatcher(bytes.NewReader(encodeJSON(doc))); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestSaveLoadParams(t *testing.T) {
	p1 := nn.NewParam([]float64{1, 2, 3, 4}, 2, 2)
	p2 := nn.NewParam([]float64{5, 6}, 2)
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, []*nn.Tensor{p1, p2}); err != nil {
		t.Fatal(err)
	}
	q1 := nn.ZeroParam(2, 2)
	q2 := nn.ZeroParam(2)
	if err := nn.LoadParams(&buf, []*nn.Tensor{q1, q2}); err != nil {
		t.Fatal(err)
	}
	for i, v := range p1.Data {
		if q1.Data[i] != v {
			t.Fatal("params not restored")
		}
	}
	// Count mismatch.
	var buf2 bytes.Buffer
	_ = nn.SaveParams(&buf2, []*nn.Tensor{p1})
	if err := nn.LoadParams(&buf2, []*nn.Tensor{q1, q2}); err == nil {
		t.Error("tensor count mismatch accepted")
	}
}

func decodeJSON(b []byte, v interface{}) error { return json.Unmarshal(b, v) }

func encodeJSON(v interface{}) []byte {
	b, _ := json.Marshal(v)
	return b
}
