// Package core implements the paper's contribution, DLInfMA: location
// candidate generation (stay-point extraction, candidate-pool construction
// by centroid-linkage hierarchical clustering, temporal-upper-bound
// candidate retrieval), feature extraction (matching, profile and address
// features), and the LocMatcher attention model that selects the delivery
// location among all candidates of an address jointly.
package core

import (
	"context"
	"runtime"
	"sync"

	"dlinfma/internal/cluster"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/nn"
	"dlinfma/internal/obs"
	"dlinfma/internal/traj"
)

// Config holds the pipeline's hyper-parameters with the paper's defaults.
type Config struct {
	// Noise filtering and stay-point detection (Section III-A).
	Noise traj.NoiseFilterConfig
	Stay  traj.StayPointConfig
	// ClusterDistance is the hierarchical-clustering cutoff D (Section
	// III-B; 40 m at the paper's Figure 10(a) optimum).
	ClusterDistance float64
	// PoolWindowSeconds enables the paper's bi-weekly incremental pool
	// maintenance: stay points are clustered per window, then windows are
	// merged by re-clustering weighted centroids. Zero clusters everything
	// at once.
	PoolWindowSeconds float64
	// UseGridMerge switches candidate generation to grid merging (the
	// DLInfMA-Grid variant).
	UseGridMerge bool
	// Workers bounds stay-point extraction parallelism; 0 means GOMAXPROCS.
	Workers int
	// LCTotalTrips overrides the location-commonality denominator's trip
	// universe (Equation 2). Zero uses the pipeline's own dataset size; a
	// sharded engine sets the global trip count here so per-shard pipelines
	// normalize LC exactly like one global pipeline would.
	LCTotalTrips int
}

// DefaultConfig returns the paper's settings: D_max = 20 m, T_min = 30 s,
// D = 40 m, bi-weekly pool windows.
func DefaultConfig() Config {
	return Config{
		Noise:             traj.DefaultNoiseFilter(),
		Stay:              traj.DefaultStayPointConfig(),
		ClusterDistance:   40,
		PoolWindowSeconds: 14 * 86400,
	}
}

// Location is one delivery-location candidate in the pool, with the profile
// features of Section III-B.
type Location struct {
	ID  int
	Loc geo.Point
	// AvgDuration is the mean stay duration at the location in seconds.
	AvgDuration float64
	// NCouriers is the number of distinct couriers observed at the location.
	NCouriers int
	// TimeDist is the normalized 24-bin hour-of-day distribution of visits.
	TimeDist [24]float64
	// NStays is the number of stay points merged into the location.
	NStays int
}

// StayVisit is one stay of one trip, resolved to a pool location.
type StayVisit struct {
	LocID   int
	ArriveT float64
	LeaveT  float64
	MidT    float64
}

// Pool is the candidate pool plus the per-trip visit lists used for
// retrieval and feature extraction.
type Pool struct {
	Locations []Location
	// Visits[t] lists the trip t's stays in chronological order.
	Visits [][]StayVisit

	index *geo.Index
	// indexOnce guards the lazy index build in Nearest, which may be called
	// from many goroutines at once (parallel feature extraction).
	indexOnce sync.Once
}

// stayRecord tags an extracted stay point with its trip and courier.
type stayRecord struct {
	sp      traj.StayPoint
	trip    int
	courier model.CourierID
}

// ExtractAllStayPoints runs noise filtering and stay-point detection over
// every trip in parallel (the paper's trajectory-level parallelization,
// Section V-F). Cancelling ctx stops the fan-out between trips and returns
// ctx.Err().
func ExtractAllStayPoints(ctx context.Context, ds *model.Dataset, cfg Config) ([][]traj.StayPoint, error) {
	out := make([][]traj.StayPoint, len(ds.Trips))
	err := nn.ParallelForCtx(ctx, cfg.workers(), len(ds.Trips), func(i int) {
		out[i] = extractStayPoints(ds.Trips[i].Traj, cfg)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// workers resolves Config.Workers, mapping 0 to GOMAXPROCS.
func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BuildPool constructs the candidate pool from a dataset: stay-point
// extraction, clustering (hierarchical with cutoff D, optionally per time
// window with incremental merging, or grid merging for the variant), and
// profile computation. Cancelling ctx aborts between trips during
// extraction and between windows during clustering, returning ctx.Err().
func BuildPool(ctx context.Context, ds *model.Dataset, cfg Config) (*Pool, error) {
	if cfg.ClusterDistance <= 0 {
		cfg.ClusterDistance = 40
	}
	stays, err := ExtractAllStayPoints(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	var records []stayRecord
	for t, sps := range stays {
		for _, sp := range sps {
			records = append(records, stayRecord{sp: sp, trip: t, courier: ds.Trips[t].Courier})
		}
	}
	sp := obs.StartSpanCtx(ctx, "cluster", stageCluster)
	assign, err := clusterStays(ctx, records, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	return assemblePool(ds, records, assign), nil
}

// clusterStays returns, for each stay record, the id of its pool location.
func clusterStays(ctx context.Context, records []stayRecord, cfg Config) ([]int, error) {
	pts := make([]geo.Point, len(records))
	for i, r := range records {
		pts[i] = r.sp.Loc
	}
	if cfg.UseGridMerge {
		return labelsFromClusters(cluster.GridMerge(pts, cfg.ClusterDistance), len(records)), nil
	}
	if cfg.PoolWindowSeconds <= 0 {
		return labelsFromClusters(cluster.Hierarchical(pts, cfg.ClusterDistance), len(records)), nil
	}
	// Incremental mode: cluster each time window independently, then merge
	// window-level candidates by re-clustering their weighted centroids —
	// the paper's bi-weekly pool maintenance.
	minT := 0.0
	for i, r := range records {
		if i == 0 || r.sp.ArriveT < minT {
			minT = r.sp.ArriveT
		}
	}
	byWindow := make(map[int][]int)
	for i, r := range records {
		wdx := int((r.sp.ArriveT - minT) / cfg.PoolWindowSeconds)
		byWindow[wdx] = append(byWindow[wdx], i)
	}
	var wpts []cluster.WeightedPoint
	var wmembers [][]int // stay indices behind each window-level candidate
	for _, idxs := range byWindow {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub := make([]geo.Point, len(idxs))
		for j, i := range idxs {
			sub[j] = records[i].sp.Loc
		}
		for _, c := range cluster.Hierarchical(sub, cfg.ClusterDistance) {
			stayIdxs := make([]int, len(c.Members))
			for j, m := range c.Members {
				stayIdxs[j] = idxs[m]
			}
			wpts = append(wpts, cluster.WeightedPoint{P: c.Centroid, W: c.Weight})
			wmembers = append(wmembers, stayIdxs)
		}
	}
	assign := make([]int, len(records))
	for id, c := range cluster.HierarchicalWeighted(wpts, cfg.ClusterDistance) {
		for _, wi := range c.Members {
			for _, si := range wmembers[wi] {
				assign[si] = id
			}
		}
	}
	return assign, nil
}

func labelsFromClusters(cs []cluster.Cluster, n int) []int {
	assign := make([]int, n)
	for id, c := range cs {
		for _, m := range c.Members {
			assign[m] = id
		}
	}
	return assign
}

// assemblePool computes location centroids, profiles, and per-trip visit
// lists from the stay-to-location assignment.
func assemblePool(ds *model.Dataset, records []stayRecord, assign []int) *Pool {
	nLoc := 0
	for _, a := range assign {
		if a+1 > nLoc {
			nLoc = a + 1
		}
	}
	p := &Pool{
		Locations: make([]Location, nLoc),
		Visits:    make([][]StayVisit, len(ds.Trips)),
	}
	type acc struct {
		sx, sy, dur float64
		hist        [24]float64
		couriers    map[model.CourierID]struct{}
		n           int
	}
	accs := make([]acc, nLoc)
	for i, r := range records {
		id := assign[i]
		a := &accs[id]
		if a.couriers == nil {
			a.couriers = make(map[model.CourierID]struct{}, 2)
		}
		a.sx += r.sp.Loc.X
		a.sy += r.sp.Loc.Y
		a.dur += r.sp.Duration()
		hour := int(r.sp.MidT()/3600) % 24
		if hour < 0 {
			hour += 24
		}
		a.hist[hour]++
		a.couriers[r.courier] = struct{}{}
		a.n++
		p.Visits[r.trip] = append(p.Visits[r.trip], StayVisit{
			LocID: id, ArriveT: r.sp.ArriveT, LeaveT: r.sp.LeaveT, MidT: r.sp.MidT(),
		})
	}
	pts := make([]geo.Point, nLoc)
	for id := range p.Locations {
		a := &accs[id]
		loc := Location{ID: id, NStays: a.n, NCouriers: len(a.couriers)}
		if a.n > 0 {
			loc.Loc = geo.Point{X: a.sx / float64(a.n), Y: a.sy / float64(a.n)}
			loc.AvgDuration = a.dur / float64(a.n)
			for h, c := range a.hist {
				loc.TimeDist[h] = c / float64(a.n)
			}
		}
		p.Locations[id] = loc
		pts[id] = loc.Loc
	}
	p.index = geo.NewIndex(pts, 50)
	poolLocationsGauge.Set(float64(nLoc))
	return p
}

// Nearest returns the pool location closest to q and its distance, or
// (-1, +Inf) for an empty pool.
func (p *Pool) Nearest(q geo.Point) (int, float64) {
	p.indexOnce.Do(func() {
		if p.index == nil {
			p.index = geo.NewIndex(locPoints(p.Locations), 50)
		}
	})
	return p.index.Nearest(q)
}

func locPoints(ls []Location) []geo.Point {
	pts := make([]geo.Point, len(ls))
	for i, l := range ls {
		pts[i] = l.Loc
	}
	return pts
}
