package core

import (
	"context"
	"math"

	"dlinfma/internal/geo"
	"dlinfma/internal/geocode"
	"dlinfma/internal/model"
	"dlinfma/internal/nn"
	"dlinfma/internal/obs"
)

// FeatureMask selects which feature groups the featurizer emits. The zero
// value (nothing masked out) is produced by AllFeatures. Each DLInfMA-nX
// ablation in Table II clears one group.
type FeatureMask struct {
	TC      bool // trip coverage (matching)
	LC      bool // location commonality (matching)
	Dist    bool // distance to the geocoded location (matching)
	Profile bool // average duration, #couriers, time distribution
	Address bool // #deliveries + POI category (the context vector)
}

// AllFeatures enables every feature group.
func AllFeatures() FeatureMask {
	return FeatureMask{TC: true, LC: true, Dist: true, Profile: true, Address: true}
}

// Candidate is one retrieved location candidate of an address with its
// matching and profile features (Section IV-A).
type Candidate struct {
	LocID     int
	Loc       geo.Point
	TC        float64 // Equation (1)
	LC        float64 // Equation (2)
	Dist      float64 // meters to the geocoded waybill location
	AvgDur    float64 // seconds
	NCouriers float64
	TimeDist  [24]float64
}

// Sample is the per-address unit of supervised learning and inference: the
// address features plus all its candidates.
type Sample struct {
	Addr        model.AddressID
	POI         geocode.POICategory
	NDeliveries float64 // number of trips involving the address
	Geocode     geo.Point
	Cands       []Candidate

	// Label indexes the candidate nearest the ground-truth delivery
	// location (-1 when unlabelled). LabelDist is that candidate's distance
	// to the truth — the irreducible error of candidate generation.
	Label     int
	LabelDist float64
	Truth     geo.Point
	HasTruth  bool
}

// Pipeline binds a dataset to its candidate pool and precomputed per-trip /
// per-building statistics, and answers retrieval and featurization queries.
type Pipeline struct {
	Cfg  Config
	DS   *model.Dataset
	Pool *Pool

	tripsOfAddr map[model.AddressID][]int
	tripsOfBld  map[model.BuildingID][]int
	tripLocSet  []map[int]struct{} // locations visited per trip (any time)
	locTrips    []int              // number of trips visiting each location
	addrInfo    map[model.AddressID]model.AddressInfo
}

// NewPipeline builds the pool and all retrieval indexes for a dataset.
// Cancelling ctx aborts the pool build and returns ctx.Err().
func NewPipeline(ctx context.Context, ds *model.Dataset, cfg Config) (*Pipeline, error) {
	pool, err := BuildPool(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Cfg: cfg, DS: ds, Pool: pool}
	p.buildIndexes()
	return p, nil
}

// NewPipelineWithPool wires a prebuilt pool (used by tests and by pool
// parameter sweeps that reuse stay extraction).
func NewPipelineWithPool(ds *model.Dataset, cfg Config, pool *Pool) *Pipeline {
	p := &Pipeline{Cfg: cfg, DS: ds, Pool: pool}
	p.buildIndexes()
	return p
}

func (p *Pipeline) buildIndexes() {
	p.tripsOfAddr = make(map[model.AddressID][]int)
	p.tripsOfBld = make(map[model.BuildingID][]int)
	p.addrInfo = make(map[model.AddressID]model.AddressInfo, len(p.DS.Addresses))
	for _, a := range p.DS.Addresses {
		p.addrInfo[a.ID] = a
	}
	p.tripLocSet = make([]map[int]struct{}, len(p.DS.Trips))
	p.locTrips = make([]int, len(p.Pool.Locations))
	for t := range p.DS.Trips {
		set := make(map[int]struct{}, len(p.Pool.Visits[t]))
		for _, v := range p.Pool.Visits[t] {
			set[v.LocID] = struct{}{}
		}
		p.tripLocSet[t] = set
		for id := range set {
			p.locTrips[id]++
		}
		seenAddr := make(map[model.AddressID]bool)
		seenBld := make(map[model.BuildingID]bool)
		for _, w := range p.DS.Trips[t].Waybills {
			if !seenAddr[w.Addr] {
				seenAddr[w.Addr] = true
				p.tripsOfAddr[w.Addr] = append(p.tripsOfAddr[w.Addr], t)
			}
			if info, ok := p.addrInfo[w.Addr]; ok && !seenBld[info.Building] {
				seenBld[info.Building] = true
				p.tripsOfBld[info.Building] = append(p.tripsOfBld[info.Building], t)
			}
		}
	}
}

// RetrieveCandidates implements Section III-C: the union, over all trips
// involving the address, of pool locations whose stay time (interval
// midpoint) is no later than the waybill's recorded delivery time.
func (p *Pipeline) RetrieveCandidates(addr model.AddressID) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, t := range p.tripsOfAddr[addr] {
		// Recorded delivery time of this address's waybill in this trip.
		// With several parcels, any stay before the latest confirmation is
		// admissible.
		var td float64 = math.Inf(-1)
		for _, w := range p.DS.Trips[t].Waybills {
			if w.Addr == addr && w.RecordedDeliveryT > td {
				td = w.RecordedDeliveryT
			}
		}
		for _, v := range p.Pool.Visits[t] {
			if v.MidT <= td {
				if _, ok := seen[v.LocID]; !ok {
					seen[v.LocID] = struct{}{}
					out = append(out, v.LocID)
				}
			}
		}
	}
	return out
}

// retrieveAll returns every location visited by the address's trips,
// ignoring the recorded-time upper bound (the ablation
// BenchmarkAblationTemporalFilter compares against this).
func (p *Pipeline) retrieveAllVisited(addr model.AddressID) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, t := range p.tripsOfAddr[addr] {
		for _, v := range p.Pool.Visits[t] {
			if _, ok := seen[v.LocID]; !ok {
				seen[v.LocID] = struct{}{}
				out = append(out, v.LocID)
			}
		}
	}
	return out
}

// TripCoverage computes Equation (1) for location loc and address addr.
func (p *Pipeline) TripCoverage(loc int, addr model.AddressID) float64 {
	trips := p.tripsOfAddr[addr]
	if len(trips) == 0 {
		return 0
	}
	n := 0
	for _, t := range trips {
		if _, ok := p.tripLocSet[t][loc]; ok {
			n++
		}
	}
	return float64(n) / float64(len(trips))
}

// LocationCommonality computes Equation (2): among trips that involve no
// address of the same building, the fraction passing through loc. When
// perAddress is true it uses the address's own trips as the exclusion set
// instead (the DLInfMA-LCaddr ablation).
func (p *Pipeline) LocationCommonality(loc int, addr model.AddressID, perAddress bool) float64 {
	var excluded []int
	if perAddress {
		excluded = p.tripsOfAddr[addr]
	} else if info, ok := p.addrInfo[addr]; ok {
		excluded = p.tripsOfBld[info.Building]
	}
	exSet := make(map[int]struct{}, len(excluded))
	for _, t := range excluded {
		exSet[t] = struct{}{}
	}
	total := p.Cfg.LCTotalTrips
	if total <= 0 {
		total = len(p.DS.Trips)
	}
	den := total - len(exSet)
	if den <= 0 {
		return 0
	}
	// Total trips visiting loc minus excluded trips visiting loc.
	num := p.locTrips[loc]
	for _, t := range excluded {
		if _, ok := p.tripLocSet[t][loc]; ok {
			num--
		}
	}
	if num < 0 {
		num = 0
	}
	return float64(num) / float64(den)
}

// SampleOptions configures featurization.
type SampleOptions struct {
	Mask FeatureMask
	// LCPerAddress switches location commonality to the address-based
	// exclusion set (DLInfMA-LCaddr).
	LCPerAddress bool
	// NoTemporalFilter disables the recorded-time upper bound during
	// retrieval (extension ablation).
	NoTemporalFilter bool
}

// DefaultSampleOptions enables all features with building-level LC.
func DefaultSampleOptions() SampleOptions { return SampleOptions{Mask: AllFeatures()} }

// BuildSample retrieves and featurizes the candidates of one address. It
// returns nil when the address has no trips or no admissible candidates.
func (p *Pipeline) BuildSample(addr model.AddressID, opt SampleOptions) *Sample {
	info, ok := p.addrInfo[addr]
	if !ok {
		return nil
	}
	var locs []int
	if opt.NoTemporalFilter {
		locs = p.retrieveAllVisited(addr)
	} else {
		locs = p.RetrieveCandidates(addr)
	}
	if len(locs) == 0 {
		samplesEmpty.Inc()
		return nil
	}
	samplesWithCands.Inc()
	candidatesTotal.Add(int64(len(locs)))
	s := &Sample{
		Addr:        addr,
		POI:         info.POI,
		NDeliveries: float64(len(p.tripsOfAddr[addr])),
		Geocode:     info.Geocode,
		Label:       -1,
	}
	for _, id := range locs {
		l := p.Pool.Locations[id]
		c := Candidate{LocID: id, Loc: l.Loc}
		if opt.Mask.TC {
			c.TC = p.TripCoverage(id, addr)
		}
		if opt.Mask.LC {
			c.LC = p.LocationCommonality(id, addr, opt.LCPerAddress)
		}
		if opt.Mask.Dist {
			c.Dist = geo.Dist(l.Loc, info.Geocode)
		}
		if opt.Mask.Profile {
			c.AvgDur = l.AvgDuration
			c.NCouriers = float64(l.NCouriers)
			c.TimeDist = l.TimeDist
		}
		s.Cands = append(s.Cands, c)
	}
	return s
}

// BuildSamples featurizes the given addresses in parallel (Cfg.Workers
// goroutines; 0 means GOMAXPROCS), dropping those without candidates. It is
// BuildSamplesCtx with a background context.
func (p *Pipeline) BuildSamples(addrs []model.AddressID, opt SampleOptions) []*Sample {
	out, _ := p.BuildSamplesCtx(context.Background(), addrs, opt)
	return out
}

// BuildSamplesCtx is BuildSamples with cooperative cancellation between
// addresses. The result keeps address order regardless of scheduling: samples
// land in an index-aligned slot array that is compacted serially.
func (p *Pipeline) BuildSamplesCtx(ctx context.Context, addrs []model.AddressID, opt SampleOptions) ([]*Sample, error) {
	defer obs.StartSpanCtx(ctx, "feature_build", stageFeatures).End()
	slots := make([]*Sample, len(addrs))
	err := nn.ParallelForCtx(ctx, p.Cfg.workers(), len(addrs), func(i int) {
		slots[i] = p.BuildSample(addrs[i], opt)
	})
	if err != nil {
		return nil, err
	}
	var out []*Sample
	for _, s := range slots {
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// Label attaches supervision to a sample: the candidate nearest the
// ground-truth location (the paper labels the nearest candidate positive).
func (s *Sample) SetLabel(truth geo.Point) {
	s.Truth = truth
	s.HasTruth = true
	best, bestD := -1, math.Inf(1)
	for i, c := range s.Cands {
		if d := geo.Dist(c.Loc, truth); d < bestD {
			best, bestD = i, d
		}
	}
	s.Label = best
	s.LabelDist = bestD
}

// LabelSamples attaches ground truth to every sample that has it.
func LabelSamples(samples []*Sample, truth map[model.AddressID]geo.Point) {
	for _, s := range samples {
		if t, ok := truth[s.Addr]; ok {
			s.SetLabel(t)
		}
	}
}

// FlatDim is the length of the flattened per-candidate feature vector used
// by the classification and ranking variants: 3 matching + 2 scalar profile
// + 24 time-distribution + 1 address scalar + 21 POI one-hot.
const FlatDim = 3 + 2 + 24 + 1 + geocode.NumPOICategories

// FlatFeatures returns the concatenated feature vector of candidate i — the
// representation the DLInfMA-{GBDT,RF,MLP,RkDT,RkNet} variants consume.
func (s *Sample) FlatFeatures(i int) []float64 {
	c := s.Cands[i]
	out := make([]float64, 0, FlatDim)
	out = append(out, c.TC, c.LC, c.Dist/100)
	out = append(out, c.AvgDur/60, c.NCouriers)
	out = append(out, c.TimeDist[:]...)
	out = append(out, s.NDeliveries)
	poi := make([]float64, geocode.NumPOICategories)
	if s.POI.Valid() {
		poi[s.POI] = 1
	}
	return append(out, poi...)
}

// PredictedLocation maps a chosen candidate index to its location. It
// returns the geocode when idx is out of range (the deployed system's
// fallback).
func (s *Sample) PredictedLocation(idx int) geo.Point {
	if idx < 0 || idx >= len(s.Cands) {
		return s.Geocode
	}
	return s.Cands[idx].Loc
}

// LabelSamplesMap is LabelSamples over a map of samples keyed by address.
func LabelSamplesMap(samples map[model.AddressID]*Sample, truth map[model.AddressID]geo.Point) {
	for id, s := range samples {
		if t, ok := truth[id]; ok {
			s.SetLabel(t)
		}
	}
}
