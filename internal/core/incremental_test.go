package core

import (
	"context"
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// addWindow feeds one window into the builder, failing the test on error.
func addWindow(t *testing.T, b *IncrementalPoolBuilder, trips []model.Trip) {
	t.Helper()
	if err := b.AddWindow(context.Background(), trips); err != nil {
		t.Fatal(err)
	}
}

// dwellTrip builds a trip that dwells at each of the given locations for
// 90 s with GPS jitter, starting at t0.
func dwellTrip(rng *rand.Rand, courier model.CourierID, t0 float64, locs ...geo.Point) model.Trip {
	var tr traj.Trajectory
	t := t0
	for _, l := range locs {
		for end := t + 90; t < end; t += 10 {
			tr = append(tr, traj.GPSPoint{
				P: geo.Point{X: l.X + rng.NormFloat64()*2, Y: l.Y + rng.NormFloat64()*2},
				T: t,
			})
		}
		// Travel gap.
		t += 120
	}
	return model.Trip{Courier: courier, StartT: t0, EndT: t, Traj: tr}
}

func TestIncrementalBuilderMergesAcrossWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	site := geo.Point{X: 100, Y: 100}
	other := geo.Point{X: 500, Y: 100}
	b := NewIncrementalPoolBuilder(DefaultConfig())
	// Window 1 visits site; window 2 visits site (slightly offset) and other.
	addWindow(t, b, []model.Trip{dwellTrip(rng, 0, 0, site)})
	addWindow(t, b, []model.Trip{dwellTrip(rng, 0, 14*86400, site.Add(geo.Point{X: 5, Y: 0}), other)})
	pool := b.Finalize()

	if len(pool.Locations) != 2 {
		t.Fatalf("got %d locations, want 2 (site merged across windows)", len(pool.Locations))
	}
	// The merged site has two stays and the other one.
	id, d := pool.Nearest(site)
	if d > 20 {
		t.Fatalf("no location near site (%.1f m)", d)
	}
	if pool.Locations[id].NStays != 2 {
		t.Errorf("merged site has %d stays, want 2", pool.Locations[id].NStays)
	}
	if pool.Locations[id].AvgDuration < 60 {
		t.Errorf("merged avg duration %.0f too small", pool.Locations[id].AvgDuration)
	}
	// Visits reference final ids and are per-trip.
	if len(pool.Visits) != 2 {
		t.Fatalf("got %d visit lists, want 2", len(pool.Visits))
	}
	for ti, vs := range pool.Visits {
		if len(vs) == 0 {
			t.Fatalf("trip %d has no visits", ti)
		}
		for _, v := range vs {
			if v.LocID < 0 || v.LocID >= len(pool.Locations) {
				t.Fatalf("trip %d visit references id %d", ti, v.LocID)
			}
		}
	}
}

func TestIncrementalBuilderCourierProfileMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	site := geo.Point{X: 50, Y: 50}
	b := NewIncrementalPoolBuilder(DefaultConfig())
	addWindow(t, b, []model.Trip{dwellTrip(rng, 0, 0, site)})
	addWindow(t, b, []model.Trip{dwellTrip(rng, 1, 14*86400, site)})
	pool := b.Finalize()
	id, _ := pool.Nearest(site)
	if pool.Locations[id].NCouriers != 2 {
		t.Errorf("merged location has %d couriers, want 2", pool.Locations[id].NCouriers)
	}
}

func TestBuildPoolIncrementallyMatchesOneShot(t *testing.T) {
	// The incremental builder must stay equivalent to the one-shot build
	// whatever the window size: the same per-trip visit counts exactly, and
	// a pool of comparable size (merge order differs, so only approximately).
	ds, _, _ := tiny(t)
	ctx := context.Background()
	cfgOne := DefaultConfig()
	cfgOne.PoolWindowSeconds = 0
	one, err := BuildPool(ctx, ds, cfgOne)
	if err != nil {
		t.Fatal(err)
	}

	for _, windowDays := range []float64{3, 7, 14, 60} {
		cfg := DefaultConfig()
		cfg.PoolWindowSeconds = windowDays * 86400
		inc, err := BuildPoolIncrementally(ctx, ds, cfg)
		if err != nil {
			t.Fatalf("window %.0fd: %v", windowDays, err)
		}

		if len(inc.Visits) != len(one.Visits) {
			t.Fatalf("window %.0fd: visit lists %d vs %d", windowDays, len(inc.Visits), len(one.Visits))
		}
		for ti := range inc.Visits {
			if len(inc.Visits[ti]) != len(one.Visits[ti]) {
				t.Fatalf("window %.0fd trip %d: %d vs %d visits",
					windowDays, ti, len(inc.Visits[ti]), len(one.Visits[ti]))
			}
		}
		ratio := float64(len(inc.Locations)) / float64(len(one.Locations))
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("window %.0fd: incremental pool %d vs one-shot %d",
				windowDays, len(inc.Locations), len(one.Locations))
		}

		// The pipeline works end to end on the incremental pool.
		pipe := NewPipelineWithPool(ds, cfg, inc)
		found := false
		for _, a := range ds.Addresses {
			if len(pipe.RetrieveCandidates(a.ID)) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("window %.0fd: no candidates retrievable from the incremental pool", windowDays)
		}
	}
}

func TestBuildPoolIncrementallyCancel(t *testing.T) {
	ds, _, _ := tiny(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildPoolIncrementally(ctx, ds, DefaultConfig()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	b := NewIncrementalPoolBuilder(DefaultConfig())
	if err := b.AddWindow(ctx, ds.Trips[:1]); err != context.Canceled {
		t.Fatalf("AddWindow on cancelled ctx: got %v, want context.Canceled", err)
	}
	// The builder is untouched by the failed window.
	if pool := b.Finalize(); len(pool.Locations) != 0 {
		t.Errorf("cancelled window leaked %d locations into the builder", len(pool.Locations))
	}
}

func TestIncrementalBuilderEmptyWindow(t *testing.T) {
	b := NewIncrementalPoolBuilder(DefaultConfig())
	addWindow(t, b, nil)
	pool := b.Finalize()
	if len(pool.Locations) != 0 {
		t.Errorf("empty builder produced %d locations", len(pool.Locations))
	}
}

func TestIncrementalBuilderSnapshotSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewIncrementalPoolBuilder(DefaultConfig())
	addWindow(t, b, []model.Trip{dwellTrip(rng, 0, 0, geo.Point{X: 10, Y: 10})})
	p1 := b.Finalize()
	addWindow(t, b, []model.Trip{dwellTrip(rng, 0, 14*86400, geo.Point{X: 900, Y: 900})})
	p2 := b.Finalize()
	if len(p1.Locations) != 1 || len(p2.Locations) != 2 {
		t.Errorf("snapshots: %d then %d locations, want 1 then 2", len(p1.Locations), len(p2.Locations))
	}
}
