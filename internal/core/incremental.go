package core

import (
	"context"
	"sort"

	"dlinfma/internal/cluster"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/nn"
	"dlinfma/internal/obs"
	"dlinfma/internal/traj"
)

// IncrementalPoolBuilder maintains the candidate pool the way the deployed
// system does (Sections III-B and V-F): each new time window's stay points
// are clustered on their own, then the window's candidates are merged with
// the existing pool by re-clustering weighted centroids. Profiles (duration,
// couriers, time distribution) merge additively.
//
// The one-shot BuildPool is equivalent for offline experiments; this builder
// exists for the production pattern of appending a new bi-weekly batch of
// trips without reprocessing history.
type IncrementalPoolBuilder struct {
	cfg Config

	// Accumulated pool state: one entry per current candidate.
	items []incrementalItem
	// visits records, per appended trip, its stay visits tagged with the
	// *builder-internal* item index; Finalize rewrites them to final ids.
	visits [][]rawVisit
	// pending holds trips whose stay points have been appended but not yet
	// clustered into the pool; SealWindow turns them into one window. Each
	// already owns a reserved slot in visits so trip order is fixed at
	// append time.
	pending []pendingTrip
}

// pendingTrip is one streamed trip awaiting its window seal.
type pendingTrip struct {
	slot    int // index into visits reserved for this trip
	courier model.CourierID
	stays   []traj.StayPoint
}

type incrementalItem struct {
	centroid geo.Point
	weight   float64
	dur      float64
	hist     [24]float64
	couriers map[model.CourierID]struct{}
	// alive items are current candidates; merged items point to their
	// successor so old visit tags can be chased to the final location.
	succ int // -1 while alive
}

type rawVisit struct {
	item    int
	arriveT float64
	leaveT  float64
	midT    float64
}

// NewIncrementalPoolBuilder returns an empty builder.
func NewIncrementalPoolBuilder(cfg Config) *IncrementalPoolBuilder {
	if cfg.ClusterDistance <= 0 {
		cfg.ClusterDistance = 40
	}
	return &IncrementalPoolBuilder{cfg: cfg}
}

// AddWindow ingests one window of trips: extracts stay points (in parallel,
// bounded by Config.Workers), clusters them within the window, and merges
// the window's candidates into the pool. Trips must be appended across calls
// in the same order they will appear in the dataset handed to the pipeline.
// Cancelling ctx aborts before the builder state is touched, so a cancelled
// AddWindow leaves the pool exactly as it was.
func (b *IncrementalPoolBuilder) AddWindow(ctx context.Context, trips []model.Trip) error {
	// Extract this window's stay points, then funnel through the same
	// append/seal path the streaming engine drives point by point, so batch
	// and streamed ingest produce identical pools.
	perTrip := make([][]traj.StayPoint, len(trips))
	err := nn.ParallelForCtx(ctx, b.cfg.workers(), len(trips), func(ti int) {
		perTrip[ti] = extractStayPoints(trips[ti].Traj, b.cfg)
	})
	if err != nil {
		return err
	}
	for ti := range trips {
		b.AppendTripStays(trips[ti].Courier, perTrip[ti])
	}
	return b.SealWindow(ctx)
}

// AppendTripStays queues one trip's already-extracted stay points for the
// next window seal, reserving the trip's slot in the visit log immediately
// (trip order across the builder's lifetime is append order). The builder
// takes ownership of stays. This is the streaming entry point: the engine
// feeds it stay points as its StreamExtractor closes them, then calls
// SealWindow on the window's time or size bound.
func (b *IncrementalPoolBuilder) AppendTripStays(courier model.CourierID, stays []traj.StayPoint) {
	slot := len(b.visits)
	b.visits = append(b.visits, nil)
	b.pending = append(b.pending, pendingTrip{slot: slot, courier: courier, stays: stays})
}

// PendingTrips reports how many appended trips await a SealWindow.
func (b *IncrementalPoolBuilder) PendingTrips() int { return len(b.pending) }

// SealWindow clusters every pending trip's stay points as one window and
// merges the window's candidates into the pool, exactly as AddWindow does
// for a batch. A seal with nothing pending is a no-op. ctx carries the
// trace span only; the seal always completes once started.
func (b *IncrementalPoolBuilder) SealWindow(ctx context.Context) error {
	if len(b.pending) == 0 {
		return nil
	}
	defer obs.StartSpanCtx(ctx, "pool_window", stagePoolWindow).End()
	type stay struct {
		sp   traj.StayPoint
		trip int // index into b.pending
	}
	var stays []stay
	for ti := range b.pending {
		for _, sp := range b.pending[ti].stays {
			stays = append(stays, stay{sp: sp, trip: ti})
		}
	}
	pts := make([]geo.Point, len(stays))
	for i, s := range stays {
		pts[i] = s.sp.Loc
	}
	var windowClusters []cluster.Cluster
	if b.cfg.UseGridMerge {
		windowClusters = cluster.GridMerge(pts, b.cfg.ClusterDistance)
	} else {
		windowClusters = cluster.Hierarchical(pts, b.cfg.ClusterDistance)
	}

	// Install the window's candidates as new items and record visits.
	windowVisits := make([][]rawVisit, len(b.pending))
	for _, c := range windowClusters {
		item := incrementalItem{
			centroid: c.Centroid,
			weight:   float64(len(c.Members)),
			couriers: make(map[model.CourierID]struct{}, 2),
			succ:     -1,
		}
		id := len(b.items)
		for _, m := range c.Members {
			s := stays[m]
			item.dur += s.sp.Duration()
			hour := int(s.sp.MidT()/3600) % 24
			if hour < 0 {
				hour += 24
			}
			item.hist[hour]++
			item.couriers[b.pending[s.trip].courier] = struct{}{}
			windowVisits[s.trip] = append(windowVisits[s.trip], rawVisit{
				item: id, arriveT: s.sp.ArriveT, leaveT: s.sp.LeaveT, midT: s.sp.MidT(),
			})
		}
		b.items = append(b.items, item)
	}
	for ti, vs := range windowVisits {
		sort.Slice(vs, func(i, j int) bool { return vs[i].arriveT < vs[j].arriveT })
		b.visits[b.pending[ti].slot] = vs
	}
	b.pending = nil

	b.mergeAlive()
	return nil
}

// mergeAlive re-clusters all alive item centroids (weighted) and merges any
// that fall together, preserving additive profiles.
func (b *IncrementalPoolBuilder) mergeAlive() {
	var aliveIdx []int
	var wpts []cluster.WeightedPoint
	for i := range b.items {
		if b.items[i].succ == -1 {
			aliveIdx = append(aliveIdx, i)
			wpts = append(wpts, cluster.WeightedPoint{P: b.items[i].centroid, W: b.items[i].weight})
		}
	}
	for _, c := range cluster.HierarchicalWeighted(wpts, b.cfg.ClusterDistance) {
		if len(c.Members) < 2 {
			continue
		}
		// Merge into a fresh item.
		merged := incrementalItem{
			centroid: c.Centroid,
			couriers: make(map[model.CourierID]struct{}, 4),
			succ:     -1,
		}
		id := len(b.items)
		for _, m := range c.Members {
			it := &b.items[aliveIdx[m]]
			merged.weight += it.weight
			merged.dur += it.dur
			for h := range it.hist {
				merged.hist[h] += it.hist[h]
			}
			for cr := range it.couriers {
				merged.couriers[cr] = struct{}{}
			}
			it.succ = id
		}
		b.items = append(b.items, merged)
	}
}

// resolve chases succ pointers to the current representative of an item.
func (b *IncrementalPoolBuilder) resolve(i int) int {
	for b.items[i].succ != -1 {
		i = b.items[i].succ
	}
	return i
}

// Finalize produces the Pool. The builder can keep accepting windows after
// Finalize; each call snapshots the current state.
func (b *IncrementalPoolBuilder) Finalize() *Pool {
	return b.FinalizeCtx(context.Background())
}

// FinalizeCtx is Finalize with the caller's context, so the finalize stage
// span lands in the request or job trace carrying the builder.
func (b *IncrementalPoolBuilder) FinalizeCtx(ctx context.Context) *Pool {
	// Trips still awaiting a window seal (streamed in but not yet bounded by
	// time or size) form one final window, mirroring BuildPoolIncrementally's
	// trailing partial batch.
	_ = b.SealWindow(ctx)
	defer obs.StartSpanCtx(ctx, "pool_finalize", stagePoolFinalize).End()
	// Assign dense ids to alive items.
	finalID := make(map[int]int)
	p := &Pool{}
	for i := range b.items {
		if b.items[i].succ != -1 {
			continue
		}
		id := len(p.Locations)
		finalID[i] = id
		it := &b.items[i]
		loc := Location{ID: id, Loc: it.centroid, NStays: int(it.weight), NCouriers: len(it.couriers)}
		if it.weight > 0 {
			loc.AvgDuration = it.dur / it.weight
			for h := range it.hist {
				loc.TimeDist[h] = it.hist[h] / it.weight
			}
		}
		p.Locations = append(p.Locations, loc)
	}
	p.Visits = make([][]StayVisit, len(b.visits))
	for t, vs := range b.visits {
		out := make([]StayVisit, len(vs))
		for i, v := range vs {
			out[i] = StayVisit{
				LocID:   finalID[b.resolve(v.item)],
				ArriveT: v.arriveT, LeaveT: v.leaveT, MidT: v.midT,
			}
		}
		p.Visits[t] = out
	}
	pts := locPoints(p.Locations)
	p.index = geo.NewIndex(pts, 50)
	poolLocationsGauge.Set(float64(len(p.Locations)))
	return p
}

// BuildPoolIncrementally splits the dataset's trips into windows of the
// configured length and runs the builder over them — functionally comparable
// to BuildPool with PoolWindowSeconds set, exposed for the production
// append-only pattern and its tests.
func BuildPoolIncrementally(ctx context.Context, ds *model.Dataset, cfg Config) (*Pool, error) {
	window := cfg.PoolWindowSeconds
	if window <= 0 {
		window = 14 * 86400
	}
	b := NewIncrementalPoolBuilder(cfg)
	var batch []model.Trip
	var windowEnd float64
	for i, tr := range ds.Trips {
		if i == 0 {
			windowEnd = tr.StartT + window
		}
		if tr.StartT >= windowEnd {
			if err := b.AddWindow(ctx, batch); err != nil {
				return nil, err
			}
			batch = nil
			for tr.StartT >= windowEnd {
				windowEnd += window
			}
		}
		batch = append(batch, tr)
	}
	if len(batch) > 0 {
		if err := b.AddWindow(ctx, batch); err != nil {
			return nil, err
		}
	}
	return b.FinalizeCtx(ctx), nil
}
