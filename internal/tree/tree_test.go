package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// axisData generates a binary classification problem separable on feature 0
// at threshold 0.5.
func axisData(rng *rand.Rand, n int, noise float64) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		f := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		label := 0.0
		if f[0] > 0.5 {
			label = 1
		}
		if rng.Float64() < noise {
			label = 1 - label
		}
		x = append(x, f)
		y = append(y, label)
	}
	return x, y
}

func accuracy(pred func([]float64) float64, x [][]float64, y []float64) float64 {
	correct := 0
	for i := range x {
		p := 0.0
		if pred(x[i]) > 0.5 {
			p = 1
		}
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestTreeLearnsAxisSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := axisData(rng, 500, 0)
	tr := Fit(x, y, nil, Config{MaxDepth: 3})
	if acc := accuracy(tr.Predict, x, y); acc < 0.99 {
		t.Errorf("train accuracy %v, want ~1.0", acc)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth %d exceeds limit", tr.Depth())
	}
}

func TestTreePureNodeStopsGrowing(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 1, 1, 1}
	tr := Fit(x, y, nil, Config{})
	if tr.Leaves() != 1 {
		t.Errorf("pure targets grew %d leaves, want 1", tr.Leaves())
	}
	if tr.Predict([]float64{9}) != 1 {
		t.Errorf("prediction %v, want 1", tr.Predict([]float64{9}))
	}
}

func TestTreeEmptyInput(t *testing.T) {
	tr := Fit(nil, nil, nil, Config{})
	if got := tr.Predict([]float64{1, 2}); got != 0 {
		t.Errorf("empty-fit tree predicts %v, want 0", got)
	}
}

func TestTreeMaxLeafNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Highly fragmented target to force many candidate splits.
	var x [][]float64
	var y []float64
	for i := 0; i < 800; i++ {
		v := rng.Float64() * 100
		x = append(x, []float64{v})
		y = append(y, math.Mod(math.Floor(v), 7))
	}
	for _, budget := range []int{2, 8, 64} {
		tr := Fit(x, y, nil, Config{MaxLeafNodes: budget})
		if tr.Leaves() > budget {
			t.Errorf("budget %d: got %d leaves", budget, tr.Leaves())
		}
	}
}

func TestTreeBestFirstPicksLargestGainFirst(t *testing.T) {
	// Feature 0 perfectly separates; feature 1 is useless. With a 2-leaf
	// budget, the single split must be on feature 0.
	x := [][]float64{{0, 5}, {0, 1}, {1, 5}, {1, 1}}
	y := []float64{0, 0, 1, 1}
	tr := Fit(x, y, nil, Config{MaxLeafNodes: 2})
	if tr.nodes[0].feature != 0 {
		t.Errorf("root split on feature %d, want 0", tr.nodes[0].feature)
	}
}

func TestTreeSampleWeights(t *testing.T) {
	// Two conflicting points at the same location: the heavier one wins.
	x := [][]float64{{1}, {1}}
	y := []float64{0, 1}
	w := []float64{1, 9}
	tr := Fit(x, y, w, Config{})
	if p := tr.Predict([]float64{1}); math.Abs(p-0.9) > 1e-9 {
		t.Errorf("weighted mean = %v, want 0.9", p)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 1, 1}
	tr := Fit(x, y, nil, Config{MinLeaf: 2})
	// The only legal split is the middle; leaves must hold >= 2 samples.
	if tr.Leaves() != 2 {
		t.Errorf("got %d leaves, want 2", tr.Leaves())
	}
}

func TestTreeRegression(t *testing.T) {
	// y = step function of x; tree should recover it exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		x = append(x, []float64{v})
		target := 1.0
		if v < 0.3 {
			target = -2
		} else if v < 0.7 {
			target = 0.5
		}
		y = append(y, target)
	}
	tr := Fit(x, y, nil, Config{MaxDepth: 4})
	var sse float64
	for i := range x {
		d := tr.Predict(x[i]) - y[i]
		sse += d * d
	}
	if sse > 1e-9 {
		t.Errorf("step-function SSE = %v, want ~0", sse)
	}
}

func TestTreePredictionIsTrainingMeanProperty(t *testing.T) {
	// For any dataset, an unsplittable (depth-0) tree predicts the weighted
	// mean of targets.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		var x [][]float64
		var y []float64
		var sum float64
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 100)
			x = append(x, []float64{float64(i)})
			y = append(y, v)
			sum += v
		}
		tr := Fit(x, y, nil, Config{MaxLeafNodes: 1})
		want := sum / float64(len(y))
		return math.Abs(tr.Predict([]float64{0})-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xTrain, yTrain := axisData(rng, 400, 0.25)
	xTest, yTest := axisData(rng, 400, 0)

	f := FitForest(xTrain, yTrain, nil, ForestConfig{NTrees: 50, Tree: Config{MaxDepth: 6}, Seed: 7})
	if acc := accuracy(f.Predict, xTest, yTest); acc < 0.9 {
		t.Errorf("forest test accuracy %v, want >= 0.9", acc)
	}
}

func TestForestEmptyAndDefaults(t *testing.T) {
	f := FitForest(nil, nil, nil, ForestConfig{})
	if f.Predict([]float64{1}) != 0 {
		t.Error("empty forest should predict 0")
	}
	f = FitForest([][]float64{{1}, {2}}, []float64{0, 1}, nil, ForestConfig{NTrees: 3, Seed: 1})
	if len(f.Trees) != 3 {
		t.Errorf("got %d trees, want 3", len(f.Trees))
	}
}

func TestGBDTLearnsNonLinearBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// XOR-like checkerboard: impossible for one stump, easy for boosting.
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := rng.Float64(), rng.Float64()
		label := 0.0
		if (a > 0.5) != (b > 0.5) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	g := FitGBDT(x, y, nil, GBDTConfig{Stages: 80, LearningRate: 0.3, Tree: Config{MaxDepth: 3}})
	if acc := accuracy(g.Predict, x, y); acc < 0.95 {
		t.Errorf("GBDT accuracy %v, want >= 0.95", acc)
	}
}

func TestGBDTProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := axisData(rng, 200, 0.1)
	g := FitGBDT(x, y, nil, GBDTConfig{Stages: 30})
	for i := range x {
		p := g.Predict(x[i])
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestGBDTClassWeights(t *testing.T) {
	// All-negative data with huge positive weight on a single positive
	// sample: the model must take the weight seriously.
	x := [][]float64{{0}, {0}, {0}, {1}}
	y := []float64{0, 0, 0, 1}
	w := []float64{1, 1, 1, 50}
	g := FitGBDT(x, y, w, GBDTConfig{Stages: 25, LearningRate: 0.5, Tree: Config{MaxDepth: 1}})
	if p := g.Predict([]float64{1}); p < 0.9 {
		t.Errorf("weighted positive got probability %v, want > 0.9", p)
	}
}

func TestGBDTEmpty(t *testing.T) {
	g := FitGBDT(nil, nil, nil, GBDTConfig{})
	if p := g.Predict([]float64{1}); p != 0.5 {
		t.Errorf("empty GBDT predicts %v, want 0.5", p)
	}
}

func TestTreeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := axisData(rng, 200, 0.1)
	a := Fit(x, y, nil, Config{MaxDepth: 5})
	b := Fit(x, y, nil, Config{MaxDepth: 5})
	for i := 0; i < 50; i++ {
		probe := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if a.Predict(probe) != b.Predict(probe) {
			t.Fatal("tree training is nondeterministic")
		}
	}
}

func TestFeatureImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Feature 0 is fully informative, 1 and 2 are noise.
	x, y := axisData(rng, 400, 0)
	tr := Fit(x, y, nil, Config{MaxDepth: 4})
	imp := tr.FeatureImportance(3)
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[0] < 0.9 {
		t.Errorf("informative feature importance %v, want > 0.9 (all: %v)", imp[0], imp)
	}

	g := FitGBDT(x, y, nil, GBDTConfig{Stages: 20})
	gi := g.FeatureImportance(3)
	if gi[0] < gi[1] || gi[0] < gi[2] {
		t.Errorf("GBDT importance should favor feature 0: %v", gi)
	}
	f := FitForest(x, y, nil, ForestConfig{NTrees: 20, Tree: Config{MaxDepth: 4}, Seed: 2})
	fi := f.FeatureImportance(3)
	if fi[0] < fi[1] || fi[0] < fi[2] {
		t.Errorf("forest importance should favor feature 0: %v", fi)
	}

	// Unsplit tree: zero vector, no NaNs.
	empty := Fit([][]float64{{1}}, []float64{1}, nil, Config{})
	for _, v := range empty.FeatureImportance(1) {
		if v != 0 {
			t.Error("unsplit tree should have zero importances")
		}
	}
}
