package tree

import (
	"math"
	"math/rand"
)

// ForestConfig configures a random forest (paper ref [24]; the DLInfMA-RF
// variant uses 400 trees of depth at most 10).
type ForestConfig struct {
	NTrees int
	Tree   Config
	Seed   int64
}

// Forest is a bagged ensemble of regression trees. On 0/1 targets its
// prediction is the positive-class probability.
type Forest struct {
	Trees []*Tree
}

// FitForest trains a random forest with bootstrap sampling and sqrt-feature
// subsetting (unless the tree config specifies its own subset size).
func FitForest(x [][]float64, y []float64, w []float64, cfg ForestConfig) *Forest {
	if cfg.NTrees <= 0 {
		cfg.NTrees = 100
	}
	n := len(x)
	f := &Forest{}
	if n == 0 {
		return f
	}
	if cfg.Tree.FeatureSubset == 0 {
		cfg.Tree.FeatureSubset = int(math.Sqrt(float64(len(x[0])))) + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.NTrees; t++ {
		bx := make([][]float64, n)
		by := make([]float64, n)
		var bw []float64
		if w != nil {
			bw = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
			if w != nil {
				bw[i] = w[j]
			}
		}
		tc := cfg.Tree
		tc.Rand = rand.New(rand.NewSource(rng.Int63()))
		f.Trees = append(f.Trees, Fit(bx, by, bw, tc))
	}
	return f
}

// Predict returns the ensemble average for a feature vector.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.Trees))
}

// FeatureImportance returns normalized split-gain importances across the
// forest (see GBDT.FeatureImportance).
func (f *Forest) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	for _, t := range f.Trees {
		t.accumulateImportance(imp)
	}
	normalize(imp)
	return imp
}
