// Package tree implements the tree-ensemble learners the paper compares
// against: CART decision trees (grown best-first with a leaf budget, as
// GeoRank's 1024-leaf trees require), random forests, and gradient-boosted
// trees with logistic loss. All learners accept per-sample weights so the
// paper's 8:2 class weighting for imbalanced labels is expressible.
//
// Split finding is histogram-based: each feature is quantized to at most
// MaxBins quantile bins once per fit, and candidate splits are scanned over
// bin boundaries in O(n + bins) per feature per node. With fewer unique
// values than bins this is exact CART; otherwise it is the standard
// LightGBM-style approximation.
package tree

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum weighted sample count in a leaf (default 1).
	MinLeaf float64
	// MaxLeafNodes caps the number of leaves via best-first growth; 0 means
	// unlimited. The paper's GeoRank and DLInfMA-RkDT use 1024.
	MaxLeafNodes int
	// FeatureSubset, when positive, samples this many candidate features per
	// split (random forests use sqrt(d)).
	FeatureSubset int
	// MaxBins bounds the per-feature histogram size (default 256).
	MaxBins int
	// Rand supplies randomness for feature subsetting; required when
	// FeatureSubset > 0.
	Rand *rand.Rand
}

type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	value     float64
	gain      float64 // split gain, for feature importances
	leaf      bool
}

// Tree is a trained regression tree. Binary classification trains on 0/1
// targets, making Predict the positive-class probability.
type Tree struct {
	nodes []node
}

// growItem is a pending node in best-first growth.
type growItem struct {
	nodeID  int
	samples []int
	depth   int
	// Best split found for this node; items with higher gain expand first.
	gain      float64
	feature   int
	bin       int // go left when binned value <= bin
	threshold float64
	ok        bool
}

type growHeap []*growItem

func (h growHeap) Len() int            { return len(h) }
func (h growHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h growHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *growHeap) Push(x interface{}) { *h = append(*h, x.(*growItem)) }
func (h *growHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// trainer bundles the immutable training inputs plus the feature histograms.
type trainer struct {
	y   []float64
	w   []float64
	cfg Config

	nf        int
	bins      [][]uint16  // bins[f][sample]
	nBins     []int       // bins per feature
	cutpoints [][]float64 // cutpoints[f][b] = split threshold after bin b
	// scratch histogram buffers reused across nodes
	hw, hy, hy2 []float64
}

// Fit trains a regression tree on features x, targets y, and optional
// per-sample weights w (nil means uniform). Splits minimize weighted squared
// error, which for 0/1 targets is equivalent to Gini impurity up to a
// constant factor.
func Fit(x [][]float64, y []float64, w []float64, cfg Config) *Tree {
	if len(x) == 0 {
		return &Tree{nodes: []node{{leaf: true}}}
	}
	if w == nil {
		w = make([]float64, len(x))
		for i := range w {
			w[i] = 1
		}
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.MaxBins <= 1 {
		cfg.MaxBins = 256
	}
	tr := &trainer{y: y, w: w, cfg: cfg, nf: len(x[0])}
	tr.quantize(x)

	t := &Tree{}
	all := make([]int, len(x))
	for i := range all {
		all[i] = i
	}
	root := t.addLeaf(tr.mean(all))
	h := &growHeap{}
	item := &growItem{nodeID: root, samples: all, depth: 0}
	tr.findBestSplit(item)
	if item.ok {
		heap.Push(h, item)
	}
	leaves := 1
	for h.Len() > 0 {
		if cfg.MaxLeafNodes > 0 && leaves >= cfg.MaxLeafNodes {
			break
		}
		it := heap.Pop(h).(*growItem)
		binRow := tr.bins[it.feature]
		var ls, rs []int
		for _, s := range it.samples {
			if int(binRow[s]) <= it.bin {
				ls = append(ls, s)
			} else {
				rs = append(rs, s)
			}
		}
		l := t.addLeaf(tr.mean(ls))
		r := t.addLeaf(tr.mean(rs))
		t.nodes[it.nodeID].leaf = false
		t.nodes[it.nodeID].feature = it.feature
		t.nodes[it.nodeID].threshold = it.threshold
		t.nodes[it.nodeID].gain = it.gain
		t.nodes[it.nodeID].left = l
		t.nodes[it.nodeID].right = r
		leaves++ // one leaf became two

		for _, child := range []*growItem{
			{nodeID: l, samples: ls, depth: it.depth + 1},
			{nodeID: r, samples: rs, depth: it.depth + 1},
		} {
			if cfg.MaxDepth > 0 && child.depth >= cfg.MaxDepth {
				continue
			}
			tr.findBestSplit(child)
			if child.ok {
				heap.Push(h, child)
			}
		}
	}
	return t
}

// quantize builds per-feature quantile histograms and the binned matrix.
func (tr *trainer) quantize(x [][]float64) {
	n := len(x)
	tr.bins = make([][]uint16, tr.nf)
	tr.nBins = make([]int, tr.nf)
	tr.cutpoints = make([][]float64, tr.nf)
	vals := make([]float64, n)
	maxBins := 0
	for f := 0; f < tr.nf; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Unique values.
		uniq := sorted[:0]
		for i, v := range sorted {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		var bounds []float64 // upper value of each bin except the last
		if len(uniq) <= tr.cfg.MaxBins {
			bounds = append([]float64(nil), uniq...)
		} else {
			for b := 1; b <= tr.cfg.MaxBins; b++ {
				bounds = append(bounds, uniq[(b*len(uniq)-1)/tr.cfg.MaxBins])
			}
		}
		nb := len(bounds)
		tr.nBins[f] = nb
		// Cutpoint after bin b: midpoint between bin b's upper bound and the
		// next bin's upper-bound-representative (its minimum is unknown, the
		// midpoint of consecutive bounds is a faithful stand-in).
		cps := make([]float64, nb)
		for b := 0; b+1 < nb; b++ {
			cps[b] = (bounds[b] + bounds[b+1]) / 2
		}
		if nb > 0 {
			cps[nb-1] = bounds[nb-1]
		}
		tr.cutpoints[f] = cps
		row := make([]uint16, n)
		for i, v := range vals {
			b := sort.SearchFloat64s(bounds, v)
			if b >= nb {
				b = nb - 1
			}
			row[i] = uint16(b)
		}
		tr.bins[f] = row
		if nb > maxBins {
			maxBins = nb
		}
	}
	tr.hw = make([]float64, maxBins)
	tr.hy = make([]float64, maxBins)
	tr.hy2 = make([]float64, maxBins)
}

func (t *Tree) addLeaf(value float64) int {
	t.nodes = append(t.nodes, node{leaf: true, value: value})
	return len(t.nodes) - 1
}

func (tr *trainer) mean(samples []int) float64 {
	var sy, sw float64
	for _, s := range samples {
		sy += tr.y[s] * tr.w[s]
		sw += tr.w[s]
	}
	if sw == 0 {
		return 0
	}
	return sy / sw
}

// findBestSplit scans features for the bin boundary maximizing weighted
// variance reduction and stores it on the item.
func (tr *trainer) findBestSplit(it *growItem) {
	samples := it.samples
	if len(samples) < 2 {
		return
	}
	var totalW, totalY, totalY2 float64
	for _, s := range samples {
		w := tr.w[s]
		yv := tr.y[s]
		totalW += w
		totalY += w * yv
		totalY2 += w * yv * yv
	}
	if totalW < 2*tr.cfg.MinLeaf {
		return
	}
	parentSSE := totalY2 - totalY*totalY/totalW
	if parentSSE <= 1e-12 {
		return // pure node
	}

	features := make([]int, tr.nf)
	for i := range features {
		features[i] = i
	}
	if k := tr.cfg.FeatureSubset; k > 0 && k < tr.nf && tr.cfg.Rand != nil {
		tr.cfg.Rand.Shuffle(tr.nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:k]
	}

	bestGain := 1e-12
	for _, f := range features {
		nb := tr.nBins[f]
		if nb < 2 {
			continue
		}
		hw, hy, hy2 := tr.hw[:nb], tr.hy[:nb], tr.hy2[:nb]
		for b := 0; b < nb; b++ {
			hw[b], hy[b], hy2[b] = 0, 0, 0
		}
		binRow := tr.bins[f]
		for _, s := range samples {
			b := binRow[s]
			w := tr.w[s]
			yv := tr.y[s]
			hw[b] += w
			hy[b] += w * yv
			hy2[b] += w * yv * yv
		}
		var lw, ly, ly2 float64
		for b := 0; b+1 < nb; b++ {
			lw += hw[b]
			ly += hy[b]
			ly2 += hy2[b]
			if lw < tr.cfg.MinLeaf {
				continue
			}
			rw := totalW - lw
			if rw < tr.cfg.MinLeaf {
				break
			}
			if lw == 0 || rw == 0 {
				continue
			}
			ry := totalY - ly
			ry2 := totalY2 - ly2
			sse := (ly2 - ly*ly/lw) + (ry2 - ry*ry/rw)
			if gain := parentSSE - sse; gain > bestGain {
				bestGain = gain
				it.gain = gain
				it.feature = f
				it.bin = b
				it.threshold = tr.cutpoints[f][b]
				it.ok = true
			}
		}
	}
}

// Predict returns the tree's output for a feature vector.
func (t *Tree) Predict(x []float64) float64 {
	i := 0
	for !t.nodes[i].leaf {
		n := t.nodes[i]
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
	return t.nodes[i].value
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	c := 0
	for _, n := range t.nodes {
		if n.leaf {
			c++
		}
	}
	return c
}

// Depth returns the maximum depth of the tree (a lone root has depth 0).
func (t *Tree) Depth() int {
	var rec func(i, d int) int
	rec = func(i, d int) int {
		if t.nodes[i].leaf {
			return d
		}
		l := rec(t.nodes[i].left, d+1)
		r := rec(t.nodes[i].right, d+1)
		return int(math.Max(float64(l), float64(r)))
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return rec(0, 0)
}

// accumulateImportance adds each split's recorded gain to imp[feature].
func (t *Tree) accumulateImportance(imp []float64) {
	for _, n := range t.nodes {
		if !n.leaf && n.feature < len(imp) {
			imp[n.feature] += n.gain
		}
	}
}

// FeatureImportance returns the tree's normalized split-gain importances.
func (t *Tree) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	t.accumulateImportance(imp)
	normalize(imp)
	return imp
}

func normalize(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
