package tree

import "math"

// GBDTConfig configures gradient boosting with logistic loss (paper
// ref [23]; the DLInfMA-GBDT variant uses 150 boosting stages).
type GBDTConfig struct {
	Stages       int
	LearningRate float64
	Tree         Config
}

// GBDT is a gradient-boosted binary classifier.
type GBDT struct {
	bias  float64
	trees []*Tree
	lr    float64
}

// FitGBDT trains gradient-boosted trees on 0/1 labels with optional
// per-sample weights. Each stage fits a regression tree to the negative
// gradient of the logistic loss and applies a Newton leaf correction.
func FitGBDT(x [][]float64, y []float64, w []float64, cfg GBDTConfig) *GBDT {
	if cfg.Stages <= 0 {
		cfg.Stages = 100
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Tree.MaxDepth == 0 {
		cfg.Tree.MaxDepth = 3
	}
	n := len(x)
	g := &GBDT{lr: cfg.LearningRate}
	if n == 0 {
		return g
	}
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}
	// Initialize with the weighted log-odds.
	var pw, tw float64
	for i := range y {
		pw += y[i] * w[i]
		tw += w[i]
	}
	p := math.Min(math.Max(pw/tw, 1e-6), 1-1e-6)
	g.bias = math.Log(p / (1 - p))

	fx := make([]float64, n)
	for i := range fx {
		fx[i] = g.bias
	}
	resid := make([]float64, n)
	for stage := 0; stage < cfg.Stages; stage++ {
		for i := 0; i < n; i++ {
			resid[i] = y[i] - sigmoid(fx[i])
		}
		t := Fit(x, resid, w, cfg.Tree)
		// Newton correction per leaf: value <- sum(w*r) / sum(w*p*(1-p)).
		leafNum := make(map[int]float64)
		leafDen := make(map[int]float64)
		for i := 0; i < n; i++ {
			leaf := t.leafIndex(x[i])
			pi := sigmoid(fx[i])
			leafNum[leaf] += w[i] * resid[i]
			leafDen[leaf] += w[i] * pi * (1 - pi)
		}
		for leaf, num := range leafNum {
			den := leafDen[leaf]
			if den < 1e-12 {
				den = 1e-12
			}
			t.nodes[leaf].value = num / den
		}
		g.trees = append(g.trees, t)
		for i := 0; i < n; i++ {
			fx[i] += cfg.LearningRate * t.Predict(x[i])
		}
	}
	return g
}

// leafIndex returns the node index of the leaf x falls into.
func (t *Tree) leafIndex(x []float64) int {
	i := 0
	for !t.nodes[i].leaf {
		n := t.nodes[i]
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
	return i
}

// Decision returns the raw additive score (log-odds) for x.
func (g *GBDT) Decision(x []float64) float64 {
	s := g.bias
	for _, t := range g.trees {
		s += g.lr * t.Predict(x)
	}
	return s
}

// Predict returns the positive-class probability for x.
func (g *GBDT) Predict(x []float64) float64 { return sigmoid(g.Decision(x)) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// FeatureImportance returns per-feature importances: the total squared-error
// gain attributed to splits on each feature across all boosting stages,
// normalized to sum to 1 (zero vector when no splits exist).
func (g *GBDT) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	for _, t := range g.trees {
		t.accumulateImportance(imp)
	}
	normalize(imp)
	return imp
}
