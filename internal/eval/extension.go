package eval

import (
	"context"
	"fmt"
	"io"

	"dlinfma/internal/baselines"
	"dlinfma/internal/core"
	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// BuildingFallbackResult measures the deployed system's three-level query
// chain (Section VI-A) on addresses never seen in history: the paper adapts
// address-level inference to building level by answering with the
// building's most-used delivery location, falling back to the geocode when
// even the building is unknown.
type BuildingFallbackResult struct {
	// Held-out addresses answered at each level.
	ByBuilding Metrics
	ByGeocode  Metrics
	// All held-out addresses through the full fallback chain.
	Chain Metrics
	// Fraction of held-out addresses answered at building level.
	BuildingCoverage float64
}

// BuildingFallback holds out one address from every multi-address building,
// trains DLInfMA on the rest, loads the inferred locations into a
// deploy.Store, and evaluates the store's answers for the held-out addresses
// as if they had never been delivered — exercising the building-majority
// fallback the paper describes for real-time cases. (The spatial test split
// cannot exercise this chain: it holds out whole buildings, which never have
// known siblings.)
func BuildingFallback(ctx context.Context, p *Prepared) (BuildingFallbackResult, error) {
	var res BuildingFallbackResult

	// Hold out the highest-ID address of each building with >= 2 addresses.
	lastOfBld := make(map[model.BuildingID]model.AddressID)
	countOfBld := make(map[model.BuildingID]int)
	for _, a := range p.DS.Addresses {
		countOfBld[a.Building]++
		if cur, ok := lastOfBld[a.Building]; !ok || a.ID > cur {
			lastOfBld[a.Building] = a.ID
		}
	}
	holdout := make(map[model.AddressID]bool)
	for b, id := range lastOfBld {
		if countOfBld[b] >= 2 {
			holdout[id] = true
		}
	}
	var known []model.AddressID
	for _, a := range p.DS.Addresses {
		if !holdout[a.ID] {
			known = append(known, a.ID)
		}
	}
	nVal := len(known) / 5
	m := dlinfmaForExperiments()
	if err := m.Fit(ctx, p.Env, known[nVal:], known[:nVal]); err != nil {
		return res, err
	}

	store := deploy.NewStore()
	store.LoadDataset(p.DS)
	for _, addr := range known {
		if loc, ok := m.Predict(p.Env, addr); ok {
			store.Put(addr, loc)
		}
	}

	var bldErrs, geoErrs, chainErrs []float64
	nBld := 0
	for addr := range holdout {
		truth, ok := p.DS.Truth[addr]
		if !ok {
			continue
		}
		loc, src := store.Query(addr)
		if src == deploy.SourceNone {
			continue
		}
		err := geo.Dist(loc, truth)
		chainErrs = append(chainErrs, err)
		switch src {
		case deploy.SourceBuilding:
			nBld++
			bldErrs = append(bldErrs, err)
		case deploy.SourceGeocode:
			geoErrs = append(geoErrs, err)
		}
	}
	res.ByBuilding = Compute(bldErrs)
	res.ByGeocode = Compute(geoErrs)
	res.Chain = Compute(chainErrs)
	if len(chainErrs) > 0 {
		res.BuildingCoverage = float64(nBld) / float64(len(chainErrs))
	}
	return res, nil
}

// RenderBuildingFallback writes the extension experiment's results.
func RenderBuildingFallback(w io.Writer, name string, r BuildingFallbackResult) {
	fmt.Fprintf(w, "Extension (%s): building-level fallback for unseen addresses\n", name)
	fmt.Fprintf(w, "  building-level answers: %5.1f%% of queries, MAE %.1f m, beta50 %.1f%%\n",
		100*r.BuildingCoverage, r.ByBuilding.MAE, r.ByBuilding.Beta50)
	fmt.Fprintf(w, "  geocode fallback:       MAE %.1f m, beta50 %.1f%%\n", r.ByGeocode.MAE, r.ByGeocode.Beta50)
	fmt.Fprintf(w, "  full chain:             MAE %.1f m, beta50 %.1f%% (n=%d)\n\n",
		r.Chain.MAE, r.Chain.Beta50, r.Chain.N)
}

// StaySweepPoint is one stay-point-threshold sensitivity measurement
// (Section III-A sets D_max = 20 m, T_min = 30 s following [5]; this
// extension quantifies how sensitive candidate generation is to them).
type StaySweepPoint struct {
	DMax float64
	TMin float64
	// NPoolLocs is the candidate pool size.
	NPoolLocs int
	// CeilingMAE is the mean distance from each labelled address's best
	// candidate to the truth — the irreducible error of candidate
	// generation under these thresholds.
	CeilingMAE float64
	// HeuristicMAE evaluates the cheap MaxTC-ILC selector on the test split,
	// isolating candidate-generation quality from model training.
	HeuristicMAE float64
}

// StaySweep rebuilds the pipeline for each stay-point configuration and
// measures pool size, labelling ceiling, and the heuristic selector's MAE.
func StaySweep(ctx context.Context, p *Prepared, configs []traj.StayPointConfig) []StaySweepPoint {
	var out []StaySweepPoint
	for _, sc := range configs {
		cfg := p.Env.Pipe.Cfg
		cfg.Stay = sc
		env, err := baselines.NewEnv(ctx, p.DS, cfg)
		if err != nil {
			return out
		}
		pt := StaySweepPoint{DMax: sc.DMax, TMin: sc.TMin, NPoolLocs: len(env.Pipe.Pool.Locations)}

		samples := env.Samples(core.DefaultSampleOptions(), false)
		var ceil []float64
		for _, s := range samples {
			if s.Label >= 0 {
				ceil = append(ceil, s.LabelDist)
			}
		}
		pt.CeilingMAE = Compute(ceil).MAE

		m := baselines.MaxTCILC{}
		if res, err := EvaluateMethod(ctx, env, m, p.Split.Train, p.Split.Val, p.Split.Test); err == nil {
			pt.HeuristicMAE = res.MAE
		}
		out = append(out, pt)
	}
	return out
}

// RenderStaySweep writes the sensitivity table.
func RenderStaySweep(w io.Writer, name string, pts []StaySweepPoint) {
	fmt.Fprintf(w, "Extension (%s): stay-point threshold sensitivity\n", name)
	fmt.Fprintf(w, "%8s %8s %10s %12s %14s\n", "Dmax(m)", "Tmin(s)", "#locations", "ceiling MAE", "MaxTC-ILC MAE")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f %8.0f %10d %12.1f %14.1f\n", p.DMax, p.TMin, p.NPoolLocs, p.CeilingMAE, p.HeuristicMAE)
	}
	fmt.Fprintln(w)
}
