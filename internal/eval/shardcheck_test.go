package eval

import (
	"context"
	"math"
	"testing"

	"dlinfma/internal/engine"
	"dlinfma/internal/synth"
)

// TestShardEquivalence is the sharded engine's acceptance check: with
// zone-aligned shards, the sharded pipeline's output is bit-for-bit the
// per-zone reference output, and the comparison against one global engine
// yields finite, comparable accuracy.
func TestShardEquivalence(t *testing.T) {
	p := ZoneAlignedProfile(synth.Tiny())
	cfg := engine.DefaultConfig()
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3

	res, err := ShardEquivalence(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Zones < 2 {
		t.Fatalf("only %d zones; equivalence is vacuous", res.Zones)
	}
	if res.Addresses == 0 {
		t.Fatal("sharded engine inferred nothing")
	}
	if res.ReferenceMismatches != 0 {
		t.Errorf("%d/%d addresses differ from the per-zone reference",
			res.ReferenceMismatches, res.Addresses)
	}
	if res.GlobalAgreement < 0 || res.GlobalAgreement > 1 {
		t.Errorf("global agreement %v outside [0,1]", res.GlobalAgreement)
	}
	if math.IsNaN(res.ShardedMAE) || math.IsNaN(res.GlobalMAE) {
		t.Errorf("MAE not computed: sharded %v, global %v", res.ShardedMAE, res.GlobalMAE)
	}
	// Regional models on a zone-closed dataset should stay in the same
	// accuracy regime as the global model, not collapse.
	if res.ShardedMAE > 4*res.GlobalMAE+50 {
		t.Errorf("sharded MAE %.1f m far off global MAE %.1f m", res.ShardedMAE, res.GlobalMAE)
	}
}

// TestZoneAlignedProfile: the helper only flips the two knobs that make
// zone partitions closed.
func TestZoneAlignedProfile(t *testing.T) {
	base := synth.Tiny()
	p := ZoneAlignedProfile(base)
	if !p.AlignZonesToCommunities || p.CrossZoneProb != 0 {
		t.Fatalf("helper produced %+v", p)
	}
	p.AlignZonesToCommunities = base.AlignZonesToCommunities
	p.CrossZoneProb = base.CrossZoneProb
	if p != base {
		t.Error("helper changed unrelated profile fields")
	}
}
