package eval

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderMethodTable writes method results as an aligned text table in the
// layout of the paper's Table II: method, MAE (m), P95 (m), beta_50 (%).
func RenderMethodTable(w io.Writer, title string, rows []MethodResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %10s %12s\n", "Method", "MAE(m)", "P95(m)", "B50(%)", "fit(s)", "infer(ad/s)")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10.1f %10.1f %8.1f %10.2f %12.0f\n",
			r.Name, r.MAE, r.P95, r.Beta50, r.FitTime.Seconds(), r.AddrPerSecond())
	}
	fmt.Fprintln(w)
}

// RenderTable1 writes dataset statistics.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I: dataset statistics")
	fmt.Fprintf(w, "%-8s %7s %9s %7s %7s %10s %7s %6s %6s %8s %7s\n",
		"Dataset", "trips", "waybills", "addrs", "bldgs", "trajpts", "train", "val", "test", "delayed", "med#dl")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d %9d %7d %7d %10d %7d %6d %6d %7.1f%% %7d\n",
			r.Name, r.Trips, r.Waybills, r.Addresses, r.Buildings, r.TrajPoints,
			r.TrainAddrs, r.ValAddrs, r.TestAddrs, 100*r.DelayedFraction, r.MedianDeliveriesPerAddr)
	}
	fmt.Fprintln(w)
}

// RenderFig9 writes the data distributions.
func RenderFig9(w io.Writer, name string, r Fig9Result) {
	fmt.Fprintf(w, "Figure 9 (%s)\n", name)
	fmt.Fprintf(w, "  (a) buildings with >1 delivery location: %.1f%%\n", 100*r.MultiLocationBuildingFraction)
	fmt.Fprintf(w, "  (b) deliveries/address CDF:")
	for i, probe := range r.DeliveriesCDFProbes {
		fmt.Fprintf(w, " <=%d:%.0f%%", probe, 100*r.DeliveriesCDF[i])
	}
	fmt.Fprintf(w, " (median %d)\n", r.MedianDeliveries)
	fmt.Fprintf(w, "  (c) mean stay points/trip: %.1f\n", r.MeanStayPointsPerTrip)
	fmt.Fprintf(w, "  (d) mean candidates/address: %.1f\n\n", r.MeanCandidatesPerAddr)
}

// RenderFig10a writes the clustering-distance sweep.
func RenderFig10a(w io.Writer, name string, pts []Fig10aPoint) {
	fmt.Fprintf(w, "Figure 10(a) (%s): MAE vs clustering distance D\n", name)
	fmt.Fprintf(w, "%8s %10s %10s\n", "D(m)", "MAE(m)", "#locations")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f %10.1f %10d\n", p.D, p.MAE, p.NPoolLocs)
	}
	fmt.Fprintln(w)
}

// RenderFig10b writes the delivery-count-group comparison.
func RenderFig10b(w io.Writer, name string, r Fig10bResult) {
	fmt.Fprintf(w, "Figure 10(b) (%s): MAE by number of deliveries\n", name)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "Method",
		fmt.Sprintf("<=%d", r.GroupBounds[0]),
		fmt.Sprintf("<=%d", r.GroupBounds[1]),
		fmt.Sprintf("<=%d", r.GroupBounds[2]))
	for i, m := range r.Methods {
		fmt.Fprintf(w, "%-16s %10.1f %10.1f %10.1f\n", m, r.MAE[i][0], r.MAE[i][1], r.MAE[i][2])
	}
	fmt.Fprintln(w)
}

// RenderTable3 writes the synthetic-delay robustness table.
func RenderTable3(w io.Writer, name string, results []Table3Result) {
	for _, res := range results {
		RenderMethodTable(w, fmt.Sprintf("Table III (%s, p_d = %.1f)", name, res.PD), res.Results)
	}
}

// RenderFig13 writes the scalability measurements.
func RenderFig13(w io.Writer, name string, pts []Fig13Point) {
	fmt.Fprintf(w, "Figure 13 (%s): inference time vs #addresses\n", name)
	fmt.Fprintf(w, "%-16s %10s %12s %12s\n", "Method", "#addr", "time(ms)", "addr/s")
	for _, p := range pts {
		rate := float64(p.NAddresses) / p.Elapsed.Seconds()
		fmt.Fprintf(w, "%-16s %10d %12.1f %12.0f\n", p.Method, p.NAddresses, float64(p.Elapsed.Milliseconds()), rate)
	}
	fmt.Fprintln(w)
}

// RenderEfficiency writes the per-stage wall times of the worker sweep.
func RenderEfficiency(w io.Writer, name string, rows []EfficiencyRow) {
	fmt.Fprintf(w, "Efficiency (%s): pipeline stage wall time vs workers\n", name)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %8s\n",
		"workers", "extract(ms)", "feats(ms)", "fit(ms)", "infer(ms)", "epochs")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.1f %12.1f %12.1f %12.1f %8d\n",
			r.Workers, ms(r.StayExtract), ms(r.BuildSamples), ms(r.Fit), ms(r.Predict), r.Epochs)
	}
	fmt.Fprintln(w)
}
