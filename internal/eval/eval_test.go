package eval

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"dlinfma/internal/baselines"
	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func TestMetrics(t *testing.T) {
	errs := []float64{10, 20, 30, 40, 100}
	m := Compute(errs)
	if m.MAE != 40 {
		t.Errorf("MAE = %v, want 40", m.MAE)
	}
	if m.P95 != 100 {
		t.Errorf("P95 = %v, want 100", m.P95)
	}
	if m.Beta50 != 80 {
		t.Errorf("Beta50 = %v, want 80", m.Beta50)
	}
	if m.N != 5 {
		t.Errorf("N = %d, want 5", m.N)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := Compute(nil)
	if !math.IsNaN(m.MAE) || !math.IsNaN(m.P95) || m.Beta50 != 0 || m.N != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestPercentile(t *testing.T) {
	errs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(errs, 0.5); p != 5 {
		t.Errorf("P50 = %v, want 5", p)
	}
	if p := Percentile(errs, 0.95); p != 10 {
		t.Errorf("P95 = %v, want 10", p)
	}
	if p := Percentile(errs, 0.01); p != 1 {
		t.Errorf("P1 = %v, want 1", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestBetaDelta(t *testing.T) {
	errs := []float64{10, 50, 60}
	if b := BetaDelta(errs, 50); math.Abs(b-100.0/3) > 1e-9 {
		t.Errorf("BetaDelta(50) = %v (exactly-50 must not count)", b)
	}
	if b := BetaDelta(nil, 50); b != 0 {
		t.Errorf("BetaDelta(empty) = %v", b)
	}
}

// tinyPrep memoizes a small prepared dataset for the experiment tests.
var tinyPrep *Prepared

func prep(t *testing.T) *Prepared {
	t.Helper()
	if tinyPrep == nil {
		p, err := Prepare(context.Background(), synth.Tiny(), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tinyPrep = p
	}
	return tinyPrep
}

func TestTable1(t *testing.T) {
	row := Table1(prep(t))
	if row.Trips == 0 || row.Waybills == 0 || row.Addresses == 0 || row.TrajPoints == 0 {
		t.Fatalf("zero counts: %+v", row)
	}
	if row.TrainAddrs+row.ValAddrs+row.TestAddrs != row.Addresses {
		t.Errorf("split does not partition addresses: %+v", row)
	}
	if row.DelayedFraction <= 0 || row.DelayedFraction >= 1 {
		t.Errorf("delayed fraction %v out of (0,1)", row.DelayedFraction)
	}
	var sb strings.Builder
	RenderTable1(&sb, []Table1Row{row})
	if !strings.Contains(sb.String(), "Tiny") {
		t.Error("rendered table missing dataset name")
	}
}

func TestFig9(t *testing.T) {
	r := Fig9(prep(t))
	if r.MultiLocationBuildingFraction <= 0 {
		t.Error("no multi-location buildings")
	}
	if r.MeanStayPointsPerTrip < 5 {
		t.Errorf("mean stay points per trip %v too low", r.MeanStayPointsPerTrip)
	}
	// The paper observes candidates/address exceeding stays/trip because its
	// addresses average many deliveries over 20 months; the tiny test
	// profile has a handful, so only require a healthy candidate count here
	// (the full-profile relation is exercised by the experiments binary).
	if r.MeanCandidatesPerAddr < 5 {
		t.Errorf("mean candidates/address %v too low", r.MeanCandidatesPerAddr)
	}
	// CDF must be nondecreasing and end high.
	for i := 1; i < len(r.DeliveriesCDF); i++ {
		if r.DeliveriesCDF[i] < r.DeliveriesCDF[i-1] {
			t.Fatal("CDF decreasing")
		}
	}
	var sb strings.Builder
	RenderFig9(&sb, "Tiny", r)
	if !strings.Contains(sb.String(), "stay points/trip") {
		t.Error("rendered Fig9 incomplete")
	}
}

func TestEvaluateMethodFallsBackToGeocode(t *testing.T) {
	p := prep(t)
	// Geocoding never fails, so evaluate it as a sanity check: MAE must be
	// positive and finite.
	rows := EvaluateAll(context.Background(), p.Env, Table2Methods(), p.Split.Train, p.Split.Val, p.Split.Test)
	if len(rows) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rows {
		if r.N == 0 {
			t.Errorf("%s evaluated on zero addresses", r.Name)
			continue
		}
		if math.IsNaN(r.MAE) || r.MAE <= 0 {
			t.Errorf("%s MAE = %v", r.Name, r.MAE)
		}
		if r.Beta50 < 0 || r.Beta50 > 100 {
			t.Errorf("%s Beta50 = %v", r.Name, r.Beta50)
		}
		if r.P95 < r.MAE/10 {
			t.Errorf("%s P95 (%v) implausibly below MAE (%v)", r.Name, r.P95, r.MAE)
		}
	}
}

func TestComparativeShape(t *testing.T) {
	// The paper's headline comparisons that must hold in shape on the
	// synthetic data with organic delays (p_d = 0.3):
	//   - DLInfMA beats Geocoding on MAE and Beta50,
	//   - DLInfMA is the best method on Beta50,
	//   - MinDist beats Geocoding (Table II's observation).
	p := prep(t)
	rows := EvaluateAll(context.Background(), p.Env, Table2Methods(), p.Split.Train, p.Split.Val, p.Split.Test)
	byName := map[string]MethodResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	dl, geoc, mind := byName["DLInfMA"], byName["Geocoding"], byName["MinDist"]
	if dl.MAE >= geoc.MAE {
		t.Errorf("DLInfMA MAE %.1f not below Geocoding %.1f", dl.MAE, geoc.MAE)
	}
	if dl.Beta50 <= geoc.Beta50 {
		t.Errorf("DLInfMA Beta50 %.1f not above Geocoding %.1f", dl.Beta50, geoc.Beta50)
	}
	if mind.MAE >= geoc.MAE {
		t.Errorf("MinDist MAE %.1f not below Geocoding %.1f", mind.MAE, geoc.MAE)
	}
	best := dl
	for _, r := range rows {
		if r.Beta50 > best.Beta50 {
			best = r
		}
	}
	if best.Name != "DLInfMA" {
		t.Errorf("best Beta50 is %s (%.1f), want DLInfMA (%.1f)", best.Name, best.Beta50, dl.Beta50)
	}
}

func TestFig10bGroupsPartitionTestSet(t *testing.T) {
	p := prep(t)
	r := Fig10b(context.Background(), p)
	if len(r.Methods) != 5 {
		t.Fatalf("got %d methods, want 5", len(r.Methods))
	}
	if r.GroupBounds[0] > r.GroupBounds[1] || r.GroupBounds[1] > r.GroupBounds[2] {
		t.Errorf("group bounds not increasing: %v", r.GroupBounds)
	}
	for i, m := range r.Methods {
		for g := 0; g < 3; g++ {
			if math.IsNaN(r.MAE[i][g]) || r.MAE[i][g] < 0 {
				t.Errorf("%s group %d MAE %v", m, g, r.MAE[i][g])
			}
		}
	}
}

func TestFig13Linearity(t *testing.T) {
	p := prep(t)
	pts := Fig13(context.Background(), p, []int{200, 400})
	byMethod := map[string][]Fig13Point{}
	for _, pt := range pts {
		byMethod[pt.Method] = append(byMethod[pt.Method], pt)
	}
	if len(byMethod) < 4 {
		t.Fatalf("only %d methods measured", len(byMethod))
	}
	for m, ps := range byMethod {
		if len(ps) != 2 {
			t.Fatalf("%s measured %d sizes", m, len(ps))
		}
		if ps[1].Elapsed < ps[0].Elapsed/4 {
			t.Errorf("%s: time decreased with more addresses", m)
		}
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	RenderMethodTable(&sb, "test", []MethodResult{{Name: "X", Metrics: Compute([]float64{1, 2})}})
	RenderFig10a(&sb, "d", []Fig10aPoint{{D: 40, MAE: 12, NPoolLocs: 5}})
	RenderFig10b(&sb, "d", Fig10bResult{Methods: []string{"X"}, MAE: [][3]float64{{1, 2, 3}}})
	RenderTable3(&sb, "d", []Table3Result{{PD: 0.2}})
	RenderFig13(&sb, "d", []Fig13Point{{Method: "X", NAddresses: 10, Elapsed: 1e6}})
	out := sb.String()
	for _, want := range []string{"MAE", "Figure 10(a)", "Figure 10(b)", "Table III", "Figure 13"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestBuildingFallback(t *testing.T) {
	p := prep(t)
	r, err := BuildingFallback(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chain.N == 0 {
		t.Fatal("no held-out addresses answered")
	}
	if r.BuildingCoverage <= 0 {
		t.Error("no building-level answers; the fallback chain is not exercised")
	}
	// Building-level answers should beat geocode fallback on MAE when both
	// have samples (the point of the building adaptation).
	if r.ByBuilding.N > 5 && r.ByGeocode.N > 5 && r.ByBuilding.MAE >= r.ByGeocode.MAE {
		t.Errorf("building-level MAE %.1f not below geocode %.1f", r.ByBuilding.MAE, r.ByGeocode.MAE)
	}
	var sb strings.Builder
	RenderBuildingFallback(&sb, "Tiny", r)
	if !strings.Contains(sb.String(), "building-level") {
		t.Error("render incomplete")
	}
}

// failingMethod always errors in Fit, exercising EvaluateAll's NaN path.
type failingMethod struct{}

func (failingMethod) Name() string { return "Failing" }
func (failingMethod) Fit(context.Context, *baselines.Env, []model.AddressID, []model.AddressID) error {
	return errFail
}
func (failingMethod) Predict(*baselines.Env, model.AddressID) (geo.Point, bool) {
	return geo.Point{}, false
}

var errFail = errors.New("nope")

func TestEvaluateAllToleratesFitFailure(t *testing.T) {
	p := prep(t)
	rows := EvaluateAll(context.Background(), p.Env, []baselines.Method{failingMethod{}, baselines.Geocoding{}},
		p.Split.Train, p.Split.Val, p.Split.Test)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !math.IsNaN(rows[0].MAE) || rows[0].N != 0 {
		t.Errorf("failing method row = %+v, want NaN metrics", rows[0].Metrics)
	}
	if math.IsNaN(rows[1].MAE) {
		t.Error("healthy method should still evaluate")
	}
	if _, err := EvaluateMethod(context.Background(), p.Env, failingMethod{}, nil, nil, nil); err == nil {
		t.Error("EvaluateMethod should surface fit errors")
	}
}

func TestBootstrapCI(t *testing.T) {
	errs := make([]float64, 200)
	for i := range errs {
		errs[i] = float64(i % 10) // mean 4.5
	}
	lo, hi := BootstrapCI(errs, 500, 0.95, 1)
	if !(lo < 4.5 && 4.5 < hi) {
		t.Errorf("CI [%v,%v] should contain 4.5", lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("CI [%v,%v] too wide for n=200", lo, hi)
	}
	if lo, hi := BootstrapCI(nil, 100, 0.95, 1); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty CI should be NaN")
	}
	// Degenerate parameters fall back to defaults.
	lo, hi = BootstrapCI([]float64{5, 5, 5}, 0, 2, 1)
	if lo != 5 || hi != 5 {
		t.Errorf("constant data CI = [%v,%v]", lo, hi)
	}
}

func TestStaySweep(t *testing.T) {
	p := prep(t)
	pts := StaySweep(context.Background(), p, []traj.StayPointConfig{
		{DMax: 20, TMin: 30},
		{DMax: 40, TMin: 30},
		{DMax: 20, TMin: 120},
	})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Longer TMin detects fewer stays -> fewer pool locations.
	if pts[2].NPoolLocs >= pts[0].NPoolLocs {
		t.Errorf("TMin=120 pool (%d) should be smaller than TMin=30 (%d)",
			pts[2].NPoolLocs, pts[0].NPoolLocs)
	}
	for _, pt := range pts {
		if pt.NPoolLocs == 0 || math.IsNaN(pt.CeilingMAE) {
			t.Errorf("degenerate sweep point %+v", pt)
		}
		if pt.CeilingMAE > pt.HeuristicMAE+1e-9 {
			t.Errorf("ceiling %v exceeds heuristic %v", pt.CeilingMAE, pt.HeuristicMAE)
		}
	}
	var sb strings.Builder
	RenderStaySweep(&sb, "Tiny", pts)
	if !strings.Contains(sb.String(), "Dmax") {
		t.Error("render incomplete")
	}
}

func TestMethodResultCI(t *testing.T) {
	p := prep(t)
	r, err := EvaluateMethod(context.Background(), p.Env, baselines.Geocoding{}, nil, nil, p.Split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) != r.N {
		t.Fatalf("retained %d errors, metrics over %d", len(r.Errors), r.N)
	}
	lo, hi := r.MAECI()
	if !(lo <= r.MAE && r.MAE <= hi) {
		t.Errorf("CI [%v,%v] should contain MAE %v", lo, hi, r.MAE)
	}
}

func TestFig10aStructure(t *testing.T) {
	p := prep(t)
	pts := Fig10a(context.Background(), p, []float64{20, 60})
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Pool size decreases monotonically with D (the paper's observation).
	if pts[1].NPoolLocs >= pts[0].NPoolLocs {
		t.Errorf("pool size did not shrink: D=20 -> %d, D=60 -> %d",
			pts[0].NPoolLocs, pts[1].NPoolLocs)
	}
	for _, pt := range pts {
		if math.IsNaN(pt.MAE) || pt.MAE <= 0 {
			t.Errorf("bad MAE at D=%v: %v", pt.D, pt.MAE)
		}
	}
}
