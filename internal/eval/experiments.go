package eval

import (
	"context"
	"sort"
	"time"

	"dlinfma/internal/baselines"
	"dlinfma/internal/core"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

// ExperimentLocMatcherConfig is the LocMatcher configuration used by the
// experiment harness. It keeps the paper's architecture but raises the
// learning rate to 1e-3 (still halved every 5 epochs): the synthetic
// datasets are two orders of magnitude smaller than JD's, so the paper's
// 1e-4 would need far more epochs to converge.
func ExperimentLocMatcherConfig() core.LocMatcherConfig {
	cfg := core.DefaultLocMatcherConfig()
	cfg.LR = 3e-3
	cfg.LRStepEpochs = 25
	cfg.MaxEpochs = 150
	cfg.Patience = 20
	return cfg
}

// Prepared bundles a generated dataset with its split and environment.
type Prepared struct {
	Profile synth.Profile
	DS      *model.Dataset
	World   *synth.World
	Split   synth.Split
	Env     *baselines.Env
}

// Prepare generates a dataset from the profile (with its organic delays)
// and builds the shared pipeline and split.
func Prepare(ctx context.Context, p synth.Profile, cfg core.Config) (*Prepared, error) {
	ds, w, err := synth.Generate(p)
	if err != nil {
		return nil, err
	}
	return prepared(ctx, p, ds, w, cfg)
}

// PrepareWithDelay generates the clean dataset and injects delays at the
// given probability (Table III's synthetic datasets).
func PrepareWithDelay(ctx context.Context, p synth.Profile, pd float64, cfg core.Config) (*Prepared, error) {
	clean, w, err := synth.GenerateClean(p)
	if err != nil {
		return nil, err
	}
	ds := synth.InjectDelays(clean, pd, p.DelayBatches, p.Seed+2)
	return prepared(ctx, p, ds, w, cfg)
}

func prepared(ctx context.Context, p synth.Profile, ds *model.Dataset, w *synth.World, cfg core.Config) (*Prepared, error) {
	env, err := baselines.NewEnv(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Profile: p,
		DS:      ds,
		World:   w,
		Split:   synth.SplitSpatial(ds, w, 0.6, 0.2),
		Env:     env,
	}, nil
}

// dlinfmaForExperiments returns the main method tuned for the harness.
func dlinfmaForExperiments() *baselines.DLInfMA {
	d := baselines.NewDLInfMA()
	d.Model = ExperimentLocMatcherConfig()
	return d
}

// experimentMethod applies the experiment LocMatcher config to DLInfMA-family
// methods produced by name.
func experimentMethod(name string) (baselines.Method, error) {
	m, err := baselines.Variant(name)
	if err != nil {
		return nil, err
	}
	if d, ok := m.(*baselines.DLInfMA); ok {
		base := ExperimentLocMatcherConfig()
		base.NoContext = d.Model.NoContext
		base.UseLSTM = d.Model.UseLSTM
		base.LSTMHidden = d.Model.LSTMHidden
		d.Model = base
	}
	return m, nil
}

// Table1Row is one dataset's statistics (the paper's Table I).
type Table1Row struct {
	Name                    string
	Trips                   int
	Waybills                int
	Addresses               int
	Buildings               int
	TrajPoints              int
	TrainAddrs              int
	ValAddrs                int
	TestAddrs               int
	DelayedFraction         float64
	MeanDeliveriesPerAddr   float64
	MedianDeliveriesPerAddr int
}

// Table1 computes dataset statistics.
func Table1(p *Prepared) Table1Row {
	counts := deliveriesPerAddress(p.DS)
	var cs []int
	var sum int
	for _, c := range counts {
		cs = append(cs, c)
		sum += c
	}
	sort.Ints(cs)
	row := Table1Row{
		Name:       p.Profile.Name,
		Trips:      len(p.DS.Trips),
		Waybills:   p.DS.Deliveries(),
		Addresses:  len(p.DS.Addresses),
		Buildings:  len(p.World.Buildings),
		TrajPoints: p.DS.TrajectoryPoints(),
		TrainAddrs: len(p.Split.Train),
		ValAddrs:   len(p.Split.Val),
		TestAddrs:  len(p.Split.Test),
	}
	st := synth.MeasureDelays(p.DS)
	if st.Waybills > 0 {
		row.DelayedFraction = float64(st.Delayed) / float64(st.Waybills)
	}
	if len(cs) > 0 {
		row.MeanDeliveriesPerAddr = float64(sum) / float64(len(cs))
		row.MedianDeliveriesPerAddr = cs[len(cs)/2]
	}
	return row
}

func deliveriesPerAddress(ds *model.Dataset) map[model.AddressID]int {
	counts := make(map[model.AddressID]int)
	for _, tr := range ds.Trips {
		for _, w := range tr.Waybills {
			counts[w.Addr]++
		}
	}
	return counts
}

// Fig9 reproduces the four data-statistics distributions of Figure 9.
type Fig9Result struct {
	// LocationsPerBuilding[k] = number of buildings whose addresses use k
	// distinct delivery locations (k>=1; index 0 unused).
	LocationsPerBuilding []int
	// MultiLocationBuildingFraction is the share of buildings with more than
	// one delivery location (paper: >22% DowBJ, >14% SubBJ).
	MultiLocationBuildingFraction float64
	// DeliveriesPerAddressCDF maps a delivery count to the fraction of
	// addresses with at most that many deliveries, at probe points.
	DeliveriesCDFProbes []int
	DeliveriesCDF       []float64
	MedianDeliveries    int
	// StayPointsPerTrip mean and histogram (bucketed by 5).
	MeanStayPointsPerTrip float64
	// CandidatesPerAddress mean.
	MeanCandidatesPerAddr float64
}

// Fig9 computes the distributions.
func Fig9(p *Prepared) Fig9Result {
	var r Fig9Result

	// (a) distinct delivery locations per building.
	locsOfBld := make(map[model.BuildingID]map[[2]float64]bool)
	for _, a := range p.DS.Addresses {
		t, ok := p.DS.Truth[a.ID]
		if !ok {
			continue
		}
		m := locsOfBld[a.Building]
		if m == nil {
			m = make(map[[2]float64]bool)
			locsOfBld[a.Building] = m
		}
		m[[2]float64{t.X, t.Y}] = true
	}
	maxK := 0
	for _, m := range locsOfBld {
		if len(m) > maxK {
			maxK = len(m)
		}
	}
	r.LocationsPerBuilding = make([]int, maxK+1)
	multi := 0
	for _, m := range locsOfBld {
		r.LocationsPerBuilding[len(m)]++
		if len(m) > 1 {
			multi++
		}
	}
	if len(locsOfBld) > 0 {
		r.MultiLocationBuildingFraction = float64(multi) / float64(len(locsOfBld))
	}

	// (b) deliveries per address CDF.
	counts := deliveriesPerAddress(p.DS)
	var cs []int
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	r.DeliveriesCDFProbes = []int{1, 2, 3, 5, 10, 20, 50}
	for _, probe := range r.DeliveriesCDFProbes {
		n := sort.SearchInts(cs, probe+1)
		r.DeliveriesCDF = append(r.DeliveriesCDF, float64(n)/float64(len(cs)))
	}
	if len(cs) > 0 {
		r.MedianDeliveries = cs[len(cs)/2]
	}

	// (c) stay points per trip.
	cfg := p.Env.Pipe.Cfg
	total := 0
	for _, tr := range p.DS.Trips {
		total += len(traj.ExtractStayPoints(tr.Traj, cfg.Noise, cfg.Stay))
	}
	if len(p.DS.Trips) > 0 {
		r.MeanStayPointsPerTrip = float64(total) / float64(len(p.DS.Trips))
	}

	// (d) candidates per address.
	nc, na := 0, 0
	for _, a := range p.DS.Addresses {
		c := p.Env.Pipe.RetrieveCandidates(a.ID)
		if len(c) > 0 {
			nc += len(c)
			na++
		}
	}
	if na > 0 {
		r.MeanCandidatesPerAddr = float64(nc) / float64(na)
	}
	return r
}

// Table2Methods returns the nine baseline methods of Table II with the
// experiment LocMatcher configuration applied to DLInfMA.
func Table2Methods() []baselines.Method {
	return []baselines.Method{
		baselines.Geocoding{},
		baselines.Annotation{},
		baselines.GeoCloud{},
		&baselines.GeoRank{},
		&baselines.UNetBased{},
		baselines.MinDist{},
		baselines.MaxTC{},
		baselines.MaxTCILC{},
		dlinfmaForExperiments(),
	}
}

// Table2 evaluates all baselines (and optionally all variants and
// ablations) on a prepared dataset.
func Table2(ctx context.Context, p *Prepared, includeVariants bool) []MethodResult {
	methods := Table2Methods()
	if includeVariants {
		for _, name := range baselines.AllVariantNames() {
			m, err := experimentMethod(name)
			if err == nil {
				methods = append(methods, m)
			}
		}
	}
	return EvaluateAll(ctx, p.Env, methods, p.Split.Train, p.Split.Val, p.Split.Test)
}

// Fig10aPoint is one sweep point of Figure 10(a).
type Fig10aPoint struct {
	D         float64
	MAE       float64
	NPoolLocs int
}

// Fig10a sweeps the clustering distance D and reports DLInfMA's MAE.
func Fig10a(ctx context.Context, p *Prepared, ds []float64) []Fig10aPoint {
	var out []Fig10aPoint
	for _, d := range ds {
		cfg := p.Env.Pipe.Cfg
		cfg.ClusterDistance = d
		env, err := baselines.NewEnv(ctx, p.DS, cfg)
		if err != nil {
			return out
		}
		m := dlinfmaForExperiments()
		res, err := EvaluateMethod(ctx, env, m, p.Split.Train, p.Split.Val, p.Split.Test)
		pt := Fig10aPoint{D: d, NPoolLocs: len(env.Pipe.Pool.Locations)}
		if err == nil {
			pt.MAE = res.MAE
		}
		out = append(out, pt)
	}
	return out
}

// Fig10bResult holds per-group MAE for the five methods of Figure 10(b).
type Fig10bResult struct {
	// GroupBounds are the (inclusive) upper delivery-count bounds of the
	// three equal-frequency groups.
	GroupBounds [3]int
	// MAE[method][group]
	Methods []string
	MAE     [][3]float64
}

// Fig10b divides test addresses into three equal-frequency groups by number
// of deliveries and reports MAE per group for the representative methods.
func Fig10b(ctx context.Context, p *Prepared) Fig10bResult {
	counts := deliveriesPerAddress(p.DS)
	// Sort test addresses by delivery count.
	test := append([]model.AddressID(nil), p.Split.Test...)
	sort.Slice(test, func(i, j int) bool { return counts[test[i]] < counts[test[j]] })
	var groups [3][]model.AddressID
	for i, a := range test {
		groups[i*3/len(test)] = append(groups[i*3/len(test)], a)
	}
	var res Fig10bResult
	for g := 0; g < 3; g++ {
		if n := len(groups[g]); n > 0 {
			res.GroupBounds[g] = counts[groups[g][n-1]]
		}
	}
	methods := []baselines.Method{
		baselines.GeoCloud{},
		baselines.MaxTCILC{},
		&baselines.GeoRank{},
		&baselines.UNetBased{},
		dlinfmaForExperiments(),
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		var row [3]float64
		// Fit once on the full train set, evaluate per group.
		if err := m.Fit(ctx, p.Env, p.Split.Train, p.Split.Val); err == nil {
			for g := 0; g < 3; g++ {
				var errs []float64
				for _, addr := range groups[g] {
					truth, ok := p.DS.Truth[addr]
					if !ok {
						continue
					}
					pred, ok := m.Predict(p.Env, addr)
					if !ok {
						if info, ok2 := p.Env.Info(addr); ok2 {
							pred = info.Geocode
						} else {
							continue
						}
					}
					errs = append(errs, geo.Dist(pred, truth))
				}
				row[g] = Compute(errs).MAE
			}
		}
		res.MAE = append(res.MAE, row)
	}
	return res
}

// Table3Result is one delay level's evaluation.
type Table3Result struct {
	PD      float64
	Results []MethodResult
}

// Table3 evaluates the baselines under injected delays pd on the profile's
// clean data (the paper's synthetic datasets, Section V-D).
func Table3(ctx context.Context, p synth.Profile, pds []float64, cfg core.Config) ([]Table3Result, error) {
	var out []Table3Result
	for _, pd := range pds {
		prep, err := PrepareWithDelay(ctx, p, pd, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Table3Result{PD: pd, Results: Table2(ctx, prep, false)})
	}
	return out, nil
}

// EfficiencyRow reports one worker count's wall-clock time per pipeline
// stage (the paper's Section V-F efficiency study, extended to the second
// stage): stay-point extraction, sample featurization, LocMatcher training,
// and batch inference over every sample.
type EfficiencyRow struct {
	Workers      int
	StayExtract  time.Duration
	BuildSamples time.Duration
	Fit          time.Duration
	Predict      time.Duration
	Epochs       int
}

// Efficiency measures the parallel pipeline's per-stage wall time at each
// worker count on the prepared dataset. Training is capped at maxEpochs
// (early stopping disabled by the cap being small) so rows are comparable;
// the candidate pool is reused across rows — clustering is not re-run.
func Efficiency(ctx context.Context, p *Prepared, workerCounts []int, maxEpochs int) []EfficiencyRow {
	ids := make([]model.AddressID, len(p.DS.Addresses))
	for i, a := range p.DS.Addresses {
		ids[i] = a.ID
	}
	var out []EfficiencyRow
	for _, w := range workerCounts {
		row := EfficiencyRow{Workers: w}
		cfg := p.Env.Pipe.Cfg
		cfg.Workers = w

		t0 := time.Now()
		if _, err := core.ExtractAllStayPoints(ctx, p.DS, cfg); err != nil {
			return out
		}
		row.StayExtract = time.Since(t0)

		pipe := *p.Env.Pipe
		pipe.Cfg.Workers = w
		t0 = time.Now()
		samples, err := pipe.BuildSamplesCtx(ctx, ids, core.DefaultSampleOptions())
		if err != nil {
			return out
		}
		row.BuildSamples = time.Since(t0)

		core.LabelSamples(samples, p.DS.Truth)
		mcfg := ExperimentLocMatcherConfig()
		mcfg.Workers = w
		mcfg.MaxEpochs = maxEpochs
		m := core.NewLocMatcher(mcfg)
		t0 = time.Now()
		res, err := m.Fit(ctx, samples, nil)
		row.Fit = time.Since(t0)
		if err != nil {
			if ctx.Err() != nil {
				return out
			}
			continue
		}
		row.Epochs = res.Epochs

		t0 = time.Now()
		if _, err := m.PredictAll(ctx, samples); err != nil {
			return out
		}
		row.Predict = time.Since(t0)
		out = append(out, row)
	}
	return out
}

// Fig13Point is one scalability measurement: inference wall time for a
// method over nAddresses.
type Fig13Point struct {
	Method     string
	NAddresses int
	Elapsed    time.Duration
}

// Fig13 measures inference time as the number of addresses grows, cycling
// through the test set to reach each size. Methods are fitted once.
func Fig13(ctx context.Context, p *Prepared, sizes []int) []Fig13Point {
	methods := []baselines.Method{
		baselines.GeoCloud{},
		baselines.MaxTCILC{},
		&baselines.GeoRank{},
		&baselines.UNetBased{},
		dlinfmaForExperiments(),
	}
	var out []Fig13Point
	for _, m := range methods {
		if err := m.Fit(ctx, p.Env, p.Split.Train, p.Split.Val); err != nil {
			if ctx.Err() != nil {
				return out
			}
			continue
		}
		// Warm the sample caches so we time inference, not featurization of
		// the first query (the deployed system also builds features offline).
		for _, addr := range p.Split.Test {
			m.Predict(p.Env, addr)
		}
		for _, size := range sizes {
			t0 := time.Now()
			for i := 0; i < size; i++ {
				addr := p.Split.Test[i%len(p.Split.Test)]
				m.Predict(p.Env, addr)
			}
			out = append(out, Fig13Point{Method: m.Name(), NAddresses: size, Elapsed: time.Since(t0)})
		}
	}
	return out
}
