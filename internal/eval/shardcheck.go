package eval

import (
	"context"
	"fmt"

	"dlinfma/internal/core"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
)

// ZoneAlignedProfile makes a profile suitable for shard-equivalence checks:
// courier zones stripe whole communities (no locker or reception serves two
// zones) and orders never cross zones, so a zone-aligned shard partition is
// closed — every trip's evidence lives entirely inside one shard.
func ZoneAlignedProfile(p synth.Profile) synth.Profile {
	p.AlignZonesToCommunities = true
	p.CrossZoneProb = 0
	return p
}

// ShardEquivalenceResult reports how a zone-sharded engine compares against
// its two references on the same dataset.
type ShardEquivalenceResult struct {
	Zones     int
	Addresses int
	// ReferenceMismatches counts addresses whose sharded output differs
	// bit-for-bit from a single engine trained on the same zone partition.
	// Zero means sharding is a pure re-arrangement: routing, trip
	// replication, global windowing, and the global LC universe all line up.
	ReferenceMismatches int
	// GlobalAgreement is the fraction of addresses where the sharded engine
	// and one global engine pick the exact same location. Not expected to be
	// 1: the global model is trained across zones, so its feature scaler and
	// weights differ from any per-zone model even on identical candidates.
	GlobalAgreement float64
	// ShardedMAE / GlobalMAE are the accuracy of both arrangements against
	// ground truth, so agreement gaps can be read as better/worse, not just
	// different.
	ShardedMAE float64
	GlobalMAE  float64
}

// ShardEquivalence generates a zone-aligned dataset and checks the sharded
// engine invariant from two angles: (1) against per-zone single engines on
// core.PartitionDataset partitions the sharded output must be bit-exact;
// (2) against one global engine it reports exact-pick agreement and the MAE
// of both, which quantifies what regional models trade against a global one.
//
// Pass a profile built with ZoneAlignedProfile; cross-zone orders would make
// partitions overlap and the bit-exact reference meaningless.
func ShardEquivalence(ctx context.Context, p synth.Profile, cfg engine.Config) (*ShardEquivalenceResult, error) {
	ds, w, err := synth.Generate(p)
	if err != nil {
		return nil, err
	}
	n := w.NZones()
	if n < 2 {
		return nil, fmt.Errorf("eval: profile yields %d zone(s); nothing to shard", n)
	}
	// One deterministic training path per shard: the equivalence claim is
	// about two runs on identical data, so intra-model data parallelism must
	// not reorder float accumulation between them.
	cfg.Matcher.Workers = 1

	addrShard := func(a model.AddressInfo) int {
		if z, ok := w.ZoneOfAddress(a.ID); ok {
			return z
		}
		return 0
	}
	tripShard := func(t model.Trip) int { return int(t.Courier) }

	r, err := shard.NewRouter(n, 0)
	if err != nil {
		return nil, err
	}
	r.AssignAddress = addrShard
	r.AssignTrip = tripShard
	sharded := engine.NewSharded(cfg, r)
	defer sharded.Close()
	if err := sharded.IngestDataset(ctx, ds); err != nil {
		return nil, err
	}
	if err := sharded.Reinfer(ctx); err != nil {
		return nil, err
	}
	shardLocs := sharded.InferredLocations()

	// Reference 1: one single engine per zone partition, with the LC trip
	// universe pinned to the global count exactly as the sharded engine pins
	// it for its shards.
	refCfg := cfg
	refCfg.Core.LCTotalTrips = len(ds.Trips)
	refLocs := make(map[model.AddressID]geo.Point, len(shardLocs))
	for zi, part := range core.PartitionDataset(ds, n, addrShard, tripShard) {
		if len(part.Trips) == 0 {
			continue // the sharded engine skips trip-less shards too
		}
		e := engine.New(refCfg)
		if err := e.IngestDataset(ctx, part); err != nil {
			e.Close()
			return nil, fmt.Errorf("eval: zone %d reference: %w", zi, err)
		}
		if err := e.Reinfer(ctx); err != nil {
			e.Close()
			return nil, fmt.Errorf("eval: zone %d reference: %w", zi, err)
		}
		for id, pt := range e.InferredLocations() {
			refLocs[id] = pt
		}
		e.Close()
	}
	mismatches := 0
	for id, pt := range refLocs {
		if got, ok := shardLocs[id]; !ok || got != pt {
			mismatches++
		}
	}
	for id := range shardLocs {
		if _, ok := refLocs[id]; !ok {
			mismatches++
		}
	}

	// Reference 2: one global engine over the whole dataset.
	global := engine.New(cfg)
	defer global.Close()
	if err := global.IngestDataset(ctx, ds); err != nil {
		return nil, err
	}
	if err := global.Reinfer(ctx); err != nil {
		return nil, err
	}
	globalLocs := global.InferredLocations()
	agree := 0
	for id, pt := range globalLocs {
		if shardLocs[id] == pt {
			agree++
		}
	}

	res := &ShardEquivalenceResult{
		Zones:               n,
		Addresses:           len(shardLocs),
		ReferenceMismatches: mismatches,
		ShardedMAE:          locsMAE(shardLocs, ds.Truth),
		GlobalMAE:           locsMAE(globalLocs, ds.Truth),
	}
	if len(globalLocs) > 0 {
		res.GlobalAgreement = float64(agree) / float64(len(globalLocs))
	}
	return res, nil
}

// locsMAE is the mean error of inferred locations against ground truth.
func locsMAE(locs map[model.AddressID]geo.Point, truth map[model.AddressID]geo.Point) float64 {
	var errs []float64
	for id, pt := range locs {
		if tr, ok := truth[id]; ok {
			errs = append(errs, geo.Dist(pt, tr))
		}
	}
	return Compute(errs).MAE
}
