// Package eval provides the paper's evaluation metrics (MAE, P95, beta_delta
// — Section V-B), the method evaluation runner, and the experiment harness
// that regenerates every table and figure of the evaluation section.
package eval

import (
	"math"
	"math/rand"
	"sort"
)

// Metrics are the paper's three effectiveness measures over a set of
// per-address inference errors (meters).
type Metrics struct {
	MAE    float64
	P95    float64
	Beta50 float64 // percentage of errors under 50 m
	N      int
}

// BetaDelta returns the percentage of errors strictly below delta meters
// (Equation (7)).
func BetaDelta(errors []float64, delta float64) float64 {
	if len(errors) == 0 {
		return 0
	}
	n := 0
	for _, e := range errors {
		if e < delta {
			n++
		}
	}
	return 100 * float64(n) / float64(len(errors))
}

// Percentile returns the p-quantile (0..1) of errors by nearest-rank on the
// sorted copy.
func Percentile(errors []float64, p float64) float64 {
	if len(errors) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), errors...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Compute summarizes errors with the paper's three metrics (delta = 50 m).
func Compute(errors []float64) Metrics {
	m := Metrics{N: len(errors)}
	if len(errors) == 0 {
		m.MAE, m.P95 = math.NaN(), math.NaN()
		return m
	}
	var sum float64
	for _, e := range errors {
		sum += e
	}
	m.MAE = sum / float64(len(errors))
	m.P95 = Percentile(errors, 0.95)
	m.Beta50 = BetaDelta(errors, 50)
	return m
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of errors at the given confidence level (e.g. 0.95). The paper
// reports point estimates only; intervals make the small synthetic test
// sets' noise visible when comparing close methods.
func BootstrapCI(errors []float64, iters int, conf float64, seed int64) (lo, hi float64) {
	if len(errors) == 0 {
		return math.NaN(), math.NaN()
	}
	if iters <= 0 {
		iters = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, iters)
	for it := 0; it < iters; it++ {
		var sum float64
		for range errors {
			sum += errors[rng.Intn(len(errors))]
		}
		means[it] = sum / float64(len(errors))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1-alpha)*float64(iters)) - 1
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	return means[loIdx], means[hiIdx]
}
