package eval

import (
	"context"
	"fmt"
	"time"

	"dlinfma/internal/baselines"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// MethodResult is one evaluated row of a results table.
type MethodResult struct {
	Name string
	Metrics
	// Errors are the per-address inference errors behind the metrics,
	// retained so callers can bootstrap confidence intervals.
	Errors    []float64
	FitTime   time.Duration
	InferTime time.Duration // total over all test addresses
}

// MAECI returns the 95% bootstrap confidence interval of the MAE.
func (r MethodResult) MAECI() (lo, hi float64) {
	return BootstrapCI(r.Errors, 1000, 0.95, 1)
}

// AddrPerSecond returns inference throughput.
func (r MethodResult) AddrPerSecond() float64 {
	if r.InferTime <= 0 {
		return 0
	}
	return float64(r.N) / r.InferTime.Seconds()
}

// EvaluateMethod fits a method on the train/val addresses and measures its
// errors on the test addresses. Addresses the method cannot answer fall back
// to the geocoded location, mirroring the deployed system's final fallback.
// Cancelling ctx aborts training and returns the wrapped ctx error.
func EvaluateMethod(ctx context.Context, env *baselines.Env, m baselines.Method, train, val, test []model.AddressID) (MethodResult, error) {
	res := MethodResult{Name: m.Name()}
	t0 := time.Now()
	if err := m.Fit(ctx, env, train, val); err != nil {
		return res, fmt.Errorf("eval: fit %s: %w", m.Name(), err)
	}
	res.FitTime = time.Since(t0)

	var errs []float64
	t1 := time.Now()
	for _, addr := range test {
		truth, ok := env.DS.Truth[addr]
		if !ok {
			continue
		}
		pred, ok := m.Predict(env, addr)
		if !ok {
			if info, ok2 := env.Info(addr); ok2 {
				pred = info.Geocode
			} else {
				continue
			}
		}
		errs = append(errs, geo.Dist(pred, truth))
	}
	res.InferTime = time.Since(t1)
	res.Metrics = Compute(errs)
	res.Errors = errs
	return res, nil
}

// EvaluateAll runs several methods over the same split, returning one row
// each. Methods whose Fit fails are reported with NaN metrics rather than
// aborting the table — except cancellation, which stops the sweep early and
// returns the rows finished so far.
func EvaluateAll(ctx context.Context, env *baselines.Env, methods []baselines.Method, train, val, test []model.AddressID) []MethodResult {
	out := make([]MethodResult, 0, len(methods))
	for _, m := range methods {
		if ctx.Err() != nil {
			return out
		}
		r, err := EvaluateMethod(ctx, env, m, train, val, test)
		if err != nil {
			r = MethodResult{Name: m.Name()}
			r.Metrics = Compute(nil)
		}
		out = append(out, r)
	}
	return out
}
