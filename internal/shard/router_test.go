package shard

import (
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

func mustRouter(t *testing.T, n, prec int) *Router {
	t.Helper()
	r, err := NewRouter(n, prec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, 6); err == nil {
		t.Error("NewRouter(0, 6) accepted")
	}
	if _, err := NewRouter(4, 13); err == nil {
		t.Error("NewRouter(4, 13) accepted")
	}
	r := mustRouter(t, 4, 0)
	if r.Precision() != DefaultPrecision {
		t.Errorf("default precision %d, want %d", r.Precision(), DefaultPrecision)
	}
	if r.N() != 4 {
		t.Errorf("N() = %d", r.N())
	}
}

// TestShardOfKeyDeterministicAndBounded: routing is a pure function of the
// cell and always lands inside [0, N).
func TestShardOfKeyDeterministicAndBounded(t *testing.T) {
	r := mustRouter(t, 5, 6)
	for dx := 0; dx < 40; dx++ {
		p := geo.Point{X: float64(dx) * 900, Y: float64(dx%7) * 700}
		s := r.ShardOfPoint(p)
		if s < 0 || s >= 5 {
			t.Fatalf("point %v routed to shard %d", p, s)
		}
		if again := r.ShardOfPoint(p); again != s {
			t.Fatalf("point %v routed to %d then %d", p, s, again)
		}
	}
}

// TestSameCellSameShard: all points of one routing cell share a shard, and
// with enough spread every shard of a small router receives traffic.
func TestSameCellSameShard(t *testing.T) {
	r := mustRouter(t, 3, 5)
	a := geo.Point{X: 10, Y: 10}
	b := geo.Point{X: 12, Y: 8}
	if r.Key(a) != r.Key(b) {
		t.Fatalf("expected one cell for %v and %v", a, b)
	}
	if r.ShardOfPoint(a) != r.ShardOfPoint(b) {
		t.Error("same cell, different shards")
	}
	hit := make(map[int]bool)
	for i := 0; i < 200; i++ {
		hit[r.ShardOfPoint(geo.Point{X: float64(i) * 5100, Y: float64(i%13) * 4900})] = true
	}
	if len(hit) != 3 {
		t.Errorf("200 spread cells hit %d of 3 shards", len(hit))
	}
}

func TestAddressShardRoutesByGeocode(t *testing.T) {
	r := mustRouter(t, 4, 6)
	a := model.AddressInfo{ID: 1, Geocode: geo.Point{X: 100, Y: 200}}
	if got, want := r.AddressShard(a), r.ShardOfPoint(a.Geocode); got != want {
		t.Errorf("AddressShard = %d, want geocode shard %d", got, want)
	}
	r.AssignAddress = func(model.AddressInfo) int { return 99 }
	if got := r.AddressShard(a); got != 3 {
		t.Errorf("out-of-range override clamped to %d, want 3", got)
	}
	r.AssignAddress = func(ai model.AddressInfo) int { return int(ai.ID) % 4 }
	if got := r.AddressShard(a); got != 1 {
		t.Errorf("override AddressShard = %d, want 1", got)
	}
}

func TestTripShardMidpointAndOverride(t *testing.T) {
	r := mustRouter(t, 4, 6)
	tr := model.Trip{Traj: traj.Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 5000, Y: 5000}, T: 10},
		{P: geo.Point{X: 9000, Y: 9000}, T: 20},
	}}
	if got, want := r.TripShard(tr), r.ShardOfPoint(geo.Point{X: 5000, Y: 5000}); got != want {
		t.Errorf("TripShard = %d, want midpoint shard %d", got, want)
	}
	if got := r.TripShard(model.Trip{}); got != 0 {
		t.Errorf("empty trip routed to %d, want 0", got)
	}
	r.AssignTrip = func(t model.Trip) int { return int(t.Courier) }
	if got := r.TripShard(model.Trip{Courier: 2}); got != 2 {
		t.Errorf("override TripShard = %d, want 2", got)
	}
	r.AssignTrip = func(model.Trip) int { return -5 }
	if got := r.TripShard(tr); got != 0 {
		t.Errorf("negative override clamped to %d, want 0", got)
	}
}

// TestSingleShardShortCircuit: N=1 routes everything to shard 0.
func TestSingleShardShortCircuit(t *testing.T) {
	r := mustRouter(t, 1, 6)
	for i := 0; i < 10; i++ {
		if s := r.ShardOfPoint(geo.Point{X: float64(i) * 1e4, Y: float64(-i) * 1e4}); s != 0 {
			t.Fatalf("shard %d with N=1", s)
		}
	}
}
