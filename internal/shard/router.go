// Package shard maps addresses and trajectories onto serving shards. The
// routing unit is the geohash-prefix cell (geo.ShardKey): an address's
// candidates can only come from stay points in its own neighbourhood, so a
// spatial key assigns each address — and the trips that can carry evidence
// for it — to one shard with no cross-shard signal lost. The same move
// appears across last-mile systems (hex-grid spatial indexes for truck
// matching, per-POI-cell aggregation at JD scale); here it is the contract
// behind engine.ShardedEngine.
//
// Routing contract:
//
//   - An address routes by the cell of its geocode (AddressShard). The
//     address key — not the per-point key — decides placement, so stay
//     points straddling a cell edge still serve their address: the trips
//     carrying them are replicated to the address's shard by the engine.
//   - A trip on its own routes by the cell of its trajectory midpoint
//     (TripShard). The engine uses this only for trips with no known
//     waybill addresses; otherwise a trip follows its addresses.
//   - Both defaults can be overridden (AssignAddress / AssignTrip) for
//     partition-aligned setups, e.g. routing by courier zone in tests.
package shard

import (
	"fmt"
	"hash/fnv"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// DefaultPrecision is the geohash character precision of the routing cell.
// Six characters is a ~1.2 km x 0.6 km cell: coarse enough that one
// courier's neighbourhood rarely spans many cells, fine enough to spread a
// city over tens of shards.
const DefaultPrecision = 6

// Router assigns addresses, trips, and raw points to one of N shards by
// hashing their geohash cell. The zero value is not usable; call NewRouter.
type Router struct {
	n         int
	precision int

	// AssignAddress, when set, overrides spatial routing for addresses
	// (must return a shard in [0, N)). Used for partition-aligned routing,
	// e.g. by courier zone.
	AssignAddress func(model.AddressInfo) int
	// AssignTrip, when set, overrides spatial routing for trips.
	AssignTrip func(model.Trip) int
}

// NewRouter returns a Router over n shards at the given geohash precision
// (0 means DefaultPrecision). It fails on a non-positive shard count.
func NewRouter(n, precision int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", n)
	}
	if precision == 0 {
		precision = DefaultPrecision
	}
	if precision < 1 || precision > 12 {
		return nil, fmt.Errorf("shard: geohash precision %d outside [1, 12]", precision)
	}
	return &Router{n: n, precision: precision}, nil
}

// N returns the shard count.
func (r *Router) N() int { return r.n }

// Precision returns the routing cell's geohash precision.
func (r *Router) Precision() int { return r.precision }

// Key returns the routing cell of a planar point.
func (r *Router) Key(p geo.Point) geo.ShardKey {
	return geo.ShardKeyOf(p, r.precision)
}

// ShardOfKey hashes a cell key onto a shard. All points of one cell land on
// one shard; distinct cells spread uniformly.
func (r *Router) ShardOfKey(k geo.ShardKey) int {
	if r.n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(k))
	return int(h.Sum32() % uint32(r.n))
}

// ShardOfPoint routes a raw planar point.
func (r *Router) ShardOfPoint(p geo.Point) int {
	return r.ShardOfKey(r.Key(p))
}

// AddressShard routes an address by the cell of its geocode (or the
// AssignAddress override).
func (r *Router) AddressShard(a model.AddressInfo) int {
	if r.AssignAddress != nil {
		return r.clamp(r.AssignAddress(a))
	}
	return r.ShardOfPoint(a.Geocode)
}

// TripShard routes a trip by the cell of its trajectory midpoint (or the
// AssignTrip override). A trip with an empty trajectory routes to shard 0.
func (r *Router) TripShard(t model.Trip) int {
	if r.AssignTrip != nil {
		return r.clamp(r.AssignTrip(t))
	}
	if len(t.Traj) == 0 {
		return 0
	}
	return r.ShardOfPoint(t.Traj[len(t.Traj)/2].P)
}

// clamp guards against override functions stepping outside [0, N).
func (r *Router) clamp(s int) int {
	if s < 0 {
		return 0
	}
	if s >= r.n {
		return r.n - 1
	}
	return s
}
