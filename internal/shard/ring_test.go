package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func testPeers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key/%d", i)
	}
	return out
}

func TestRingDeterministicUnderPeerReordering(t *testing.T) {
	peers := testPeers(7)
	a, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), peers...)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicates must not disturb the assignment either.
		withDup := append(append([]string(nil), shuffled...), shuffled[0])
		b, err := NewRing(withDup, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Peers(), b.Peers()) {
			t.Fatalf("trial %d: member sets differ: %v vs %v", trial, a.Peers(), b.Peers())
		}
		for _, k := range testKeys(500) {
			if ao, bo := a.Owners(k, 3), b.Owners(k, 3); !reflect.DeepEqual(ao, bo) {
				t.Fatalf("trial %d: key %q owners differ: %v vs %v", trial, k, ao, bo)
			}
		}
	}
}

func TestRingKeyMovementOnMembershipChange(t *testing.T) {
	const nPeers, nKeys = 10, 4000
	peers := testPeers(nPeers)
	full, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(peers[:nPeers-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(nKeys)

	// Removing one of n peers: only that peer's keys move, and they move to
	// peers that already existed (never shuffling keys between survivors).
	moved := 0
	for _, k := range keys {
		fo, so := full.Owner(k), smaller.Owner(k)
		if fo == so {
			continue
		}
		moved++
		if fo != peers[nPeers-1] {
			t.Fatalf("key %q moved from surviving peer %s to %s", k, fo, so)
		}
	}
	// The removed peer held ~1/n of the keys; allow generous variance for
	// the hash spread (2x the expected share).
	if lo, hi := nKeys/nPeers/2, nKeys*2/nPeers; moved < lo || moved > hi {
		t.Fatalf("removing 1 of %d peers moved %d of %d keys, want within [%d, %d]",
			nPeers, moved, nKeys, lo, hi)
	}

	// Adding a peer is the same bound from the other side.
	added := 0
	for _, k := range keys {
		if full.Owner(k) != smaller.Owner(k) {
			added++
		}
	}
	if added != moved {
		t.Fatalf("add/remove asymmetry: %d vs %d", added, moved)
	}
}

func TestRingOwnersAreDistinctAndOrdered(t *testing.T) {
	r, err := NewRing(testPeers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", k, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate replica %s in %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %q: Owners[0]=%s but Owner=%s", k, owners[0], r.Owner(k))
		}
		// Prefixes agree: the replica list is a stable walk, so asking for
		// fewer replicas returns a prefix of asking for more.
		if two := r.Owners(k, 2); !reflect.DeepEqual(two, owners[:2]) {
			t.Fatalf("key %q: Owners(2)=%v is not a prefix of Owners(3)=%v", k, two, owners)
		}
	}
}

func TestRingFailoverIsNextReplicaInRingOrder(t *testing.T) {
	// The failover contract: when a key's owner dies, the peer the survivors
	// agree on next is exactly Owners(key, 2)[1] — equivalently, the key's
	// owner in a ring built without the dead peer.
	peers := testPeers(6)
	full, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(300) {
		owners := full.Owners(k, 2)
		survivors := make([]string, 0, len(peers)-1)
		for _, p := range peers {
			if p != owners[0] {
				survivors = append(survivors, p)
			}
		}
		reduced, err := NewRing(survivors, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := reduced.Owner(k); got != owners[1] {
			t.Fatalf("key %q: after losing %s the ring owner is %s, but the replica list promised %s",
				k, owners[0], got, owners[1])
		}
	}
}

func TestRingOwnersClampAndSpread(t *testing.T) {
	peers := testPeers(3)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owners("k", 99); len(got) != len(peers) {
		t.Fatalf("Owners clamp: got %d, want %d", len(got), len(peers))
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("Owners floor: got %d, want 1", len(got))
	}
	// Every peer owns a nontrivial share of shard keys.
	counts := map[string]int{}
	for sh := 0; sh < 300; sh++ {
		counts[r.ShardOwners(sh, 1)[0]]++
	}
	for _, p := range peers {
		if counts[p] < 30 {
			t.Fatalf("peer %s owns only %d of 300 shard keys: %v", p, counts[p], counts)
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty peer name accepted")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Fatal("negative virtual node count accepted")
	}
}
