package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is how many ring positions each peer takes when
// NewRing is given 0. 128 keeps the per-peer load spread within a few
// percent for small clusters while the ring stays a few KB.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring assigning string keys (shard indices,
// routing cells) to peers. Each peer owns VirtualNodes pseudo-random
// positions on a 64-bit circle; a key belongs to the first peer position at
// or after its own hash, and its replicas are the next distinct peers
// clockwise. The properties the cluster frontend leans on:
//
//   - Determinism: assignment depends only on the peer-name set and the key.
//     Peers are sorted and deduplicated at construction, so every frontend
//     given the same peer list — in any order — routes identically.
//   - Stability: adding or removing one of n peers moves ~1/n of the keys
//     and never reshuffles keys between two surviving peers.
//   - Replica order IS failover order: Owners(key, n) lists the owner first
//     and then the replicas in ring order, so "try the next replica" is the
//     same walk every peer performs.
//
// A Ring is immutable after construction; rebuild it to change membership.
type Ring struct {
	peers  []string
	vnodes int
	// points and owners are parallel: points is the sorted circle, owners[i]
	// indexes peers for the peer owning points[i].
	points []uint64
	owners []int32
}

// NewRing builds a ring over the given peer names with the given number of
// virtual nodes per peer (0 = DefaultVirtualNodes). Order and duplicates in
// peers do not matter; names must be non-empty.
func NewRing(peers []string, virtualNodes int) (*Ring, error) {
	if virtualNodes == 0 {
		virtualNodes = DefaultVirtualNodes
	}
	if virtualNodes < 1 {
		return nil, fmt.Errorf("shard: virtual node count %d < 1", virtualNodes)
	}
	uniq := append([]string(nil), peers...)
	sort.Strings(uniq)
	n := 0
	for i, p := range uniq {
		if p == "" {
			return nil, fmt.Errorf("shard: empty peer name at index %d", i)
		}
		if n == 0 || uniq[n-1] != p {
			uniq[n] = p
			n++
		}
	}
	uniq = uniq[:n]
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one peer")
	}
	r := &Ring{
		peers:  uniq,
		vnodes: virtualNodes,
		points: make([]uint64, 0, len(uniq)*virtualNodes),
		owners: make([]int32, 0, len(uniq)*virtualNodes),
	}
	type pt struct {
		h     uint64
		owner int32
	}
	pts := make([]pt, 0, len(uniq)*virtualNodes)
	for pi, p := range uniq {
		for v := 0; v < virtualNodes; v++ {
			pts = append(pts, pt{h: ringHash(p + "#" + strconv.Itoa(v)), owner: int32(pi)})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// A 64-bit collision between two peers' virtual nodes is vanishingly
		// rare but must still break deterministically: lower peer index wins.
		return pts[i].owner < pts[j].owner
	})
	for _, p := range pts {
		r.points = append(r.points, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r, nil
}

// ringHash is FNV-64a followed by a 64-bit finalizer (the murmur3 mixer).
// Raw FNV barely avalanches when inputs differ only in a trailing digit —
// "peer#0".."peer#127" land on one tight arc, which collapses the spread —
// so the mixer diffuses every bit. Fixed and dependency-free, so every
// process and every release agrees on the circle.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Peers returns the ring's members, sorted and deduplicated.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// NumPeers returns the member count.
func (r *Ring) NumPeers() int { return len(r.peers) }

// find returns the index of the first ring point at or clockwise after h.
func (r *Ring) find(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		return 0 // wrap past the top of the circle
	}
	return i
}

// Owner returns the peer owning key.
func (r *Ring) Owner(key string) string {
	return r.peers[r.owners[r.find(ringHash(key))]]
}

// Owners returns the n distinct peers responsible for key: the owner first,
// then the replicas in ring order — which is also the failover order every
// caller agrees on. n is clamped to the member count.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]struct{}, n)
	start := r.find(ringHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		o := r.owners[(start+i)%len(r.points)]
		if _, ok := seen[o]; ok {
			continue
		}
		seen[o] = struct{}{}
		out = append(out, r.peers[o])
	}
	return out
}

// ShardOwners returns the owner-then-replicas peer list for shard index sh —
// the ring key every frontend and smoke script uses for shard placement.
func (r *Ring) ShardOwners(sh, n int) []string {
	return r.Owners(ShardKeyName(sh), n)
}

// ShardKeyName is the canonical ring key for a shard index.
func ShardKeyName(sh int) string { return "shard/" + strconv.Itoa(sh) }
