package synth

import (
	"math"
	"math/rand"
	"sort"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// stop is one dwell during a trip: a delivery stop serving some addresses,
// or a confounding non-delivery stop (rest, traffic) with no addresses.
type stop struct {
	loc   geo.Point
	addrs []model.AddressID
}

// GenerateClean builds the world and simulates all delivery trips without
// batch-confirmation delays: recorded times carry only the small organic
// confirmation lag (actual + ConfirmLag). Use Generate for the profile's
// batch-delay behaviour, or InjectDelays to add batch delays at a chosen
// probability (Table III).
func GenerateClean(p Profile) (*model.Dataset, *World, error) {
	w, err := BuildWorld(p)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))
	ds := &model.Dataset{
		Name:      p.Name,
		Addresses: w.Addresses,
		Truth:     w.Truth,
	}
	for day := 0; day < p.Days; day++ {
		for z := 0; z < p.NCouriers; z++ {
			tr := w.simulateTrip(rng, z, day)
			if len(tr.Waybills) > 0 {
				ds.Trips = append(ds.Trips, tr)
			}
		}
	}
	return ds, w, nil
}

// Generate is GenerateClean followed by delay injection with the profile's
// DelayProb and DelayBatches — the generator's model of couriers' real-world
// batch-confirmation habit.
func Generate(p Profile) (*model.Dataset, *World, error) {
	ds, w, err := GenerateClean(p)
	if err != nil {
		return nil, nil, err
	}
	return InjectDelays(ds, p.DelayProb, p.DelayBatches, p.Seed+2), w, nil
}

// simulateTrip produces one courier-day trip: batch sampling, a nearest-
// neighbor route over the delivery locations, dwells, confounders, and a
// noisy GPS trajectory.
func (w *World) simulateTrip(rng *rand.Rand, zone, day int) model.Trip {
	p := w.Profile

	// Sample the batch of addresses for this trip.
	nOrders := p.MinOrders + rng.Intn(p.MaxOrders-p.MinOrders+1)
	chosen := w.sampleBatch(rng, zone, nOrders)

	// Group addresses by their true delivery location: several addresses of
	// a community may share a locker, so one stop serves them all.
	byLoc := make(map[geo.Point]*stop)
	var stops []*stop
	for _, a := range chosen {
		loc := w.Truth[a]
		s, ok := byLoc[loc]
		if !ok {
			s = &stop{loc: loc}
			byLoc[loc] = s
			stops = append(stops, s)
		}
		s.addrs = append(s.addrs, a)
	}

	// Nearest-neighbor route from the courier's station.
	station := w.stations[zone]
	route := nearestNeighborRoute(station, stops)

	// Insert confounding non-delivery stops at random route positions.
	nRest := poisson(rng, p.NonDeliveryStops)
	for i := 0; i < nRest && len(route) > 0; i++ {
		at := rng.Intn(len(route) + 1)
		b := w.zones[zone][rng.Intn(len(w.zones[zone]))]
		loc := w.Buildings[b].Center.Add(geo.Point{
			X: rng.NormFloat64() * 35, Y: rng.NormFloat64() * 35,
		})
		rest := &stop{loc: loc}
		route = append(route[:at], append([]*stop{rest}, route[at:]...)...)
	}

	// Walk the route emitting the trajectory.
	t0 := float64(day)*86400 + 8.5*3600 + rng.Float64()*1.5*3600
	var points traj.Trajectory
	t := t0
	pos := station
	emitDwell := func(loc geo.Point, dur float64) {
		// A per-dwell systematic GPS offset: multipath shifts the whole stay.
		biased := loc
		if p.DwellBiasSigma > 0 {
			biased = loc.Add(geo.Point{
				X: rng.NormFloat64() * p.DwellBiasSigma,
				Y: rng.NormFloat64() * p.DwellBiasSigma,
			})
		}
		end := t + dur
		// Start one interval in: the previous walk segment already emitted a
		// fix at the current time.
		for t += p.SampleInterval; t < end; t += p.SampleInterval {
			points = append(points, w.noisyFix(rng, biased, t))
		}
	}
	emitWalk := func(to geo.Point) {
		speed := math.Min(7, math.Max(2, p.Speed+rng.NormFloat64()*0.6))
		d := geo.Dist(pos, to)
		steps := int(d/(speed*p.SampleInterval)) + 1
		for i := 1; i <= steps; i++ {
			f := float64(i) / float64(steps)
			at := geo.Point{X: pos.X + f*(to.X-pos.X), Y: pos.Y + f*(to.Y-pos.Y)}
			t += p.SampleInterval
			points = append(points, w.noisyFix(rng, at, t))
		}
		pos = to
	}

	// Loading dwell at the station (a deliberately common, high-coverage
	// location that MaxTC mistakes for a delivery location).
	emitDwell(station, 120+rng.Float64()*60)

	trip := model.Trip{Courier: model.CourierID(zone), StartT: t0}
	for _, s := range route {
		emitWalk(s.loc)
		var dwell float64
		if len(s.addrs) == 0 {
			dwell = 60 + rng.Float64()*180 // rest / traffic stop
		} else {
			dwell = math.Max(45, p.StayMean+rng.NormFloat64()*p.StayStd)
			// More parcels take a bit longer.
			dwell += float64(len(s.addrs)-1) * 15
		}
		dwellEnd := t + dwell
		for _, a := range s.addrs {
			// Organic confirmation lag: exponential, capped at two minutes.
			lag := 0.0
			if p.LagMeanSec > 0 {
				lag = math.Min(120, rng.ExpFloat64()*p.LagMeanSec)
			}
			trip.Waybills = append(trip.Waybills, model.Waybill{
				Addr:              a,
				ReceivedT:         t0,
				ActualDeliveryT:   dwellEnd - 5,
				ConfirmLag:        lag,
				RecordedDeliveryT: dwellEnd - 5 + lag,
			})
		}
		emitDwell(s.loc, dwell)
	}
	emitWalk(station)
	trip.Traj = points
	if len(points) > 0 {
		trip.EndT = points[len(points)-1].T
	} else {
		trip.EndT = t
	}
	return trip
}

// sampleBatch draws n distinct addresses for a trip, weighted by order
// frequency, mostly from the courier's zone with occasional cross-zone
// orders.
func (w *World) sampleBatch(rng *rand.Rand, zone, n int) []model.AddressID {
	pickFromZone := func(z int) (model.AddressID, bool) {
		addrs := w.zoneAddrs[z]
		if len(addrs) == 0 {
			return 0, false
		}
		cum := w.zoneCum[z]
		r := rng.Float64() * cum[len(cum)-1]
		i := sort.SearchFloat64s(cum, r)
		if i >= len(addrs) {
			i = len(addrs) - 1
		}
		return addrs[i], true
	}

	used := make(map[model.AddressID]bool)
	var out []model.AddressID
	for tries := 0; len(out) < n && tries < n*20; tries++ {
		z := zone
		if rng.Float64() < w.Profile.CrossZoneProb {
			if rng.Float64() < 0.5 && zone > 0 {
				z = zone - 1
			} else if zone < len(w.zones)-1 {
				z = zone + 1
			}
		}
		a, ok := pickFromZone(z)
		if !ok || used[a] {
			continue
		}
		used[a] = true
		out = append(out, a)
	}
	return out
}

// noisyFix produces one GPS fix at the true position with sensing noise and
// occasional spikes for the noise filter to clean.
func (w *World) noisyFix(rng *rand.Rand, at geo.Point, t float64) traj.GPSPoint {
	p := w.Profile
	fix := at.Add(geo.Point{X: rng.NormFloat64() * p.GPSSigma, Y: rng.NormFloat64() * p.GPSSigma})
	if rng.Float64() < p.OutlierProb {
		ang := rng.Float64() * 2 * math.Pi
		r := 100 + rng.Float64()*200
		fix = fix.Add(geo.Point{X: math.Cos(ang) * r, Y: math.Sin(ang) * r})
	}
	return traj.GPSPoint{P: fix, T: t}
}

// nearestNeighborRoute orders stops greedily by proximity starting from
// start — the simple route heuristic couriers effectively follow.
func nearestNeighborRoute(start geo.Point, stops []*stop) []*stop {
	out := make([]*stop, 0, len(stops))
	remaining := append([]*stop(nil), stops...)
	pos := start
	for len(remaining) > 0 {
		best, bestD := 0, math.Inf(1)
		for i, s := range remaining {
			if d := geo.SqDist(pos, s.loc); d < bestD {
				best, bestD = i, d
			}
		}
		s := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		out = append(out, s)
		pos = s.loc
	}
	return out
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
