package synth

import (
	"math/rand"
	"sort"

	"dlinfma/internal/model"
)

// InjectDelays applies the paper's synthetic delay model (Section V-D,
// Figure 11) to a dataset and returns a new dataset sharing trajectories but
// with fresh waybill slices:
//
// Within each trip, waybills are grouped by actual delivery stop; the stops
// are divided sequentially into `batches` equal groups; the time of the last
// stop of each group is the batch-confirmation time; every waybill delivered
// before that time (and after the previous batch) has probability pd of its
// recorded delivery time being deliberately delayed to the batch time.
//
// pd = 0 returns truthful confirmations; pd = 1 delays every eligible
// waybill. The paper evaluates pd in {0.2, 0.6, 1.0} against real data whose
// organic behaviour is roughly 2 batches with pd around 0.3.
func InjectDelays(ds *model.Dataset, pd float64, batches int, seed int64) *model.Dataset {
	if batches < 1 {
		batches = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := &model.Dataset{
		Name:      ds.Name,
		Addresses: ds.Addresses,
		Truth:     ds.Truth,
		Trips:     make([]model.Trip, len(ds.Trips)),
	}
	for ti, tr := range ds.Trips {
		nt := tr
		nt.Waybills = make([]model.Waybill, len(tr.Waybills))
		copy(nt.Waybills, tr.Waybills)
		// Reset any pre-existing batch delays: injection starts from the
		// organic recording behaviour (actual time plus confirmation lag).
		for i := range nt.Waybills {
			nt.Waybills[i].RecordedDeliveryT = nt.Waybills[i].ActualDeliveryT + nt.Waybills[i].ConfirmLag
		}

		// Distinct stop times in chronological order.
		stopSet := make(map[float64]bool)
		for _, w := range nt.Waybills {
			stopSet[w.ActualDeliveryT] = true
		}
		stops := make([]float64, 0, len(stopSet))
		for t := range stopSet {
			stops = append(stops, t)
		}
		sort.Float64s(stops)
		if len(stops) == 0 {
			out.Trips[ti] = nt
			continue
		}

		nb := batches
		if nb > len(stops) {
			nb = len(stops)
		}
		// Sequential equal-sized groups of stops; each group's confirmation
		// time is its last stop's time.
		prevBatchT := -1.0
		for b := 0; b < nb; b++ {
			hi := (b+1)*len(stops)/nb - 1
			batchT := stops[hi]
			for i := range nt.Waybills {
				w := &nt.Waybills[i]
				if w.ActualDeliveryT > prevBatchT && w.ActualDeliveryT < batchT {
					if rng.Float64() < pd && batchT > w.RecordedDeliveryT {
						w.RecordedDeliveryT = batchT
					}
				}
			}
			prevBatchT = batchT
		}
		out.Trips[ti] = nt
	}
	return out
}

// DelayStats summarizes batch-confirmation delays in a dataset. A waybill
// counts as delayed when its recorded time exceeds the organic recording
// behaviour (actual time plus confirmation lag) by more than a second.
type DelayStats struct {
	Waybills     int
	Delayed      int
	MeanDelaySec float64 // mean batch delay over delayed waybills
	MaxDelaySec  float64
}

// MeasureDelays computes batch-delay statistics over all waybills.
func MeasureDelays(ds *model.Dataset) DelayStats {
	var s DelayStats
	var sum float64
	for _, tr := range ds.Trips {
		for _, w := range tr.Waybills {
			s.Waybills++
			d := w.RecordedDeliveryT - (w.ActualDeliveryT + w.ConfirmLag)
			if d > 1 {
				s.Delayed++
				sum += d
				if d > s.MaxDelaySec {
					s.MaxDelaySec = d
				}
			}
		}
	}
	if s.Delayed > 0 {
		s.MeanDelaySec = sum / float64(s.Delayed)
	}
	return s
}
