// Package synth generates synthetic delivery datasets that stand in for the
// paper's proprietary JD Logistics data (DowBJ/SubBJ). The generator builds
// a city of communities and buildings, assigns each address a true delivery
// location (doorstep, shared express locker, or community reception —
// Figure 1 of the paper), simulates couriers' daily delivery trips with
// realistic GPS trajectories, and injects confirmation delays with the
// paper's own batch-confirmation model (Section V-D).
//
// Everything downstream — candidate generation, features, LocMatcher, all
// baselines, and every table/figure reproduction — consumes only the
// artefacts the real data would provide: trajectories, waybills with
// recorded delivery times, and geocodes. Ground truth is kept separately for
// evaluation.
package synth

// Profile configures one synthetic dataset. Two presets mirror the paper's
// datasets: DowBJ (downtown: denser orders, better geocoding) and SubBJ
// (suburban: sparser orders, noisier geocoding, more stops per trip).
type Profile struct {
	Name string
	Seed int64

	// City layout.
	Extent                float64 // side of the square region, meters
	NBuildings            int
	MinAddrPerBuilding    int
	MaxAddrPerBuilding    int
	BuildingsPerCommunity int

	// Customer delivery preferences (Figure 1): probabilities that an
	// address's true delivery location is the doorstep, the community's
	// express locker, or the reception. Must sum to 1.
	PDoorstep  float64
	PLocker    float64
	PReception float64

	// Geocoding error model (Figure 12 failure modes).
	GeocodeSigma     float64 // base Gaussian imprecision, meters
	PCoarseCommunity float64 // fraction of communities with one coarse POI entry
	PWrongParse      float64 // per-address probability of similar-name misparse

	// Courier operations.
	// AlignZonesToCommunities stripes whole communities into courier zones
	// instead of striping individual buildings. Buildings sharing a locker
	// or reception then always share a zone, so zone-partitioned runs (the
	// sharded engine's equivalence checks) see no delivery point serving two
	// zones. Default false keeps the historical building-level striping.
	AlignZonesToCommunities bool
	NCouriers               int
	Days                    int
	MinOrders               int // per courier per day
	MaxOrders               int
	CrossZoneProb           float64 // probability an order comes from a neighbor zone
	Speed                   float64 // mean travel speed, m/s
	StayMean                float64 // mean dwell per delivery stop, seconds
	StayStd                 float64
	NonDeliveryStops        float64 // expected confounding stops per trip

	// GPS sensing.
	SampleInterval float64 // seconds between fixes (paper: 13.5 s average)
	GPSSigma       float64 // per-fix Gaussian noise, meters
	// DwellBiasSigma is the standard deviation of a per-dwell systematic
	// offset (urban-canyon multipath shifts a whole stay, not single fixes).
	// It is what makes small clustering distances split one true location
	// into several candidates — the left side of the paper's Figure 10(a)
	// U-shape.
	DwellBiasSigma float64
	OutlierProb    float64 // per-fix probability of a large spike

	// LagMeanSec is the mean of the exponential organic confirmation lag:
	// couriers confirm shortly after leaving a stop even when they do not
	// batch. It drifts annotated locations along the departure path.
	LagMeanSec float64

	// Confirmation delays (Section V-D): couriers confirm in DelayBatches
	// batches per trip; each earlier waybill is delayed to its batch time
	// with probability DelayProb. The paper measures ~2 batches and
	// p_d ~ 0.3 in the real data.
	DelayProb    float64
	DelayBatches int
}

// DowBJ returns the downtown-Beijing-like profile: denser orders per
// address, tighter geocoding.
func DowBJ() Profile {
	return Profile{
		Name: "DowBJ", Seed: 20180101,
		Extent: 2400, NBuildings: 150,
		MinAddrPerBuilding: 3, MaxAddrPerBuilding: 6,
		BuildingsPerCommunity: 8,
		PDoorstep:             0.60, PLocker: 0.25, PReception: 0.15,
		GeocodeSigma: 25, PCoarseCommunity: 0.25, PWrongParse: 0.04,
		NCouriers: 5, Days: 60, MinOrders: 18, MaxOrders: 26,
		CrossZoneProb: 0.08, Speed: 4, StayMean: 90, StayStd: 25,
		NonDeliveryStops: 3,
		SampleInterval:   13.5, GPSSigma: 4, DwellBiasSigma: 6, OutlierProb: 0.004,
		LagMeanSec: 20,
		DelayProb:  0.3, DelayBatches: 2,
	}
}

// SubBJ returns the suburban profile: sparser orders, noisier geocoding,
// more stops per trip — the combination that makes inference harder in the
// paper's Table II.
func SubBJ() Profile {
	return Profile{
		Name: "SubBJ", Seed: 20180102,
		Extent: 3200, NBuildings: 180,
		MinAddrPerBuilding: 2, MaxAddrPerBuilding: 5,
		BuildingsPerCommunity: 8,
		PDoorstep:             0.55, PLocker: 0.28, PReception: 0.17,
		GeocodeSigma: 40, PCoarseCommunity: 0.35, PWrongParse: 0.06,
		NCouriers: 5, Days: 60, MinOrders: 20, MaxOrders: 28,
		CrossZoneProb: 0.08, Speed: 4, StayMean: 100, StayStd: 30,
		NonDeliveryStops: 5,
		SampleInterval:   13.5, GPSSigma: 6, DwellBiasSigma: 8, OutlierProb: 0.006,
		LagMeanSec: 30,
		DelayProb:  0.3, DelayBatches: 2,
	}
}

// Tiny returns a small profile for fast tests.
func Tiny() Profile {
	p := DowBJ()
	p.Name = "Tiny"
	p.Seed = 7
	p.Extent = 1200
	p.NBuildings = 40
	p.NCouriers = 2
	p.Days = 14
	p.MinOrders, p.MaxOrders = 10, 14
	return p
}

// Validate reports configuration problems.
func (p Profile) Validate() error {
	switch {
	case p.Extent <= 0, p.NBuildings <= 0, p.NCouriers <= 0, p.Days <= 0:
		return errProfile("extent, buildings, couriers and days must be positive")
	case p.MinAddrPerBuilding < 1 || p.MaxAddrPerBuilding < p.MinAddrPerBuilding:
		return errProfile("address-per-building range invalid")
	case p.MinOrders < 1 || p.MaxOrders < p.MinOrders:
		return errProfile("orders range invalid")
	case p.PDoorstep+p.PLocker+p.PReception < 0.999 || p.PDoorstep+p.PLocker+p.PReception > 1.001:
		return errProfile("delivery preferences must sum to 1")
	case p.SampleInterval <= 0 || p.Speed <= 0:
		return errProfile("sample interval and speed must be positive")
	case p.DelayProb < 0 || p.DelayProb > 1:
		return errProfile("delay probability must be in [0,1]")
	}
	return nil
}

type errProfile string

func (e errProfile) Error() string { return "synth: invalid profile: " + string(e) }
