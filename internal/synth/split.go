package synth

import (
	"sort"

	"dlinfma/internal/model"
)

// Split holds the spatially disjoint train/validation/test address sets. The
// paper splits by disjoint spatial regions so that no delivery location
// appears in two splits; here buildings are banded by their x coordinate,
// and every address of a building lands in the same split.
type Split struct {
	Train []model.AddressID
	Val   []model.AddressID
	Test  []model.AddressID
}

// SplitSpatial partitions the dataset's addresses into train/val/test by
// building location with the given fractions (test receives the remainder):
// buildings are ordered by x coordinate and cut into contiguous bands, so
// the three splits occupy disjoint spatial regions and share no delivery
// locations — the paper's splitting protocol.
func SplitSpatial(ds *model.Dataset, w *World, trainFrac, valFrac float64) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.6
	}
	if valFrac <= 0 || trainFrac+valFrac >= 1 {
		valFrac = 0.2
	}
	// Order buildings by x, cut into 10 stripes, assign stripes round-robin
	// proportionally to the fractions.
	type bx struct {
		b model.BuildingID
		x float64
	}
	var blds []bx
	for _, b := range w.Buildings {
		blds = append(blds, bx{b.ID, b.Center.X})
	}
	sort.Slice(blds, func(i, j int) bool { return blds[i].x < blds[j].x })

	const stripes = 10
	assign := make(map[model.BuildingID]int) // 0 train, 1 val, 2 test
	nTrainStripes := int(trainFrac*stripes + 0.5)
	nValStripes := int(valFrac*stripes + 0.5)
	for i, b := range blds {
		stripe := i * stripes / len(blds)
		switch {
		case stripe < nTrainStripes:
			assign[b.b] = 0
		case stripe < nTrainStripes+nValStripes:
			assign[b.b] = 1
		default:
			assign[b.b] = 2
		}
	}

	var s Split
	for _, a := range ds.Addresses {
		switch assign[a.Building] {
		case 0:
			s.Train = append(s.Train, a.ID)
		case 1:
			s.Val = append(s.Val, a.ID)
		default:
			s.Test = append(s.Test, a.ID)
		}
	}
	return s
}

// Contains reports whether id is in the given slice.
func Contains(ids []model.AddressID, id model.AddressID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
