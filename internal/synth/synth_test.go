package synth

import (
	"math"
	"sort"
	"testing"

	"dlinfma/internal/addrtext"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

func TestProfileValidation(t *testing.T) {
	if err := DowBJ().Validate(); err != nil {
		t.Errorf("DowBJ invalid: %v", err)
	}
	if err := SubBJ().Validate(); err != nil {
		t.Errorf("SubBJ invalid: %v", err)
	}
	bad := DowBJ()
	bad.PDoorstep = 0.9 // preferences no longer sum to 1
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for bad preferences")
	}
	bad = DowBJ()
	bad.NCouriers = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for zero couriers")
	}
}

func TestBuildWorldStructure(t *testing.T) {
	w, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	p := Tiny()
	if len(w.Buildings) != p.NBuildings {
		t.Errorf("got %d buildings, want %d", len(w.Buildings), p.NBuildings)
	}
	if len(w.Addresses) < p.NBuildings*p.MinAddrPerBuilding {
		t.Errorf("too few addresses: %d", len(w.Addresses))
	}
	// Every address has ground truth and a geocode within the (expanded)
	// region.
	region := geo.Rect{MinX: -400, MinY: -400, MaxX: p.Extent + 400, MaxY: p.Extent + 400}
	for _, a := range w.Addresses {
		truth, ok := w.Truth[a.ID]
		if !ok {
			t.Fatalf("address %d has no ground truth", a.ID)
		}
		if !region.Contains(truth) || !region.Contains(a.Geocode) {
			t.Errorf("address %d outside region: truth=%v geocode=%v", a.ID, truth, a.Geocode)
		}
		if !a.POI.Valid() {
			t.Errorf("address %d has invalid POI %d", a.ID, a.POI)
		}
	}
	// Communities must reference their buildings consistently.
	for ci, c := range w.Communities {
		for _, b := range c.Buildings {
			if w.Buildings[b].Community != ci {
				t.Errorf("building %d community backref broken", b)
			}
		}
		if c.Sibling == ci {
			t.Errorf("community %d is its own sibling", ci)
		}
	}
}

func TestWorldHasAllThreeDeliveryKinds(t *testing.T) {
	w, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[DeliveryKind]int{}
	for _, k := range w.TruthKind {
		counts[k]++
	}
	for _, k := range []DeliveryKind{KindDoorstep, KindLocker, KindReception} {
		if counts[k] == 0 {
			t.Errorf("no addresses with kind %v", k)
		}
	}
	if counts[KindDoorstep] <= counts[KindLocker] {
		t.Errorf("doorstep should dominate: %v", counts)
	}
}

func TestBuildingsShareDifferentDeliveryLocations(t *testing.T) {
	// Figure 9(a): a substantial share of buildings has addresses with more
	// than one distinct delivery location.
	w, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	multi, total := 0, 0
	for _, addrs := range w.addrsOfBld {
		if len(addrs) < 2 {
			continue
		}
		total++
		locs := map[geo.Point]bool{}
		for _, a := range addrs {
			locs[w.Truth[a]] = true
		}
		if len(locs) > 1 {
			multi++
		}
	}
	if total == 0 || float64(multi)/float64(total) < 0.1 {
		t.Errorf("only %d/%d multi-location buildings; expected >= 10%%", multi, total)
	}
}

func TestGeocodeErrorModesPresent(t *testing.T) {
	w, err := BuildWorld(DowBJ())
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]int{}
	for _, a := range w.Addresses {
		modes[a.GeocodeMode.String()]++
	}
	for _, m := range []string{"accurate", "coarse-poi", "wrong-parse"} {
		if modes[m] == 0 {
			t.Errorf("no addresses with geocode mode %s (got %v)", m, modes)
		}
	}
	// Wrong parses should be large errors on average.
	var wrongSum, accSum float64
	var wrongN, accN int
	for _, a := range w.Addresses {
		d := geo.Dist(a.Geocode, w.Buildings[a.Building].Center)
		switch a.GeocodeMode.String() {
		case "wrong-parse":
			wrongSum += d
			wrongN++
		case "accurate":
			accSum += d
			accN++
		}
	}
	if wrongN > 0 && accN > 0 && wrongSum/float64(wrongN) < 2*accSum/float64(accN) {
		t.Errorf("wrong-parse mean error %.0f not much larger than accurate %.0f",
			wrongSum/float64(wrongN), accSum/float64(accN))
	}
}

func TestGenerateCleanDataset(t *testing.T) {
	ds, w, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	if len(ds.Trips) == 0 || ds.Deliveries() == 0 {
		t.Fatal("empty dataset")
	}
	// No batch delays: recorded = actual + organic lag only.
	for _, tr := range ds.Trips {
		for _, wb := range tr.Waybills {
			if wb.RecordedDeliveryT != wb.ActualDeliveryT+wb.ConfirmLag {
				t.Fatal("clean dataset has batch delays")
			}
			if wb.ConfirmLag < 0 || wb.ConfirmLag > 120 {
				t.Errorf("confirm lag %v out of [0,120]", wb.ConfirmLag)
			}
			if wb.ActualDeliveryT < tr.StartT || wb.ActualDeliveryT > tr.EndT {
				t.Errorf("delivery time outside trip: %v not in [%v,%v]", wb.ActualDeliveryT, tr.StartT, tr.EndT)
			}
		}
	}
	_ = w
}

func TestTrajectoriesPassNearDeliveryLocations(t *testing.T) {
	// The courier must actually dwell at each waybill's true delivery
	// location around the actual delivery time.
	ds, w, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, tr := range ds.Trips[:min(10, len(ds.Trips))] {
		for _, wb := range tr.Waybills {
			truth := w.Truth[wb.Addr]
			// Median fix distance over the dwell window is robust to the
			// injected GPS outliers.
			window := tr.Traj.Slice(wb.ActualDeliveryT-35, wb.ActualDeliveryT)
			if len(window) == 0 {
				t.Fatalf("no fixes in dwell window of waybill for %d", wb.Addr)
			}
			var ds []float64
			for _, p := range window {
				ds = append(ds, geo.Dist(p.P, truth))
			}
			sort.Float64s(ds)
			if med := ds[len(ds)/2]; med > 40 {
				t.Errorf("courier median %.0f m from delivery location during dwell", med)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no waybills checked")
	}
}

func TestStayPointsMatchDeliveries(t *testing.T) {
	// Stay-point extraction on a simulated trip finds a stay near most
	// delivery locations — the core premise of the paper.
	ds, w, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	tr := ds.Trips[0]
	sps := traj.ExtractStayPoints(tr.Traj, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig())
	if len(sps) < len(tr.Waybills)/2 {
		t.Fatalf("only %d stay points for %d waybills", len(sps), len(tr.Waybills))
	}
	found := 0
	for _, wb := range tr.Waybills {
		truth := w.Truth[wb.Addr]
		for _, sp := range sps {
			if geo.Dist(sp.Loc, truth) < 30 {
				found++
				break
			}
		}
	}
	if frac := float64(found) / float64(len(tr.Waybills)); frac < 0.7 {
		t.Errorf("stay points cover only %.0f%% of deliveries", frac*100)
	}
}

func TestInjectDelays(t *testing.T) {
	ds, _, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, pd := range []float64{0, 0.3, 1.0} {
		inj := InjectDelays(ds, pd, 2, 99)
		if err := inj.Validate(); err != nil {
			t.Fatalf("pd=%v: %v", pd, err)
		}
		st := MeasureDelays(inj)
		frac := float64(st.Delayed) / float64(st.Waybills)
		switch {
		case pd == 0 && st.Delayed != 0:
			t.Errorf("pd=0 delayed %d waybills", st.Delayed)
		case pd == 0.3 && (frac < 0.1 || frac > 0.5):
			t.Errorf("pd=0.3 delayed fraction %.2f out of expected band", frac)
		case pd == 1.0 && frac < 0.5:
			// With 2 batches, roughly everything except batch-final stops is
			// delayed.
			t.Errorf("pd=1.0 delayed fraction %.2f too low", frac)
		}
		// Delays never decrease recorded times, and originals are untouched.
		for ti, tr := range inj.Trips {
			for wi, wb := range tr.Waybills {
				if wb.RecordedDeliveryT < wb.ActualDeliveryT {
					t.Fatal("recorded before actual after injection")
				}
				orig := ds.Trips[ti].Waybills[wi]
				if orig.RecordedDeliveryT != orig.ActualDeliveryT+orig.ConfirmLag {
					t.Fatal("injection mutated the source dataset")
				}
			}
		}
	}
}

func TestInjectDelaysIdempotentOnReinjection(t *testing.T) {
	// Injection resets to actual times first, so re-injecting a delayed
	// dataset equals injecting the clean one.
	ds, _, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	a := InjectDelays(ds, 0.6, 2, 5)
	b := InjectDelays(InjectDelays(ds, 1.0, 2, 123), 0.6, 2, 5)
	for ti := range a.Trips {
		for wi := range a.Trips[ti].Waybills {
			if a.Trips[ti].Waybills[wi].RecordedDeliveryT != b.Trips[ti].Waybills[wi].RecordedDeliveryT {
				t.Fatal("re-injection differs from clean injection")
			}
		}
	}
}

func TestGenerateAppliesProfileDelays(t *testing.T) {
	ds, _, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	st := MeasureDelays(ds)
	if st.Delayed == 0 {
		t.Error("profile delays not applied")
	}
	if st.MeanDelaySec <= 0 {
		t.Error("mean delay should be positive")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _, _ := Generate(Tiny())
	b, _, _ := Generate(Tiny())
	if len(a.Trips) != len(b.Trips) || a.Deliveries() != b.Deliveries() {
		t.Fatal("generation is nondeterministic in structure")
	}
	for i := range a.Trips {
		if len(a.Trips[i].Traj) != len(b.Trips[i].Traj) {
			t.Fatal("trajectory lengths differ")
		}
		if a.Trips[i].Traj[0] != b.Trips[i].Traj[0] {
			t.Fatal("trajectories differ")
		}
	}
}

func TestSplitSpatialDisjointAndComplete(t *testing.T) {
	ds, w, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := SplitSpatial(ds, w, 0.6, 0.2)
	seen := make(map[model.AddressID]int)
	for _, id := range s.Train {
		seen[id]++
	}
	for _, id := range s.Val {
		seen[id]++
	}
	for _, id := range s.Test {
		seen[id]++
	}
	if len(seen) != len(ds.Addresses) {
		t.Errorf("split covers %d addresses, want %d", len(seen), len(ds.Addresses))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("address %d appears in %d splits", id, c)
		}
	}
	if len(s.Train) == 0 || len(s.Val) == 0 || len(s.Test) == 0 {
		t.Errorf("empty split: train=%d val=%d test=%d", len(s.Train), len(s.Val), len(s.Test))
	}
	// Buildings are never split across sets.
	bySplit := make(map[model.BuildingID]string)
	check := func(ids []model.AddressID, name string) {
		for _, id := range ids {
			a, _ := ds.AddressByID(id)
			if prev, ok := bySplit[a.Building]; ok && prev != name {
				t.Fatalf("building %d split across %s and %s", a.Building, prev, name)
			}
			bySplit[a.Building] = name
		}
	}
	check(s.Train, "train")
	check(s.Val, "val")
	check(s.Test, "test")
}

func TestDeliveriesPerAddressHeavyTail(t *testing.T) {
	// Figure 9(b): some addresses have many deliveries, the median is small.
	ds, _, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[model.AddressID]int{}
	for _, tr := range ds.Trips {
		for _, wb := range tr.Waybills {
			counts[wb.Addr]++
		}
	}
	maxC := 0
	var sum int
	for _, c := range counts {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(sum) / float64(len(counts))
	if float64(maxC) < 3*mean {
		t.Errorf("no heavy tail: max=%d mean=%.1f", maxC, mean)
	}
}

func TestGPSNoiseMagnitude(t *testing.T) {
	// Fixes should deviate from the dwell centroid on the order of GPSSigma,
	// not wildly more (excluding injected outliers).
	ds, w, err := GenerateClean(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	tr := ds.Trips[0]
	wb := tr.Waybills[0]
	truth := w.Truth[wb.Addr]
	var devs []float64
	for _, p := range tr.Traj.Slice(wb.ActualDeliveryT-40, wb.ActualDeliveryT) {
		devs = append(devs, geo.Dist(p.P, truth))
	}
	if len(devs) == 0 {
		t.Skip("no fixes in dwell window")
	}
	var med float64
	for _, d := range devs {
		med += d
	}
	med /= float64(len(devs))
	if med > 6*Tiny().GPSSigma+10 {
		t.Errorf("median dwell deviation %.1f m too large", med)
	}
	_ = math.Pi
}

func TestAddressTextsParseBackToCommunity(t *testing.T) {
	w, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := addrtext.NewGazetteer(w.CommunityNames())
	for _, a := range w.Addresses[:60] {
		raw, ok := w.AddressText(a.ID)
		if !ok {
			t.Fatalf("no text for address %d", a.ID)
		}
		_, community, err := addrtext.Parse(raw, g)
		if err != nil {
			t.Fatalf("address %d text %q: %v", a.ID, raw, err)
		}
		if want := w.Buildings[a.Building].Community; community != want {
			t.Errorf("address %d resolved to community %d, want %d (%q)", a.ID, community, want, raw)
		}
	}
	if _, ok := w.AddressText(model.AddressID(999999)); ok {
		t.Error("unknown address should have no text")
	}
}

func TestZoneAccessors(t *testing.T) {
	w, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if w.NZones() != Tiny().NCouriers {
		t.Fatalf("NZones = %d, want %d", w.NZones(), Tiny().NCouriers)
	}
	// Every building belongs to exactly one zone, consistent with the zone
	// address lists used for trip sampling.
	counts := make([]int, w.NZones())
	for _, b := range w.Buildings {
		z := w.ZoneOfBuilding(b.ID)
		if z < 0 || z >= w.NZones() {
			t.Fatalf("building %d in zone %d", b.ID, z)
		}
		counts[z]++
	}
	total := 0
	for z, c := range counts {
		if c == 0 {
			t.Errorf("zone %d empty", z)
		}
		total += c
	}
	if total != len(w.Buildings) {
		t.Errorf("zones cover %d of %d buildings", total, len(w.Buildings))
	}
	for _, a := range w.Addresses {
		z, ok := w.ZoneOfAddress(a.ID)
		if !ok || z != w.ZoneOfBuilding(a.Building) {
			t.Fatalf("address %d zone %d (ok=%v), building zone %d", a.ID, z, ok, w.ZoneOfBuilding(a.Building))
		}
	}
	if _, ok := w.ZoneOfAddress(model.AddressID(len(w.Addresses) + 5)); ok {
		t.Error("unknown address reported a zone")
	}
	if w.ZoneOfBuilding(model.BuildingID(len(w.Buildings))) != -1 {
		t.Error("unknown building reported a zone")
	}
	for z := 0; z < w.NZones(); z++ {
		if _, ok := w.Station(z); !ok {
			t.Errorf("no station for zone %d", z)
		}
	}
	if _, ok := w.Station(w.NZones()); ok {
		t.Error("station for out-of-range zone")
	}
}

// TestAlignZonesToCommunities: with the option on, every community's
// buildings land in one zone, so no locker or reception serves two zones.
func TestAlignZonesToCommunities(t *testing.T) {
	p := Tiny()
	p.AlignZonesToCommunities = true
	w, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range w.Communities {
		if len(c.Buildings) == 0 {
			continue
		}
		z0 := w.ZoneOfBuilding(model.BuildingID(c.Buildings[0]))
		for _, b := range c.Buildings[1:] {
			if z := w.ZoneOfBuilding(model.BuildingID(b)); z != z0 {
				t.Errorf("community %d split across zones %d and %d", ci, z0, z)
			}
		}
	}
	// The default layout is untouched by the new field: same zones as before.
	base, err := BuildWorld(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if base.NZones() != Tiny().NCouriers {
		t.Fatalf("default NZones = %d", base.NZones())
	}
}
