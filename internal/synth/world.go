package synth

import (
	"math"
	"math/rand"
	"sort"

	"dlinfma/internal/addrtext"
	"dlinfma/internal/geo"
	"dlinfma/internal/geocode"
	"dlinfma/internal/model"
)

// DeliveryKind classifies a ground-truth delivery location.
type DeliveryKind int8

// The three delivery location kinds of Figure 1.
const (
	KindDoorstep DeliveryKind = iota
	KindLocker
	KindReception
)

// String returns a label for the kind.
func (k DeliveryKind) String() string {
	switch k {
	case KindDoorstep:
		return "doorstep"
	case KindLocker:
		return "locker"
	case KindReception:
		return "reception"
	default:
		return "invalid"
	}
}

// Building is one building with its doorstep delivery point.
type Building struct {
	ID        model.BuildingID
	Center    geo.Point
	Community int
	Doorstep  geo.Point
	POI       geocode.POICategory
}

// Community is a residential area: a group of buildings sharing an express
// locker and a reception. Coarse communities have a single POI entry, so all
// their addresses geocode to the community centroid.
type Community struct {
	Center    geo.Point
	Locker    geo.Point
	Reception geo.Point
	Buildings []int
	Coarse    bool
	// Sibling is the index of the similarly named community that wrong
	// parses resolve to.
	Sibling int
}

// World is the generated city plus per-address ground truth and the order
// frequency model. It is the intermediate product between a Profile and a
// model.Dataset.
type World struct {
	Profile     Profile
	Buildings   []Building
	Communities []Community
	Addresses   []model.AddressInfo
	Truth       map[model.AddressID]geo.Point
	TruthKind   map[model.AddressID]DeliveryKind

	addrWeight []float64 // order frequency weight per address
	zones      [][]int   // building indices per courier zone
	zoneOfBld  []int     // zone of each building, aligned with Buildings
	stations   []geo.Point
	addrsOfBld [][]model.AddressID
	zoneAddrs  [][]model.AddressID
	zoneCum    [][]float64 // cumulative weights aligned with zoneAddrs
}

// poiPool is the category distribution buildings draw from; residences
// dominate as in a delivery service area.
var poiPool = []struct {
	cat geocode.POICategory
	w   float64
}{
	{geocode.POIResidence, 0.45}, {geocode.POIDormitory, 0.06},
	{geocode.POIVilla, 0.03}, {geocode.POICompany, 0.12},
	{geocode.POIOfficeBuilding, 0.07}, {geocode.POIGovernment, 0.02},
	{geocode.POISchool, 0.03}, {geocode.POIUniversity, 0.01},
	{geocode.POIHospital, 0.02}, {geocode.POIClinic, 0.02},
	{geocode.POIMall, 0.02}, {geocode.POIConvenienceStore, 0.03},
	{geocode.POIRestaurant, 0.03}, {geocode.POIHotel, 0.02},
	{geocode.POIBank, 0.01}, {geocode.POIPostOffice, 0.01},
	{geocode.POIFactory, 0.01}, {geocode.POIWarehouse, 0.01},
	{geocode.POIGym, 0.01}, {geocode.POIPark, 0.01},
	{geocode.POIOther, 0.01},
}

func samplePOI(rng *rand.Rand) geocode.POICategory {
	r := rng.Float64()
	for _, p := range poiPool {
		if r < p.w {
			return p.cat
		}
		r -= p.w
	}
	return geocode.POIOther
}

// BuildWorld lays out the city: communities on a jittered grid, buildings
// around community centers, addresses with delivery preferences, geocodes
// with the three error modes, courier zones, and stations.
func BuildWorld(p Profile) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &World{
		Profile:   p,
		Truth:     make(map[model.AddressID]geo.Point),
		TruthKind: make(map[model.AddressID]DeliveryKind),
	}

	// Communities on a grid with jitter.
	bpc := p.BuildingsPerCommunity
	if bpc <= 0 {
		bpc = 8
	}
	nComm := (p.NBuildings + bpc - 1) / bpc
	grid := int(math.Ceil(math.Sqrt(float64(nComm))))
	cell := p.Extent / float64(grid)
	for c := 0; c < nComm; c++ {
		gx, gy := c%grid, c/grid
		center := geo.Point{
			X: (float64(gx)+0.5)*cell + rng.NormFloat64()*cell*0.08,
			Y: (float64(gy)+0.5)*cell + rng.NormFloat64()*cell*0.08,
		}
		// The locker sits near the community center; the reception at the
		// community gate, offset toward the region edge.
		locker := center.Add(geo.Point{X: rng.NormFloat64() * 6, Y: 18 + rng.NormFloat64()*6})
		reception := center.Add(geo.Point{X: -cell * 0.28, Y: rng.NormFloat64() * 8})
		w.Communities = append(w.Communities, Community{
			Center: center, Locker: locker, Reception: reception,
			Coarse: rng.Float64() < p.PCoarseCommunity,
		})
	}
	// Sibling = nearest other community (the similarly named confusable one).
	for i := range w.Communities {
		best, bestD := i, math.Inf(1)
		for j := range w.Communities {
			if j == i {
				continue
			}
			if d := geo.Dist(w.Communities[i].Center, w.Communities[j].Center); d < bestD {
				best, bestD = j, d
			}
		}
		w.Communities[i].Sibling = best
	}

	// Buildings scattered around community centers.
	bradius := cell * 0.30
	for b := 0; b < p.NBuildings; b++ {
		c := b % nComm
		ang := rng.Float64() * 2 * math.Pi
		r := (0.25 + 0.75*rng.Float64()) * bradius
		center := w.Communities[c].Center.Add(geo.Point{X: math.Cos(ang) * r, Y: math.Sin(ang) * r})
		door := center.Add(geo.Point{X: rng.NormFloat64() * 2, Y: -8 + rng.NormFloat64()*2})
		w.Buildings = append(w.Buildings, Building{
			ID: model.BuildingID(b), Center: center, Community: c,
			Doorstep: door, POI: samplePOI(rng),
		})
		w.Communities[c].Buildings = append(w.Communities[c].Buildings, b)
	}

	// Addresses: delivery preference, geocode, order weight.
	w.addrsOfBld = make([][]model.AddressID, len(w.Buildings))
	var nextID model.AddressID
	sampleKind := func() DeliveryKind {
		switch r := rng.Float64(); {
		case r < p.PLocker:
			return KindLocker
		case r < p.PLocker+p.PReception:
			return KindReception
		default:
			return KindDoorstep
		}
	}
	for bi := range w.Buildings {
		bld := &w.Buildings[bi]
		comm := &w.Communities[bld.Community]
		n := p.MinAddrPerBuilding + rng.Intn(p.MaxAddrPerBuilding-p.MinAddrPerBuilding+1)
		// Customers of one building mostly share a receiving habit; a
		// minority deviates, producing the paper's Figure 9(a) observation
		// that over ~14-22% of buildings span several delivery locations.
		dominant := sampleKind()
		for k := 0; k < n; k++ {
			id := nextID
			nextID++
			kind := dominant
			if rng.Float64() > 0.92 {
				kind = sampleKind()
			}
			var truth geo.Point
			switch kind {
			case KindDoorstep:
				truth = bld.Doorstep
			case KindLocker:
				truth = comm.Locker
			case KindReception:
				truth = comm.Reception
			}
			// Geocode with error modes.
			mode := geocode.ErrAccurate
			gc := bld.Center.Add(geo.Point{X: rng.NormFloat64() * p.GeocodeSigma, Y: rng.NormFloat64() * p.GeocodeSigma})
			if comm.Coarse {
				mode = geocode.ErrCoarsePOI
				gc = comm.Center
			}
			if rng.Float64() < p.PWrongParse {
				mode = geocode.ErrWrongParse
				sib := w.Communities[comm.Sibling]
				gc = sib.Center.Add(geo.Point{X: rng.NormFloat64() * 15, Y: rng.NormFloat64() * 15})
			}
			w.Addresses = append(w.Addresses, model.AddressInfo{
				ID: id, Building: bld.ID, Geocode: gc, POI: bld.POI, GeocodeMode: mode,
			})
			w.Truth[id] = truth
			w.TruthKind[id] = kind
			w.addrsOfBld[bi] = append(w.addrsOfBld[bi], id)
			// Log-normal order frequency: a few very active customers
			// (Figure 9(b)'s heavy tail).
			w.addrWeight = append(w.addrWeight, math.Exp(rng.NormFloat64()*1.0))
		}
	}

	// Courier zones: contiguous strips by building x coordinate, or — with
	// AlignZonesToCommunities — strips of whole communities, so shared
	// lockers and receptions never serve two zones.
	w.zones = make([][]int, p.NCouriers)
	if p.AlignZonesToCommunities {
		corder := make([]int, len(w.Communities))
		for i := range corder {
			corder[i] = i
		}
		sort.Slice(corder, func(i, j int) bool {
			return w.Communities[corder[i]].Center.X < w.Communities[corder[j]].Center.X
		})
		for i, c := range corder {
			z := i * p.NCouriers / len(corder)
			w.zones[z] = append(w.zones[z], w.Communities[c].Buildings...)
		}
	} else {
		order := make([]int, len(w.Buildings))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return w.Buildings[order[i]].Center.X < w.Buildings[order[j]].Center.X
		})
		for i, b := range order {
			z := i * p.NCouriers / len(order)
			w.zones[z] = append(w.zones[z], b)
		}
	}
	w.zoneOfBld = make([]int, len(w.Buildings))
	for z, blds := range w.zones {
		for _, b := range blds {
			w.zoneOfBld[b] = z
		}
	}
	w.stations = make([]geo.Point, p.NCouriers)
	for z := range w.stations {
		var cx float64
		for _, b := range w.zones[z] {
			cx += w.Buildings[b].Center.X
		}
		if len(w.zones[z]) > 0 {
			cx /= float64(len(w.zones[z]))
		}
		w.stations[z] = geo.Point{X: cx, Y: -120}
	}

	// Per-zone address lists with cumulative order weights for direct
	// weighted sampling (preserving the heavy-tailed per-address frequency).
	w.zoneAddrs = make([][]model.AddressID, p.NCouriers)
	w.zoneCum = make([][]float64, p.NCouriers)
	for z, blds := range w.zones {
		var cum float64
		for _, b := range blds {
			for _, a := range w.addrsOfBld[b] {
				cum += w.addrWeight[a]
				w.zoneAddrs[z] = append(w.zoneAddrs[z], a)
				w.zoneCum[z] = append(w.zoneCum[z], cum)
			}
		}
	}
	return w, nil
}

// NZones returns the number of courier zones (one per courier: courier z
// works zone z, and every trip's Courier id is its zone).
func (w *World) NZones() int { return len(w.zones) }

// ZoneOfBuilding returns the courier zone a building belongs to, or -1 for
// an unknown building.
func (w *World) ZoneOfBuilding(b model.BuildingID) int {
	if int(b) < 0 || int(b) >= len(w.zoneOfBld) {
		return -1
	}
	return w.zoneOfBld[b]
}

// ZoneOfAddress returns the courier zone of an address's building; ok is
// false for unknown addresses. This is the ground-truth partition sharded
// serving tests align their routing to: an address's delivery evidence can
// only come from its own zone's trips (plus cross-zone orders).
func (w *World) ZoneOfAddress(id model.AddressID) (int, bool) {
	if int(id) < 0 || int(id) >= len(w.Addresses) {
		return 0, false
	}
	return w.ZoneOfBuilding(w.Addresses[id].Building), true
}

// Station returns zone z's courier station, the trip start/end anchor.
func (w *World) Station(z int) (geo.Point, bool) {
	if z < 0 || z >= len(w.stations) {
		return geo.Point{}, false
	}
	return w.stations[z], true
}

// GeocoderTable returns the address -> geocode table as a geocode.Static.
func (w *World) GeocoderTable() *geocode.Static {
	t := make(map[int32]geocode.Result, len(w.Addresses))
	for _, a := range w.Addresses {
		t[int32(a.ID)] = geocode.Result{Loc: a.Geocode, Category: a.POI, Mode: a.GeocodeMode}
	}
	return geocode.NewStatic(t)
}

// CommunityNames returns the pinyin-style names of all communities, indexed
// by community id (see addrtext.CommunityName for the confusable-sibling
// structure).
func (w *World) CommunityNames() []string {
	names := make([]string, len(w.Communities))
	for i := range names {
		names[i] = addrtext.CommunityName(i)
	}
	return names
}

// AddressText renders the textual shipping address of id: community name,
// building number within the community, and unit number within the
// building. It returns false for unknown addresses.
func (w *World) AddressText(id model.AddressID) (string, bool) {
	if int(id) < 0 || int(id) >= len(w.Addresses) {
		return "", false
	}
	info := w.Addresses[id]
	b := w.Buildings[info.Building]
	// Building number = 1-based position within its community.
	bNum := 1
	for i, bi := range w.Communities[b.Community].Buildings {
		if model.BuildingID(bi) == info.Building {
			bNum = i + 1
			break
		}
	}
	// Unit number = 1-based position within the building, in the 101, 102…
	// style.
	unit := 101
	for i, a := range w.addrsOfBld[info.Building] {
		if a == id {
			unit = 101 + i
			break
		}
	}
	return addrtext.Format(b.Community, bNum, unit), true
}
