// Package addrtext models the textual side of shipping addresses: a
// generator of community/building/unit address strings for the synthetic
// world, and the address segmentation + gazetteer resolution that the paper
// obtains from a commercial tool (footnote 3). It reproduces the paper's
// Figure 12(a) failure mode mechanically: communities with near-identical
// names ("Sanyi Li" vs "Sanyi Xili") resolve to the wrong gazetteer entry
// when the parser falls back to fuzzy matching.
package addrtext

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Address is a parsed shipping address.
type Address struct {
	Community string
	Building  int
	Unit      int
}

// String renders the address in the generator's canonical format.
func (a Address) String() string {
	return fmt.Sprintf("%s %d-hao Lou, Unit %d", a.Community, a.Building, a.Unit)
}

// communityRoots are pinyin-style community base names; suffixes multiply
// them into a district's worth of names, some deliberately confusable.
var communityRoots = []string{
	"Sanyi", "Huaqing", "Anzhen", "Wangjing", "Taiyang", "Jinsong",
	"Fangzhuang", "Shuangjing", "Ganlu", "Liulitun", "Dongba", "Caoyang",
}

var communitySuffixes = []string{"Li", "Xili", "Dongli", "Beili", "Yuan", "Jiayuan"}

// CommunityName returns a deterministic name for community index i. Indexes
// that share a root but differ in suffix ("Sanyi Li" vs "Sanyi Xili") are
// the confusable siblings of the paper's case study.
func CommunityName(i int) string {
	root := communityRoots[i%len(communityRoots)]
	suffix := communitySuffixes[(i/len(communityRoots))%len(communitySuffixes)]
	gen := i / (len(communityRoots) * len(communitySuffixes))
	if gen == 0 {
		return root + " " + suffix
	}
	return fmt.Sprintf("%s %s %d-qu", root, suffix, gen+1)
}

// Format renders a full address string for a community index, building
// number and unit number.
func Format(communityIdx, building, unit int) string {
	return Address{Community: CommunityName(communityIdx), Building: building, Unit: unit}.String()
}

// addressRE captures "<community> <building>-hao Lou, Unit <unit>".
var addressRE = regexp.MustCompile(`^(.+?)\s+(\d+)-hao Lou, Unit\s+(\d+)$`)

// Segment splits a raw address string into its components without resolving
// the community against a gazetteer. It is tolerant of case and surrounding
// whitespace.
func Segment(raw string) (Address, error) {
	m := addressRE.FindStringSubmatch(strings.TrimSpace(raw))
	if m == nil {
		return Address{}, fmt.Errorf("addrtext: unparseable address %q", raw)
	}
	b, err := strconv.Atoi(m[2])
	if err != nil {
		return Address{}, err
	}
	u, err := strconv.Atoi(m[3])
	if err != nil {
		return Address{}, err
	}
	return Address{Community: strings.TrimSpace(m[1]), Building: b, Unit: u}, nil
}

// Gazetteer resolves community names to ids, with fuzzy fallback.
type Gazetteer struct {
	exact map[string]int
	names []string
}

// NewGazetteer indexes the given community names; the id of a name is its
// slice index.
func NewGazetteer(names []string) *Gazetteer {
	g := &Gazetteer{exact: make(map[string]int, len(names)), names: append([]string(nil), names...)}
	for i, n := range names {
		g.exact[normalize(n)] = i
	}
	return g
}

func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Resolve returns the community id for name. Exact (normalized) matches win;
// otherwise the entry with minimum edit distance is returned — the fuzzy
// fallback that makes similarly named communities confusable, exactly the
// behaviour the paper's case study attributes to the commercial geocoder.
// ok is false when the gazetteer is empty.
func (g *Gazetteer) Resolve(name string) (id int, exact, ok bool) {
	if len(g.names) == 0 {
		return 0, false, false
	}
	n := normalize(name)
	if id, found := g.exact[n]; found {
		return id, true, true
	}
	best, bestD := 0, 1<<30
	for i, cand := range g.names {
		if d := editDistance(n, normalize(cand)); d < bestD {
			best, bestD = i, d
		}
	}
	return best, false, true
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Parse segments raw and resolves its community against the gazetteer,
// returning the address with the resolved community id.
func Parse(raw string, g *Gazetteer) (Address, int, error) {
	a, err := Segment(raw)
	if err != nil {
		return Address{}, -1, err
	}
	id, _, ok := g.Resolve(a.Community)
	if !ok {
		return a, -1, fmt.Errorf("addrtext: empty gazetteer")
	}
	return a, id, nil
}
