package addrtext

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCommunityNamesDistinct(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		n := CommunityName(i)
		if prev, ok := seen[n]; ok {
			t.Fatalf("names %d and %d collide: %q", prev, i, n)
		}
		seen[n] = i
	}
}

func TestConfusableSiblingsExist(t *testing.T) {
	// Indexes i and i+len(roots) share a root with different suffixes.
	a := CommunityName(0)  // Sanyi Li
	b := CommunityName(12) // Sanyi Xili
	if !strings.HasPrefix(a, "Sanyi") || !strings.HasPrefix(b, "Sanyi") {
		t.Fatalf("expected shared root: %q vs %q", a, b)
	}
	if a == b {
		t.Fatal("siblings must differ")
	}
	if editDistance(normalize(a), normalize(b)) > 3 {
		t.Errorf("siblings %q and %q should be near-identical", a, b)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	f := func(ci uint8, bld, unit uint8) bool {
		raw := Format(int(ci)%100, int(bld)%50+1, int(unit)%30+1)
		a, err := Segment(raw)
		if err != nil {
			return false
		}
		return a.String() == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentTolerance(t *testing.T) {
	a, err := Segment("  Sanyi Li 3-hao Lou, Unit   12  ")
	if err != nil {
		t.Fatal(err)
	}
	if a.Community != "Sanyi Li" || a.Building != 3 || a.Unit != 12 {
		t.Errorf("parsed %+v", a)
	}
	for _, bad := range []string{"", "gibberish", "Sanyi Li Lou Unit 3", "X y-hao Lou, Unit z"} {
		if _, err := Segment(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestGazetteerExactResolution(t *testing.T) {
	names := []string{CommunityName(0), CommunityName(1), CommunityName(12)}
	g := NewGazetteer(names)
	id, exact, ok := g.Resolve("sanyi  li") // case/space-insensitive
	if !ok || !exact || id != 0 {
		t.Errorf("Resolve = (%d, %v, %v)", id, exact, ok)
	}
}

func TestGazetteerFuzzyConfusion(t *testing.T) {
	// A gazetteer that lacks the exact community falls back to the nearest
	// name — confusing "Sanyi Li" with "Sanyi Xili", the Figure 12(a) case.
	g := NewGazetteer([]string{"Sanyi Xili", "Wangjing Yuan"})
	id, exact, ok := g.Resolve("Sanyi Li")
	if !ok || exact {
		t.Fatalf("expected fuzzy resolution, got exact=%v ok=%v", exact, ok)
	}
	if id != 0 {
		t.Errorf("resolved to %d (%q), want the confusable sibling", id, "Sanyi Xili")
	}
}

func TestGazetteerEmpty(t *testing.T) {
	g := NewGazetteer(nil)
	if _, _, ok := g.Resolve("anything"); ok {
		t.Error("empty gazetteer should not resolve")
	}
	if _, _, err := Parse("Sanyi Li 1-hao Lou, Unit 1", g); err == nil {
		t.Error("Parse against empty gazetteer should error")
	}
}

func TestParse(t *testing.T) {
	g := NewGazetteer([]string{CommunityName(0), CommunityName(1)})
	a, id, err := Parse(Format(1, 7, 3), g)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || a.Building != 7 || a.Unit != 3 {
		t.Errorf("Parse = %+v id=%d", a, id)
	}
	if _, _, err := Parse("not an address", g); err == nil {
		t.Error("unparseable input accepted")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "ab", 2},
		{"kitten", "sitting", 3},
		{"sanyi li", "sanyi xili", 2},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		d := editDistance(a, b)
		if d != editDistance(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return d <= max(len([]rune(a)), len([]rune(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
