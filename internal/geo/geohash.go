package geo

import (
	"fmt"
	"strings"
)

// geohashBase32 is the standard GeoHash alphabet.
const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var geohashDecode = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i := 0; i < len(geohashBase32); i++ {
		t[geohashBase32[i]] = int8(i)
	}
	return t
}()

// GeoHashEncode returns the GeoHash string of ll at the given character
// precision (1..12). The UNet-based baseline of the paper rasterizes
// annotated locations on GeoHash-8 cells (roughly 38 m x 19 m).
func GeoHashEncode(ll LatLng, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latMin, latMax := -90.0, 90.0
	lngMin, lngMax := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	even := true // alternate lng/lat bits, starting with lng
	bit, idx := 0, 0
	for sb.Len() < precision {
		if even {
			mid := (lngMin + lngMax) / 2
			if ll.Lng >= mid {
				idx = idx<<1 | 1
				lngMin = mid
			} else {
				idx <<= 1
				lngMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if ll.Lat >= mid {
				idx = idx<<1 | 1
				latMin = mid
			} else {
				idx <<= 1
				latMax = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(geohashBase32[idx])
			bit, idx = 0, 0
		}
	}
	return sb.String()
}

// GeoHashDecode returns the cell bounds of hash as south-west and north-east
// corners. It returns an error for characters outside the GeoHash alphabet.
func GeoHashDecode(hash string) (sw, ne LatLng, err error) {
	latMin, latMax := -90.0, 90.0
	lngMin, lngMax := -180.0, 180.0
	even := true
	for i := 0; i < len(hash); i++ {
		d := geohashDecode[hash[i]]
		if d < 0 {
			return LatLng{}, LatLng{}, fmt.Errorf("geo: invalid geohash character %q in %q", hash[i], hash)
		}
		for b := 4; b >= 0; b-- {
			bit := (d >> uint(b)) & 1
			if even {
				mid := (lngMin + lngMax) / 2
				if bit == 1 {
					lngMin = mid
				} else {
					lngMax = mid
				}
			} else {
				mid := (latMin + latMax) / 2
				if bit == 1 {
					latMin = mid
				} else {
					latMax = mid
				}
			}
			even = !even
		}
	}
	return LatLng{latMin, lngMin}, LatLng{latMax, lngMax}, nil
}

// GeoHashCenter returns the center of the cell identified by hash.
func GeoHashCenter(hash string) (LatLng, error) {
	sw, ne, err := GeoHashDecode(hash)
	if err != nil {
		return LatLng{}, err
	}
	return LatLng{(sw.Lat + ne.Lat) / 2, (sw.Lng + ne.Lng) / 2}, nil
}
