package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	// Beijing Tiananmen to Beijing West Railway Station: ~7.2 km.
	a := LatLng{39.9087, 116.3975}
	b := LatLng{39.8946, 116.3222}
	d := HaversineMeters(a, b)
	if d < 6000 || d > 8500 {
		t.Errorf("Haversine Beijing = %v, want ~7200", d)
	}
	// One degree of latitude is ~111.2 km.
	d = HaversineMeters(LatLng{0, 0}, LatLng{1, 0})
	if !almostEqual(d, 111195, 100) {
		t.Errorf("Haversine 1 degree lat = %v, want ~111195", d)
	}
	if HaversineMeters(a, a) != 0 {
		t.Error("Haversine of identical points should be 0")
	}
}

func TestEquirectApproximatesHaversineAtCityScale(t *testing.T) {
	base := LatLng{39.9, 116.4}
	offsets := []LatLng{{0.001, 0.001}, {0.01, -0.02}, {-0.03, 0.015}, {0.05, 0.05}}
	for _, off := range offsets {
		p := LatLng{base.Lat + off.Lat, base.Lng + off.Lng}
		h := HaversineMeters(base, p)
		e := EquirectMeters(base, p)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-e) / h; rel > 1e-3 {
			t.Errorf("Equirect diverges: haversine=%v equirect=%v rel=%v", h, e, rel)
		}
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	pr := NewProjector(LatLng{39.9, 116.4})
	f := func(dlat, dlng int16) bool {
		ll := LatLng{39.9 + float64(dlat)/1e4, 116.4 + float64(dlng)/1e4}
		back := pr.ToLatLng(pr.ToPoint(ll))
		return almostEqual(back.Lat, ll.Lat, 1e-9) && almostEqual(back.Lng, ll.Lng, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectorDistancePreservation(t *testing.T) {
	pr := NewProjector(LatLng{39.9, 116.4})
	a := LatLng{39.91, 116.41}
	b := LatLng{39.93, 116.37}
	planar := Dist(pr.ToPoint(a), pr.ToPoint(b))
	geodetic := HaversineMeters(a, b)
	if rel := math.Abs(planar-geodetic) / geodetic; rel > 2e-3 {
		t.Errorf("projection distorts distance: planar=%v geodetic=%v rel=%v", planar, geodetic, rel)
	}
}

func TestProjectorOriginMapsToZero(t *testing.T) {
	pr := NewProjector(LatLng{31.2, 121.5})
	p := pr.ToPoint(pr.Origin)
	if p != (Point{}) {
		t.Errorf("origin projects to %v, want (0,0)", p)
	}
}
