package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(r *rand.Rand, n int, extent float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * extent, r.Float64() * extent}
	}
	return pts
}

func bruteNearest(pts []Point, q Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := Dist(p, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestIndexNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pts := randomPoints(r, 500, 1000)
	idx := NewIndex(pts, 50)
	for trial := 0; trial < 200; trial++ {
		q := Point{r.Float64()*1200 - 100, r.Float64()*1200 - 100}
		gotID, gotD := idx.Nearest(q)
		_, wantD := bruteNearest(pts, q)
		if !almostEqual(gotD, wantD, 1e-9) {
			t.Fatalf("Nearest(%v): got dist %v (id %d), want %v", q, gotD, gotID, wantD)
		}
	}
}

func TestIndexWithinMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randomPoints(r, 300, 500)
	idx := NewIndex(pts, 40)
	for trial := 0; trial < 100; trial++ {
		q := Point{r.Float64() * 500, r.Float64() * 500}
		radius := r.Float64() * 100
		got := idx.Within(q, radius)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if Dist(p, q) <= radius {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within(%v, %v): got %d points, want %d", q, radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Within(%v, %v): got %v, want %v", q, radius, got, want)
			}
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	idx := NewIndex(nil, 50)
	if id, d := idx.Nearest(Point{1, 1}); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty index = (%d, %v), want (-1, +Inf)", id, d)
	}
	if got := idx.Within(Point{1, 1}, 100); got != nil {
		t.Errorf("Within on empty index = %v, want nil", got)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d, want 0", idx.Len())
	}
}

func TestIndexSinglePoint(t *testing.T) {
	idx := NewIndex([]Point{{10, 10}}, 50)
	id, d := idx.Nearest(Point{13, 14})
	if id != 0 || !almostEqual(d, 5, 1e-12) {
		t.Errorf("Nearest = (%d, %v), want (0, 5)", id, d)
	}
	if got := idx.Point(0); got != (Point{10, 10}) {
		t.Errorf("Point(0) = %v", got)
	}
}

func TestIndexNegativeRadius(t *testing.T) {
	idx := NewIndex([]Point{{0, 0}}, 50)
	if got := idx.Within(Point{0, 0}, -1); got != nil {
		t.Errorf("Within negative radius = %v, want nil", got)
	}
}

func TestIndexDefaultCellSize(t *testing.T) {
	// Non-positive cell size falls back to a sane default rather than
	// dividing by zero.
	idx := NewIndex([]Point{{0, 0}, {100, 100}}, 0)
	id, _ := idx.Nearest(Point{90, 90})
	if id != 1 {
		t.Errorf("Nearest = %d, want 1", id)
	}
}

func TestIndexFarQuery(t *testing.T) {
	// Query far outside the indexed extent must still find the true nearest.
	pts := []Point{{0, 0}, {100, 0}, {200, 0}}
	idx := NewIndex(pts, 10)
	id, d := idx.Nearest(Point{10000, 10000})
	wantID, wantD := bruteNearest(pts, Point{10000, 10000})
	if id != wantID || !almostEqual(d, wantD, 1e-9) {
		t.Errorf("far Nearest = (%d, %v), want (%d, %v)", id, d, wantID, wantD)
	}
}
