package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by distance computations.
const EarthRadiusMeters = 6371008.8

// LatLng is a geodetic coordinate in degrees.
type LatLng struct {
	Lat float64
	Lng float64
}

// HaversineMeters returns the great-circle distance between a and b.
func HaversineMeters(a, b LatLng) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dla / 2)
	s2 := math.Sin(dlo / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// EquirectMeters returns the equirectangular approximation of the distance
// between a and b. It is accurate to well under 0.1% at city scale and is
// several times faster than HaversineMeters.
func EquirectMeters(a, b LatLng) float64 {
	mlat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	dx := (b.Lng - a.Lng) * math.Pi / 180 * math.Cos(mlat)
	dy := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Sqrt(dx*dx+dy*dy)
}

// Projector converts between geodetic coordinates and the local planar frame
// using an equirectangular projection anchored at Origin. The zero value is
// anchored at (0, 0) on the equator.
type Projector struct {
	Origin LatLng
}

// NewProjector returns a Projector anchored at origin.
func NewProjector(origin LatLng) *Projector { return &Projector{Origin: origin} }

// ToPoint projects ll into the local planar frame.
func (pr *Projector) ToPoint(ll LatLng) Point {
	clat := math.Cos(pr.Origin.Lat * math.Pi / 180)
	x := (ll.Lng - pr.Origin.Lng) * math.Pi / 180 * clat * EarthRadiusMeters
	y := (ll.Lat - pr.Origin.Lat) * math.Pi / 180 * EarthRadiusMeters
	return Point{x, y}
}

// ToLatLng inverts ToPoint.
func (pr *Projector) ToLatLng(p Point) LatLng {
	clat := math.Cos(pr.Origin.Lat * math.Pi / 180)
	lng := pr.Origin.Lng + p.X/(clat*EarthRadiusMeters)*180/math.Pi
	lat := pr.Origin.Lat + p.Y/EarthRadiusMeters*180/math.Pi
	return LatLng{Lat: lat, Lng: lng}
}
