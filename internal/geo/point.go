// Package geo provides the geospatial primitives shared by every other
// module: planar points in a local metric frame, geodetic coordinates with a
// local equirectangular projection, rectangles, GeoHash encoding, and a
// uniform-grid spatial index.
//
// The delivery-location pipeline operates on planar coordinates in meters.
// Raw GPS fixes in latitude/longitude are converted once, at ingestion, with
// a Projector anchored near the courier station; at city scale the projection
// error is far below GPS noise.
package geo

import "math"

// Point is a location in a local planar frame, in meters.
type Point struct {
	X float64 // easting, meters
	Y float64 // northing, meters
}

// Dist returns the Euclidean distance between p and q in meters.
func Dist(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only call sites.
func SqDist(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Centroid returns the arithmetic mean of pts. It returns the zero Point for
// an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}

// WeightedCentroid returns the centroid of pts with the given non-negative
// weights. Entries beyond the shorter of the two slices are ignored. If the
// total weight is zero it falls back to the unweighted centroid.
func WeightedCentroid(pts []Point, weights []float64) Point {
	n := min(len(pts), len(weights))
	var sx, sy, sw float64
	for i := 0; i < n; i++ {
		w := weights[i]
		sx += pts[i].X * w
		sy += pts[i].Y * w
		sw += w
	}
	if sw == 0 {
		return Centroid(pts)
	}
	return Point{sx / sw, sy / sw}
}
