package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{10, 0}, Point{0, 0}, 10},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := SqDist(c.p, c.q); !almostEqual(got, c.want*c.want, 1e-9) {
			t.Errorf("SqDist(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a) && Dist(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want zero", got)
	}
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); got != (Point{1, 1}) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestWeightedCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}}
	got := WeightedCentroid(pts, []float64{1, 3})
	if !almostEqual(got.X, 7.5, 1e-12) || got.Y != 0 {
		t.Errorf("WeightedCentroid = %v, want (7.5,0)", got)
	}
	// Zero total weight falls back to the plain centroid.
	got = WeightedCentroid(pts, []float64{0, 0})
	if !almostEqual(got.X, 5, 1e-12) {
		t.Errorf("WeightedCentroid zero weights = %v, want (5,0)", got)
	}
	// Mismatched lengths use the shorter prefix.
	got = WeightedCentroid(pts, []float64{1})
	if got != (Point{0, 0}) {
		t.Errorf("WeightedCentroid short weights = %v, want (0,0)", got)
	}
}

func TestCentroidWithinBoundingRectProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := raw[i], raw[i+1]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			// Keep magnitudes sane so the mean stays in range.
			pts = append(pts, Point{math.Mod(x, 1e6), math.Mod(y, 1e6)})
		}
		c := Centroid(pts)
		r := BoundingRect(pts).Expand(1e-6)
		return r.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
