package geo

import "math"

// ShardKey identifies the geohash-prefix cell a point falls in. Points with
// equal keys share a cell of the given character precision and therefore land
// on the same shard; the key is the routing unit of the sharded serving
// engine (internal/shard).
type ShardKey string

// Precision returns the character precision the key was derived at.
func (k ShardKey) Precision() int { return len(k) }

// NormalizeLatLng maps an arbitrary geodetic coordinate onto the canonical
// domain geohashing expects: latitude clamped to [-90, 90] and longitude
// wrapped into [-180, 180). Wrapping makes +180 and -180 — the antimeridian
// seam — one and the same cell column, so a point fed in either convention
// gets the same ShardKey; clamping keeps pole-crossing noise from saturating
// into an undefined cell. NaN coordinates are mapped to 0 so a corrupt fix
// still routes deterministically instead of poisoning a hash.
func NormalizeLatLng(ll LatLng) LatLng {
	if math.IsNaN(ll.Lat) {
		ll.Lat = 0
	}
	if math.IsNaN(ll.Lng) {
		ll.Lng = 0
	}
	ll.Lat = math.Max(-90, math.Min(90, ll.Lat))
	lng := math.Mod(ll.Lng+180, 360)
	if lng < 0 {
		lng += 360
	}
	ll.Lng = lng - 180
	return ll
}

// ShardKeyForLatLng returns the ShardKey of a geodetic coordinate at the
// given geohash precision. The coordinate is normalized first, so
// antimeridian and pole inputs are well-defined.
func ShardKeyForLatLng(ll LatLng, precision int) ShardKey {
	return ShardKey(GeoHashEncode(NormalizeLatLng(ll), precision))
}

// shardProjector anchors planar points at (0, 0): datasets in this codebase
// live in a local metric frame, so one fixed origin keeps keys stable across
// processes without any per-dataset calibration.
var shardProjector Projector

// ShardKeyOf returns the ShardKey of a planar point (meters in the local
// frame) at the given geohash precision.
func ShardKeyOf(p Point, precision int) ShardKey {
	return ShardKeyForLatLng(shardProjector.ToLatLng(p), precision)
}
