package geo

// Rect is an axis-aligned rectangle in the local planar frame.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{a.X, a.Y, b.X, b.Y}
	if r.MinX > r.MaxX {
		r.MinX, r.MaxX = r.MaxX, r.MinX
	}
	if r.MinY > r.MaxY {
		r.MinY, r.MaxY = r.MaxY, r.MinY
	}
	return r
}

// BoundingRect returns the tightest rectangle containing pts. It returns the
// zero Rect for an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and o overlap (boundary contact counts).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Expand returns r grown by m meters on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{r.MinX - m, r.MinY - m, r.MaxX + m, r.MaxY + m}
}

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }
