package geo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoHashKnownValues(t *testing.T) {
	// Reference hashes from the canonical geohash.org implementation.
	cases := []struct {
		ll        LatLng
		precision int
		want      string
	}{
		{LatLng{57.64911, 10.40744}, 11, "u4pruydqqvj"},
		{LatLng{39.9087, 116.3975}, 8, GeoHashEncode(LatLng{39.9087, 116.3975}, 8)},
		{LatLng{0, 0}, 5, "s0000"},
		{LatLng{-25.382708, -49.265506}, 6, "6gkzwg"},
	}
	for _, c := range cases {
		if got := GeoHashEncode(c.ll, c.precision); got != c.want {
			t.Errorf("GeoHashEncode(%v, %d) = %q, want %q", c.ll, c.precision, got, c.want)
		}
	}
}

func TestGeoHashPrecisionClamping(t *testing.T) {
	ll := LatLng{10, 10}
	if got := GeoHashEncode(ll, 0); len(got) != 1 {
		t.Errorf("precision 0 should clamp to 1, got %q", got)
	}
	if got := GeoHashEncode(ll, 99); len(got) != 12 {
		t.Errorf("precision 99 should clamp to 12, got %q", got)
	}
}

func TestGeoHashEncodeDecodeRoundTrip(t *testing.T) {
	f := func(latRaw, lngRaw int32) bool {
		ll := LatLng{
			Lat: float64(latRaw%9000) / 100,  // [-90, 90)
			Lng: float64(lngRaw%18000) / 100, // [-180, 180)
		}
		h := GeoHashEncode(ll, 9)
		sw, ne, err := GeoHashDecode(h)
		if err != nil {
			return false
		}
		return ll.Lat >= sw.Lat && ll.Lat <= ne.Lat && ll.Lng >= sw.Lng && ll.Lng <= ne.Lng
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoHashPrefixProperty(t *testing.T) {
	// A longer hash of the same point extends the shorter one.
	ll := LatLng{39.916, 116.404}
	h8 := GeoHashEncode(ll, 8)
	h5 := GeoHashEncode(ll, 5)
	if !strings.HasPrefix(h8, h5) {
		t.Errorf("prefix property violated: %q vs %q", h8, h5)
	}
}

func TestGeoHashDecodeInvalid(t *testing.T) {
	if _, _, err := GeoHashDecode("abc!"); err == nil {
		t.Error("expected error for invalid geohash character")
	}
	// 'a', 'i', 'l', 'o' are not in the geohash alphabet.
	for _, bad := range []string{"a", "i", "l", "o"} {
		if _, _, err := GeoHashDecode(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestGeoHashCenterInsideCell(t *testing.T) {
	h := GeoHashEncode(LatLng{39.9, 116.4}, 8)
	c, err := GeoHashCenter(h)
	if err != nil {
		t.Fatal(err)
	}
	sw, ne, _ := GeoHashDecode(h)
	if c.Lat < sw.Lat || c.Lat > ne.Lat || c.Lng < sw.Lng || c.Lng > ne.Lng {
		t.Errorf("center %v outside cell [%v, %v]", c, sw, ne)
	}
}

func TestGeoHash8CellSize(t *testing.T) {
	// The paper states GeoHash-8 cells are roughly 32m x 19m at Beijing's
	// latitude (38m x 19m at the equator).
	sw, ne, _ := GeoHashDecode(GeoHashEncode(LatLng{39.9, 116.4}, 8))
	w := HaversineMeters(LatLng{sw.Lat, sw.Lng}, LatLng{sw.Lat, ne.Lng})
	h := HaversineMeters(LatLng{sw.Lat, sw.Lng}, LatLng{ne.Lat, sw.Lng})
	if w < 20 || w > 45 {
		t.Errorf("geohash-8 cell width = %v, want ~29-38", w)
	}
	if h < 10 || h > 25 {
		t.Errorf("geohash-8 cell height = %v, want ~19", h)
	}
}
