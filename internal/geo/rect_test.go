package geo

import "testing"

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Point{X: 10, Y: -5}, Point{X: -3, Y: 7})
	if r.MinX != -3 || r.MaxX != 10 || r.MinY != -5 || r.MaxY != 7 {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{X: 5, Y: 5}, true},
		{Point{X: 0, Y: 0}, true},   // boundary inclusive
		{Point{X: 10, Y: 10}, true}, // boundary inclusive
		{Point{X: -1, Y: 5}, false},
		{Point{X: 5, Y: 11}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if !a.Intersects(Rect{MinX: 5, MinY: 5, MaxX: 15, MaxY: 15}) {
		t.Error("overlapping rects should intersect")
	}
	if !a.Intersects(Rect{MinX: 10, MinY: 0, MaxX: 20, MaxY: 10}) {
		t.Error("edge contact counts as intersection")
	}
	if a.Intersects(Rect{MinX: 11, MinY: 11, MaxX: 20, MaxY: 20}) {
		t.Error("disjoint rects should not intersect")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 10}
	if r.Width() != 4 || r.Height() != 8 || r.Area() != 32 {
		t.Errorf("geometry: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != (Point{X: 3, Y: 6}) {
		t.Errorf("Center = %v", r.Center())
	}
	e := r.Expand(1)
	if e.MinX != 0 || e.MaxY != 11 {
		t.Errorf("Expand = %+v", e)
	}
}

func TestBoundingRectEmpty(t *testing.T) {
	if got := BoundingRect(nil); got != (Rect{}) {
		t.Errorf("BoundingRect(nil) = %+v", got)
	}
}
