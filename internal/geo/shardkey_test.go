package geo

import (
	"math"
	"strings"
	"testing"
)

func TestNormalizeLatLng(t *testing.T) {
	cases := []struct {
		name string
		in   LatLng
		want LatLng
	}{
		{"identity", LatLng{39.9, 116.4}, LatLng{39.9, 116.4}},
		{"antimeridian east", LatLng{10, 180}, LatLng{10, -180}},
		{"antimeridian west", LatLng{10, -180}, LatLng{10, -180}},
		{"wrap past east", LatLng{10, 181}, LatLng{10, -179}},
		{"wrap past west", LatLng{10, -181}, LatLng{10, 179}},
		{"full turn", LatLng{10, 360 + 116.4}, LatLng{10, 116.4}},
		{"north pole overshoot", LatLng{91, 30}, LatLng{90, 30}},
		{"south pole overshoot", LatLng{-95, 30}, LatLng{-90, 30}},
		{"nan", LatLng{math.NaN(), math.NaN()}, LatLng{0, 0}},
	}
	for _, c := range cases {
		got := NormalizeLatLng(c.in)
		if math.Abs(got.Lat-c.want.Lat) > 1e-9 || math.Abs(got.Lng-c.want.Lng) > 1e-9 {
			t.Errorf("%s: NormalizeLatLng(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// TestShardKeyAntimeridian checks that the two spellings of the antimeridian
// produce one key: a shard router must not split the seam cell in two.
func TestShardKeyAntimeridian(t *testing.T) {
	for _, prec := range []int{1, 4, 6, 8} {
		east := ShardKeyForLatLng(LatLng{12.5, 180}, prec)
		west := ShardKeyForLatLng(LatLng{12.5, -180}, prec)
		if east != west {
			t.Errorf("precision %d: key(lng=180) = %q, key(lng=-180) = %q", prec, east, west)
		}
		wrapped := ShardKeyForLatLng(LatLng{12.5, 540}, prec)
		if wrapped != east {
			t.Errorf("precision %d: key(lng=540) = %q, want %q", prec, wrapped, east)
		}
	}
}

// TestShardKeyPoles checks that out-of-range latitudes saturate to the pole
// cell instead of producing undefined keys.
func TestShardKeyPoles(t *testing.T) {
	if k, want := ShardKeyForLatLng(LatLng{95, 30}, 6), ShardKeyForLatLng(LatLng{90, 30}, 6); k != want {
		t.Errorf("key(lat=95) = %q, want pole key %q", k, want)
	}
	if k, want := ShardKeyForLatLng(LatLng{-120, 30}, 6), ShardKeyForLatLng(LatLng{-90, 30}, 6); k != want {
		t.Errorf("key(lat=-120) = %q, want pole key %q", k, want)
	}
	// Both poles are still distinct from each other.
	if ShardKeyForLatLng(LatLng{90, 30}, 6) == ShardKeyForLatLng(LatLng{-90, 30}, 6) {
		t.Error("north and south pole share a key")
	}
}

// TestShardKeyPrefixProperty: a coarser key is a prefix of a finer one — the
// property that makes precision a pure granularity knob for the router.
func TestShardKeyPrefixProperty(t *testing.T) {
	p := Point{X: 312.5, Y: -87.25}
	k8 := ShardKeyOf(p, 8)
	for prec := 1; prec < 8; prec++ {
		k := ShardKeyOf(p, prec)
		if k.Precision() != prec {
			t.Fatalf("precision %d: key %q has precision %d", prec, k, k.Precision())
		}
		if !strings.HasPrefix(string(k8), string(k)) {
			t.Errorf("key %q at precision %d is not a prefix of %q", k, prec, k8)
		}
	}
}

// TestShardKeyOfSeparates: two points farther apart than a high-precision
// cell get different keys, nearby points share one.
func TestShardKeyOfSeparates(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 5000, Y: 5000}
	if ShardKeyOf(a, 6) == ShardKeyOf(b, 6) {
		t.Error("5 km apart but same precision-6 key")
	}
	c := Point{X: 1, Y: 1}
	if ShardKeyOf(a, 5) != ShardKeyOf(c, 5) {
		t.Error("1 m apart but different precision-5 keys")
	}
}
