package geo

import "math"

// Index is a uniform-grid spatial index over a fixed set of points. It
// supports nearest-neighbor and radius queries and is the workhorse behind
// candidate retrieval and ground-truth labeling. Build once, query many
// times; the index does not support mutation.
type Index struct {
	cell   float64
	minX   float64
	minY   float64
	nx, ny int
	cells  [][]int32 // point ids per cell
	pts    []Point
}

// NewIndex builds an index over pts with the given cell size in meters. A
// cell size near the typical query radius gives the best performance; 50 m
// works well for delivery-scale data. NewIndex copies nothing: the caller
// must not mutate pts while the index is in use.
func NewIndex(pts []Point, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 50
	}
	idx := &Index{cell: cellSize, pts: pts}
	if len(pts) == 0 {
		idx.nx, idx.ny = 1, 1
		idx.cells = make([][]int32, 1)
		return idx
	}
	r := BoundingRect(pts)
	idx.minX, idx.minY = r.MinX, r.MinY
	idx.nx = int(r.Width()/cellSize) + 1
	idx.ny = int(r.Height()/cellSize) + 1
	idx.cells = make([][]int32, idx.nx*idx.ny)
	for i, p := range pts {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.pts) }

// Point returns the indexed point with the given id.
func (idx *Index) Point(id int) Point { return idx.pts[id] }

func (idx *Index) cellOf(p Point) int {
	cx := int((p.X - idx.minX) / idx.cell)
	cy := int((p.Y - idx.minY) / idx.cell)
	cx = max(0, min(cx, idx.nx-1))
	cy = max(0, min(cy, idx.ny-1))
	return cy*idx.nx + cx
}

// Nearest returns the id of the indexed point closest to q and its distance.
// It returns (-1, +Inf) when the index is empty.
func (idx *Index) Nearest(q Point) (int, float64) {
	if len(idx.pts) == 0 {
		return -1, math.Inf(1)
	}
	qx := int((q.X - idx.minX) / idx.cell)
	qy := int((q.Y - idx.minY) / idx.cell)
	qx = max(0, min(qx, idx.nx-1))
	qy = max(0, min(qy, idx.ny-1))
	best := -1
	bestSq := math.Inf(1)
	// Expand rings of cells until the best distance cannot improve.
	maxRing := max(idx.nx, idx.ny)
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			// Points in farther rings are at least (ring-1)*cell away.
			minPossible := float64(ring-1) * idx.cell
			if minPossible > 0 && minPossible*minPossible > bestSq {
				break
			}
		}
		for cy := qy - ring; cy <= qy+ring; cy++ {
			if cy < 0 || cy >= idx.ny {
				continue
			}
			for cx := qx - ring; cx <= qx+ring; cx++ {
				if cx < 0 || cx >= idx.nx {
					continue
				}
				// Only the ring's border cells are new.
				if ring > 0 && cx != qx-ring && cx != qx+ring && cy != qy-ring && cy != qy+ring {
					continue
				}
				for _, id := range idx.cells[cy*idx.nx+cx] {
					if d := SqDist(q, idx.pts[id]); d < bestSq {
						bestSq = d
						best = int(id)
					}
				}
			}
		}
	}
	return best, math.Sqrt(bestSq)
}

// Within returns the ids of all indexed points within radius r of q, in
// unspecified order.
func (idx *Index) Within(q Point, r float64) []int {
	if len(idx.pts) == 0 || r < 0 {
		return nil
	}
	var out []int
	rSq := r * r
	x0 := int((q.X - r - idx.minX) / idx.cell)
	x1 := int((q.X + r - idx.minX) / idx.cell)
	y0 := int((q.Y - r - idx.minY) / idx.cell)
	y1 := int((q.Y + r - idx.minY) / idx.cell)
	x0, x1 = max(0, x0), min(x1, idx.nx-1)
	y0, y1 = max(0, y0), min(y1, idx.ny-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range idx.cells[cy*idx.nx+cx] {
				if SqDist(q, idx.pts[id]) <= rSq {
					out = append(out, int(id))
				}
			}
		}
	}
	return out
}
