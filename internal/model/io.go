package model

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"dlinfma/internal/geo"
)

// jsonDataset mirrors Dataset with a serializable truth map (JSON object
// keys must be strings).
type jsonDataset struct {
	Name      string                `json:"name"`
	Trips     []Trip                `json:"trips"`
	Addresses []AddressInfo         `json:"addresses"`
	Truth     map[string][2]float64 `json:"truth"`
}

// WriteJSON serializes the dataset to w as JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	jd := jsonDataset{Name: d.Name, Trips: d.Trips, Addresses: d.Addresses,
		Truth: make(map[string][2]float64, len(d.Truth))}
	for id, p := range d.Truth {
		jd.Truth[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jd)
}

// ReadJSON deserializes a dataset from r.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("model: decode dataset: %w", err)
	}
	d := &Dataset{Name: jd.Name, Trips: jd.Trips, Addresses: jd.Addresses,
		Truth: make(map[AddressID]geo.Point, len(jd.Truth))}
	for k, v := range jd.Truth {
		var id AddressID
		if _, err := fmt.Sscan(k, &id); err != nil {
			return nil, fmt.Errorf("model: bad truth key %q", k)
		}
		d.Truth[id] = geo.Point{X: v[0], Y: v[1]}
	}
	return d, nil
}

// SaveFile writes the dataset to path as JSON, gzip-compressed when the path
// ends in .gz.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer gz.Close()
		w = gz
	}
	return d.WriteJSON(w)
}

// LoadFile reads a dataset from path, transparently decompressing .gz files.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return ReadJSON(r)
}
