package model

import (
	"bytes"
	"path/filepath"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/geocode"
	"dlinfma/internal/traj"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name: "sample",
		Addresses: []AddressInfo{
			{ID: 0, Building: 0, Geocode: geo.Point{X: 1, Y: 2}, POI: geocode.POIResidence},
			{ID: 1, Building: 0, Geocode: geo.Point{X: 3, Y: 4}, POI: geocode.POICompany, GeocodeMode: geocode.ErrWrongParse},
		},
		Truth: map[AddressID]geo.Point{0: {X: 5, Y: 6}, 1: {X: 7, Y: 8}},
		Trips: []Trip{{
			Courier: 3, StartT: 100, EndT: 300,
			Traj: traj.Trajectory{{P: geo.Point{X: 0, Y: 0}, T: 100}, {P: geo.Point{X: 10, Y: 0}, T: 200}},
			Waybills: []Waybill{
				{Addr: 0, ReceivedT: 100, ActualDeliveryT: 150, ConfirmLag: 10, RecordedDeliveryT: 160},
				{Addr: 1, ReceivedT: 100, ActualDeliveryT: 180, RecordedDeliveryT: 250},
			},
		}},
	}
}

func TestWaybillDelayed(t *testing.T) {
	w := Waybill{ActualDeliveryT: 100, RecordedDeliveryT: 160}
	if !w.Delayed(30) {
		t.Error("60s delay with 30s tolerance should count")
	}
	if w.Delayed(120) {
		t.Error("60s delay with 120s tolerance should not count")
	}
}

func TestAddressByID(t *testing.T) {
	ds := sampleDataset()
	a, ok := ds.AddressByID(1)
	if !ok || a.Building != 0 || a.POI != geocode.POICompany {
		t.Errorf("AddressByID(1) = %+v, %v", a, ok)
	}
	if _, ok := ds.AddressByID(99); ok {
		t.Error("unknown id found")
	}
	// Fallback scan path: non-dense IDs.
	ds2 := &Dataset{Addresses: []AddressInfo{{ID: 5}, {ID: 9}}}
	if a, ok := ds2.AddressByID(9); !ok || a.ID != 9 {
		t.Errorf("sparse AddressByID(9) = %+v, %v", a, ok)
	}
}

func TestValidate(t *testing.T) {
	ds := sampleDataset()
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := sampleDataset()
	bad.Trips[0].Waybills[0].Addr = 77
	if err := bad.Validate(); err == nil {
		t.Error("unknown waybill address accepted")
	}
	bad = sampleDataset()
	bad.Trips[0].Waybills[0].RecordedDeliveryT = 10 // before actual
	if err := bad.Validate(); err == nil {
		t.Error("recorded-before-actual accepted")
	}
	bad = sampleDataset()
	bad.Trips[0].EndT = 50
	if err := bad.Validate(); err == nil {
		t.Error("end-before-start accepted")
	}
}

func TestCountsAndTripsOf(t *testing.T) {
	ds := sampleDataset()
	if ds.Deliveries() != 2 {
		t.Errorf("Deliveries = %d", ds.Deliveries())
	}
	if ds.TrajectoryPoints() != 2 {
		t.Errorf("TrajectoryPoints = %d", ds.TrajectoryPoints())
	}
	if got := ds.TripsOf(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("TripsOf(0) = %v", got)
	}
	if got := ds.TripsOf(42); got != nil {
		t.Errorf("TripsOf(42) = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || len(got.Trips) != 1 || len(got.Addresses) != 2 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	if got.Truth[1] != (geo.Point{X: 7, Y: 8}) {
		t.Errorf("truth lost: %v", got.Truth)
	}
	if got.Trips[0].Waybills[0].ConfirmLag != 10 {
		t.Errorf("waybill fields lost: %+v", got.Trips[0].Waybills[0])
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped dataset invalid: %v", err)
	}
}

func TestSaveLoadFileGzip(t *testing.T) {
	ds := sampleDataset()
	dir := t.TempDir()
	for _, name := range []string{"d.json", "d.json.gz"} {
		path := filepath.Join(dir, name)
		if err := ds.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != ds.Name || got.Deliveries() != 2 {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"truth":{"abc":[1,2]}}`))); err == nil {
		t.Error("bad truth key accepted")
	}
}
