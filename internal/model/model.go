// Package model defines the shared domain types of Section II of the paper:
// waybills, delivery trips, addresses, and the dataset container every
// component consumes.
package model

import (
	"fmt"

	"dlinfma/internal/geo"
	"dlinfma/internal/geocode"
	"dlinfma/internal/traj"
)

// AddressID identifies a shipping address.
type AddressID int32

// CourierID identifies a courier.
type CourierID int32

// BuildingID identifies a building, as extracted by the address segmentation
// tool (footnote 3 of the paper). The location-commonality feature is
// computed at building granularity.
type BuildingID int32

// Waybill is Definition 1: the delivery of one parcel. RecordedDeliveryT is
// the confirmation timestamp the courier logged, which may be delayed well
// past the actual drop-off.
type Waybill struct {
	Addr      AddressID
	ReceivedT float64 // t_re: when the courier received the parcel
	// RecordedDeliveryT is t_d, the (possibly delayed) recorded delivery
	// time. This is the only delivery timestamp visible to inference.
	RecordedDeliveryT float64
	// ActualDeliveryT is simulation ground truth: when the parcel was really
	// dropped off. Inference code must never read it; it exists for delay
	// injection, evaluation, and the customer-availability application.
	ActualDeliveryT float64
	// ConfirmLag is the courier's organic confirmation lag in seconds: even
	// a prompt confirmation happens a little after the drop-off, while the
	// courier walks away. Simulation ground truth; delay injection preserves
	// it when resetting recorded times.
	ConfirmLag float64
}

// Delayed reports whether the recorded confirmation is later than the actual
// delivery by more than tol seconds.
func (w Waybill) Delayed(tol float64) bool {
	return w.RecordedDeliveryT-w.ActualDeliveryT > tol
}

// Trip is Definition 5: one courier's delivery trip with its trajectory and
// waybills.
type Trip struct {
	Courier  CourierID
	StartT   float64
	EndT     float64
	Traj     traj.Trajectory
	Waybills []Waybill
}

// AddressInfo carries the static attributes of an address: its building, its
// geocode, and the POI category the geocoder returned.
type AddressInfo struct {
	ID       AddressID
	Building BuildingID
	Geocode  geo.Point
	POI      geocode.POICategory
	// GeocodeMode is simulation ground truth about why the geocode is off;
	// used by the case-study example, never by inference.
	GeocodeMode geocode.ErrorMode
}

// Dataset bundles everything the pipeline consumes plus evaluation ground
// truth.
type Dataset struct {
	Name      string
	Trips     []Trip
	Addresses []AddressInfo

	// Truth maps each address to its actual delivery location (the paper's
	// courier-labelled ground truth).
	Truth map[AddressID]geo.Point
}

// AddressByID returns the AddressInfo for id, or false when unknown.
func (d *Dataset) AddressByID(id AddressID) (AddressInfo, bool) {
	// Addresses are stored sorted by ID by construction; fall back to scan
	// if not.
	i := int(id)
	if i >= 0 && i < len(d.Addresses) && d.Addresses[i].ID == id {
		return d.Addresses[i], true
	}
	for _, a := range d.Addresses {
		if a.ID == id {
			return a, true
		}
	}
	return AddressInfo{}, false
}

// Validate checks structural invariants: ordered trajectories, waybill times
// inside trips, known addresses.
func (d *Dataset) Validate() error {
	known := make(map[AddressID]bool, len(d.Addresses))
	for _, a := range d.Addresses {
		known[a.ID] = true
	}
	for ti, tr := range d.Trips {
		if err := tr.Traj.Validate(); err != nil {
			return fmt.Errorf("trip %d: %w", ti, err)
		}
		if tr.EndT < tr.StartT {
			return fmt.Errorf("trip %d: end %v before start %v", ti, tr.EndT, tr.StartT)
		}
		for wi, w := range tr.Waybills {
			if !known[w.Addr] {
				return fmt.Errorf("trip %d waybill %d: unknown address %d", ti, wi, w.Addr)
			}
			if w.RecordedDeliveryT < w.ActualDeliveryT {
				return fmt.Errorf("trip %d waybill %d: recorded delivery before actual", ti, wi)
			}
		}
	}
	return nil
}

// Deliveries returns the number of waybills across all trips.
func (d *Dataset) Deliveries() int {
	n := 0
	for _, tr := range d.Trips {
		n += len(tr.Waybills)
	}
	return n
}

// TrajectoryPoints returns the total number of GPS fixes across all trips.
func (d *Dataset) TrajectoryPoints() int {
	n := 0
	for _, tr := range d.Trips {
		n += len(tr.Traj)
	}
	return n
}

// TripsOf returns the indices of trips that include a waybill for addr.
func (d *Dataset) TripsOf(addr AddressID) []int {
	var out []int
	for i, tr := range d.Trips {
		for _, w := range tr.Waybills {
			if w.Addr == addr {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
