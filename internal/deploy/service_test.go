// External test package: these tests drive the engine-backed Service over
// HTTP with the real internal/engine implementation (deploy itself cannot
// import engine — the dependency points the other way).
package deploy_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/engine"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
)

func serviceFixture(t *testing.T) (*model.Dataset, *engine.Engine, *httptest.Server) {
	t.Helper()
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3
	e := engine.New(cfg)
	t.Cleanup(e.Close)
	srv := httptest.NewServer(deploy.Service(e))
	t.Cleanup(srv.Close)
	return ds, e, srv
}

func getJSON(t *testing.T, c *http.Client, url string, wantCode int, v any) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, c *http.Client, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServiceIngestReinferQuery walks the full online lifecycle over HTTP:
// a cold engine answers 503s, one ingest window arrives, a background
// re-inference is started and polled to completion, then queries and the
// snapshot endpoint serve the new state — all without restarting the server.
func TestServiceIngestReinferQuery(t *testing.T) {
	ds, _, srv := serviceFixture(t)
	c := srv.Client()

	// Cold engine: not ready, no job yet, nothing to snapshot or query.
	var st deploy.EngineStatus
	getJSON(t, c, srv.URL+"/v1/healthz", http.StatusServiceUnavailable, &st)
	if st.Ready || st.Addresses != 0 {
		t.Fatalf("cold status %+v", st)
	}
	getJSON(t, c, srv.URL+"/v1/reinfer", http.StatusNotFound, nil)
	getJSON(t, c, srv.URL+"/v1/snapshot", http.StatusServiceUnavailable, nil)

	// Ingest the whole tiny dataset as one window.
	req := deploy.IngestRequest{
		Trips:     ds.Trips,
		Addresses: ds.Addresses,
		Truth:     make(map[string][2]float64, len(ds.Truth)),
	}
	for id, p := range ds.Truth {
		req.Truth[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	resp := postJSON(t, c, srv.URL+"/v1/ingest", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Addresses != len(ds.Addresses) || st.PendingTrips != len(ds.Trips) {
		t.Fatalf("post-ingest status %+v", st)
	}

	// Start the background job; a duplicate start conflicts with the running
	// job's status as the body.
	resp = postJSON(t, c, srv.URL+"/v1/reinfer", nil)
	var job deploy.JobStatus
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reinfer start status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != deploy.JobRunning {
		t.Fatalf("started job %+v", job)
	}
	resp = postJSON(t, c, srv.URL+"/v1/reinfer", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate reinfer status %d, want 409", resp.StatusCode)
	}
	var conflict api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&conflict); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if conflict.Error == nil || conflict.Error.Code != api.CodeReinferInFlight {
		t.Fatalf("conflict envelope %+v", conflict)
	}
	if id, ok := conflict.Error.Details["job_id"].(float64); !ok || int(id) != job.ID {
		t.Fatalf("conflict details report job %v, want %d", conflict.Error.Details["job_id"], job.ID)
	}

	// Poll until done.
	deadline := time.After(2 * time.Minute)
	for job.State == deploy.JobRunning {
		select {
		case <-deadline:
			t.Fatal("re-inference job did not finish")
		case <-time.After(20 * time.Millisecond):
		}
		getJSON(t, c, srv.URL+"/v1/reinfer", http.StatusOK, &job)
	}
	if job.State != deploy.JobDone {
		t.Fatalf("job ended %+v", job)
	}

	// Now ready: healthz flips to 200 and queries answer.
	getJSON(t, c, srv.URL+"/v1/healthz", http.StatusOK, &st)
	if !st.Ready || st.Inferred == 0 || st.PendingTrips != 0 {
		t.Fatalf("ready status %+v", st)
	}
	addr := ds.Trips[0].Waybills[0].Addr
	var qr deploy.QueryResponse
	getJSON(t, c, fmt.Sprintf("%s/v1/locations/%d", srv.URL, addr), http.StatusOK, &qr)
	if qr.Addr != int64(addr) || qr.Source == "none" {
		t.Fatalf("query response %+v", qr)
	}

	// The snapshot endpoint streams a state a fresh engine can serve from.
	resp, err := c.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	restored := engine.New(engine.DefaultConfig())
	defer restored.Close()
	if err := restored.RestoreSnapshot(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p, src := restored.Query(addr)
	if src == deploy.SourceNone {
		t.Fatal("restored engine cannot answer")
	}
	if p.X != qr.X || p.Y != qr.Y {
		t.Errorf("restored answer %v, served (%v,%v)", p, qr.X, qr.Y)
	}
}

func TestServiceErrorPaths(t *testing.T) {
	_, _, srv := serviceFixture(t)
	c := srv.Client()

	check := func(resp *http.Response, wantCode int, wantErrCode, what string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: status %d, want %d", what, resp.StatusCode, wantCode)
		}
		var eb api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil {
			t.Fatalf("%s: error body not an envelope: %v %+v", what, err, eb)
		}
		if eb.Error.Code != wantErrCode || eb.Error.Message == "" {
			t.Fatalf("%s: envelope %+v, want code %q", what, eb.Error, wantErrCode)
		}
	}

	resp, _ := c.Get(srv.URL + "/v1/locations/abc")
	check(resp, http.StatusBadRequest, api.CodeInvalidArgument, "bad addr")
	// A cold engine distinguishes "not ready" from "not found".
	resp, _ = c.Get(srv.URL + "/v1/locations/424242")
	check(resp, http.StatusServiceUnavailable, api.CodeEngineNotReady, "query on cold engine")
	resp = postJSON(t, c, srv.URL+"/v1/locations/1", nil)
	check(resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST /v1/locations/{key}")
	resp, _ = c.Get(srv.URL + "/v1/ingest")
	check(resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET /v1/ingest")
	resp, _ = c.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte("{nope")))
	check(resp, http.StatusBadRequest, api.CodeInvalidArgument, "bad ingest body")
	resp, _ = c.Post(srv.URL+"/v1/ingest", "application/json",
		bytes.NewReader([]byte(`{"truth":{"xyz":[1,2]}}`)))
	check(resp, http.StatusBadRequest, api.CodeInvalidArgument, "bad truth key")
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/reinfer", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = c.Do(req)
	check(resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "DELETE /v1/reinfer")
	resp = postJSON(t, c, srv.URL+"/v1/snapshot", nil)
	check(resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST /v1/snapshot")
	resp, _ = c.Get(srv.URL + "/no/such/route")
	check(resp, http.StatusNotFound, api.CodeNotFound, "unmatched path")
}

// TestServiceShardedHealthz serves a ShardedEngine through the same handler:
// /v1/healthz carries the per-shard breakdown, queries route to the owning
// shard, and /v1/snapshot streams a manifest a fresh sharded engine restores.
func TestServiceShardedHealthz(t *testing.T) {
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3
	newSharded := func() *engine.ShardedEngine {
		r, err := shard.NewRouter(3, 8)
		if err != nil {
			t.Fatal(err)
		}
		s := engine.NewSharded(cfg, r)
		t.Cleanup(s.Close)
		return s
	}
	s := newSharded()
	if err := s.IngestDataset(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if err := s.Reinfer(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(deploy.Service(s))
	t.Cleanup(srv.Close)
	c := srv.Client()

	var st deploy.EngineStatus
	getJSON(t, c, srv.URL+"/v1/healthz", http.StatusOK, &st)
	if !st.Ready {
		t.Fatalf("sharded healthz %+v", st)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("healthz lists %d shards, want 3", len(st.Shards))
	}
	addrs, inferred := 0, 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d labelled %d", i, sh.Shard)
		}
		addrs += sh.Addresses
		inferred += sh.Inferred
	}
	if addrs != st.Addresses || inferred != st.Inferred {
		t.Errorf("shard sums %d/%d, top-level %d/%d", addrs, inferred, st.Addresses, st.Inferred)
	}

	addr := ds.Trips[0].Waybills[0].Addr
	var qr deploy.QueryResponse
	getJSON(t, c, fmt.Sprintf("%s/v1/locations/%d", srv.URL, addr), http.StatusOK, &qr)
	if qr.Source == "none" {
		t.Fatalf("sharded query %+v", qr)
	}

	resp, err := c.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	restored := newSharded()
	if err := restored.RestoreSnapshot(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p, src := restored.Query(addr)
	if src == deploy.SourceNone || p.X != qr.X || p.Y != qr.Y {
		t.Errorf("restored sharded answer %v/%v, served (%v,%v)", p, src, qr.X, qr.Y)
	}
}
