package deploy

import (
	"encoding/json"
	"io"
	"net/http"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/model"
)

// Handler returns the read-only HTTP handler over a bare Store, speaking the
// same /v1 query surface (and the /location tombstone) as the engine-backed
// service. The engine-backed NewService supersedes it for serving; it
// remains for store-only embedding (evaluation harnesses, examples). A bare
// store is "deployed" by construction, so misses are plain 404s and the
// health routes always answer 200.
func Handler(s *Store) http.Handler {
	resolve := func(addr model.AddressID) (api.Location, *api.Error, int) {
		loc, src := s.Query(addr)
		if src == SourceNone {
			return api.Location{}, &api.Error{
				Code:    api.CodeNotFound,
				Message: "unknown address",
				Details: map[string]any{"addr": int64(addr)},
			}, http.StatusNotFound
		}
		return api.Location{Addr: int64(addr), X: loc.X, Y: loc.Y, Source: src.String()}, nil, http.StatusOK
	}
	location := methodsOnly(func(w http.ResponseWriter, r *http.Request) {
		addr, aerr := parseAddrKey(r)
		if aerr != nil {
			writeJSON(w, http.StatusBadRequest, api.ErrorEnvelope{Error: aerr})
			return
		}
		loc, aerr, code := resolve(addr)
		if aerr != nil {
			writeJSON(w, code, api.ErrorEnvelope{Error: aerr})
			return
		}
		writeJSON(w, http.StatusOK, loc)
	}, http.MethodGet)
	batch := methodsOnly(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchLocationsRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument, "decode batch request: "+err.Error(), nil)
			return
		}
		if n := len(req.Addrs); n == 0 || n > api.MaxBatchKeys {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				"addrs must hold between 1 and max keys", map[string]any{"max": api.MaxBatchKeys, "got": n})
			return
		}
		resp := api.BatchLocationsResponse{Results: make([]api.BatchResult, len(req.Addrs))}
		for i, a := range req.Addrs {
			res := api.BatchResult{Addr: a}
			if loc, aerr, _ := resolve(model.AddressID(a)); aerr != nil {
				res.Error = aerr
				resp.Missing++
			} else {
				res.Location = &loc
				resp.Found++
			}
			resp.Results[i] = res
		}
		writeJSON(w, http.StatusOK, resp)
	}, http.MethodPost)

	mux := http.NewServeMux()
	mux.Handle("/v1/locations/{key}", Instrument("/v1/locations/{key}", nil, nil, location))
	mux.Handle("/v1/locations:batch", Instrument("/v1/locations:batch", nil, nil, batch))
	mux.Handle("/location", Instrument("/location", nil, nil, gone("/v1/locations/{key}")))
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}
	mux.HandleFunc("/v1/healthz", healthz)
	mux.HandleFunc("/healthz", healthz)
	return mux
}
