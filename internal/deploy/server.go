package deploy

import (
	"encoding/json"
	"net/http"
	"strconv"

	"dlinfma/internal/model"
)

// QueryResponse is the JSON payload of the delivery-location query API.
type QueryResponse struct {
	Addr   int64   `json:"addr"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Source string  `json:"source"`
}

// Handler returns the HTTP handler of the online delivery-location query
// API (Figure 14): GET /location?addr=<id> answers from the store with the
// address -> building -> geocode fallback chain.
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/location", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id, err := strconv.ParseInt(r.URL.Query().Get("addr"), 10, 32)
		if err != nil {
			http.Error(w, "invalid addr parameter", http.StatusBadRequest)
			return
		}
		loc, src := s.Query(model.AddressID(id))
		if src == SourceNone {
			http.Error(w, "unknown address", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(QueryResponse{Addr: id, X: loc.X, Y: loc.Y, Source: src.String()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}
