package deploy

import (
	"net/http"
	"strconv"

	"dlinfma/internal/model"
)

// QueryResponse is the JSON payload of the delivery-location query API.
type QueryResponse struct {
	Addr   int64   `json:"addr"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Source string  `json:"source"`
}

// Handler returns the read-only HTTP handler over a bare Store:
// GET /location?addr=<id> answers with the address -> building -> geocode
// fallback chain. The engine-backed Service supersedes it for serving; it
// remains for store-only embedding (evaluation harnesses, examples).
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/location", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		id, err := strconv.ParseInt(r.URL.Query().Get("addr"), 10, 32)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "invalid addr parameter")
			return
		}
		loc, src := s.Query(model.AddressID(id))
		if src == SourceNone {
			jsonError(w, http.StatusNotFound, "unknown address")
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Addr: id, X: loc.X, Y: loc.Y, Source: src.String()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}
