// Tests for POST /v1/trajectories:stream against stub engines: ack counts,
// application order, mid-stream error reporting with resume position, the
// backpressure mapping, and the 501 answer from a non-streaming engine. The
// real-engine streaming semantics (trip cutting, WAL, replay) are covered in
// internal/engine.
package deploy_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// streamStub is a stubEngine that also records streaming calls, optionally
// failing after a set number of accepted points.
type streamStub struct {
	stubEngine
	events    []string
	failAfter int // accepted points before erroring; 0 = never fail
	failWith  error
}

func (s *streamStub) IngestPoint(_ context.Context, c model.CourierID, pt traj.GPSPoint) error {
	if s.failAfter > 0 && len(s.events) >= s.failAfter {
		return s.failWith
	}
	s.events = append(s.events, fmt.Sprintf("pt %d %.0f", c, pt.T))
	return nil
}

func (s *streamStub) CloseStream(_ context.Context, c model.CourierID) error {
	s.events = append(s.events, fmt.Sprintf("end %d", c))
	return nil
}

func postStream(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/trajectories:stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStreamErr(t *testing.T, resp *http.Response) *api.Error {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return env.Error
}

func TestStreamEndpointAcksInOrder(t *testing.T) {
	stub := &streamStub{stubEngine: *readyStub()}
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()

	resp := postStream(t, srv, `
{"courier":5,"x":1,"y":2,"t":100}
{"courier":6,"x":3,"y":4,"t":101}

{"courier":5,"x":1.5,"y":2.5,"t":110}
{"courier":5,"end":true}
`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ack api.StreamIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Points != 3 || ack.Ends != 1 {
		t.Fatalf("ack = %+v, want 3 points 1 end", ack)
	}
	want := []string{"pt 5 100", "pt 6 101", "pt 5 110", "end 5"}
	if fmt.Sprint(stub.events) != fmt.Sprint(want) {
		t.Fatalf("applied order %v, want %v", stub.events, want)
	}
}

func TestStreamEndpointRejectsBadLineWithProgress(t *testing.T) {
	stub := &streamStub{stubEngine: *readyStub()}
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()

	resp := postStream(t, srv, "{\"courier\":5,\"x\":1,\"y\":2,\"t\":100}\nnot json\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	e := decodeStreamErr(t, resp)
	if e.Code != api.CodeInvalidArgument {
		t.Fatalf("code = %q", e.Code)
	}
	// The details tell the producer exactly where to resume.
	if e.Details["line"] != float64(2) || e.Details["points"] != float64(1) || e.Details["ends"] != float64(0) {
		t.Fatalf("details = %v", e.Details)
	}
	if len(stub.events) != 1 {
		t.Fatalf("events after bad line: %v", stub.events)
	}
}

func TestStreamEndpointBackpressureMapsTo429(t *testing.T) {
	stub := &streamStub{stubEngine: *readyStub(), failAfter: 2, failWith: deploy.ErrBackpressure}
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()

	body := `{"courier":1,"x":0,"y":0,"t":1}
{"courier":1,"x":0,"y":0,"t":2}
{"courier":1,"x":0,"y":0,"t":3}
`
	resp := postStream(t, srv, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	e := decodeStreamErr(t, resp)
	if e.Code != api.CodeBackpressure {
		t.Fatalf("code = %q", e.Code)
	}
	if e.Details["points"] != float64(2) {
		t.Fatalf("details = %v, want 2 acked points", e.Details)
	}
}

func TestStreamEndpointUnimplementedWithoutStreaming(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub())) // no StreamIngestor
	defer srv.Close()

	resp := postStream(t, srv, `{"courier":1,"x":0,"y":0,"t":1}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
	if e := decodeStreamErr(t, resp); e.Code != api.CodeUnimplemented {
		t.Fatalf("code = %q", e.Code)
	}
}

func TestStreamEndpointRejectsOutOfRangeCourier(t *testing.T) {
	stub := &streamStub{stubEngine: *readyStub()}
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()

	resp := postStream(t, srv, `{"courier":5000000000,"x":0,"y":0,"t":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if e := decodeStreamErr(t, resp); e.Code != api.CodeInvalidArgument {
		t.Fatalf("code = %q", e.Code)
	}
}
