package deploy

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/traj"
)

// maxStreamLineBytes bounds one NDJSON line of a streaming session; a
// StreamPoint is tens of bytes, so 64 KiB is generous headroom, not a limit
// honest clients ever see.
const maxStreamLineBytes = 64 << 10

// handleStream is POST /v1/trajectories:stream: an NDJSON body of
// api.StreamPoint lines, applied in order. Each line is one courier fix (or
// an explicit end marker); the engine assembles trips server-side and logs
// every accepted line to its write-ahead log before acknowledging. The 200
// response with the applied counts is the acknowledgement; any failure
// answers the error envelope with the counts applied so far in the details,
// so producers know exactly where to resume. Backpressure (pending-trip
// backlog full) maps to 429.
func (s *service) handleStream(w http.ResponseWriter, r *http.Request) {
	si, ok := s.e.(StreamIngestor)
	if !ok {
		writeError(w, http.StatusNotImplemented, api.CodeUnimplemented,
			"this engine does not support trajectory streaming", nil)
		return
	}
	ctx, sp := trace.Start(r.Context(), "deploy.stream_session")
	defer sp.End()

	sc := bufio.NewScanner(io.LimitReader(r.Body, maxIngestBytes))
	sc.Buffer(make([]byte, 0, 4096), maxStreamLineBytes)
	points, ends, line := 0, 0, 0
	progress := func() map[string]any {
		sp.SetAttr("points", points)
		sp.SetAttr("ends", ends)
		return map[string]any{"line": line, "points": points, "ends": ends}
	}
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var p api.StreamPoint
		if err := json.Unmarshal(raw, &p); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				fmt.Sprintf("decode stream line %d: %v", line, err), progress())
			return
		}
		if p.Courier < math.MinInt32 || p.Courier > math.MaxInt32 {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				"courier id out of range", progress())
			return
		}
		courier := model.CourierID(p.Courier)
		var err error
		if p.End {
			if err = si.CloseStream(ctx, courier); err == nil {
				ends++
			}
		} else {
			if err = si.IngestPoint(ctx, courier, traj.GPSPoint{P: geo.Point{X: p.X, Y: p.Y}, T: p.T}); err == nil {
				points++
			}
		}
		if err != nil {
			if errors.Is(err, ErrBackpressure) {
				writeError(w, http.StatusTooManyRequests, api.CodeBackpressure, err.Error(), progress())
				return
			}
			sp.RecordError(err)
			s.log.WithTrace(ctx).Warn("stream ingest failed",
				"err", err, "line", line, "request_id", RequestID(ctx))
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), progress())
			return
		}
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			fmt.Sprintf("read stream body: %v", err), progress())
		return
	}
	progress()
	writeJSON(w, http.StatusOK, api.StreamIngestResponse{Points: points, Ends: ends})
}
