package deploy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/traj"
)

// Engine is deploy's view of the serving engine (implemented by
// internal/engine): the lifecycle owner behind the ingest / reinfer /
// query / snapshot endpoints. deploy defines the interface rather than
// importing the engine so the dependency points engine -> deploy.
type Engine interface {
	// Query answers a delivery-location request from the currently served
	// store snapshot; SourceNone before the first re-inference or restore.
	Query(addr model.AddressID) (geo.Point, Source)
	// Ingest appends a window of trips (plus any new addresses and ground
	// truth) to the accumulating dataset.
	Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error
	// StartReinfer launches a background retrain + re-infer job. It returns
	// ErrReinferRunning (with the running job's status) when one is active.
	StartReinfer() (JobStatus, error)
	// ReinferStatus reports the latest job; ok is false before the first.
	ReinferStatus() (JobStatus, bool)
	// Status summarizes engine state for health checks.
	Status() EngineStatus
	// WriteSnapshot streams the serving state (addresses, inferred
	// locations, trained model) to w.
	WriteSnapshot(w io.Writer) error
}

// ErrReinferRunning is returned by Engine.StartReinfer while a re-inference
// job is already in flight; the service maps it to 409 Conflict.
var ErrReinferRunning = errors.New("deploy: re-inference already running")

// ErrBackpressure is returned by ingest paths when the engine's reinfer
// backlog (pending trips) has hit its configured bound; the service maps it
// to 429 so well-behaved producers back off until the next re-inference
// drains the queue.
var ErrBackpressure = errors.New("deploy: ingest backlog full, retry after reinfer")

// ContextQuerier is the optional request-scoped single-key read path. Engines
// whose Query crosses a process boundary (the cluster frontend proxying to
// ring owners) implement it so the outbound hop can carry the request's
// deadline, trace context, and correlation id; the service prefers it over
// the plain Query when present. In-process engines stay on Query — their
// lock-free read path has nothing to propagate.
type ContextQuerier interface {
	// QueryCtx answers one address like Engine.Query, bounded and annotated
	// by ctx.
	QueryCtx(ctx context.Context, addr model.AddressID) (geo.Point, Source)
}

// StreamIngestor is the optional point-streaming ingest surface. Engines
// that implement it (both shapes in internal/engine do) accept trajectory
// fixes one at a time per courier and assemble trips server-side: a trip
// closes on an explicit CloseStream or when the courier's inter-fix gap
// exceeds the engine's trip-gap bound. POST /v1/trajectories:stream feeds
// this interface; engines without it answer that route 501.
type StreamIngestor interface {
	// IngestPoint appends one GPS fix to courier's open trajectory stream,
	// opening a stream as needed. It returns ErrBackpressure when the
	// pending-trip bound is hit; a nil return means the point is accepted
	// and — when a write-ahead log is attached — durable per its fsync
	// policy.
	IngestPoint(ctx context.Context, courier model.CourierID, pt traj.GPSPoint) error
	// CloseStream ends courier's open trip, delivering it to the candidate
	// pool. Closing a courier without an open stream is a no-op.
	CloseStream(ctx context.Context, courier model.CourierID) error
}

// The wire schema lives in internal/deploy/api; deploy re-exports the types
// the engine and long-standing callers use so the move is source-compatible.
type (
	// EngineStatus is the /v1/healthz payload (api.EngineStatus).
	EngineStatus = api.EngineStatus
	// ShardStatus is one shard's status inside EngineStatus.
	ShardStatus = api.ShardStatus
	// JobStatus describes one background re-inference job.
	JobStatus = api.JobStatus
	// IngestRequest is the POST /v1/ingest payload.
	IngestRequest = api.IngestRequest
	// QueryResponse is the payload of a location query (api.Location).
	QueryResponse = api.Location
)

// Job states of a background re-inference (api.Job*).
const (
	JobRunning = api.JobRunning
	JobDone    = api.JobDone
	JobFailed  = api.JobFailed
)

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error envelope
// {"error":{"code","message","details"}} every handler uses.
func writeError(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	writeJSON(w, status, api.ErrorEnvelope{Error: &api.Error{Code: code, Message: msg, Details: details}})
}

// maxIngestBytes bounds one ingest request body (64 MiB) so a runaway
// client cannot exhaust memory.
const maxIngestBytes = 64 << 20

// maxBatchBytes bounds one batch-lookup body (1 MiB covers MaxBatchKeys).
const maxBatchBytes = 1 << 20

// Options configures the service wrapper around an engine.
type Options struct {
	// Logger receives per-request access lines (at debug level) and handler
	// warnings. nil drops everything.
	Logger *obs.Logger
	// Tracer starts one root span per request (continuing an incoming W3C
	// traceparent) and backs GET /v1/debug/traces. nil disables tracing;
	// the debug endpoints then answer empty.
	Tracer *trace.Tracer
}

// Service returns the engine-backed HTTP API with default options — see
// NewService for the route table.
func Service(e Engine) http.Handler { return NewService(e, Options{}) }

// NewService returns the versioned HTTP API of the deployed system
// (Section VI, Figure 14, grown to the full online lifecycle):
//
//	POST /v1/locations:batch   resolve many address keys per call (bulk hot path)
//	GET  /v1/locations/{key}   query one address via the address->building->geocode chain
//	POST /v1/ingest            append a window of trips (api.IngestRequest)
//	POST /v1/trajectories:stream  stream courier fixes as NDJSON api.StreamPoint lines
//	POST /v1/reinfer           start a background retrain+re-infer job (202)
//	GET  /v1/reinfer           poll the latest job's status
//	GET  /v1/snapshot          stream the serving state for on-disk persistence
//	GET  /v1/metrics           Prometheus text exposition of the obs registry
//	GET  /v1/healthz           EngineStatus; 503 before readiness or while a shard is failed
//	GET  /healthz              thin alias of /v1/healthz for load-balancer and kubelet probes
//
// The pre-versioning routes /location, /ingest, /reinfer, and /snapshot were
// deprecated aliases for several releases and are now retired: they answer
// 410 Gone with the uniform error envelope (code "gone") and a Link header
// naming the /v1 successor, so a stale client learns where to go from the
// response alone. Every handler emits the api.ErrorEnvelope on failure, and
// every route is wrapped in the request-logging + metrics middleware
// (status, latency, in-flight).
func NewService(e Engine, opts Options) http.Handler {
	s := &service{e: e, log: opts.Logger, tracer: opts.Tracer}
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, Instrument(route, s.log, s.tracer, h))
	}

	handle("/v1/locations/{key}", "/v1/locations/{key}", methodsOnly(s.handleLocation, http.MethodGet))
	handle("/v1/locations:batch", "/v1/locations:batch", methodsOnly(s.handleBatch, http.MethodPost))
	handle("/v1/ingest", "/v1/ingest", methodsOnly(s.handleIngest, http.MethodPost))
	handle("/v1/trajectories:stream", "/v1/trajectories:stream", methodsOnly(s.handleStream, http.MethodPost))
	handle("/v1/reinfer", "/v1/reinfer", methodsOnly(s.handleReinfer, http.MethodPost, http.MethodGet))
	handle("/v1/snapshot", "/v1/snapshot", methodsOnly(s.handleSnapshot, http.MethodGet))
	handle("/v1/metrics", "/v1/metrics", methodsOnly(metricsExposition, http.MethodGet))
	handle("/v1/debug/traces", "/v1/debug/traces", methodsOnly(traceListHandler(s.tracer), http.MethodGet))
	handle("/v1/debug/traces/{id}", "/v1/debug/traces/{id}", methodsOnly(traceGetHandler(s.tracer), http.MethodGet))
	sw, _ := e.(SwapReporter)
	handle("/v1/debug/swaps", "/v1/debug/swaps", methodsOnly(swapListHandler(sw), http.MethodGet))
	handle("/v1/healthz", "/v1/healthz", methodsOnly(s.handleHealthz, http.MethodGet))
	handle("/healthz", "/healthz", methodsOnly(s.handleHealthz, http.MethodGet))

	handle("/location", "/location", gone("/v1/locations/{key}"))
	handle("/ingest", "/ingest", gone("/v1/ingest"))
	handle("/reinfer", "/reinfer", gone("/v1/reinfer"))
	handle("/snapshot", "/snapshot", gone("/v1/snapshot"))

	// Everything else answers the envelope, grouped under one metric label
	// so unmatched paths cannot blow up route cardinality.
	handle("/", routeOther, func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no such route", map[string]any{"path": r.URL.Path})
	})
	return mux
}

type service struct {
	e      Engine
	log    *obs.Logger
	tracer *trace.Tracer
}

// methodsOnly gates a handler to the allowed methods, answering the uniform
// 405 envelope otherwise. Patterns are registered method-less so the
// envelope — not net/http's plain-text 405 — is what clients see.
func methodsOnly(h http.HandlerFunc, allowed ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allowed {
			if r.Method == m {
				h(w, r)
				return
			}
		}
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed", map[string]any{"allowed": allowed})
	}
}

// parseAddrKey resolves the address key from the v1 path wildcard.
func parseAddrKey(r *http.Request) (model.AddressID, *api.Error) {
	key := r.PathValue("key")
	id, err := strconv.ParseInt(key, 10, 32)
	if err != nil {
		return 0, &api.Error{
			Code:    api.CodeInvalidArgument,
			Message: "address key must be a decimal integer",
			Details: map[string]any{"key": key},
		}
	}
	return model.AddressID(id), nil
}

// resolve answers one address against the engine, mapping the miss to the
// right envelope: 503 engine_not_ready on a cold engine, 404 not_found once
// a store is deployed. The Status() call happens only on misses, keeping the
// hot path to a single store lookup. Engines with a request-scoped read path
// (ContextQuerier) get the request context so a remote hop inherits the
// deadline and trace.
func (s *service) resolve(ctx context.Context, addr model.AddressID) (api.Location, *api.Error, int) {
	var (
		loc geo.Point
		src Source
	)
	if cq, ok := s.e.(ContextQuerier); ok {
		loc, src = cq.QueryCtx(ctx, addr)
	} else {
		loc, src = s.e.Query(addr)
	}
	if src == SourceNone {
		if !s.e.Status().Ready {
			return api.Location{}, &api.Error{
				Code:    api.CodeEngineNotReady,
				Message: "no serving state deployed yet",
			}, http.StatusServiceUnavailable
		}
		return api.Location{}, &api.Error{
			Code:    api.CodeNotFound,
			Message: "unknown address",
			Details: map[string]any{"addr": int64(addr)},
		}, http.StatusNotFound
	}
	return api.Location{Addr: int64(addr), X: loc.X, Y: loc.Y, Source: src.String()}, nil, http.StatusOK
}

func (s *service) handleLocation(w http.ResponseWriter, r *http.Request) {
	addr, aerr := parseAddrKey(r)
	if aerr != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorEnvelope{Error: aerr})
		return
	}
	loc, aerr, code := s.resolve(r.Context(), addr)
	if aerr != nil {
		writeJSON(w, code, api.ErrorEnvelope{Error: aerr})
		return
	}
	writeJSON(w, http.StatusOK, loc)
}

func (s *service) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req api.IngestRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxIngestBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			fmt.Sprintf("decode ingest request: %v", err), nil)
		return
	}
	truth := make(map[model.AddressID]geo.Point, len(req.Truth))
	for k, v := range req.Truth {
		var id model.AddressID
		if _, err := fmt.Sscan(k, &id); err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				"truth keys must be decimal address ids", map[string]any{"key": k})
			return
		}
		truth[id] = geo.Point{X: v[0], Y: v[1]}
	}
	if err := s.e.Ingest(r.Context(), req.Trips, req.Addresses, truth); err != nil {
		if errors.Is(err, ErrBackpressure) {
			writeError(w, http.StatusTooManyRequests, api.CodeBackpressure, err.Error(), nil)
			return
		}
		s.log.WithTrace(r.Context()).Warn("ingest failed", "err", err, "request_id", RequestID(r.Context()))
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, s.e.Status())
}

func (s *service) handleReinfer(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		job, err := s.e.StartReinfer()
		if errors.Is(err, ErrReinferRunning) {
			writeError(w, http.StatusConflict, api.CodeReinferInFlight,
				"a re-inference job is already running",
				map[string]any{"job_id": job.ID, "job": job})
			return
		}
		if err != nil {
			s.log.WithTrace(r.Context()).Warn("reinfer start failed", "err", err, "request_id", RequestID(r.Context()))
			writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	case http.MethodGet:
		job, ok := s.e.ReinferStatus()
		if !ok {
			writeError(w, http.StatusNotFound, api.CodeNotFound, "no re-inference job yet", nil)
			return
		}
		writeJSON(w, http.StatusOK, job)
	}
}

func (s *service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.e.Status().Ready {
		writeError(w, http.StatusServiceUnavailable, api.CodeEngineNotReady,
			"no serving state to snapshot yet", nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.e.WriteSnapshot(w); err != nil {
		// Headers are gone; the truncated body is the best signal left.
		s.log.WithTrace(r.Context()).Warn("snapshot stream failed", "err", err, "request_id", RequestID(r.Context()))
		return
	}
}

func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.e.Status()
	code := http.StatusOK
	// 503 before the first deployed store AND while any shard's latest
	// re-inference failed: a blind or degraded instance must drop out of the
	// load balancer even though it keeps answering what it still can.
	if !st.Ready || st.Failed {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// NewServer wraps a handler in an http.Server with production timeouts: a
// short header read deadline against slowloris clients, bounded read/write
// deadlines sized for ingest uploads and snapshot downloads, and a keep-alive
// idle timeout.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve runs srv until ctx is cancelled (SIGINT/SIGTERM in cmdServe wires a
// signal context), then shuts down gracefully with a 10 s drain deadline.
// It returns nil after a clean shutdown, otherwise the listener error.
func Serve(ctx context.Context, srv *http.Server) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
