package deploy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// Engine is deploy's view of the serving engine (implemented by
// internal/engine): the lifecycle owner behind the ingest / reinfer /
// query / snapshot endpoints. deploy defines the interface rather than
// importing the engine so the dependency points engine -> deploy.
type Engine interface {
	// Query answers a delivery-location request from the currently served
	// store snapshot; SourceNone before the first re-inference or restore.
	Query(addr model.AddressID) (geo.Point, Source)
	// Ingest appends a window of trips (plus any new addresses and ground
	// truth) to the accumulating dataset.
	Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error
	// StartReinfer launches a background retrain + re-infer job. It returns
	// ErrReinferRunning (with the running job's status) when one is active.
	StartReinfer() (JobStatus, error)
	// ReinferStatus reports the latest job; ok is false before the first.
	ReinferStatus() (JobStatus, bool)
	// Status summarizes engine state for health checks.
	Status() EngineStatus
	// WriteSnapshot streams the serving state (addresses, inferred
	// locations, trained model) to w.
	WriteSnapshot(w io.Writer) error
}

// ErrReinferRunning is returned by Engine.StartReinfer while a re-inference
// job is already in flight; the service maps it to 409 Conflict.
var ErrReinferRunning = errors.New("deploy: re-inference already running")

// EngineStatus is the /healthz payload: a summary of the engine's serving
// and ingest state.
type EngineStatus struct {
	Dataset string `json:"dataset,omitempty"`
	// Ready is true once a (pool, model, store) triple is being served —
	// after the first completed re-inference or a snapshot restore.
	Ready bool `json:"ready"`
	// Addresses counts addresses registered through ingest.
	Addresses int `json:"addresses"`
	// Inferred counts address-level entries in the served store.
	Inferred      int `json:"inferred"`
	PoolLocations int `json:"pool_locations"`
	// PendingTrips counts trips ingested after the serving state was built.
	PendingTrips   int  `json:"pending_trips"`
	Reinfers       int  `json:"reinfers"`
	ReinferRunning bool `json:"reinfer_running"`
	// Shards lists per-shard summaries when the serving engine is sharded
	// (engine.ShardedEngine); empty for a single global engine. The
	// top-level counters are then sums over the shards, and Ready is true
	// as soon as any shard serves — one shard's failed retrain degrades
	// its own region only.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one shard's EngineStatus inside a sharded /healthz payload.
type ShardStatus struct {
	Shard int `json:"shard"`
	EngineStatus
}

// Job states of a background re-inference.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus describes one background re-inference job.
type JobStatus struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Inferred is the number of addresses the finished job produced.
	Inferred int `json:"inferred,omitempty"`
}

// IngestRequest is the POST /ingest payload: one window of trips with any
// new address metadata. Truth is keyed by stringified address id (JSON
// object keys must be strings), matching the dataset file format.
type IngestRequest struct {
	Trips     []model.Trip          `json:"trips"`
	Addresses []model.AddressInfo   `json:"addresses"`
	Truth     map[string][2]float64 `json:"truth,omitempty"`
}

// errorResponse is the JSON error body every endpoint uses.
type errorResponse struct {
	Error string `json:"error"`
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// maxIngestBytes bounds one ingest request body (64 MiB) so a runaway
// client cannot exhaust memory.
const maxIngestBytes = 64 << 20

// Service returns the engine-backed HTTP API of the deployed system
// (Section VI, Figure 14, grown to the full online lifecycle):
//
//	GET  /location?addr=<id>  query with the address->building->geocode chain
//	POST /ingest              append a window of trips (IngestRequest)
//	POST /reinfer             start a background retrain+re-infer job (202)
//	GET  /reinfer             poll the latest job's status
//	GET  /snapshot            stream the serving state for on-disk persistence
//	GET  /healthz             EngineStatus; 200 when ready, 503 before
func Service(e Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/location", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		id, err := strconv.ParseInt(r.URL.Query().Get("addr"), 10, 32)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "invalid addr parameter")
			return
		}
		loc, src := e.Query(model.AddressID(id))
		if src == SourceNone {
			jsonError(w, http.StatusNotFound, "unknown address")
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Addr: id, X: loc.X, Y: loc.Y, Source: src.String()})
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		var req IngestRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, maxIngestBytes))
		if err := dec.Decode(&req); err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("decode ingest request: %v", err))
			return
		}
		truth := make(map[model.AddressID]geo.Point, len(req.Truth))
		for k, v := range req.Truth {
			var id model.AddressID
			if _, err := fmt.Sscan(k, &id); err != nil {
				jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad truth key %q", k))
				return
			}
			truth[id] = geo.Point{X: v[0], Y: v[1]}
		}
		if err := e.Ingest(r.Context(), req.Trips, req.Addresses, truth); err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, e.Status())
	})
	mux.HandleFunc("/reinfer", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			job, err := e.StartReinfer()
			if errors.Is(err, ErrReinferRunning) {
				writeJSON(w, http.StatusConflict, job)
				return
			}
			if err != nil {
				jsonError(w, http.StatusInternalServerError, err.Error())
				return
			}
			writeJSON(w, http.StatusAccepted, job)
		case http.MethodGet:
			job, ok := e.ReinferStatus()
			if !ok {
				jsonError(w, http.StatusNotFound, "no re-inference job yet")
				return
			}
			writeJSON(w, http.StatusOK, job)
		default:
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		if !e.Status().Ready {
			jsonError(w, http.StatusServiceUnavailable, "engine not ready")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := e.WriteSnapshot(w); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := e.Status()
		code := http.StatusOK
		if !st.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	})
	return mux
}

// NewServer wraps a handler in an http.Server with production timeouts: a
// short header read deadline against slowloris clients, bounded read/write
// deadlines sized for ingest uploads and snapshot downloads, and a keep-alive
// idle timeout.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve runs srv until ctx is cancelled (SIGINT/SIGTERM in cmdServe wires a
// signal context), then shuts down gracefully with a 10 s drain deadline.
// It returns nil after a clean shutdown, otherwise the listener error.
func Serve(ctx context.Context, srv *http.Server) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
