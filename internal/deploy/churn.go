package deploy

import "dlinfma/internal/geo"

// ChurnDistanceBounds are the upper edges, in meters, of the distance-moved
// histogram a hot-swap churn diff produces. Delivery-location moves under a
// meter or two are re-inference jitter; tens of meters are a different
// building; hundreds are the mis-annotation-scale corrections the paper is
// about. The final implicit bucket is +Inf.
var ChurnDistanceBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Churn summarizes how the served answers changed across one hot-swap: the
// diff of the outgoing FrozenStore against the incoming one. A swap that
// moves a large fraction of addresses is exactly the mis-annotation-discovery
// signal the system exists to produce — and the one an operator most needs to
// see when it happens unexpectedly.
type Churn struct {
	// Before and After count answerable addresses in each store.
	Before int
	After  int
	// Added counts addresses answerable only after the swap; Dropped only
	// before. Moved counts addresses answered in both whose location
	// changed; Retained those whose location is identical.
	Added    int64
	Dropped  int64
	Moved    int64
	Retained int64
	// MovedDist buckets the moved distances (meters) by ChurnDistanceBounds;
	// the last slot counts moves past the largest bound.
	MovedDist []int64
	// MeanMovedMeters and MaxMovedMeters summarize the moved distances.
	MeanMovedMeters float64
	MaxMovedMeters  float64
	// LowConfidence counts incoming address-level answers whose confidence
	// stamp sits below the threshold the diff was computed with (0 when no
	// threshold was supplied).
	LowConfidence int64
}

// Ratio returns moved/(moved+retained) — the fraction of stable addresses
// whose answer changed. 0 when nothing was answerable in both stores.
func (c *Churn) Ratio() float64 {
	den := c.Moved + c.Retained
	if den == 0 {
		return 0
	}
	return float64(c.Moved) / float64(den)
}

// DiffFrozen computes the churn of swapping old out for new. Either store
// may be nil (a cold boot has no outgoing store: everything counts as
// Added). lowConf, when > 0, also counts incoming answers below that
// confidence; onMove, when non-nil, is called with each moved distance in
// meters (the engine feeds its distance histogram through it). The diff
// walks both answer maps once — O(|old|+|new|) — and runs off the serving
// path, after the swap has already published.
func DiffFrozen(old, new *FrozenStore, lowConf float64, onMove func(meters float64)) *Churn {
	c := &Churn{
		Before:    old.Len(),
		After:     new.Len(),
		MovedDist: make([]int64, len(ChurnDistanceBounds)+1),
	}
	var sumMoved float64
	if new != nil {
		for addr, na := range new.answers {
			if lowConf > 0 && na.Src == SourceAddress && na.Conf > 0 && float64(na.Conf) < lowConf {
				c.LowConfidence++
			}
			if old == nil {
				c.Added++
				continue
			}
			oa, ok := old.answers[addr]
			if !ok {
				c.Added++
				continue
			}
			if oa.Loc == na.Loc {
				c.Retained++
				continue
			}
			c.Moved++
			d := geo.Dist(oa.Loc, na.Loc)
			sumMoved += d
			if d > c.MaxMovedMeters {
				c.MaxMovedMeters = d
			}
			c.MovedDist[churnBucket(d)]++
			if onMove != nil {
				onMove(d)
			}
		}
	}
	if old != nil {
		for addr := range old.answers {
			if new == nil {
				c.Dropped++
				continue
			}
			if _, ok := new.answers[addr]; !ok {
				c.Dropped++
			}
		}
	}
	if c.Moved > 0 {
		c.MeanMovedMeters = sumMoved / float64(c.Moved)
	}
	return c
}

// churnBucket maps a moved distance to its ChurnDistanceBounds slot.
func churnBucket(d float64) int {
	for i, b := range ChurnDistanceBounds {
		if d <= b {
			return i
		}
	}
	return len(ChurnDistanceBounds)
}
