package deploy

import (
	"net/http"
	"slices"
	"strconv"

	"dlinfma/internal/deploy/api"
)

// SwapReporter is the optional hot-swap observability surface. Engines that
// keep a churn-report ring (both shapes in internal/engine do) implement it;
// GET /v1/debug/swaps serves the reports. Engines without it — or remote
// frontends whose shards live in other processes — answer an empty list, so
// the endpoint is always mounted and probing it always works.
type SwapReporter interface {
	// SwapReports returns up to limit churn reports, newest first.
	SwapReports(limit int) []api.SwapReport
}

// maxSwapList bounds a list response when the client sends no limit.
const maxSwapList = 32

// maxSwapListLimit is the hard ceiling on an explicit ?limit=: the ring
// buffer behind the reports is itself small, so anything larger is a typo.
const maxSwapListLimit = 1024

// swapListParams is the full query-parameter vocabulary of
// GET /v1/debug/swaps. Anything else is rejected with invalid_argument
// rather than silently ignored.
var swapListParams = []string{"limit"}

// swapListHandler serves GET /v1/debug/swaps: recent hot-swap churn reports,
// newest first, bounded by ?limit=. A nil reporter answers an empty list.
func swapListHandler(sw SwapReporter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit := maxSwapList
		q := r.URL.Query()
		for name := range q {
			if !slices.Contains(swapListParams, name) {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"unknown query parameter", map[string]any{"param": name, "allowed": swapListParams})
				return
			}
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 || n > maxSwapListLimit {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"limit must be a positive integer", map[string]any{"limit": v, "max": maxSwapListLimit})
				return
			}
			limit = n
		}
		resp := api.SwapsResponse{Swaps: []api.SwapReport{}}
		if sw != nil {
			if reps := sw.SwapReports(limit); len(reps) > 0 {
				resp.Swaps = reps
			}
		}
		resp.Count = len(resp.Swaps)
		writeJSON(w, http.StatusOK, resp)
	}
}
