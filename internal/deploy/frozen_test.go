package deploy

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// populatedStore builds a store exercising every fallback level: address 1
// has an inferred location, address 2 only a building majority, address 3
// only a geocode, address 4 nothing answerable.
func populatedStore() *Store {
	s := NewStore()
	s.RegisterAddress(1, 10, geo.Point{X: 100, Y: 100})
	s.RegisterAddress(2, 10, geo.Point{X: 110, Y: 100})
	s.RegisterAddress(3, 11, geo.Point{X: 500, Y: 500})
	s.Put(1, geo.Point{X: 102, Y: 101})
	return s
}

func TestFrozenStoreMatchesStore(t *testing.T) {
	s := populatedStore()
	f := s.Freeze()
	for _, addr := range []model.AddressID{1, 2, 3, 99} {
		wantLoc, wantSrc := s.Query(addr)
		gotLoc, gotSrc := f.Query(addr)
		if gotLoc != wantLoc || gotSrc != wantSrc {
			t.Errorf("addr %d: frozen (%v,%v) != store (%v,%v)", addr, gotLoc, gotSrc, wantLoc, wantSrc)
		}
	}
	if f.Len() != 3 {
		t.Errorf("frozen Len = %d, want 3 (every answerable address)", f.Len())
	}
	if loc, ok := f.QueryBuilding(10); !ok || loc != (geo.Point{X: 102, Y: 101}) {
		t.Errorf("frozen QueryBuilding(10) = %v %v", loc, ok)
	}
	if _, ok := f.QueryBuilding(11); ok {
		t.Error("building 11 has no majority, QueryBuilding must miss")
	}
}

func TestFrozenStoreIsImmutable(t *testing.T) {
	s := populatedStore()
	f := s.Freeze()
	// Later writes to the live store must not leak into the frozen copy.
	s.Put(2, geo.Point{X: 900, Y: 900})
	s.Put(1, geo.Point{X: 901, Y: 901})
	if loc, src := f.Query(1); src != SourceAddress || loc != (geo.Point{X: 102, Y: 101}) {
		t.Errorf("frozen addr 1 moved after store write: %v %v", loc, src)
	}
	if loc, src := f.Query(2); src != SourceBuilding || loc != (geo.Point{X: 102, Y: 101}) {
		t.Errorf("frozen addr 2 moved after store write: %v %v", loc, src)
	}
	// A re-freeze picks the writes up.
	if loc, src := s.Freeze().Query(2); src != SourceAddress || loc != (geo.Point{X: 900, Y: 900}) {
		t.Errorf("refrozen addr 2 = %v %v", loc, src)
	}
}

func TestFrozenStoreNilSafe(t *testing.T) {
	var f *FrozenStore
	if _, src := f.Query(1); src != SourceNone {
		t.Errorf("nil frozen store source = %v", src)
	}
	if _, ok := f.QueryBuilding(1); ok {
		t.Error("nil frozen store answered a building")
	}
	if f.Len() != 0 {
		t.Error("nil frozen store has entries")
	}
}

// TestFrozenQueryZeroAllocs guards the tentpole contract: a frozen-store
// query is one map lookup with zero allocations.
func TestFrozenQueryZeroAllocs(t *testing.T) {
	f := populatedStore().Freeze()
	addrs := []model.AddressID{1, 2, 3, 99}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		f.Query(addrs[i%len(addrs)])
		i++
	}); n != 0 {
		t.Errorf("FrozenStore.Query allocates %.1f/op, want 0", n)
	}
}

// TestStorePutIncrementalMajority cross-checks the O(1) running argmax in
// Put against a brute-force recount of the vote table after every write.
func TestStorePutIncrementalMajority(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(7))
	locs := []geo.Point{{X: 1}, {X: 2}, {X: 3}, {X: 4}}
	for i := 0; i < 64; i++ {
		s.RegisterAddress(model.AddressID(i), model.BuildingID(i%3), geo.Point{X: float64(i)})
	}
	for step := 0; step < 500; step++ {
		addr := model.AddressID(rng.Intn(64))
		s.Put(addr, locs[rng.Intn(len(locs))])

		s.mu.RLock()
		for bld, votes := range s.bldVotes {
			bestN := 0
			for _, n := range votes {
				if n > bestN {
					bestN = n
				}
			}
			got := s.byBld[bld]
			if votes[got] != bestN {
				t.Fatalf("step %d: building %d serves %v with %d votes, majority has %d",
					step, bld, got, votes[got], bestN)
			}
			if s.bldBestN[bld] != bestN {
				t.Fatalf("step %d: building %d tracked best %d, recount %d",
					step, bld, s.bldBestN[bld], bestN)
			}
		}
		s.mu.RUnlock()
	}
}

// TestQueryBatchFallbackLoop covers the per-key fallback used for engines
// without a native bulk path, including slice recycling.
func TestQueryBatchFallbackLoop(t *testing.T) {
	st := populatedStore()
	e := storeOnlyEngine{st}
	scratch := make([]BatchAnswer, 0, 8)
	out, err := QueryBatch(context.Background(), e, []model.AddressID{2, 99, 1}, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || cap(out) != 8 {
		t.Fatalf("out len=%d cap=%d, want len 3 reusing cap-8 scratch", len(out), cap(out))
	}
	if out[0].Src != SourceBuilding || out[1].Src != SourceNone || out[2].Src != SourceAddress {
		t.Fatalf("sources %v %v %v", out[0].Src, out[1].Src, out[2].Src)
	}
}

// storeOnlyEngine adapts a bare Store to the Engine interface without
// implementing BatchQuerier, pinning the fallback path.
type storeOnlyEngine struct{ st *Store }

func (e storeOnlyEngine) Query(addr model.AddressID) (geo.Point, Source) { return e.st.Query(addr) }
func (e storeOnlyEngine) Ingest(context.Context, []model.Trip, []model.AddressInfo, map[model.AddressID]geo.Point) error {
	return nil
}
func (e storeOnlyEngine) StartReinfer() (JobStatus, error)  { return JobStatus{}, nil }
func (e storeOnlyEngine) ReinferStatus() (JobStatus, bool)  { return JobStatus{}, false }
func (e storeOnlyEngine) Status() EngineStatus              { return EngineStatus{Ready: true} }
func (e storeOnlyEngine) WriteSnapshot(io.Writer) error { return nil }
