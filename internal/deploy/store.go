// Package deploy reproduces the deployed system of Section VI: a
// delivery-location store with the paper's three-level query fallback
// (address -> building majority -> geocode), an HTTP query API, and the two
// applications built on top — route planning over inferred locations and
// customer availability inference from actual delivery times.
package deploy

import (
	"sync"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// Source says which level of the store answered a query.
type Source int

// Query answer sources, from most to least specific.
const (
	SourceAddress Source = iota
	SourceBuilding
	SourceGeocode
	SourceNone
)

// String returns the source label.
func (s Source) String() string {
	switch s {
	case SourceAddress:
		return "address"
	case SourceBuilding:
		return "building"
	case SourceGeocode:
		return "geocode"
	default:
		return "none"
	}
}

// ParseSource maps a wire source label (api.Location.Source) back to the
// Source it names. Unknown labels parse as SourceNone — a remote answer the
// local fallback chain cannot classify is still an answer, just an
// unattributed one.
func ParseSource(s string) Source {
	switch s {
	case "address":
		return SourceAddress
	case "building":
		return SourceBuilding
	case "geocode":
		return SourceGeocode
	default:
		return SourceNone
	}
}

// Store is the key-value delivery-location store of Figure 14. It is safe
// for concurrent readers and writers.
type Store struct {
	mu        sync.RWMutex
	byAddress map[model.AddressID]geo.Point
	byBld     map[model.BuildingID]geo.Point
	geocodes  map[model.AddressID]geo.Point
	buildings map[model.AddressID]model.BuildingID
	// bldVotes accumulates per-building location votes so the
	// building-level answer is the most-used delivery location among the
	// building's addresses, as the paper describes.
	bldVotes map[model.BuildingID]map[geo.Point]int
	// bldBestN tracks the vote count behind byBld's current majority, so Put
	// maintains the argmax incrementally instead of rescanning every vote —
	// bulk re-inference writes stay O(1) per address.
	bldBestN map[model.BuildingID]int
	// conf holds the model's top-1 probability for each address-level entry.
	// Zero means "unknown" (legacy snapshots, building/geocode fallbacks).
	conf map[model.AddressID]float32
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byAddress: make(map[model.AddressID]geo.Point),
		byBld:     make(map[model.BuildingID]geo.Point),
		geocodes:  make(map[model.AddressID]geo.Point),
		buildings: make(map[model.AddressID]model.BuildingID),
		bldVotes:  make(map[model.BuildingID]map[geo.Point]int),
		bldBestN:  make(map[model.BuildingID]int),
		conf:      make(map[model.AddressID]float32),
	}
}

// SetConfidence records the model's top-1 probability behind an address's
// inferred location. Freeze stamps it into the served answer so the read
// path can flag low-confidence serving without touching the matcher.
func (s *Store) SetConfidence(addr model.AddressID, conf float32) {
	s.mu.Lock()
	s.conf[addr] = conf
	s.mu.Unlock()
}

// RegisterAddress records an address's building and geocode (the fallback
// levels). Call before or after Put in any order.
func (s *Store) RegisterAddress(addr model.AddressID, bld model.BuildingID, geocode geo.Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buildings[addr] = bld
	s.geocodes[addr] = geocode
}

// Put stores the inferred delivery location of an address and refreshes the
// building-level majority.
func (s *Store) Put(addr model.AddressID, loc geo.Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byAddress[addr] = loc
	bld, ok := s.buildings[addr]
	if !ok {
		return
	}
	votes := s.bldVotes[bld]
	if votes == nil {
		votes = make(map[geo.Point]int)
		s.bldVotes[bld] = votes
	}
	votes[loc]++
	// Incremental argmax: only this location's count changed, so the
	// majority moves only if loc now beats the tracked best (or is the
	// best, whose count just grew).
	if n := votes[loc]; loc == s.byBld[bld] || n > s.bldBestN[bld] {
		s.byBld[bld] = loc
		s.bldBestN[bld] = n
	}
}

// Query answers a delivery-location request with the paper's fallback chain:
// the address-level result, else the building-level majority, else the
// geocoded location. The paper notes the building fallback also serves
// addresses never seen in history, as long as the segmentation tool resolves
// their building.
func (s *Store) Query(addr model.AddressID) (geo.Point, Source) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if loc, ok := s.byAddress[addr]; ok {
		return loc, SourceAddress
	}
	if bld, ok := s.buildings[addr]; ok {
		if loc, ok := s.byBld[bld]; ok {
			return loc, SourceBuilding
		}
	}
	if loc, ok := s.geocodes[addr]; ok {
		return loc, SourceGeocode
	}
	return geo.Point{}, SourceNone
}

// QueryBuilding answers at building granularity (used for never-seen
// addresses whose building is known).
func (s *Store) QueryBuilding(bld model.BuildingID) (geo.Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byBld[bld]
	return loc, ok
}

// Len returns the number of address-level entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byAddress)
}

// LoadDataset registers every address of a dataset (buildings + geocodes).
func (s *Store) LoadDataset(ds *model.Dataset) {
	for _, a := range ds.Addresses {
		s.RegisterAddress(a.ID, a.Building, a.Geocode)
	}
}
