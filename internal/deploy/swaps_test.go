// Tests for GET /v1/debug/swaps: the optional SwapReporter surface, the
// limit/parameter validation, and the always-mounted empty answer for
// engines without a churn ring.
package deploy_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
)

// reportingStub is a stubEngine that also keeps swap reports.
type reportingStub struct {
	*stubEngine
	reps []api.SwapReport
}

func (r *reportingStub) SwapReports(limit int) []api.SwapReport {
	out := append([]api.SwapReport(nil), r.reps...)
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

func swapStub() *reportingStub {
	return &reportingStub{
		stubEngine: readyStub(),
		reps: []api.SwapReport{
			{
				Seq: 2, Shard: "global", Time: time.Unix(2000, 0).UTC(), Kind: "reinfer",
				Before: 10, After: 12, Added: 2, Moved: 3, Retained: 7,
				ChurnRatio: 0.3, MeanMovedMeters: 41.5, MaxMovedMeters: 120,
				MovedDistance: []api.SwapDistanceBucket{{LEMeters: 50, Count: 2}, {LEMeters: 250, Count: 1}},
				LowConfidence: 1,
			},
			{Seq: 1, Shard: "global", Time: time.Unix(1000, 0).UTC(), Kind: "restore", After: 10, Added: 10},
		},
	}
}

func getSwaps(t *testing.T, srv *httptest.Server, query string) (*http.Response, api.SwapsResponse) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/debug/swaps" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.SwapsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestDebugSwapsEndpoint(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(swapStub()))
	defer srv.Close()

	resp, out := getSwaps(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/swaps = %d", resp.StatusCode)
	}
	if out.Count != 2 || len(out.Swaps) != 2 {
		t.Fatalf("count=%d swaps=%d, want 2/2", out.Count, len(out.Swaps))
	}
	first := out.Swaps[0]
	if first.Seq != 2 || first.Kind != "reinfer" || first.Moved != 3 || first.ChurnRatio != 0.3 {
		t.Errorf("first report round-tripped wrong: %+v", first)
	}
	if len(first.MovedDistance) != 2 || first.MovedDistance[0].LEMeters != 50 {
		t.Errorf("distance buckets round-tripped wrong: %+v", first.MovedDistance)
	}

	if _, out := getSwaps(t, srv, "?limit=1"); out.Count != 1 || out.Swaps[0].Seq != 2 {
		t.Errorf("limit=1 answered %+v, want just the newest", out)
	}
}

func TestDebugSwapsValidation(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(swapStub()))
	defer srv.Close()

	for _, query := range []string{"?limit=0", "?limit=-1", "?limit=nope", "?limit=99999", "?shard=3"} {
		resp, _ := getSwaps(t, srv, query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/debug/swaps%s = %d, want 400", query, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/debug/swaps", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/debug/swaps = %d, want 405", resp.StatusCode)
	}
}

// TestDebugSwapsWithoutReporter pins the always-mounted contract: an engine
// without a churn ring answers an empty list, not a 404.
func TestDebugSwapsWithoutReporter(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	resp, out := getSwaps(t, srv, "")
	if resp.StatusCode != http.StatusOK || out.Count != 0 || out.Swaps == nil {
		t.Fatalf("no-reporter answer: status %d, %+v (want 200 with empty non-null list)", resp.StatusCode, out)
	}
}
