package deploy

import (
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func TestETAEstimateArithmetic(t *testing.T) {
	e := &ETAEstimator{Speed: 5, Service: 60}
	stops := []geo.Point{{X: 100, Y: 0}, {X: 100, Y: 100}}
	etas := e.Estimate(geo.Point{}, stops, []int{0, 1}, 1000)
	// Stop 0: 100 m at 5 m/s = 20 s -> arrive 1020.
	if etas[0] != 1020 {
		t.Errorf("first ETA %v, want 1020", etas[0])
	}
	// Stop 1: +60 service, +100 m / 5 = 20 -> 1100.
	if etas[1] != 1100 {
		t.Errorf("second ETA %v, want 1100", etas[1])
	}
	// Zero speed falls back rather than dividing by zero.
	z := &ETAEstimator{Speed: 0, Service: 0}
	got := z.Estimate(geo.Point{}, stops, []int{0}, 0)
	if len(got) != 1 || got[0] <= 0 {
		t.Errorf("zero-speed estimate %v", got)
	}
}

func TestETAFitFromDataset(t *testing.T) {
	ds, _, err := synth.GenerateClean(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	e := NewETAEstimator()
	e.FitFromDataset(ds, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig())
	// The Tiny profile walks at ~4 m/s and dwells ~90 s.
	if e.Speed < 2 || e.Speed > 7 {
		t.Errorf("learned speed %v, want ~4", e.Speed)
	}
	if e.Service < 45 || e.Service > 200 {
		t.Errorf("learned service %v, want ~90-120", e.Service)
	}
}

func TestETAEvaluateOnSimulatedTrips(t *testing.T) {
	ds, w, err := synth.GenerateClean(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	e := NewETAEstimator()
	e.FitFromDataset(ds, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig())

	truthOf := func(a model.AddressID) (geo.Point, bool) {
		p, ok := w.Truth[a]
		return p, ok
	}
	var all []float64
	for _, trip := range ds.Trips[:5] {
		all = append(all, e.EvaluateETA(trip, truthOf)...)
	}
	if len(all) == 0 {
		t.Fatal("no ETA errors measured")
	}
	var sum float64
	for _, v := range all {
		sum += v
	}
	mean := sum / float64(len(all))
	// Trips run ~45-90 min; a useful estimator lands within a few minutes on
	// average.
	if mean > 600 {
		t.Errorf("mean ETA error %.0f s, want < 600", mean)
	}
}

func TestETAEvaluateEmptyTrip(t *testing.T) {
	e := NewETAEstimator()
	got := e.EvaluateETA(model.Trip{}, func(model.AddressID) (geo.Point, bool) { return geo.Point{}, false })
	if got != nil {
		t.Errorf("empty trip errors = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("median of empty should be 0")
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v, want 2", m)
	}
}
