package deploy

import (
	"sort"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// ETAEstimator predicts arrival times along a planned delivery route —
// arrival-time estimation is one of the downstream applications the paper's
// introduction motivates with accurate delivery locations. It learns two
// quantities from historical trips: the courier's typical travel speed
// between stops and the typical service (dwell) time per stop.
type ETAEstimator struct {
	// Speed is the learned median travel speed in m/s.
	Speed float64
	// Service is the learned median dwell per stop in seconds.
	Service float64
	// StartOverhead is the learned median time between trip start and
	// departure from the first stay (loading at the station).
	StartOverhead float64
}

// NewETAEstimator returns an estimator with conservative defaults (walking
// courier, 90 s service) for use before fitting.
func NewETAEstimator() *ETAEstimator {
	return &ETAEstimator{Speed: 3, Service: 90}
}

// FitFromDataset learns speed and service time from historical trips: stay
// points give dwell durations; the legs between consecutive stays give
// travel speeds.
func (e *ETAEstimator) FitFromDataset(ds *model.Dataset, nf traj.NoiseFilterConfig, spc traj.StayPointConfig) {
	var speeds, services, overheads []float64
	for _, tr := range ds.Trips {
		sps := traj.ExtractStayPoints(tr.Traj, nf, spc)
		for i, sp := range sps {
			if i == 0 {
				overheads = append(overheads, sp.LeaveT-tr.StartT)
				continue // the first stay is station loading, not service
			}
			services = append(services, sp.Duration())
			prev := sps[i-1]
			dt := sp.ArriveT - prev.LeaveT
			if dt <= 0 {
				continue
			}
			d := geo.Dist(prev.Loc, sp.Loc)
			if v := d / dt; v > 0.3 && v < 15 {
				speeds = append(speeds, v)
			}
		}
	}
	if v := median(speeds); v > 0 {
		e.Speed = v
	}
	if s := median(services); s > 0 {
		e.Service = s
	}
	if o := median(overheads); o > 0 {
		e.StartOverhead = o
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Estimate returns the predicted arrival time at each stop of a route (in
// visit order), starting from start at startTime. The arrival time is when
// the courier reaches the stop, before its service dwell.
func (e *ETAEstimator) Estimate(start geo.Point, stops []geo.Point, order []int, startTime float64) []float64 {
	out := make([]float64, len(order))
	t := startTime + e.StartOverhead
	pos := start
	speed := e.Speed
	if speed <= 0 {
		speed = 3
	}
	for i, idx := range order {
		t += geo.Dist(pos, stops[idx]) / speed
		out[i] = t
		t += e.Service
		pos = stops[idx]
	}
	return out
}

// EvaluateETA measures the estimator against a trip's actual delivery
// times: for each waybill it compares the predicted arrival at the waybill's
// (true) delivery location with the actual delivery time, returning the
// absolute errors in seconds. The route order is taken from the actual visit
// sequence, so the measurement isolates time estimation from routing.
func (e *ETAEstimator) EvaluateETA(trip model.Trip, locOf func(model.AddressID) (geo.Point, bool)) []float64 {
	// Actual visit sequence: waybills ordered by actual delivery time,
	// deduplicated by location.
	type stopInfo struct {
		loc geo.Point
		t   float64
	}
	var seq []stopInfo
	seen := make(map[geo.Point]bool)
	wbs := append([]model.Waybill(nil), trip.Waybills...)
	sort.Slice(wbs, func(i, j int) bool { return wbs[i].ActualDeliveryT < wbs[j].ActualDeliveryT })
	for _, w := range wbs {
		loc, ok := locOf(w.Addr)
		if !ok || seen[loc] {
			continue
		}
		seen[loc] = true
		seq = append(seq, stopInfo{loc: loc, t: w.ActualDeliveryT})
	}
	if len(seq) == 0 {
		return nil
	}
	stops := make([]geo.Point, len(seq))
	order := make([]int, len(seq))
	for i, s := range seq {
		stops[i] = s.loc
		order[i] = i
	}
	var start geo.Point
	if len(trip.Traj) > 0 {
		start = trip.Traj[0].P
	}
	etas := e.Estimate(start, stops, order, trip.StartT)
	errs := make([]float64, len(seq))
	for i := range seq {
		d := etas[i] - seq[i].t
		if d < 0 {
			d = -d
		}
		errs[i] = d
	}
	return errs
}
