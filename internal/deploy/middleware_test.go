// Tests for the Instrument middleware itself: status recording when the
// handler never writes a header, Flush forwarding to streaming downloads,
// the deprecated-alias counter, and the request-id / traceparent contract.
package deploy_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
)

// scrapeCounter returns the value of one sample of family matching the given
// labels in the process-wide registry (0 when absent).
func scrapeCounter(t *testing.T, family string, labels map[string]string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := fams[family]
	if !ok {
		return 0
	}
sample:
	for _, s := range fam.Samples {
		for k, v := range labels {
			if s.Labels[k] != v {
				continue sample
			}
		}
		return s.Value
	}
	return 0
}

// TestStatusRecorderImplicit200 drives a handler that writes the body
// without ever calling WriteHeader; the route counter must record 200, not 0.
func TestStatusRecorderImplicit200(t *testing.T) {
	const route = "/test/implicit-200"
	h := deploy.Instrument(route, nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok")) // implicit 200
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/whatever", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("recorder code %d", rec.Code)
	}
	got := scrapeCounter(t, "dlinfma_http_requests_total",
		map[string]string{"route": route, "method": "GET", "code": "200"})
	if got != 1 {
		t.Fatalf("implicit-200 counted %v times, want 1", got)
	}
	if zero := scrapeCounter(t, "dlinfma_http_requests_total",
		map[string]string{"route": route, "code": "0"}); zero != 0 {
		t.Fatalf("status 0 recorded %v times", zero)
	}
}

// flushRecorder counts Flush calls reaching the underlying writer.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

func TestStatusRecorderFlushForwards(t *testing.T) {
	h := deploy.Instrument("/test/flush", nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Error("instrumented writer lost http.Flusher")
			return
		}
		_, _ = w.Write([]byte("chunk"))
		fl.Flush()
		fl.Flush()
	}))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	if rec.flushes != 2 {
		t.Fatalf("forwarded %d flushes, want 2", rec.flushes)
	}
}

// TestGoneTombstoneCounter checks residual legacy traffic stays observable
// after alias removal: each tombstone hit lands one increment on the
// route's request counter with code 410, so operators can still watch
// stragglers without dedicated deprecated-traffic plumbing.
func TestGoneTombstoneCounter(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()
	labels := map[string]string{"route": "/location", "code": "410"}
	before := scrapeCounter(t, "dlinfma_http_requests_total", labels)
	for i := 0; i < 3; i++ {
		resp, err := c.Get(srv.URL + "/location?addr=1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("tombstone status %d, want 410", resp.StatusCode)
		}
	}
	after := scrapeCounter(t, "dlinfma_http_requests_total", labels)
	if after-before != 3 {
		t.Fatalf("410 counter moved %v, want 3", after-before)
	}
}

// TestRequestIDEcho checks the correlation-id contract: an incoming
// X-Request-ID is echoed verbatim, a missing one is minted, and error
// envelopes carry it too.
func TestRequestIDEcho(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/locations/1", nil)
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Fatalf("incoming request id not echoed: %q", got)
	}

	// No incoming id: one is minted (16 hex chars).
	resp, err = c.Get(srv.URL + "/v1/locations/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("minted request id %q, want 16 hex chars", got)
	}

	// Error envelope responses carry the id as well.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v1/locations/not-a-number", nil)
	req.Header.Set("X-Request-ID", "err-req-7")
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "err-req-7" {
		t.Fatalf("error envelope lost request id: %q", got)
	}
}

// TestTraceparentRoundTrip checks the middleware continues an incoming
// traceparent and echoes the service's own span identity back.
func TestTraceparentRoundTrip(t *testing.T) {
	tracer := trace.NewTracer(trace.Options{SampleProb: 1, Store: trace.NewStore(8)})
	srv := httptest.NewServer(deploy.NewService(readyStub(), deploy.Options{Tracer: tracer}))
	defer srv.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/locations/1", nil)
	req.Header.Set("traceparent", parent)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echo := resp.Header.Get("Traceparent")
	sc, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not continued: %q", echo)
	}
	if !sc.Sampled {
		t.Fatal("sampled flag lost")
	}
	if strings.HasSuffix(echo, "-00f067aa0ba902b7-01") {
		t.Fatal("echo carries the remote span id, want the service's own root span")
	}
	// The trace must land in the store with the continued id. The root span
	// ends after the handler writes the body, so the client can observe the
	// response before the publish — poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for tracer.Store().Get(sc.TraceID) == nil {
		if time.Now().After(deadline) {
			t.Fatal("continued trace not in the store")
		}
		time.Sleep(time.Millisecond)
	}
}
