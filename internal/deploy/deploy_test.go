package deploy

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

func TestStoreFallbackChain(t *testing.T) {
	s := NewStore()
	s.RegisterAddress(1, 10, geo.Point{X: 100, Y: 100})
	s.RegisterAddress(2, 10, geo.Point{X: 110, Y: 100})
	s.RegisterAddress(3, 11, geo.Point{X: 500, Y: 500})

	// Unknown address entirely.
	if _, src := s.Query(99); src != SourceNone {
		t.Errorf("unknown address source = %v", src)
	}
	// Geocode fallback before any inference.
	loc, src := s.Query(1)
	if src != SourceGeocode || loc != (geo.Point{X: 100, Y: 100}) {
		t.Errorf("geocode fallback: %v %v", loc, src)
	}
	// Address-level answer after Put.
	s.Put(1, geo.Point{X: 105, Y: 95})
	loc, src = s.Query(1)
	if src != SourceAddress || loc != (geo.Point{X: 105, Y: 95}) {
		t.Errorf("address answer: %v %v", loc, src)
	}
	// Sibling address in the same building falls back to the building
	// majority.
	loc, src = s.Query(2)
	if src != SourceBuilding || loc != (geo.Point{X: 105, Y: 95}) {
		t.Errorf("building fallback: %v %v", loc, src)
	}
	// Address of another building without inference still geocodes.
	if _, src = s.Query(3); src != SourceGeocode {
		t.Errorf("other building source = %v", src)
	}
}

func TestStoreBuildingMajority(t *testing.T) {
	s := NewStore()
	for i := model.AddressID(1); i <= 3; i++ {
		s.RegisterAddress(i, 7, geo.Point{})
	}
	s.Put(1, geo.Point{X: 1, Y: 1})
	s.Put(2, geo.Point{X: 2, Y: 2})
	s.Put(3, geo.Point{X: 1, Y: 1}) // majority at (1,1)
	loc, ok := s.QueryBuilding(7)
	if !ok || loc != (geo.Point{X: 1, Y: 1}) {
		t.Errorf("building majority = %v %v", loc, ok)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := model.AddressID(g*1000 + i)
				s.RegisterAddress(id, model.BuildingID(g), geo.Point{X: float64(i)})
				s.Put(id, geo.Point{X: float64(i), Y: float64(g)})
				s.Query(id)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", s.Len())
	}
}

func TestPlanRouteBeatsIdentityOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	start := geo.Point{}
	var stops []geo.Point
	for i := 0; i < 25; i++ {
		stops = append(stops, geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	order := PlanRoute(start, stops)
	// Valid permutation.
	seen := make([]bool, len(stops))
	for _, i := range order {
		if seen[i] {
			t.Fatal("stop visited twice")
		}
		seen[i] = true
	}
	identity := make([]int, len(stops))
	for i := range identity {
		identity[i] = i
	}
	planned := RouteLength(start, stops, order)
	naive := RouteLength(start, stops, identity)
	if planned > naive {
		t.Errorf("planned route %.0f longer than naive %.0f", planned, naive)
	}
}

func TestPlanRouteSquare(t *testing.T) {
	// Optimal tour over a unit square from a corner is the perimeter.
	stops := []geo.Point{{X: 0, Y: 100}, {X: 100, Y: 100}, {X: 100, Y: 0}}
	order := PlanRoute(geo.Point{}, stops)
	if got := RouteLength(geo.Point{}, stops, order); math.Abs(got-400) > 1e-9 {
		t.Errorf("square tour length %v, want 400", got)
	}
}

func TestPlanRouteEmpty(t *testing.T) {
	if got := PlanRoute(geo.Point{}, nil); got != nil {
		t.Errorf("empty route = %v", got)
	}
	if got := RouteLength(geo.Point{}, nil, nil); got != 0 {
		t.Errorf("empty length = %v", got)
	}
}

func TestTwoOptFixesCrossing(t *testing.T) {
	// Four points where nearest-neighbor from (0,0) produces a crossing
	// tour; 2-opt must untangle it to the perimeter (length 60+80+60+80 with
	// a 3-4-5-ish rectangle => use a plain rectangle).
	stops := []geo.Point{{X: 0, Y: 50}, {X: 100, Y: 0}, {X: 100, Y: 50}}
	order := PlanRoute(geo.Point{}, stops)
	got := RouteLength(geo.Point{}, stops, order)
	// Best closed tour: (0,0)->(0,50)->(100,50)->(100,0)->(0,0) = 50+100+50+100.
	if math.Abs(got-300) > 1e-6 {
		t.Errorf("tour length %v, want 300", got)
	}
}

func TestAvailabilityModel(t *testing.T) {
	a := NewAvailabilityModel()
	// Deliveries at hour 10 on weekdays (days 0..4).
	for day := 0; day < 5; day++ {
		a.Observe(1, float64(day)*86400+10*3600+30)
	}
	// One weekend delivery at hour 14 (day 5).
	a.Observe(1, 5*86400+14*3600)

	if a.Deliveries(1) != 6 {
		t.Errorf("Deliveries = %v", a.Deliveries(1))
	}
	p10 := a.Probability(1, 10, 0)
	p3 := a.Probability(1, 3, 0)
	if p10 <= p3 {
		t.Errorf("P(hour 10)=%v should exceed P(hour 3)=%v", p10, p3)
	}
	pw := a.Probability(1, 14, 1)
	if pw <= a.Probability(1, 14, 0) {
		t.Errorf("weekend hour-14 should dominate weekday hour-14")
	}
	// Bounds checks.
	if a.Probability(1, -1, 0) != 0 || a.Probability(1, 0, 2) != 0 || a.Probability(99, 10, 0) != 0 {
		t.Error("out-of-range probability should be 0")
	}
}

func TestAvailabilityWindows(t *testing.T) {
	a := NewAvailabilityModel()
	for i := 0; i < 10; i++ {
		a.Observe(1, float64(i%5)*86400+9*3600)  // hour 9 weekdays
		a.Observe(1, float64(i%5)*86400+10*3600) // hour 10 weekdays
	}
	ws := a.Windows(1, 0.2)
	if len(ws) != 1 {
		t.Fatalf("got %d windows: %+v", len(ws), ws)
	}
	w := ws[0]
	if w.Weekend || w.StartHour != 9 || w.EndHour != 11 {
		t.Errorf("window = %+v, want weekday 9-11", w)
	}
	if w.Confidence <= 0 {
		t.Error("confidence should be positive")
	}
}

func TestAvailabilityObserveDatasetRecoversActualHour(t *testing.T) {
	// A delivery happens at hour 9 but is confirmed at hour 12; with the
	// inferred location the model must attribute it to hour 9.
	loc := geo.Point{X: 100, Y: 100}
	var tra traj.Trajectory
	t0 := 9 * 3600.0
	for ts := 0.0; ts < 120; ts += 10 {
		tra = append(tra, traj.GPSPoint{P: loc, T: t0 + ts})
	}
	// Then the courier moves away and idles elsewhere until hour 12.
	far := geo.Point{X: 900, Y: 900}
	for ts := 200.0; ts < 10900; ts += 60 {
		tra = append(tra, traj.GPSPoint{P: far, T: t0 + ts})
	}
	ds := &model.Dataset{
		Name:      "t",
		Addresses: []model.AddressInfo{{ID: 1}},
		Truth:     map[model.AddressID]geo.Point{1: loc},
		Trips: []model.Trip{{
			StartT: t0, EndT: t0 + 11000, Traj: tra,
			Waybills: []model.Waybill{{
				Addr: 1, ReceivedT: t0,
				ActualDeliveryT:   t0 + 115,
				RecordedDeliveryT: 12 * 3600, // confirmed three hours late
			}},
		}},
	}
	withLoc := NewAvailabilityModel()
	withLoc.ObserveDataset(ds, map[model.AddressID]geo.Point{1: loc},
		traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig(), 50)
	if p9 := withLoc.Probability(1, 9, 0); p9 <= withLoc.Probability(1, 12, 0) {
		t.Errorf("with inferred location, hour 9 should win: P9=%v P12=%v",
			p9, withLoc.Probability(1, 12, 0))
	}
	// Without the inferred location the recorded (wrong) hour wins.
	without := NewAvailabilityModel()
	without.ObserveDataset(ds, nil, traj.DefaultNoiseFilter(), traj.DefaultStayPointConfig(), 50)
	if p12 := without.Probability(1, 12, 0); p12 <= without.Probability(1, 9, 0) {
		t.Errorf("without inferred location, recorded hour should win: P12=%v", p12)
	}
}

func TestHTTPQueryAPI(t *testing.T) {
	s := NewStore()
	s.RegisterAddress(7, 1, geo.Point{X: 10, Y: 20})
	s.Put(7, geo.Point{X: 12, Y: 22})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/locations/7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.X != 12 || qr.Y != 22 || qr.Source != "address" {
		t.Errorf("response %+v", qr)
	}

	// Unknown address -> 404; bad key -> 400; wrong method -> 405; the
	// retired pre-/v1 alias -> 410.
	if resp, _ := srv.Client().Get(srv.URL + "/v1/locations/999"); resp.StatusCode != 404 {
		t.Errorf("unknown address status %d", resp.StatusCode)
	}
	if resp, _ := srv.Client().Get(srv.URL + "/v1/locations/abc"); resp.StatusCode != 400 {
		t.Errorf("bad key status %d", resp.StatusCode)
	}
	if resp, _ := srv.Client().Post(srv.URL+"/v1/locations/7", "", nil); resp.StatusCode != 405 {
		t.Errorf("POST status %d", resp.StatusCode)
	}
	if resp, _ := srv.Client().Get(srv.URL + "/location?addr=7"); resp.StatusCode != 410 {
		t.Errorf("legacy alias status %d, want 410", resp.StatusCode)
	}
	if resp, _ := srv.Client().Get(srv.URL + "/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	if resp, _ := srv.Client().Get(srv.URL + "/v1/healthz"); resp.StatusCode != 200 {
		t.Errorf("/v1/healthz status %d", resp.StatusCode)
	}
}

func TestPlanRouteNearOptimalOnSmallInstances(t *testing.T) {
	// Brute-force the optimal closed tour for up to 7 stops and require the
	// heuristic to be within 5% on random instances.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		stops := make([]geo.Point, n)
		for i := range stops {
			stops[i] = geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		}
		start := geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}

		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				if l := RouteLength(start, stops, perm); l < best {
					best = l
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)

		got := RouteLength(start, stops, PlanRoute(start, stops))
		if got > best*1.05+1e-9 {
			t.Errorf("trial %d: heuristic %.1f vs optimal %.1f", trial, got, best)
		}
	}
}

func TestOrOptExtractsStrandedStop(t *testing.T) {
	// A stop stranded between two clusters that plain nearest-neighbor
	// visits at the wrong time; the improvement passes must recover a tour
	// at most as long as visiting it en route.
	stops := []geo.Point{
		{X: 100, Y: 0}, {X: 110, Y: 0}, {X: 120, Y: 0}, // cluster A
		{X: 500, Y: 0}, {X: 510, Y: 0}, // cluster B
		{X: 300, Y: 5}, // between the clusters
	}
	order := PlanRoute(geo.Point{}, stops)
	got := RouteLength(geo.Point{}, stops, order)
	// A-cluster, midpoint, B-cluster, return: roughly 2*510 + small slack.
	if got > 1100 {
		t.Errorf("tour %.0f m, want near 1030", got)
	}
}
