package deploy

import (
	"context"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// BatchAnswer is one per-key outcome of a bulk query: the located point and
// the store level that answered, or SourceNone for an unknown key. It is a
// plain value so batch paths can fill caller-provided slices without
// allocating per key.
type BatchAnswer struct {
	Loc geo.Point
	Src Source
}

// BatchQuerier is the optional bulk read path of an engine. QueryBatch
// answers addrs[i] into out[i] (out is grown from the caller's slice so hot
// paths can recycle it), preserving input order. Implementations may fan out
// across shards in parallel; the only error is ctx's, returned when the
// caller gave up mid-batch. Engines that do not implement it are served by a
// per-key Query loop instead.
type BatchQuerier interface {
	QueryBatch(ctx context.Context, addrs []model.AddressID, out []BatchAnswer) ([]BatchAnswer, error)
}

// QueryBatch resolves a batch against e, using its native bulk path when it
// has one and a sequential per-key loop otherwise. The returned slice reuses
// out's backing array when it fits.
func QueryBatch(ctx context.Context, e Engine, addrs []model.AddressID, out []BatchAnswer) ([]BatchAnswer, error) {
	if bq, ok := e.(BatchQuerier); ok {
		return bq.QueryBatch(ctx, addrs, out)
	}
	out = GrowAnswers(out, len(addrs))
	for i, addr := range addrs {
		out[i].Loc, out[i].Src = e.Query(addr)
	}
	return out, ctx.Err()
}

// GrowAnswers returns out resized to n entries, reallocating only when the
// capacity is short — the helper batch implementations use to recycle their
// result slices.
func GrowAnswers(out []BatchAnswer, n int) []BatchAnswer {
	if cap(out) < n {
		return make([]BatchAnswer, n)
	}
	return out[:n]
}
