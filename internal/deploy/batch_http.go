package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/model"
)

// errUnknownAddress is the shared per-item miss error of a batch response.
// Every miss carries the same code and message (the offending key is already
// the result's Addr field), so one immutable value serves all of them.
var errUnknownAddress = &api.Error{Code: api.CodeNotFound, Message: "unknown address"}

// batchCall carries every buffer and slice one POST /v1/locations:batch
// needs: the request body, the decoded keys, the engine answers, and the
// response encoding. Calls recycle it through batchPool so the steady-state
// batch path reuses its backing arrays instead of reallocating ~2·MaxBatchKeys
// entries per request.
type batchCall struct {
	body    bytes.Buffer
	req     api.BatchLocationsRequest
	ids     []model.AddressID
	answers []BatchAnswer
	results []api.BatchResult
	locs    []api.Location
}

var batchPool = sync.Pool{New: func() any { return new(batchCall) }}

// release zeroes the references the next request must not see and returns
// the call to the pool. Slice capacities are kept — that is the point.
func (c *batchCall) release() {
	c.req.Addrs = c.req.Addrs[:0]
	for i := range c.results {
		c.results[i] = api.BatchResult{}
	}
	batchPool.Put(c)
}

// handleBatch answers POST /v1/locations:batch through the engine's bulk
// read path (BatchQuerier when implemented, a per-key loop otherwise) with
// pooled request/response buffers. The response preserves request order and
// reports per-item misses while the batch stays 200 (partial-failure
// semantics); only a cold engine fails the batch as a whole.
func (s *service) handleBatch(w http.ResponseWriter, r *http.Request) {
	c := batchPool.Get().(*batchCall)
	defer c.release()

	c.body.Reset()
	if _, err := c.body.ReadFrom(io.LimitReader(r.Body, maxBatchBytes)); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			fmt.Sprintf("read batch request: %v", err), nil)
		return
	}
	c.req.Addrs = c.req.Addrs[:0]
	if err := json.Unmarshal(c.body.Bytes(), &c.req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			fmt.Sprintf("decode batch request: %v", err), nil)
		return
	}
	if len(c.req.Addrs) == 0 {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			"addrs must be non-empty", nil)
		return
	}
	if len(c.req.Addrs) > api.MaxBatchKeys {
		writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			"too many address keys", map[string]any{"max": api.MaxBatchKeys, "got": len(c.req.Addrs)})
		return
	}
	if !s.e.Status().Ready {
		// A cold engine fails the whole batch: every key would miss, and 503
		// tells the bulk consumer to retry elsewhere rather than treat the
		// world as absent.
		writeError(w, http.StatusServiceUnavailable, api.CodeEngineNotReady,
			"no serving state deployed yet", nil)
		return
	}

	c.ids = c.ids[:0]
	for _, a := range c.req.Addrs {
		c.ids = append(c.ids, model.AddressID(a))
	}
	var err error
	c.answers, err = QueryBatch(r.Context(), s.e, c.ids, c.answers)
	if err != nil {
		// The only batch error is the caller's own cancellation; there is
		// nobody left to read an envelope, so just drop the connection.
		return
	}

	c.results = c.results[:0]
	if cap(c.locs) < len(c.req.Addrs) {
		c.locs = make([]api.Location, len(c.req.Addrs))
	}
	c.locs = c.locs[:len(c.req.Addrs)]
	resp := api.BatchLocationsResponse{}
	for i, a := range c.req.Addrs {
		res := api.BatchResult{Addr: a}
		if ans := c.answers[i]; ans.Src == SourceNone {
			res.Error = errUnknownAddress
			resp.Missing++
		} else {
			c.locs[i] = api.Location{Addr: a, X: ans.Loc.X, Y: ans.Loc.Y, Source: ans.Src.String()}
			res.Location = &c.locs[i]
			resp.Found++
		}
		c.results = append(c.results, res)
	}
	resp.Results = c.results

	c.body.Reset()
	if err := json.NewEncoder(&c.body).Encode(&resp); err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(c.body.Bytes())
}
