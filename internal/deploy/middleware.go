package deploy

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
)

// routeOther is the metric label of every unmatched path, bounding the
// route label's cardinality to the registered table plus one.
const routeOther = "other"

// HTTP-surface metrics. The route label is always a registered pattern
// (never a raw request path), so cardinality is fixed.
var (
	httpRequests = obs.Default.CounterVec("dlinfma_http_requests_total",
		"HTTP requests by route pattern, method, and status code.",
		"route", "method", "code")
	// Log-linear HDR buckets: the read path answers in single-digit
	// microseconds, where fixed bounds collapse p50 and p99 into one bucket.
	httpDuration = obs.Default.HDRHistogramVec("dlinfma_http_request_duration_seconds",
		"HTTP request latency by route pattern (log-linear HDR buckets).",
		"route")
	httpInFlight = obs.Default.Gauge("dlinfma_http_in_flight_requests",
		"Requests currently being handled.")
)

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards streaming flushes (snapshot downloads) to the underlying
// writer when it supports them.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recorderPool recycles statusRecorders across requests. Handlers in this
// codebase never retain the ResponseWriter past ServeHTTP, so the recorder
// can be reset and reused once the middleware has read its status and size.
var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// requestIDKey carries the per-request correlation id in the context.
type requestIDKey struct{}

// RequestID returns the correlation id Instrument assigned to the request
// carried by ctx ("" outside an instrumented request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Instrument wraps a handler in the request-scoped middleware: correlation
// id (an incoming X-Request-ID is honored, otherwise one is minted) echoed
// on every response, a root trace span per request continuing an incoming
// W3C traceparent (tracer nil: tracing off, everything else unchanged),
// request count and latency by route and status, an in-flight gauge, and a
// per-request access line on log at debug level. Every route of the service
// — and any embedding of deploy handlers elsewhere — goes through it.
//
// Counter children are cached per (method, status) behind a comparable-key
// map so the steady-state path never allocates the label key; the generic
// Vec.With (which joins the values into a string) runs only on the first
// request of each combination.
func Instrument(route string, log *obs.Logger, tracer *trace.Tracer, h http.Handler) http.Handler {
	hist := httpDuration.With(route)
	type methodCode struct {
		method string
		code   int
	}
	var (
		countersMu sync.RWMutex
		counters   = make(map[methodCode]*obs.Counter)
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpInFlight.Inc()
		defer httpInFlight.Dec()

		// Correlation id and root span land in the response headers before
		// the handler runs, so error envelopes and streamed bodies carry
		// them too (headers are immutable after the first write).
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = trace.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)

		var tsp *trace.Span
		if tracer != nil {
			parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
			ctx, tsp = tracer.StartRoot(ctx, route, parent)
			tsp.SetAttr("method", r.Method)
			tsp.SetAttr("path", r.URL.Path)
			tsp.SetAttr("request_id", reqID)
			w.Header().Set("Traceparent", tsp.Traceparent())
		}
		r = r.WithContext(ctx)

		sp := obs.StartSpan(route, hist)
		rec := recorderPool.Get().(*statusRecorder)
		*rec = statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		d := sp.End()
		status, size := rec.status, rec.bytes
		rec.ResponseWriter = nil
		recorderPool.Put(rec)
		tsp.SetAttr("status", status)
		if status >= http.StatusInternalServerError {
			tsp.RecordError(errors.New("http " + strconv.Itoa(status)))
		}
		tsp.End()
		mc := methodCode{r.Method, status}
		countersMu.RLock()
		c := counters[mc]
		countersMu.RUnlock()
		if c == nil {
			c = httpRequests.With(route, r.Method, strconv.Itoa(status))
			countersMu.Lock()
			counters[mc] = c
			countersMu.Unlock()
		}
		c.Inc()
		if log.Enabled(obs.LevelDebug) {
			log.WithTrace(ctx).Debug("http",
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", status,
				"bytes", size,
				"dur", d,
				"request_id", reqID,
			)
		}
	})
}

// gone serves a retired pre-/v1 route's tombstone: 410 with the uniform
// error envelope (code "gone") and a successor-version Link, so a stale
// client sees both the machine-readable code and where the endpoint moved.
// The routes went through a deprecation-header release cycle first; keeping
// the tombstone (rather than letting the path fall through to 404) preserves
// the distinction between "never existed" and "removed, use the successor".
func gone(successor string) http.HandlerFunc {
	// The header value never varies per request, so share one backing slice
	// across responses (net/http only reads header value slices).
	link := []string{"<" + successor + `>; rel="successor-version"`}
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header()["Link"] = link
		writeError(w, http.StatusGone, api.CodeGone,
			"this pre-/v1 endpoint has been removed; use its /v1 successor",
			map[string]any{"successor": successor})
	}
}

// metricsExposition serves the process-wide obs registry in Prometheus text
// format — the GET /v1/metrics handler, also mounted on the debug listener.
func metricsExposition(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}
