package deploy

import (
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// AvailabilityModel infers when a customer is available to receive parcels
// (Application 2, Section VI-C): successful deliveries are bucketed by hour
// of day and weekday/weekend, with the actual delivery time recovered from
// the stay point nearest the inferred delivery location — so batch-confirmed
// waybills contribute their true hour rather than the recorded one.
type AvailabilityModel struct {
	// counts[addr][weekend 0/1][hour]
	counts map[model.AddressID]*[2][24]float64
	totals map[model.AddressID]float64
}

// NewAvailabilityModel returns an empty model.
func NewAvailabilityModel() *AvailabilityModel {
	return &AvailabilityModel{
		counts: make(map[model.AddressID]*[2][24]float64),
		totals: make(map[model.AddressID]float64),
	}
}

// hourAndDay converts a dataset timestamp (seconds from the epoch day 0) to
// its hour-of-day and weekend flag (day 0 is a Monday).
func hourAndDay(t float64) (hour, weekend int) {
	day := int(t/86400) % 7
	hour = int(t/3600) % 24
	if day >= 5 {
		weekend = 1
	}
	return hour, weekend
}

// ObserveDataset trains the model from a dataset and the inferred delivery
// locations: for each waybill, the actual delivery time is the departure of
// the stay point nearest the address's inferred location in that trip's
// trajectory, falling back to the recorded time when no stay matches within
// maxDist meters.
func (a *AvailabilityModel) ObserveDataset(ds *model.Dataset, inferred map[model.AddressID]geo.Point, nf traj.NoiseFilterConfig, spc traj.StayPointConfig, maxDist float64) {
	if maxDist <= 0 {
		maxDist = 50
	}
	for _, tr := range ds.Trips {
		sps := traj.ExtractStayPoints(tr.Traj, nf, spc)
		for _, w := range tr.Waybills {
			loc, ok := inferred[w.Addr]
			t := w.RecordedDeliveryT
			if ok {
				bestD := maxDist
				for _, sp := range sps {
					// Only stays no later than the confirmation qualify.
					if sp.MidT() > w.RecordedDeliveryT {
						continue
					}
					if d := geo.Dist(sp.Loc, loc); d < bestD {
						bestD = d
						t = sp.LeaveT
					}
				}
			}
			a.Observe(w.Addr, t)
		}
	}
}

// Observe records one successful delivery at time t.
func (a *AvailabilityModel) Observe(addr model.AddressID, t float64) {
	c := a.counts[addr]
	if c == nil {
		c = &[2][24]float64{}
		a.counts[addr] = c
	}
	hour, we := hourAndDay(t)
	c[we][hour]++
	a.totals[addr]++
}

// Probability returns the Laplace-smoothed probability that a delivery to
// addr at the given hour (and weekend flag) succeeds, relative to the
// address's observed delivery-time distribution.
func (a *AvailabilityModel) Probability(addr model.AddressID, hour, weekend int) float64 {
	c := a.counts[addr]
	if c == nil || hour < 0 || hour > 23 || weekend < 0 || weekend > 1 {
		return 0
	}
	const alpha = 0.5
	return (c[weekend][hour] + alpha) / (a.totals[addr] + alpha*48)
}

// Window is a contiguous availability window within a day.
type Window struct {
	Weekend    bool
	StartHour  int
	EndHour    int     // exclusive
	Confidence float64 // mean probability over the window
}

// Windows returns the hours whose probability is above threshold, merged
// into contiguous windows (Figure 15(b)).
func (a *AvailabilityModel) Windows(addr model.AddressID, threshold float64) []Window {
	var out []Window
	for we := 0; we <= 1; we++ {
		var cur *Window
		for h := 0; h < 24; h++ {
			p := a.Probability(addr, h, we)
			if p >= threshold {
				if cur == nil {
					out = append(out, Window{Weekend: we == 1, StartHour: h, EndHour: h + 1, Confidence: p})
					cur = &out[len(out)-1]
				} else {
					cur.Confidence = (cur.Confidence*float64(cur.EndHour-cur.StartHour) + p) / float64(cur.EndHour-cur.StartHour+1)
					cur.EndHour = h + 1
				}
			} else {
				cur = nil
			}
		}
	}
	return out
}

// Deliveries returns how many deliveries the model has seen for addr.
func (a *AvailabilityModel) Deliveries(addr model.AddressID) float64 { return a.totals[addr] }
