package deploy

import (
	"net/http"
	"slices"
	"sort"
	"strconv"
	"time"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/obs/trace"
)

// maxTraceList bounds a list response when the client sends no limit.
const maxTraceList = 100

// maxTraceListLimit is the hard ceiling on an explicit ?limit=: the ring
// buffer behind the store is itself bounded, so anything larger is a typo.
const maxTraceListLimit = 10000

// traceListParams is the full query-parameter vocabulary of
// GET /v1/debug/traces. Anything else is rejected with invalid_argument
// rather than silently ignored — a typo like ?min_duration= must not turn a
// filtered query into an unfiltered one.
var traceListParams = []string{"limit", "min_dur", "error"}

// traceListHandler serves GET /v1/debug/traces: recent kept traces, newest
// first, filtered by ?min_dur= (Go duration), ?error=true, and ?limit=. A
// nil tracer or store answers an empty list — the endpoint is always
// mounted so operators can probe whether tracing is on.
func traceListHandler(t *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f := trace.Filter{Limit: maxTraceList}
		q := r.URL.Query()
		for name := range q {
			if !slices.Contains(traceListParams, name) {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"unknown query parameter", map[string]any{"param": name, "allowed": traceListParams})
				return
			}
		}
		if v := q.Get("min_dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"min_dur must be a Go duration (e.g. 250ms)", map[string]any{"min_dur": v})
				return
			}
			f.MinDuration = d
		}
		if v := q.Get("error"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"error must be a boolean", map[string]any{"error": v})
				return
			}
			f.ErrorOnly = b
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 || n > maxTraceListLimit {
				writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
					"limit must be a positive integer", map[string]any{"limit": v, "max": maxTraceListLimit})
				return
			}
			f.Limit = n
		}
		resp := api.TraceListResponse{Traces: []api.TraceSummary{}}
		for _, tr := range t.Store().List(f) {
			resp.Traces = append(resp.Traces, api.TraceSummary{
				TraceID:    tr.ID.String(),
				Root:       tr.Root,
				Start:      tr.Start,
				DurationMS: durMS(tr.Duration),
				Spans:      len(tr.Spans),
				Dropped:    tr.Dropped,
				Error:      tr.Error,
			})
		}
		resp.Count = len(resp.Traces)
		writeJSON(w, http.StatusOK, resp)
	}
}

// traceGetHandler serves GET /v1/debug/traces/{id}: the span tree of one
// buffered trace.
func traceGetHandler(t *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw := r.PathValue("id")
		id, err := trace.ParseTraceID(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				"trace id must be 32 hex characters", map[string]any{"id": raw})
			return
		}
		tr := t.Store().Get(id)
		if tr == nil {
			writeError(w, http.StatusNotFound, api.CodeNotFound,
				"trace not buffered (expired, unsampled, or never existed)", map[string]any{"id": raw})
			return
		}
		writeJSON(w, http.StatusOK, traceResponse(tr))
	}
}

// traceResponse assembles the flat span records into the wire-format tree:
// one pass building a node per span, one pass linking children (a span whose
// parent record was dropped becomes an extra root), children sorted by start
// time so the tree reads in execution order.
func traceResponse(tr *trace.Trace) api.TraceResponse {
	nodes := make(map[string]*api.TraceSpan, len(tr.Spans))
	for _, sd := range tr.Spans {
		n := &api.TraceSpan{
			SpanID:     sd.SpanID,
			ParentID:   sd.ParentID,
			Name:       sd.Name,
			Start:      sd.Start,
			DurationMS: durMS(sd.Duration),
			Error:      sd.Error,
		}
		if len(sd.Attrs) > 0 {
			n.Attrs = make(map[string]any, len(sd.Attrs))
			for _, a := range sd.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		for _, ev := range sd.Events {
			n.Events = append(n.Events, api.TraceEvent{Time: ev.Time, Msg: ev.Msg})
		}
		nodes[sd.SpanID] = n
	}
	resp := api.TraceResponse{
		TraceID:      tr.ID.String(),
		DurationMS:   durMS(tr.Duration),
		Error:        tr.Error,
		DroppedSpans: tr.Dropped,
	}
	for _, sd := range tr.Spans {
		n := nodes[sd.SpanID]
		if p, ok := nodes[sd.ParentID]; ok && sd.ParentID != "" {
			p.Children = append(p.Children, n)
		} else {
			resp.Spans = append(resp.Spans, n)
		}
	}
	var sortTree func(ns []*api.TraceSpan)
	sortTree = func(ns []*api.TraceSpan) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortTree(n.Children)
		}
	}
	sortTree(resp.Spans)
	return resp
}

// durMS renders a duration as fractional milliseconds for the wire.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
