package deploy

import (
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// FrozenAnswer is one precomputed query answer: the delivery location, the
// fallback level that produced it, and — for address-level answers — the
// model's top-1 probability behind the inference. Conf is 0 when unknown
// (fallback answers, legacy snapshots).
type FrozenAnswer struct {
	Loc  geo.Point
	Src  Source
	Conf float32
}

// FrozenStore is the read-only serving form of a Store: the full
// address -> building -> geocode fallback chain of Figure 14 is evaluated
// once at freeze time, so a steady-state query is a single map lookup with
// no locks and no allocations. A FrozenStore is immutable after Freeze;
// writers keep mutating the Store they froze and publish a fresh FrozenStore
// at the next hot-swap (see engine's atomic.Pointer publish).
type FrozenStore struct {
	answers map[model.AddressID]FrozenAnswer
	byBld   map[model.BuildingID]geo.Point
}

// Freeze evaluates the fallback chain for every address the store knows
// about — whether it has an inferred location, only a registered building,
// or only a geocode — into an immutable FrozenStore. The store stays usable
// and mutable; later writes are invisible to the frozen copy.
func (s *Store) Freeze() *FrozenStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f := &FrozenStore{
		answers: make(map[model.AddressID]FrozenAnswer, len(s.buildings)+len(s.byAddress)),
		byBld:   make(map[model.BuildingID]geo.Point, len(s.byBld)),
	}
	for bld, loc := range s.byBld {
		f.byBld[bld] = loc
	}
	freeze := func(addr model.AddressID) {
		if _, done := f.answers[addr]; done {
			return
		}
		if loc, ok := s.byAddress[addr]; ok {
			f.answers[addr] = FrozenAnswer{Loc: loc, Src: SourceAddress, Conf: s.conf[addr]}
			return
		}
		if bld, ok := s.buildings[addr]; ok {
			if loc, ok := s.byBld[bld]; ok {
				f.answers[addr] = FrozenAnswer{Loc: loc, Src: SourceBuilding}
				return
			}
		}
		if loc, ok := s.geocodes[addr]; ok {
			f.answers[addr] = FrozenAnswer{Loc: loc, Src: SourceGeocode}
		}
	}
	for addr := range s.byAddress {
		freeze(addr)
	}
	for addr := range s.buildings {
		freeze(addr)
	}
	for addr := range s.geocodes {
		freeze(addr)
	}
	return f
}

// Query answers a delivery-location request from the precomputed chain. It
// is nil-safe (a nil FrozenStore answers SourceNone) so cold serving paths
// need no extra branch, and it never allocates.
func (f *FrozenStore) Query(addr model.AddressID) (geo.Point, Source) {
	if f == nil {
		return geo.Point{}, SourceNone
	}
	a, ok := f.answers[addr]
	if !ok {
		return geo.Point{}, SourceNone
	}
	return a.Loc, a.Src
}

// Lookup returns the full precomputed answer (location, source, confidence)
// for an address. Nil-safe and allocation-free, like Query — the serving
// path uses it when it also needs the confidence stamp.
func (f *FrozenStore) Lookup(addr model.AddressID) (FrozenAnswer, bool) {
	if f == nil {
		return FrozenAnswer{Src: SourceNone}, false
	}
	a, ok := f.answers[addr]
	if !ok {
		return FrozenAnswer{Src: SourceNone}, false
	}
	return a, true
}

// QueryBuilding answers at building granularity from the frozen majority.
func (f *FrozenStore) QueryBuilding(bld model.BuildingID) (geo.Point, bool) {
	if f == nil {
		return geo.Point{}, false
	}
	loc, ok := f.byBld[bld]
	return loc, ok
}

// Len returns the number of answerable addresses (any fallback level).
func (f *FrozenStore) Len() int {
	if f == nil {
		return 0
	}
	return len(f.answers)
}
