package deploy

import (
	"net/http"
	"net/http/pprof"

	"dlinfma/internal/obs/trace"
)

// DebugHandler returns the opt-in debug surface meant for a separate,
// non-public listener (dlinfma serve -debug-listen): the net/http/pprof
// profile endpoints plus the metrics exposition. It is intentionally not
// mounted on the serving mux — profiles can stall a worker for the whole
// profiling window and must never be reachable from the query path.
//
//	GET /debug/pprof/           index of available profiles
//	GET /debug/pprof/profile    CPU profile (?seconds=N, default 30)
//	GET /debug/pprof/heap       and the other runtime profiles via the index
//	GET /debug/pprof/trace      execution trace (?seconds=N)
//	GET /metrics                Prometheus text exposition (same as /v1/metrics)
//	GET /debug/traces           recent request traces (same as /v1/debug/traces)
//	GET /debug/traces/{id}      one trace's span tree
//	GET /debug/swaps            recent hot-swap churn reports (same as /v1/debug/swaps)
//
// tr backs the trace endpoints; nil (tracing off) makes them answer empty /
// not found rather than 404 on the route, so probing the listener still
// works. sw backs /debug/swaps the same way: nil answers an empty list.
func DebugHandler(tr *trace.Tracer, sw SwapReporter) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", metricsExposition)
	mux.HandleFunc("/debug/traces", traceListHandler(tr))
	mux.HandleFunc("/debug/traces/{id}", traceGetHandler(tr))
	mux.HandleFunc("/debug/swaps", swapListHandler(sw))
	return mux
}
