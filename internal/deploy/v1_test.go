// Tests for the versioned /v1 surface against a stub engine: route shapes,
// the uniform error envelope, legacy-alias equivalence, the health matrix,
// and the metrics exposition. The real-engine lifecycle is covered by
// service_test.go; the stub makes the HTTP contract testable without
// training anything.
package deploy_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
)

// stubEngine implements deploy.Engine with directly settable state.
type stubEngine struct {
	store    *deploy.Store
	status   deploy.EngineStatus
	job      *deploy.JobStatus
	ingested [][]model.Trip
}

func (s *stubEngine) Query(addr model.AddressID) (geo.Point, deploy.Source) {
	if s.store == nil {
		return geo.Point{}, deploy.SourceNone
	}
	return s.store.Query(addr)
}

func (s *stubEngine) Ingest(_ context.Context, trips []model.Trip, _ []model.AddressInfo, _ map[model.AddressID]geo.Point) error {
	s.ingested = append(s.ingested, trips)
	return nil
}

func (s *stubEngine) StartReinfer() (deploy.JobStatus, error) {
	if s.job != nil && s.job.State == deploy.JobRunning {
		return *s.job, deploy.ErrReinferRunning
	}
	s.job = &deploy.JobStatus{ID: 1, State: deploy.JobRunning}
	return *s.job, nil
}

func (s *stubEngine) ReinferStatus() (deploy.JobStatus, bool) {
	if s.job == nil {
		return deploy.JobStatus{}, false
	}
	return *s.job, true
}

func (s *stubEngine) Status() deploy.EngineStatus { return s.status }

func (s *stubEngine) WriteSnapshot(w io.Writer) error {
	_, err := io.WriteString(w, `{"version":1,"locations":{}}`)
	return err
}

// readyStub returns a stub serving addresses 1 and 2.
func readyStub() *stubEngine {
	st := deploy.NewStore()
	st.Put(1, geo.Point{X: 10, Y: 20})
	st.Put(2, geo.Point{X: 30, Y: 40})
	return &stubEngine{store: st, status: deploy.EngineStatus{Ready: true, Inferred: 2}}
}

func TestV1LocationAndBatch(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	var loc api.Location
	getJSON(t, c, srv.URL+"/v1/locations/1", http.StatusOK, &loc)
	if loc.Addr != 1 || loc.X != 10 || loc.Y != 20 || loc.Source != "address" {
		t.Fatalf("v1 location %+v", loc)
	}

	// Batch with a partial failure: two hits, one miss, still 200.
	resp := postJSON(t, c, srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: []int64{1, 404, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br api.BatchLocationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if br.Found != 2 || br.Missing != 1 || len(br.Results) != 3 {
		t.Fatalf("batch counts %+v", br)
	}
	if br.Results[0].Location == nil || br.Results[0].Location.X != 10 {
		t.Fatalf("batch result 0 %+v", br.Results[0])
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Code != api.CodeNotFound {
		t.Fatalf("batch result 1 %+v", br.Results[1])
	}
	if br.Results[2].Location == nil || br.Results[2].Location.Addr != 2 {
		t.Fatalf("batch result 2 %+v", br.Results[2])
	}

	// Validation errors: empty and oversized key lists.
	resp = postJSON(t, c, srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	resp.Body.Close()
	big := make([]int64, api.MaxBatchKeys+1)
	resp = postJSON(t, c, srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: big})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// batchStub is a stubEngine with a native bulk path, recording that the
// handler routed the batch through QueryBatch rather than the per-key loop.
type batchStub struct {
	*stubEngine
	batchCalls int
}

func (s *batchStub) QueryBatch(ctx context.Context, addrs []model.AddressID, out []deploy.BatchAnswer) ([]deploy.BatchAnswer, error) {
	s.batchCalls++
	out = deploy.GrowAnswers(out, len(addrs))
	for i, addr := range addrs {
		out[i].Loc, out[i].Src = s.Query(addr)
	}
	return out, ctx.Err()
}

// TestV1BatchInputOrder hammers the batch endpoint with shuffled key mixes
// of shrinking sizes against one server, so the pooled request/response
// buffers are recycled across calls: any stale entry from a previous
// (larger) batch would surface as a wrong Addr, count, or result.
func TestV1BatchInputOrder(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	for round, size := range []int{64, 31, 7, 64, 2} {
		addrs := make([]int64, size)
		wantFound := 0
		for i := range addrs {
			switch i % 3 {
			case 0:
				addrs[i] = 1
				wantFound++
			case 1:
				addrs[i] = int64(1000 + i) // unknown
			default:
				addrs[i] = 2
				wantFound++
			}
		}
		resp := postJSON(t, c, srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: addrs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d status %d", round, resp.StatusCode)
		}
		var br api.BatchLocationsResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(br.Results) != size || br.Found != wantFound || br.Missing != size-wantFound {
			t.Fatalf("round %d: %d results, found %d missing %d (want %d/%d/%d)",
				round, len(br.Results), br.Found, br.Missing, size, wantFound, size-wantFound)
		}
		for i, res := range br.Results {
			if res.Addr != addrs[i] {
				t.Fatalf("round %d result %d answers addr %d, want %d (input order broken)",
					round, i, res.Addr, addrs[i])
			}
			if addrs[i] >= 1000 {
				if res.Error == nil || res.Error.Code != api.CodeNotFound || res.Location != nil {
					t.Fatalf("round %d result %d (unknown key) = %+v", round, i, res)
				}
			} else if res.Location == nil || res.Location.Addr != addrs[i] || res.Error != nil {
				t.Fatalf("round %d result %d (known key) = %+v", round, i, res)
			}
		}
	}
}

// TestV1BatchUsesNativeBulkPath pins that an engine implementing
// deploy.BatchQuerier serves the endpoint through it, with an identical wire
// contract to the per-key fallback.
func TestV1BatchUsesNativeBulkPath(t *testing.T) {
	stub := &batchStub{stubEngine: readyStub()}
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()

	resp := postJSON(t, srv.Client(), srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: []int64{2, 404, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br api.BatchLocationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stub.batchCalls != 1 {
		t.Fatalf("QueryBatch called %d times, want 1", stub.batchCalls)
	}
	if br.Found != 2 || br.Missing != 1 ||
		br.Results[0].Location == nil || br.Results[0].Location.X != 30 ||
		br.Results[1].Error == nil || br.Results[2].Location == nil {
		t.Fatalf("bulk-path contract drift: %+v", br)
	}
}

func TestV1BatchColdEngine(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(&stubEngine{}))
	defer srv.Close()
	resp := postJSON(t, srv.Client(), srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: []int64{1}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold batch status %d, want 503", resp.StatusCode)
	}
	var eb api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil || eb.Error.Code != api.CodeEngineNotReady {
		t.Fatalf("cold batch envelope %v %+v", err, eb)
	}
}

func TestV1IngestAndReinfer(t *testing.T) {
	stub := readyStub()
	srv := httptest.NewServer(deploy.Service(stub))
	defer srv.Close()
	c := srv.Client()

	resp := postJSON(t, c, srv.URL+"/v1/ingest", api.IngestRequest{Trips: []model.Trip{{Courier: 7}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if len(stub.ingested) != 1 || len(stub.ingested[0]) != 1 {
		t.Fatalf("ingest recorded %+v", stub.ingested)
	}

	resp = postJSON(t, c, srv.URL+"/v1/reinfer", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v1 reinfer status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Duplicate start conflicts with the running job in the details.
	resp = postJSON(t, c, srv.URL+"/v1/reinfer", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate v1 reinfer status %d", resp.StatusCode)
	}
	var eb api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil || eb.Error.Code != api.CodeReinferInFlight {
		t.Fatalf("conflict envelope %v %+v", err, eb)
	}
	resp.Body.Close()

	var job deploy.JobStatus
	getJSON(t, c, srv.URL+"/v1/reinfer", http.StatusOK, &job)
	if job.ID != 1 || job.State != deploy.JobRunning {
		t.Fatalf("v1 reinfer poll %+v", job)
	}

	r2, err := c.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("v1 snapshot status %d", r2.StatusCode)
	}
	body, _ := io.ReadAll(r2.Body)
	if !bytes.Contains(body, []byte(`"version":1`)) {
		t.Fatalf("v1 snapshot body %q", body)
	}
}

// TestLegacyGoneContract pins the tombstones of the retired pre-/v1 routes:
// every legacy path answers 410 with the uniform envelope (code "gone"), the
// /v1 successor in the details, and a successor-version Link header — for
// any method, since the whole route is gone, not one verb of it.
func TestLegacyGoneContract(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	cases := []struct {
		method, path, successor string
	}{
		{http.MethodGet, "/location?addr=1", "/v1/locations/{key}"},
		{http.MethodPost, "/ingest", "/v1/ingest"},
		{http.MethodPost, "/reinfer", "/v1/reinfer"},
		{http.MethodGet, "/reinfer", "/v1/reinfer"},
		{http.MethodGet, "/snapshot", "/v1/snapshot"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("%s %s: status %d, want 410", tc.method, tc.path, resp.StatusCode)
		}
		var eb api.ErrorEnvelope
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
			t.Fatalf("%s %s: body %q is not an envelope", tc.method, tc.path, body)
		}
		if eb.Error.Code != api.CodeGone {
			t.Fatalf("%s %s: code %q, want %q", tc.method, tc.path, eb.Error.Code, api.CodeGone)
		}
		if got := eb.Error.Details["successor"]; got != tc.successor {
			t.Fatalf("%s %s: successor detail %v, want %q", tc.method, tc.path, got, tc.successor)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, tc.successor) ||
			!strings.Contains(link, `rel="successor-version"`) {
			t.Fatalf("%s %s: Link header %q", tc.method, tc.path, link)
		}
	}

	// The v1 successors stay clean: no tombstone headers, still serving.
	resp, err := c.Get(srv.URL + "/v1/locations/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/locations/1 status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("v1 route must not be marked deprecated")
	}
}

// TestHealthzAliasEquivalence proves /healthz is a thin probe alias of the
// typed GET /v1/healthz: identical status and body.
func TestHealthzAliasEquivalence(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := c.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	v1Code, v1Body := get("/v1/healthz")
	bareCode, bareBody := get("/healthz")
	if v1Code != http.StatusOK || v1Code != bareCode || v1Body != bareBody {
		t.Fatalf("healthz alias drift: v1 %d %q vs bare %d %q", v1Code, v1Body, bareCode, bareBody)
	}
	var st api.EngineStatus
	if err := json.Unmarshal([]byte(v1Body), &st); err != nil {
		t.Fatalf("/v1/healthz body does not decode as EngineStatus: %v", err)
	}
	if !st.Ready || st.Inferred != 2 {
		t.Fatalf("typed healthz %+v", st)
	}
}

// TestErrorEnvelopeGoldens pins the exact wire bytes of representative error
// responses; encoding/json sorts map keys, so the envelope is deterministic.
func TestErrorEnvelopeGoldens(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	cases := []struct {
		name, method, path, want string
	}{
		{
			name: "bad key", method: http.MethodGet, path: "/v1/locations/abc",
			want: `{"error":{"code":"invalid_argument","message":"address key must be a decimal integer","details":{"key":"abc"}}}`,
		},
		{
			name: "not found", method: http.MethodGet, path: "/v1/locations/424242",
			want: `{"error":{"code":"not_found","message":"unknown address","details":{"addr":424242}}}`,
		},
		{
			name: "method not allowed", method: http.MethodDelete, path: "/v1/snapshot",
			want: `{"error":{"code":"method_not_allowed","message":"method DELETE not allowed","details":{"allowed":["GET"]}}}`,
		},
		{
			name: "unmatched route", method: http.MethodGet, path: "/nope",
			want: `{"error":{"code":"not_found","message":"no such route","details":{"path":"/nope"}}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := c.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if got := strings.TrimSpace(string(body)); got != tc.want {
				t.Errorf("%s %s:\n got  %s\n want %s", tc.method, tc.path, got, tc.want)
			}
		})
	}
}

// TestHealthzMatrix covers the readiness x failure matrix directly on the
// status the engine reports.
func TestHealthzMatrix(t *testing.T) {
	cases := []struct {
		name   string
		status deploy.EngineStatus
		want   int
	}{
		{"cold", deploy.EngineStatus{}, http.StatusServiceUnavailable},
		{"ready", deploy.EngineStatus{Ready: true}, http.StatusOK},
		{"ready but failed", deploy.EngineStatus{Ready: true, Failed: true, LastError: "shard 1: boom"}, http.StatusServiceUnavailable},
		{"failed before ready", deploy.EngineStatus{Failed: true}, http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(deploy.Service(&stubEngine{status: tc.status}))
			defer srv.Close()
			resp, err := srv.Client().Get(srv.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("healthz %d, want %d", resp.StatusCode, tc.want)
			}
			var st deploy.EngineStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.Failed != tc.status.Failed || st.LastError != tc.status.LastError {
				t.Fatalf("healthz body %+v, want %+v", st, tc.status)
			}
		})
	}
}

// TestV1MetricsExposition scrapes /v1/metrics after driving some traffic and
// checks the output parses as Prometheus text format with the HTTP families
// present and counting.
func TestV1MetricsExposition(t *testing.T) {
	srv := httptest.NewServer(deploy.Service(readyStub()))
	defer srv.Close()
	c := srv.Client()

	// Drive one v1 hit and one tombstone hit so both routes have samples.
	getJSON(t, c, srv.URL+"/v1/locations/1", http.StatusOK, nil)
	if resp, err := c.Get(srv.URL + "/location?addr=1"); err == nil {
		resp.Body.Close()
	}

	resp, err := c.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, want := range []string{
		"dlinfma_http_requests_total",
		"dlinfma_http_request_duration_seconds",
		"dlinfma_http_in_flight_requests",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from /v1/metrics", want)
		}
	}
	var v1Hits, goneHits float64
	for _, s := range fams["dlinfma_http_requests_total"].Samples {
		if s.Labels["route"] == "/v1/locations/{key}" && s.Labels["code"] == "200" {
			v1Hits = s.Value
		}
		if s.Labels["route"] == "/location" && s.Labels["code"] == "410" {
			goneHits = s.Value
		}
	}
	if v1Hits < 1 {
		t.Errorf("no counted 200 for /v1/locations/{key}: %+v", fams["dlinfma_http_requests_total"].Samples)
	}
	if goneHits < 1 {
		t.Error("tombstone 410 for /location not counted")
	}
}

// TestDebugHandler checks the separate debug surface: the pprof index and a
// parsing /metrics.
func TestDebugHandler(t *testing.T) {
	srv := httptest.NewServer(deploy.DebugHandler(nil, nil))
	defer srv.Close()
	c := srv.Client()

	resp, err := c.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	resp, err = c.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := obs.ParseExposition(resp.Body); err != nil {
		t.Fatalf("debug /metrics does not parse: %v", err)
	}
}

// TestStoreHandlerV1 covers the store-only Handler's v1 surface.
func TestStoreHandlerV1(t *testing.T) {
	st := deploy.NewStore()
	st.Put(5, geo.Point{X: 1, Y: 2})
	srv := httptest.NewServer(deploy.Handler(st))
	defer srv.Close()
	c := srv.Client()

	var loc api.Location
	getJSON(t, c, srv.URL+"/v1/locations/5", http.StatusOK, &loc)
	if loc.Addr != 5 || loc.Source != "address" {
		t.Fatalf("store handler location %+v", loc)
	}
	resp := postJSON(t, c, srv.URL+"/v1/locations:batch", api.BatchLocationsRequest{Addrs: []int64{5, 6}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store batch status %d", resp.StatusCode)
	}
	var br api.BatchLocationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Found != 1 || br.Missing != 1 {
		t.Fatalf("store batch counts %+v", br)
	}
	// A bare store is deployed by construction: misses are 404s.
	r2, err := c.Get(srv.URL + "/v1/locations/6")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("store miss status %d, want 404", r2.StatusCode)
	}
}
