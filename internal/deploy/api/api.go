// Package api defines the versioned wire schema of the serving system's
// HTTP surface: the typed request/response structs of every /v1 route and
// the uniform JSON error envelope all handlers emit. The package holds data
// only — handlers live in internal/deploy — so clients, tests, and tools can
// import the schema without pulling in the server.
//
// Versioning policy: routes live under /v1/...; fields are only ever added
// (never renamed or repurposed) within a major version, and a breaking
// change mints /v2 alongside a deprecated /v1. The pre-versioning routes
// (/location, /ingest, /reinfer, /snapshot) went through the full
// deprecation cycle — aliases with a Deprecation header first, then 410 Gone
// tombstones that keep pointing at the /v1 successor via a Link header.
package api

import (
	"time"

	"dlinfma/internal/model"
)

// Stable machine-readable error codes. Clients switch on Code, never on
// Message text.
const (
	// CodeInvalidArgument: malformed path key, query parameter, or body.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: the address (or job) does not exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeGone: the route existed in a pre-/v1 release and has been retired.
	// Maps to 410; details name the /v1 successor, which the Link header
	// also carries as rel="successor-version".
	CodeGone = "gone"
	// CodeEngineNotReady: no serving state deployed yet (cold engine) — load
	// balancers should retry another instance. Maps to 503.
	CodeEngineNotReady = "engine_not_ready"
	// CodeReinferInFlight: a re-inference job is already running. Maps to
	// 409; details carry the running job.
	CodeReinferInFlight = "reinfer_in_flight"
	// CodeBackpressure: the engine's ingest backlog is full (pending trips at
	// the configured bound); producers should back off and retry after the
	// next re-inference drains it. Maps to 429.
	CodeBackpressure = "backpressure"
	// CodeUnimplemented: the route exists but this engine does not support
	// it (e.g. point streaming against an engine without a streaming ingest
	// path). Maps to 501.
	CodeUnimplemented = "unimplemented"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the body of the uniform error envelope. It implements error so
// server code can build one and hand it straight to the response writer.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable and unstable; do not parse it.
	Message string `json:"message"`
	// Details carries optional structured context (offending key, running
	// job, limits).
	Details map[string]any `json:"details,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// ErrorEnvelope is the JSON shape of every non-2xx response:
//
//	{"error":{"code":"not_found","message":"...","details":{...}}}
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Location is one answered delivery location — the unit payload of
// GET /v1/locations/{key} and of batch results.
type Location struct {
	Addr int64 `json:"addr"`
	// X, Y are meters in the dataset's local tangent plane.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Source tells which level of the store answered: address, building, or
	// geocode (the deployed fallback chain).
	Source string `json:"source"`
}

// MaxBatchKeys bounds one POST /v1/locations:batch request.
const MaxBatchKeys = 1024

// BatchLocationsRequest is the POST /v1/locations:batch payload — the bulk
// hot path for consumers resolving many address keys per call.
type BatchLocationsRequest struct {
	Addrs []int64 `json:"addrs"`
}

// BatchResult is one per-key outcome of a batch lookup: exactly one of
// Location or Error is set. Unknown keys surface as per-item not_found
// errors while the batch as a whole stays 200 (partial-failure semantics).
type BatchResult struct {
	Addr     int64     `json:"addr"`
	Location *Location `json:"location,omitempty"`
	Error    *Error    `json:"error,omitempty"`
}

// BatchLocationsResponse answers a batch lookup in request order.
type BatchLocationsResponse struct {
	Results []BatchResult `json:"results"`
	Found   int           `json:"found"`
	Missing int           `json:"missing"`
}

// IngestRequest is the POST /v1/ingest payload: one window of trips with any
// new address metadata. Truth is keyed by stringified address id (JSON
// object keys must be strings), matching the dataset file format.
type IngestRequest struct {
	Trips     []model.Trip          `json:"trips"`
	Addresses []model.AddressInfo   `json:"addresses"`
	Truth     map[string][2]float64 `json:"truth,omitempty"`
}

// StreamPoint is one NDJSON line of POST /v1/trajectories:stream: a single
// GPS fix of one courier's trajectory, or (End true) the explicit end of
// that courier's open trip. X, Y are meters in the dataset's local tangent
// plane; T is seconds. Lines are applied in order; a trip also closes
// implicitly when the gap between a courier's consecutive fixes exceeds the
// engine's trip-gap bound.
type StreamPoint struct {
	Courier int64   `json:"courier"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	T       float64 `json:"t"`
	End     bool    `json:"end,omitempty"`
}

// StreamIngestResponse summarizes one accepted stream session: how many
// point lines and end markers were applied. It is only sent after every
// line succeeded — a mid-stream failure answers the error envelope instead,
// with the number of already-applied lines in the details.
type StreamIngestResponse struct {
	Points int `json:"points"`
	Ends   int `json:"ends"`
}

// Job states of a background re-inference.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus describes one background re-inference job (POST/GET /v1/reinfer).
type JobStatus struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Inferred is the number of addresses the finished job produced.
	Inferred int `json:"inferred,omitempty"`
}

// EngineStatus is the GET /v1/healthz payload (bare /healthz serves the same
// body as a probe alias): a summary of the engine's serving and ingest state.
// Machine consumers — the load swarm, smoke scripts, cluster peers — parse
// this typed form rather than grepping raw JSON.
type EngineStatus struct {
	Dataset string `json:"dataset,omitempty"`
	// Ready is true once a (pool, model, store) triple is being served —
	// after the first completed re-inference or a snapshot restore.
	Ready bool `json:"ready"`
	// Failed is true while the latest re-inference ended in error (sharded:
	// any shard's). A failed instance keeps serving its last good state, but
	// /healthz answers 503 so load balancers stop routing to it.
	Failed bool `json:"failed,omitempty"`
	// LastError is the failing re-inference's message while Failed.
	LastError string `json:"last_error,omitempty"`
	// Addresses counts addresses registered through ingest.
	Addresses int `json:"addresses"`
	// Inferred counts address-level entries in the served store.
	Inferred      int `json:"inferred"`
	PoolLocations int `json:"pool_locations"`
	// PendingTrips counts trips ingested after the serving state was built.
	PendingTrips int `json:"pending_trips"`
	// PendingAgeSeconds is how long the oldest trip of the current pending
	// backlog has been waiting for a re-inference (0 while the backlog is
	// empty). Auto-reinfer triggers and remote shard owners read it here.
	PendingAgeSeconds float64 `json:"pending_age_seconds,omitempty"`
	// Trips counts every trip ingested since the engine started (pending or
	// already folded into the served state). Remote shard backends use it to
	// skip re-inference on empty shards.
	Trips          int  `json:"trips,omitempty"`
	Reinfers       int  `json:"reinfers"`
	ReinferRunning bool `json:"reinfer_running"`
	// OpenStreams counts couriers with an open trajectory stream (points
	// accepted, trip not yet closed by an end marker or the gap rule).
	OpenStreams int `json:"open_streams,omitempty"`
	// Shards lists per-shard summaries when the serving engine is sharded;
	// empty for a single global engine. The top-level counters are then sums
	// over the shards, and Ready is true as soon as any shard serves — one
	// shard's failed retrain degrades its own region only.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one shard's EngineStatus inside a sharded health payload.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Peer is the base URL of the process serving the shard when it lives
	// behind a remote backend or cluster frontend; empty for in-process shards.
	Peer string `json:"peer,omitempty"`
	EngineStatus
}

// TraceSummary is one row of GET /v1/debug/traces: enough to decide which
// trace to fetch in full.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	// DurationMS is the root span's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Spans counts recorded spans; Dropped counts spans past the per-trace cap.
	Spans   int  `json:"spans"`
	Dropped int  `json:"dropped,omitempty"`
	Error   bool `json:"error,omitempty"`
}

// TraceListResponse answers GET /v1/debug/traces, newest first.
type TraceListResponse struct {
	Traces []TraceSummary `json:"traces"`
	Count  int            `json:"count"`
}

// TraceEvent is one timestamped annotation on a span.
type TraceEvent struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// TraceSpan is one node of the span tree in GET /v1/debug/traces/{id}.
type TraceSpan struct {
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []TraceEvent   `json:"events,omitempty"`
	Error      string         `json:"error,omitempty"`
	Children   []*TraceSpan   `json:"children,omitempty"`
}

// TraceResponse answers GET /v1/debug/traces/{id}: the full span tree of one
// completed trace. Spans holds the roots (normally one — the HTTP or job
// root; orphans whose parent was dropped surface as extra roots).
type TraceResponse struct {
	TraceID      string       `json:"trace_id"`
	DurationMS   float64      `json:"duration_ms"`
	Error        bool         `json:"error,omitempty"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []*TraceSpan `json:"spans"`
}

// SwapDistanceBucket is one bucket of a swap report's distance-moved
// histogram: the count of moved addresses whose displacement is at most
// LEMeters (the last bucket's bound is +Inf, rendered as 0 with Inf true).
type SwapDistanceBucket struct {
	LEMeters float64 `json:"le_meters,omitempty"`
	Inf      bool    `json:"inf,omitempty"`
	Count    int64   `json:"count"`
}

// SwapReport is one hot-swap churn report in GET /v1/debug/swaps: the diff
// of the outgoing serving store against the incoming one, computed at
// publish time. Seq numbers swaps per shard, starting at 1.
type SwapReport struct {
	Seq   int64     `json:"seq"`
	Shard string    `json:"shard"`
	Time  time.Time `json:"time"`
	// Kind is "reinfer" for a retrain swap, "restore" for a snapshot load.
	Kind   string `json:"kind"`
	Before int    `json:"before"`
	After  int    `json:"after"`
	// Added/Dropped/Moved/Retained partition the address diff; ChurnRatio is
	// moved/(moved+retained).
	Added           int64                `json:"added"`
	Dropped         int64                `json:"dropped"`
	Moved           int64                `json:"moved"`
	Retained        int64                `json:"retained"`
	ChurnRatio      float64              `json:"churn_ratio"`
	MeanMovedMeters float64              `json:"mean_moved_meters,omitempty"`
	MaxMovedMeters  float64              `json:"max_moved_meters,omitempty"`
	MovedDistance   []SwapDistanceBucket `json:"moved_distance,omitempty"`
	// LowConfidence counts incoming address-level answers below the engine's
	// low-confidence threshold.
	LowConfidence int64 `json:"low_confidence"`
}

// SwapsResponse answers GET /v1/debug/swaps, newest first (across shards,
// interleaved by time in the sharded engine).
type SwapsResponse struct {
	Swaps []SwapReport `json:"swaps"`
	Count int          `json:"count"`
}
