package deploy

import (
	"math"

	"dlinfma/internal/geo"
)

// PlanRoute solves the delivery TSP heuristically (Application 1, Section
// VI-B): nearest-neighbor construction followed by 2-opt and Or-opt
// improvement passes, iterated to a local optimum. It returns the visit
// order over stops (indices into stops) starting from start; the route
// implicitly returns to start.
func PlanRoute(start geo.Point, stops []geo.Point) []int {
	n := len(stops)
	if n == 0 {
		return nil
	}
	// Nearest-neighbor construction.
	order := make([]int, 0, n)
	used := make([]bool, n)
	pos := start
	for len(order) < n {
		best, bestD := -1, math.Inf(1)
		for i, s := range stops {
			if used[i] {
				continue
			}
			if d := geo.SqDist(pos, s); d < bestD {
				best, bestD = i, d
			}
		}
		used[best] = true
		order = append(order, best)
		pos = stops[best]
	}
	// Alternate 2-opt (segment reversal) and Or-opt (segment relocation)
	// until neither improves the closed tour.
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				if twoOptGain(start, stops, order, i, j) > 1e-9 {
					reverse(order[i : j+1])
					improved = true
				}
			}
		}
		if orOptPass(start, stops, order) {
			improved = true
		}
	}
	return order
}

// orOptPass relocates chains of 1-3 consecutive stops to better positions,
// returning whether any move improved the tour. Or-opt reaches local optima
// that segment reversal alone cannot (e.g. extracting a stop stranded
// between two clusters).
func orOptPass(start geo.Point, stops []geo.Point, order []int) bool {
	n := len(order)
	at := func(k int) geo.Point {
		if k < 0 || k >= n {
			return start
		}
		return stops[order[k]]
	}
	improvedAny := false
	for size := 1; size <= 3 && size < n; size++ {
		for i := 0; i+size <= n; i++ {
			// Removing order[i:i+size] saves:
			removeGain := geo.Dist(at(i-1), at(i)) + geo.Dist(at(i+size-1), at(i+size)) -
				geo.Dist(at(i-1), at(i+size))
			if removeGain <= 1e-9 {
				continue
			}
			chain := append([]int(nil), order[i:i+size]...)
			rest := append(append([]int(nil), order[:i]...), order[i+size:]...)
			// Best reinsertion position in the remaining tour.
			restAt := func(k int) geo.Point {
				if k < 0 || k >= len(rest) {
					return start
				}
				return stops[rest[k]]
			}
			bestPos, bestCost := -1, removeGain
			head, tail := stops[chain[0]], stops[chain[len(chain)-1]]
			for pos := 0; pos <= len(rest); pos++ {
				if pos == i { // same position: no-op
					continue
				}
				insCost := geo.Dist(restAt(pos-1), head) + geo.Dist(tail, restAt(pos)) -
					geo.Dist(restAt(pos-1), restAt(pos))
				if insCost < bestCost-1e-9 {
					bestPos, bestCost = pos, insCost
				}
			}
			if bestPos >= 0 {
				out := append(append(append([]int(nil), rest[:bestPos]...), chain...), rest[bestPos:]...)
				copy(order, out)
				improvedAny = true
			}
		}
	}
	return improvedAny
}

// twoOptGain returns the tour-length reduction from reversing order[i..j].
func twoOptGain(start geo.Point, stops []geo.Point, order []int, i, j int) float64 {
	at := func(k int) geo.Point {
		if k < 0 || k >= len(order) {
			return start
		}
		return stops[order[k]]
	}
	before := geo.Dist(at(i-1), at(i)) + geo.Dist(at(j), at(j+1))
	after := geo.Dist(at(i-1), at(j)) + geo.Dist(at(i), at(j+1))
	return before - after
}

func reverse(a []int) {
	for l, r := 0, len(a)-1; l < r; l, r = l+1, r-1 {
		a[l], a[r] = a[r], a[l]
	}
}

// RouteLength returns the closed-tour length of visiting stops in the given
// order from start and back.
func RouteLength(start geo.Point, stops []geo.Point, order []int) float64 {
	pos := start
	var total float64
	for _, i := range order {
		total += geo.Dist(pos, stops[i])
		pos = stops[i]
	}
	return total + geo.Dist(pos, start)
}
