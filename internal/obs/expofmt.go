package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Family is one metric family of a parsed Prometheus text exposition.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []ExpoSample
}

// ExpoSample is one sample line of a parsed exposition.
type ExpoSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses and validates a Prometheus text-format (0.0.4)
// exposition: well-formed HELP/TYPE comments, known metric types, valid
// metric names, parseable label sets and float values, and — for samples
// under a declared family — a TYPE line preceding the samples, with
// histogram samples restricted to the _bucket/_sum/_count suffixes. It
// returns the families keyed by name. The CI smoke check and the /v1/metrics
// tests both gate on it.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	families := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln, err)
			}
			continue
		}
		if err := parseSample(line, families); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has samples but no # TYPE line", name)
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]*Family) error {
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch parts[1] {
	case "HELP":
		f := getFamily(families, parts[2])
		if len(parts) == 4 {
			f.Help = parts[3]
		}
	case "TYPE":
		if len(parts) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch parts[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", parts[3])
		}
		f := getFamily(families, parts[2])
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", parts[2])
		}
		f.Type = parts[3]
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func getFamily(families map[string]*Family, name string) *Family {
	if f, ok := families[name]; ok {
		return f
	}
	f := &Family{Name: name}
	families[name] = f
	return f
}

func parseSample(line string, families map[string]*Family) error {
	name, rest := splitName(line)
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name in %q", line)
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end, err := labelSetEnd(rest)
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		if labels, err = parseLabels(rest[1:end]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	fam := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				fam = base
				break
			}
		}
	}
	f := getFamily(families, fam)
	if f.Type == "histogram" && fam == name {
		return fmt.Errorf("histogram %s has a bare sample %q", fam, line)
	}
	f.Samples = append(f.Samples, ExpoSample{Name: name, Labels: labels, Value: v})
	return nil
}

// labelSetEnd returns the index of the '}' closing the label set opened at
// s[0], skipping braces inside quoted label values (route patterns like
// "/v1/locations/{key}" are legal values).
func labelSetEnd(s string) (int, error) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set")
}

func splitName(line string) (name, rest string) {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' || c == ' ' || c == '\t' {
			return line[:i], line[i:]
		}
	}
	return line, ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without value")
		}
		key := strings.TrimSpace(s[:eq])
		if !validMetricName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		val, rest, err := scanQuoted(s)
		if err != nil {
			return nil, err
		}
		out[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
	}
	return out, nil
}

// scanQuoted consumes a leading quoted string with \", \\ and \n escapes.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}
