package trace

import (
	"sync"
	"time"
)

// Attr is one key/value attribute on a span (shard id, request method, …).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is a timestamped point annotation on a span.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// SpanData is the immutable record of one finished span. Ids are rendered as
// hex strings so the struct marshals straight into the debug API.
type SpanData struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Trace is one completed, kept trace: the root's identity plus every span
// that ended before the root sealed the record.
type Trace struct {
	ID       TraceID
	Root     string
	Start    time.Time
	Duration time.Duration
	Error    bool
	// Dropped counts spans discarded past the MaxSpans cap.
	Dropped int
	Spans   []SpanData
}

// Store is a fixed-size ring buffer of completed traces: Add overwrites the
// oldest entry once full, so the buffer always holds the most recent kept
// traces. The critical section is a few pointer moves — cheap enough to sit
// on the serving path at full sampling.
type Store struct {
	mu   sync.Mutex
	buf  []*Trace
	next int // index the next Add writes to
	n    int // live entries, ≤ len(buf)
}

// DefaultStoreCapacity is the buffer size when NewStore is given a
// non-positive capacity.
const DefaultStoreCapacity = 256

// NewStore returns a ring buffer holding up to capacity traces
// (DefaultStoreCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{buf: make([]*Trace, capacity)}
}

// Add inserts a completed trace, evicting the oldest when full. Safe on a
// nil store.
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next] = t
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of traces currently buffered.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Get returns the buffered trace with the given id, newest first when an id
// somehow recurs, or nil when absent.
func (s *Store) Get(id TraceID) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 1; i <= s.n; i++ {
		t := s.buf[(s.next-i+len(s.buf))%len(s.buf)]
		if t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// Filter selects traces out of List.
type Filter struct {
	// MinDuration keeps only traces whose root ran at least this long.
	MinDuration time.Duration
	// ErrorOnly keeps only traces with an errored span.
	ErrorOnly bool
	// Limit caps the result count (<= 0 means no cap).
	Limit int
}

// List returns buffered traces newest first, filtered by f.
func (s *Store) List(f Filter) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Trace
	for i := 1; i <= s.n; i++ {
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
		t := s.buf[(s.next-i+len(s.buf))%len(s.buf)]
		if t == nil {
			continue
		}
		if t.Duration < f.MinDuration || (f.ErrorOnly && !t.Error) {
			continue
		}
		out = append(out, t)
	}
	return out
}
