package trace

import (
	"context"
	"net/http"
	"testing"
)

// BenchmarkRootSpanLifecycle measures the full per-request tracing cost in
// isolation: parse the (absent) incoming traceparent, mint a sampled root,
// set the four attributes the HTTP middleware sets, render the response
// traceparent echo, and End — publishing the single-span trace into the
// ring buffer. This is the exact extra work a traced request does over an
// untraced one, without the loopback-HTTP noise of BenchmarkServeQueriesTraced.
func BenchmarkRootSpanLifecycle(b *testing.B) {
	tr := NewTracer(Options{SampleProb: 1, Store: NewStore(256)})
	hdr := http.Header{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parent, _ := ParseTraceparent("")
		_, sp := tr.StartRoot(context.Background(), "/v1/locations/{key}", parent)
		sp.SetAttr("method", "GET")
		sp.SetAttr("path", "/v1/locations/1")
		sp.SetAttr("request_id", "abcdef0123456789")
		hdr.Set("Traceparent", sp.Traceparent())
		sp.SetAttr("status", 200)
		sp.End()
	}
}
