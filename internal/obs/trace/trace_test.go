package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	tid := randTraceID()
	sid := randSpanID()
	gotT, err := ParseTraceID(tid.String())
	if err != nil || gotT != tid {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want %v", tid.String(), gotT, err, tid)
	}
	gotS, err := ParseSpanID(sid.String())
	if err != nil || gotS != sid {
		t.Fatalf("ParseSpanID(%q) = %v, %v; want %v", sid.String(), gotS, err, sid)
	}
}

func TestParseIDRejects(t *testing.T) {
	for _, s := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32), strings.Repeat("a", 31)} {
		if _, err := ParseTraceID(s); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", s)
		}
	}
	for _, s := range []string{"", "abc", strings.Repeat("0", 16), strings.Repeat("z", 16), strings.Repeat("a", 15)} {
		if _, err := ParseSpanID(s); err == nil {
			t.Errorf("ParseSpanID(%q) accepted", s)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: randTraceID(), SpanID: randSpanID(), Sampled: true}
	h := sc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", h, got, ok, sc)
	}
	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip = %+v, %v", got, ok)
	}
}

func TestParseTraceparent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const sid = "00f067aa0ba902b7"
	cases := []struct {
		in      string
		ok      bool
		sampled bool
	}{
		{"00-" + tid + "-" + sid + "-01", true, true},
		{"00-" + tid + "-" + sid + "-00", true, false},
		{"  00-" + tid + "-" + sid + "-01  ", true, true},              // whitespace tolerated
		{"00-" + strings.ToUpper(tid) + "-" + sid + "-01", true, true}, // lenient case
		{"cc-" + tid + "-" + sid + "-09-extra-fields", true, true},     // future version, trailing fields
		{"00-" + tid + "-" + sid + "-01-extra", false, false},          // version 00 has exactly 4 fields
		{"ff-" + tid + "-" + sid + "-01", false, false},                // ff version forbidden
		{"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", false, false},
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, false},
		{"00-" + tid + "-" + sid + "-1", false, false},
		{"00-" + tid + "-" + sid, false, false},
		{"", false, false},
		{"garbage", false, false},
	}
	for _, c := range cases {
		got, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && got.Sampled != c.sampled {
			t.Errorf("ParseTraceparent(%q) sampled = %v, want %v", c.in, got.Sampled, c.sampled)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || !isHex(a) {
		t.Fatalf("NewRequestID() = %q, want 16 hex chars", a)
	}
	if a == b {
		t.Fatalf("two request ids collided: %q", a)
	}
}

func TestHeadSampling(t *testing.T) {
	st := NewStore(16)
	// prob 1 → always kept.
	tr := NewTracer(Options{SampleProb: 1, Store: st})
	_, sp := tr.StartRoot(context.Background(), "root", SpanContext{})
	sp.End()
	if st.Len() != 1 {
		t.Fatalf("prob=1: store has %d traces, want 1", st.Len())
	}
	// prob 0 → fast clean trace dropped.
	st = NewStore(16)
	tr = NewTracer(Options{SampleProb: 0, SlowThreshold: time.Hour, Store: st})
	_, sp = tr.StartRoot(context.Background(), "root", SpanContext{})
	sp.End()
	if st.Len() != 0 {
		t.Fatalf("prob=0: store has %d traces, want 0", st.Len())
	}
}

func TestTailRuleError(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 0, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	_, child := Start(ctx, "child")
	child.RecordError(errors.New("boom"))
	child.End()
	root.End()
	got := st.Get(root.TraceID())
	if got == nil || !got.Error {
		t.Fatalf("errored trace not kept: %+v", got)
	}
	if got.Spans[0].Error != "boom" {
		t.Fatalf("span error = %q, want boom", got.Spans[0].Error)
	}
}

func TestTailRuleSlow(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 0, SlowThreshold: time.Nanosecond, Store: st})
	_, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	time.Sleep(time.Millisecond)
	root.End()
	if st.Get(root.TraceID()) == nil {
		t.Fatal("slow trace not kept")
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 0, Store: st}) // head sampler would drop
	parent := SpanContext{TraceID: randTraceID(), SpanID: randSpanID(), Sampled: true}
	ctx, root := tr.StartRoot(context.Background(), "root", parent)
	if root.TraceID() != parent.TraceID {
		t.Fatalf("trace id = %v, want remote %v", root.TraceID(), parent.TraceID)
	}
	if got := root.Context(); !got.Sampled {
		t.Fatal("remote sampled flag not honored")
	}
	_, child := Start(ctx, "child")
	child.End()
	root.End()
	got := st.Get(parent.TraceID)
	if got == nil {
		t.Fatal("remote-sampled trace not kept")
	}
	// Root's recorded parent is the remote span.
	var rootData *SpanData
	for i := range got.Spans {
		if got.Spans[i].Name == "root" {
			rootData = &got.Spans[i]
		}
	}
	if rootData == nil || rootData.ParentID != parent.SpanID.String() {
		t.Fatalf("root parent = %+v, want %s", rootData, parent.SpanID.String())
	}
}

func TestRemoteUnsampledDropped(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 1, Store: st}) // local prob would keep
	parent := SpanContext{TraceID: randTraceID(), SpanID: randSpanID(), Sampled: false}
	_, root := tr.StartRoot(context.Background(), "root", parent)
	root.End()
	if st.Len() != 0 {
		t.Fatal("remote-unsampled trace kept despite local prob=1")
	}
}

func TestHierarchyAttrsEvents(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 1, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	cctx, child := Start(ctx, "child")
	child.SetAttr("shard", 2)
	child.AddEvent("hit cache")
	_, grand := Start(cctx, "grand")
	grand.End()
	child.End()
	root.End()

	got := st.Get(root.TraceID())
	if got == nil {
		t.Fatal("trace missing")
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range got.Spans {
		byName[sd.Name] = sd
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatalf("child parent = %q, want root %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grand"].ParentID != byName["child"].SpanID {
		t.Fatalf("grand parent = %q, want child %q", byName["grand"].ParentID, byName["child"].SpanID)
	}
	if byName["root"].ParentID != "" {
		t.Fatalf("root has parent %q", byName["root"].ParentID)
	}
	c := byName["child"]
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "shard" || c.Attrs[0].Value != 2 {
		t.Fatalf("child attrs = %+v", c.Attrs)
	}
	if len(c.Events) != 1 || c.Events[0].Msg != "hit cache" {
		t.Fatalf("child events = %+v", c.Events)
	}
	for _, sd := range got.Spans {
		if sd.TraceID != root.TraceID().String() {
			t.Fatalf("span %s trace id %q, want %q", sd.Name, sd.TraceID, root.TraceID())
		}
	}
}

func TestMaxSpansDropped(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 1, MaxSpans: 3, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, fmt.Sprintf("c%d", i))
		sp.End()
	}
	root.End()
	got := st.Get(root.TraceID())
	if got == nil {
		t.Fatal("trace missing")
	}
	// 5 children fill the 3-span cap; 2 children + the root are dropped.
	if len(got.Spans) != 3 || got.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 3 and 3", len(got.Spans), got.Dropped)
	}
}

func TestEndIdempotentAndStragglers(t *testing.T) {
	st := NewStore(16)
	tr := NewTracer(Options{SampleProb: 1, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	_, straggler := Start(ctx, "straggler")
	root.End()
	root.End() // idempotent: no second publish
	straggler.End()
	straggler.SetAttr("late", true) // no-op after End
	if st.Len() != 1 {
		t.Fatalf("store has %d traces, want 1", st.Len())
	}
	got := st.Get(root.TraceID())
	if len(got.Spans) != 1 || got.Spans[0].Name != "root" {
		t.Fatalf("straggler leaked into sealed trace: %+v", got.Spans)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "root", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	if tr.Store() != nil {
		t.Fatal("nil tracer returned non-nil store")
	}
	// All span methods absorb nil.
	sp.SetAttr("k", "v")
	sp.AddEvent("e")
	sp.RecordError(errors.New("x"))
	sp.End()
	if !sp.ID().IsZero() || !sp.TraceID().IsZero() || sp.Context().IsValid() {
		t.Fatal("nil span leaked identity")
	}
	// Start below a context with no span is also nil.
	_, child := Start(ctx, "child")
	if child != nil {
		t.Fatal("Start without active span returned non-nil")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("SpanFromContext(bare) = %v", got)
	}
	// Nil store absorbs everything.
	var s *Store
	s.Add(&Trace{})
	if s.Len() != 0 || s.Get(TraceID{}) != nil || s.List(Filter{}) != nil {
		t.Fatal("nil store not inert")
	}
}

func TestStoreRingEviction(t *testing.T) {
	s := NewStore(3)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		id := randTraceID()
		ids = append(ids, id)
		s.Add(&Trace{ID: id, Start: time.Unix(int64(i), 0)})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, old := range ids[:2] {
		if s.Get(old) != nil {
			t.Fatalf("evicted trace %v still present", old)
		}
	}
	got := s.List(Filter{})
	if len(got) != 3 {
		t.Fatalf("List = %d traces, want 3", len(got))
	}
	// Newest first.
	for i, want := range []TraceID{ids[4], ids[3], ids[2]} {
		if got[i].ID != want {
			t.Fatalf("List[%d] = %v, want %v", i, got[i].ID, want)
		}
	}
}

func TestStoreListFilter(t *testing.T) {
	s := NewStore(8)
	fast := &Trace{ID: randTraceID(), Duration: time.Millisecond}
	slow := &Trace{ID: randTraceID(), Duration: time.Second}
	bad := &Trace{ID: randTraceID(), Duration: 2 * time.Millisecond, Error: true}
	s.Add(fast)
	s.Add(slow)
	s.Add(bad)

	if got := s.List(Filter{MinDuration: 100 * time.Millisecond}); len(got) != 1 || got[0].ID != slow.ID {
		t.Fatalf("MinDuration filter = %+v", got)
	}
	if got := s.List(Filter{ErrorOnly: true}); len(got) != 1 || got[0].ID != bad.ID {
		t.Fatalf("ErrorOnly filter = %+v", got)
	}
	if got := s.List(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("Limit filter returned %d", len(got))
	}
	if got := s.List(Filter{}); len(got) != 3 {
		t.Fatalf("unfiltered = %d", len(got))
	}
}

// TestConcurrentSpans exercises the shared trace state from many goroutines
// — the scenario the sharded engine creates — and is the -race anchor.
func TestConcurrentSpans(t *testing.T) {
	st := NewStore(4)
	tr := NewTracer(Options{SampleProb: 1, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := Start(ctx, "shard")
			sp.SetAttr("shard", i)
			_, inner := Start(sctx, "stage")
			inner.End()
			if i%3 == 0 {
				sp.RecordError(errors.New("shard failure"))
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	got := st.Get(root.TraceID())
	if got == nil {
		t.Fatal("trace missing")
	}
	if len(got.Spans) != 2*workers+1 {
		t.Fatalf("got %d spans, want %d", len(got.Spans), 2*workers+1)
	}
	if !got.Error {
		t.Fatal("shard errors not surfaced on trace")
	}
	// Concurrent Adds to the store as well.
	var wg2 sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			_, sp := tr.StartRoot(context.Background(), "r", SpanContext{})
			sp.End()
		}()
	}
	wg2.Wait()
	if st.Len() != 4 {
		t.Fatalf("store len = %d, want capacity 4", st.Len())
	}
}
