package trace

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// DefaultMaxSpans bounds the spans recorded per trace when Options.MaxSpans
// is zero: enough for a sharded fan-out with per-stage children, small
// enough that a runaway loop cannot hold the heap hostage.
const DefaultMaxSpans = 512

// Options configures a Tracer.
type Options struct {
	// SampleProb is the head-sampling probability in [0,1]: the chance a
	// fresh root (no incoming traceparent) is kept regardless of outcome.
	// Incoming traceparent headers carry the upstream decision instead.
	SampleProb float64
	// SlowThreshold is the tail rule: a trace whose root ran at least this
	// long is kept even when head sampling passed on it. 0 disables the rule.
	SlowThreshold time.Duration
	// MaxSpans bounds recorded spans per trace (0 = DefaultMaxSpans); spans
	// past the cap still time and propagate, they just count as dropped.
	MaxSpans int
	// Store receives completed kept traces; nil discards them (spans then
	// only feed histograms and log correlation).
	Store *Store
}

// Tracer starts root spans, carries the sampling policy, and publishes
// finished traces into its store. A nil *Tracer is a valid no-op.
type Tracer struct {
	prob     float64
	slow     time.Duration
	maxSpans int
	store    *Store
}

// NewTracer returns a tracer with the given options.
func NewTracer(o Options) *Tracer {
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{prob: o.SampleProb, slow: o.SlowThreshold, maxSpans: o.MaxSpans, store: o.Store}
}

// Store returns the tracer's trace buffer (nil on a nil tracer or when none
// was configured).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// state accumulates one trace in flight: every span appends its record here
// on End, and the root's End decides whether the whole trace is kept.
type state struct {
	tracer  *Tracer
	id      TraceID
	sampled bool

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	errSeen bool
	done    bool
}

// Span is one timed operation inside a trace. A span is owned by the
// goroutine that started it (attributes and events are not synchronized);
// sibling spans on other goroutines are fine — the shared trace record is.
// All methods are safe on a nil *Span.
type Span struct {
	st     *state
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool
	attrs  []Attr
	events []Event
	err    string
	ended  bool
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartRoot starts the root span of a trace. A valid parent (extracted from
// an incoming traceparent) continues the caller's trace — same trace id,
// remote span as parent, remote sampling decision; the zero SpanContext
// mints a fresh trace id and rolls the head sampler. The returned context
// carries the span for Start and obs.StartSpanCtx below it.
func (t *Tracer) StartRoot(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	st := &state{tracer: t}
	var psid SpanID
	if parent.IsValid() {
		st.id = parent.TraceID
		st.sampled = parent.Sampled
		psid = parent.SpanID
	} else {
		st.id = randTraceID()
		st.sampled = t.prob >= 1 || (t.prob > 0 && rand.Float64() < t.prob)
	}
	sp := &Span{st: st, id: randSpanID(), parent: psid, name: name, start: time.Now(), root: true}
	return ContextWithSpan(ctx, sp), sp
}

// Start starts a child of the span carried by ctx. When ctx carries none —
// tracing off, or a call path outside any request — it returns (ctx, nil)
// and the nil span absorbs every later call, so instrumentation is free on
// untraced paths.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{st: parent.st, id: randSpanID(), parent: parent.id, name: name, start: time.Now()}
	return ContextWithSpan(ctx, sp), sp
}

// ID returns the span's id (zero on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// TraceID returns the id of the trace the span belongs to (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.st.id
}

// Context returns the span's propagated identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.st.id, SpanID: s.id, Sampled: s.st.sampled}
}

// Traceparent renders the span's identity as a W3C traceparent value — what
// an outbound call (or the response echo) should carry.
func (s *Span) Traceparent() string { return s.Context().Traceparent() }

// SetAttr attaches one key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.ended {
		return
	}
	if s.attrs == nil {
		// Spans that set one attribute usually set a few (the HTTP root sets
		// method/path/request_id/status); one cap-4 block avoids the
		// append-growth churn on every traced request.
		s.attrs = make([]Attr, 0, 4)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AddEvent records a timestamped point event on the span.
func (s *Span) AddEvent(msg string) {
	if s == nil || s.ended {
		return
	}
	s.events = append(s.events, Event{Time: time.Now(), Msg: msg})
}

// RecordError marks the span errored. Any errored span makes the whole
// trace eligible for the tail keep rule.
func (s *Span) RecordError(err error) {
	if s == nil || s.ended || err == nil {
		return
	}
	s.err = err.Error()
}

// End finishes the span and appends its record to the trace. Ending the
// root seals the trace and publishes it to the tracer's store when the head
// sample said yes, any span errored, or the root ran past SlowThreshold.
// Spans ending after their root (stragglers from an abandoned fan-out) are
// dropped. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := time.Now()
	st := s.st
	sd := SpanData{
		TraceID:  st.id.String(),
		SpanID:   s.id.String(),
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
		Error:    s.err,
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	st.mu.Lock()
	if !st.done {
		if len(st.spans) < st.tracer.maxSpans {
			st.spans = append(st.spans, sd)
		} else {
			st.dropped++
		}
		if s.err != "" {
			st.errSeen = true
		}
	}
	if !s.root {
		st.mu.Unlock()
		return
	}
	st.done = true
	spans, dropped, errSeen := st.spans, st.dropped, st.errSeen
	st.mu.Unlock()

	dur := end.Sub(s.start)
	keep := st.sampled || errSeen || (st.tracer.slow > 0 && dur >= st.tracer.slow)
	if keep && st.tracer.store != nil {
		st.tracer.store.Add(&Trace{
			ID:       st.id,
			Root:     s.name,
			Start:    s.start,
			Duration: dur,
			Error:    errSeen,
			Dropped:  dropped,
			Spans:    spans,
		})
	}
}
