// Package trace is the repo's dependency-free request-scoped tracing layer:
// 128-bit trace ids and 64-bit span ids, a Tracer that starts hierarchical
// spans carried through context.Context, W3C traceparent propagation, and a
// fixed-size ring buffer of completed traces served by the debug API.
//
// Sampling is head-based with a tail override: a fresh root rolls the
// tracer's probability (an incoming traceparent's sampled flag is honored
// instead), and a trace that finished slow or with an errored span is kept
// regardless, so the interesting requests are always in the buffer.
//
// Every method is safe on a nil *Tracer or nil *Span, so instrumented code
// threads spans without nil checks and costs nothing when tracing is off —
// the same contract obs.Logger follows.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strings"
)

// TraceID identifies one end-to-end request tree (the W3C trace-id: 16
// bytes, rendered as 32 hex characters). The all-zero id is invalid.
type TraceID [16]byte

// SpanID identifies one span within a trace (the W3C parent-id: 8 bytes,
// rendered as 16 hex characters). The all-zero id is invalid.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses a 32-hex-character trace id, rejecting the all-zero id.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("trace: trace id must be %d hex chars, got %q", 2*len(id), s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("trace: all-zero trace id")
	}
	return id, nil
}

// ParseSpanID parses a 16-hex-character span id, rejecting the all-zero id.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("trace: span id must be %d hex chars, got %q", 2*len(id), s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("trace: bad span id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("trace: all-zero span id")
	}
	return id, nil
}

// randTraceID mints a random non-zero trace id (math/rand/v2's global
// generator is lock-free per OS thread, so id minting stays off any mutex).
func randTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	}
	return id
}

// randSpanID mints a random non-zero span id.
func randSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// NewRequestID mints a fresh 16-hex-character correlation id for
// X-Request-ID (same generator as span ids, no header-format coupling).
func NewRequestID() string { return randSpanID().String() }

// SpanContext is the propagated identity of a span — what crosses process
// boundaries in the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the head-sampling decision carried in the trace flags; the
	// tail rule (slow/error) can still keep an unsampled trace locally.
	Sampled bool
}

// IsValid reports whether both ids are non-zero.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C version-00 header value,
// "00-{trace-id}-{parent-id}-{trace-flags}". Built in one fixed buffer:
// this runs on every traced request (the response echo), so it must not
// chain string concatenations.
func (sc SpanContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52], b[53] = '-', '0'
	if sc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. Per the spec,
// unknown (non-ff) versions are accepted by reading the version-00 prefix
// and ignoring any trailing fields. The second return is false for absent
// or malformed headers — callers then start a fresh trace.
func ParseTraceparent(h string) (SpanContext, bool) {
	if h == "" { // fast path: most requests carry no traceparent
		return SpanContext{}, false
	}
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver := strings.ToLower(parts[0])
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return SpanContext{}, false
	}
	if ver == "00" && len(parts) != 4 {
		return SpanContext{}, false
	}
	tid, err := ParseTraceID(strings.ToLower(parts[1]))
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := ParseSpanID(strings.ToLower(parts[2]))
	if err != nil {
		return SpanContext{}, false
	}
	flags := strings.ToLower(parts[3])
	if len(flags) != 2 || !isHex(flags) {
		return SpanContext{}, false
	}
	var f [1]byte
	if _, err := hex.Decode(f[:], []byte(flags)); err != nil {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid, Sampled: f[0]&1 == 1}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
