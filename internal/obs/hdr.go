package obs

import (
	"bufio"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDRHistogram is an HdrHistogram-shaped log-linear latency histogram: values
// bucket into power-of-two major buckets, each split into 2^hdrSubBits linear
// sub-buckets, giving a bounded relative error of 1/2^hdrSubBits (~3%) at
// every magnitude with a fixed, small footprint. Values are recorded in
// microseconds, so the same layout resolves 1µs RTTs and multi-second stalls —
// the fixed-bucket Histogram cannot answer a meaningful p99 on a
// sub-millisecond read path, this type can.
//
// Record/Observe are lock-free (two atomic adds plus a CAS max) and safe from
// any number of goroutines. The zero value is usable but not registered; use
// Registry.HDRHistogram for an exposed metric or NewHDRHistogram for a
// standalone collector (the load generator does the latter).
const (
	hdrSubBits  = 5
	hdrSubCount = 1 << hdrSubBits
	// hdrBuckets covers every uint64 microsecond value: the maximum major
	// exponent is 64-hdrSubBits, and each contributes hdrSubCount buckets on
	// top of the doubled-width linear region at the bottom.
	hdrBuckets = (64-hdrSubBits)*hdrSubCount + 2*hdrSubCount
)

// hdrIndex maps a non-negative microsecond value to its bucket. Values below
// 2*hdrSubCount land exactly (linear region); larger values keep the top
// hdrSubBits+1 significant bits.
func hdrIndex(us int64) int {
	u := uint64(us)
	if u < 2*hdrSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - hdrSubBits - 1
	return exp*hdrSubCount + int(u>>exp)
}

// hdrValue is the inverse: a representative (midpoint) microsecond value for
// bucket i, used when reading quantiles back out.
func hdrValue(i int) int64 {
	if i < 2*hdrSubCount {
		return int64(i)
	}
	exp := i/hdrSubCount - 1
	m := uint64(i - exp*hdrSubCount)
	return int64(m<<exp | 1<<(exp-1))
}

// hdrUpperUS is the largest microsecond value that lands in bucket i — the
// inclusive upper bound used as the cumulative `le` edge in the exposition.
func hdrUpperUS(i int) int64 {
	if i < 2*hdrSubCount {
		return int64(i)
	}
	exp := i/hdrSubCount - 1
	m := uint64(i - exp*hdrSubCount)
	if bits.Len64(m+1)+exp > 63 {
		// The top buckets' bounds overflow int64 microseconds; clamp. No
		// recordable duration lands past MaxInt64 µs anyway.
		return math.MaxInt64
	}
	return int64((m+1)<<exp) - 1
}

// HDRHistogram is the concurrent collector. See the package comment above the
// bucket constants for the layout.
type HDRHistogram struct {
	name   string
	labels string // pre-rendered {k="v",...} or "" (vec children)
	counts [hdrBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // microseconds, for Mean/Sum
	max    atomic.Int64 // microseconds, exact
}

// NewHDRHistogram returns an empty standalone (unregistered) histogram.
func NewHDRHistogram() *HDRHistogram { return &HDRHistogram{} }

// Record adds one observation. Negative durations clamp to zero.
func (h *HDRHistogram) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[hdrIndex(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Observe records one value in seconds — the same contract as
// Histogram.Observe, so an HDRHistogram drops into any Observer slot
// (obs.StartSpan in particular).
func (h *HDRHistogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	h.Record(time.Duration(seconds * float64(time.Second)))
}

// Count returns the number of recorded observations.
func (h *HDRHistogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observations in seconds.
func (h *HDRHistogram) Sum() float64 { return float64(h.sum.Load()) / 1e6 }

// HDRSnapshot is a point-in-time copy of an HDRHistogram, safe to read at
// leisure while writers keep recording into the source.
type HDRSnapshot struct {
	counts []int64
	total  int64
	sumUS  int64
	maxUS  int64
}

// NewHDRSnapshot returns an empty snapshot, ready to Merge into.
func NewHDRSnapshot() *HDRSnapshot {
	return &HDRSnapshot{counts: make([]int64, hdrBuckets)}
}

// Snapshot copies the current counts. Concurrent Records may straddle the
// copy; the snapshot is consistent enough for monitoring (each observation
// appears at most once).
func (h *HDRHistogram) Snapshot() *HDRSnapshot {
	s := NewHDRSnapshot()
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		s.total += s.counts[i]
	}
	s.sumUS = h.sum.Load()
	s.maxUS = h.max.Load()
	return s
}

// Count returns the number of recorded observations.
func (s *HDRSnapshot) Count() int64 { return s.total }

// Mean returns the arithmetic mean of the recorded durations.
func (s *HDRSnapshot) Mean() time.Duration {
	if s.total == 0 {
		return 0
	}
	return time.Duration(s.sumUS/s.total) * time.Microsecond
}

// Max returns the largest recorded duration (exact, not bucketed).
func (s *HDRSnapshot) Max() time.Duration {
	return time.Duration(s.maxUS) * time.Microsecond
}

// Quantile returns the value at quantile q in [0,1], with the histogram's
// bounded relative error. An empty snapshot answers 0.
func (s *HDRSnapshot) Quantile(q float64) time.Duration {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sought observation in sorted order.
	rank := int64(q*float64(s.total-1)) + 1
	var seen int64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			return time.Duration(hdrValue(i)) * time.Microsecond
		}
	}
	return s.Max()
}

// Sub returns the delta snapshot s minus prev — the observations recorded
// between the two snapshots, for per-interval timeseries sampling. prev may
// be nil (treated as empty). Max carries s's max (maxima don't subtract).
func (s *HDRSnapshot) Sub(prev *HDRSnapshot) *HDRSnapshot {
	if prev == nil {
		return s
	}
	d := NewHDRSnapshot()
	d.maxUS = s.maxUS
	for i := range s.counts {
		c := s.counts[i] - prev.counts[i]
		if c < 0 {
			c = 0
		}
		d.counts[i] = c
		d.total += c
	}
	d.sumUS = s.sumUS - prev.sumUS
	if d.sumUS < 0 {
		d.sumUS = 0
	}
	return d
}

// Merge adds other's observations into s, for cross-endpoint whole-run
// quantiles. A nil other is a no-op.
func (s *HDRSnapshot) Merge(other *HDRSnapshot) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.total += other.total
	s.sumUS += other.sumUS
	if other.maxUS > s.maxUS {
		s.maxUS = other.maxUS
	}
}

// exposeHDR renders an HDRHistogram as a standard Prometheus histogram with
// sparse cumulative buckets: one `le` edge per non-empty bucket (upper bound
// converted to seconds) plus +Inf. Sparse cumulative buckets are valid
// exposition — quantile estimation only needs the edges that hold data — and
// keep the ~2k-bucket layout from bloating the scrape.
func exposeHDR(w *bufio.Writer, h *HDRHistogram) {
	cum := int64(0)
	for i := 0; i < hdrBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		le := formatFloat(float64(hdrUpperUS(i)) / 1e6)
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(h.labels, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(h.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.total.Load())
}

// HDRHistogram registers and returns a new unlabelled log-linear histogram.
// It exposes as TYPE histogram, indistinguishable to a scraper from the
// fixed-bucket kind apart from its data-driven bucket edges.
func (r *Registry) HDRHistogram(name, help string) *HDRHistogram {
	h := &HDRHistogram{name: name}
	r.register(name, &singleMetric{name: name, help: help, typ: "histogram", m: h})
	return h
}

// HDRHistogramVec is a log-linear histogram family with a fixed label-key set.
type HDRHistogramVec struct {
	v *vec
}

// HDRHistogramVec registers a labelled log-linear histogram family.
func (r *Registry) HDRHistogramVec(name, help string, keys ...string) *HDRHistogramVec {
	hv := &HDRHistogramVec{
		v: &vec{name: name, help: help, typ: "histogram", keys: keys, children: make(map[string]metricChild)},
	}
	r.register(name, hv.v)
	return hv
}

// With returns (creating if needed) the child histogram for the label values.
func (h *HDRHistogramVec) With(values ...string) *HDRHistogram {
	return h.v.child(values, func(labels string) any {
		return &HDRHistogram{name: h.v.name, labels: labels}
	}).(*HDRHistogram)
}
