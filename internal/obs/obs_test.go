package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeRace hammers one counter, one gauge, and two vec children
// from many goroutines; run under -race this proves the hot paths are safe,
// and the final values prove no increment is lost.
func TestCounterGaugeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	cv := r.CounterVec("cv_total", "test counter vec", "k")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				cv.With("a").Inc()
				cv.With("b").Add(2)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if got := cv.With("a").Value(); got != workers*per {
		t.Errorf("cv{a} = %d, want %d", got, workers*per)
	}
	if got := cv.With("b").Value(); got != 2*workers*per {
		t.Errorf("cv{b} = %d, want %d", got, 2*workers*per)
	}
}

// TestHistogramConcurrent proves Observe under concurrency keeps count, sum,
// and cumulative bucket invariants.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "test histogram", []float64{0.01, 0.1, 1})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.05)
				h.Observe(2.0)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2*workers*per {
		t.Errorf("count = %d, want %d", h.Count(), 2*workers*per)
	}
	want := float64(workers*per)*0.05 + float64(workers*per)*2.0
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`h_seconds_bucket{le="0.01"} 0`,
		`h_seconds_bucket{le="0.1"} 4000`,
		`h_seconds_bucket{le="1"} 4000`,
		`h_seconds_bucket{le="+Inf"} 8000`,
		`h_seconds_count 8000`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestExpositionGolden pins the exact exposition of one metric of each kind.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Add(3)
	g := r.Gauge("in_flight", "In-flight requests.")
	g.Set(2.5)
	hv := r.HistogramVec("lat_seconds", "Latency.", []float64{0.5}, "route")
	hv.With("/v1/x").Observe(0.25)
	cv := r.CounterVec("hits_total", "Hits.", "shard", "kind")
	cv.With("0", `quo"te`).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 2.5
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{route="/v1/x",le="0.5"} 1
lat_seconds_bucket{route="/v1/x",le="+Inf"} 1
lat_seconds_sum{route="/v1/x"} 0.25
lat_seconds_count{route="/v1/x"} 1
# HELP hits_total Hits.
# TYPE hits_total counter
hits_total{shard="0",kind="quo\"te"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n got: %q\nwant: %q", sb.String(), want)
	}
	// And the exposition must round-trip through our own parser.
	fams, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("self-parse: %v", err)
	}
	if fams["lat_seconds"].Type != "histogram" || len(fams["lat_seconds"].Samples) != 4 {
		t.Errorf("parsed histogram family %+v", fams["lat_seconds"])
	}
	if fams["hits_total"].Samples[0].Labels["kind"] != `quo"te` {
		t.Errorf("label round-trip %+v", fams["hits_total"].Samples[0])
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "", "a")
	if cv.With("1") != cv.With("1") {
		t.Error("With returned distinct children for equal labels")
	}
	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	cv.With("1", "2")
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestParseExpositionRejects(t *testing.T) {
	bad := []string{
		"name 1.2.3",                      // malformed value
		"1name 7",                         // bad metric name
		"# TYPE x wat\nx 1",               // unknown type
		`m{l="unterminated} 1`,            // unterminated label
		"x 1\n# TYPE x counter",           // TYPE after samples
		"# TYPE h histogram\nh 3",         // bare histogram sample
		"# TYPE h histogram\nh_sum 3",     // histogram family sample but no bucket/count is fine...
		"m{=\"v\"} 1",                     // empty label name
	}
	for i, in := range bad {
		if i == 6 {
			// h_sum under a declared histogram is legal; skip the negative
			// expectation for it and assert it parses.
			if _, err := ParseExposition(strings.NewReader(in)); err != nil {
				t.Errorf("case %d (%q) should parse: %v", i, in, err)
			}
			continue
		}
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q) parsed without error", i, in)
		}
	}
	good := "# HELP a Help text.\n# TYPE a counter\na{x=\"y\"} 5 1700000000\nb_no_type 1\n# TYPE b_no_type counter"
	if _, err := ParseExposition(strings.NewReader(good)); err == nil {
		t.Error("TYPE after samples should be rejected")
	}
}

// TestParseExpositionBracesInLabelValue: route patterns like
// "/v1/locations/{key}" are legal label values; the label-set scanner must
// not mistake their braces for the set terminator.
func TestParseExpositionBracesInLabelValue(t *testing.T) {
	in := "# TYPE m counter\nm{route=\"/v1/locations/{key}\",code=\"200\"} 3\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("braced label value rejected: %v", err)
	}
	s := fams["m"].Samples[0]
	if s.Labels["route"] != "/v1/locations/{key}" || s.Labels["code"] != "200" || s.Value != 3 {
		t.Fatalf("parsed sample %+v", s)
	}
}

func fixedClock() func() time.Time {
	return func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
}

func TestLoggerLogfmt(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo, FormatLogfmt)
	l.now = fixedClock()
	l.Debug("dropped")
	l.With("component", "engine").Info("reinfer done", "dur", 1.5, "inferred", 42, "note", "has space")
	want := `ts=2026-08-05T12:00:00Z level=info msg="reinfer done" component=engine dur=1.5 inferred=42 note="has space"` + "\n"
	if sb.String() != want {
		t.Errorf("logfmt line:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, FormatJSON)
	l.now = fixedClock()
	l.Warn("boom", "err", strings.NewReader, "n", int64(7), "ok", true)
	got := sb.String()
	for _, frag := range []string{`"level":"warn"`, `"msg":"boom"`, `"n":7`, `"ok":true`} {
		if !strings.Contains(got, frag) {
			t.Errorf("json line missing %s: %s", frag, got)
		}
	}
}

func TestLoggerNilAndLevels(t *testing.T) {
	var l *Logger
	l.Info("must not panic", "k", "v")
	if l.With("a", 1) != nil {
		t.Error("With on nil logger should return nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger enabled")
	}
	var sb strings.Builder
	real := NewLogger(&sb, LevelWarn, FormatLogfmt)
	real.Info("dropped")
	real.Error("kept")
	if n := strings.Count(sb.String(), "\n"); n != 1 {
		t.Errorf("level filter wrote %d lines: %q", n, sb.String())
	}
	real.SetLevel(LevelDebug)
	if !real.Enabled(LevelDebug) {
		t.Error("SetLevel did not lower the threshold")
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Errorf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted garbage")
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "", []float64{10})
	sp := StartSpan("stage", h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 || h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("span end: d=%v count=%d sum=%v", d, h.Count(), h.Sum())
	}
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, FormatLogfmt)
	StartSpan("logged", h).EndLog(l, "rows", 3)
	if !strings.Contains(sb.String(), "msg=logged") || !strings.Contains(sb.String(), "rows=3") {
		t.Errorf("EndLog line %q", sb.String())
	}
	if StartSpan("bare", nil).End() < 0 {
		t.Error("nil-histogram span")
	}
	if StartSpan("named", nil).Name() != "named" {
		t.Error("span name")
	}
}
