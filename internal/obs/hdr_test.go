package obs

import (
	"bytes"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"time"
)

// TestHDRIndexMonotone walks the bucket index across magnitudes: it must be
// monotone non-decreasing and invert to within the promised relative error.
func TestHDRIndexMonotone(t *testing.T) {
	prev := -1
	for us := int64(0); us < 1<<22; us += 97 {
		i := hdrIndex(us)
		if i < prev {
			t.Fatalf("hdrIndex(%d)=%d < previous %d", us, i, prev)
		}
		prev = i
		back := hdrValue(i)
		diff := float64(back-us) / float64(us+1)
		if diff < 0 {
			diff = -diff
		}
		if diff > 1.0/hdrSubCount {
			t.Fatalf("hdrValue(hdrIndex(%d))=%d off by %.3f", us, back, diff)
		}
	}
}

// TestHDRUpperBound checks the exposition bucket edge: hdrUpperUS(i) is the
// largest value landing in bucket i — one step below where bucket i+1 starts.
func TestHDRUpperBound(t *testing.T) {
	for i := 0; i < hdrBuckets-1; i++ {
		up := hdrUpperUS(i)
		if up == 1<<63-1 {
			// Reached the clamped top region (bounds past MaxInt64 µs —
			// ~292k-year latencies no Record call can produce).
			break
		}
		if got := hdrIndex(up); got != i {
			t.Fatalf("hdrIndex(hdrUpperUS(%d)=%d) = %d, want %d", i, up, got, i)
		}
		if next := hdrUpperUS(i + 1); next <= up {
			t.Fatalf("hdrUpperUS not strictly increasing at %d: %d then %d", i, up, next)
		}
		if got := hdrIndex(up + 1); got != i+1 {
			t.Fatalf("hdrIndex(%d) = %d, want next bucket %d", up+1, got, i+1)
		}
	}
}

// TestHDRQuantileVsSortedReference checks quantiles against the exact answer
// from a sorted reference sample, within the layout's promised relative
// error (doubled for boundary rank effects).
func TestHDRQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHDRHistogram()
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		us := 150 * (1 + rng.ExpFloat64()*rng.ExpFloat64()*80)
		vals[i] = us
		h.Record(time.Duration(us) * time.Microsecond)
	}
	sort.Float64s(vals)
	snap := h.Snapshot()
	tol := 2.0 / hdrSubCount
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		want := vals[int(q*float64(n-1))]
		got := float64(snap.Quantile(q).Microseconds())
		relErr := (got - want) / want
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > tol {
			t.Errorf("q=%v: got %.0fµs, want %.0fµs (rel err %.3f > %.3f)", q, got, want, relErr, tol)
		}
	}
}

// TestHDRExpositionRoundTrip registers an HDR histogram (plain and vec),
// records a spread of values, and checks that WritePrometheus output parses
// back through ParseExposition with the right family type, a monotone
// non-decreasing cumulative bucket sequence over strictly increasing le
// edges, and consistent _count/_sum/+Inf samples.
func TestHDRExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.HDRHistogram("test_hdr_seconds", "hdr exposition round-trip")
	hv := reg.HDRHistogramVec("test_hdr_vec_seconds", "labelled hdr family", "shard")
	rng := rand.New(rand.NewSource(11))
	var sum float64
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(3_000_000)) * time.Microsecond
		h.Record(d)
		sum += d.Seconds()
		hv.With(strconv.Itoa(i % 3)).Record(d)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"test_hdr_seconds", "test_hdr_vec_seconds"} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %s missing", name)
		}
		if fam.Type != "histogram" {
			t.Fatalf("family %s type %q, want histogram", name, fam.Type)
		}
	}

	// Validate cumulative-bucket shape per label set.
	type series struct {
		les    []float64
		counts []float64
		inf    float64
		count  float64
		sum    float64
	}
	byShard := map[string]*series{}
	get := func(sh string) *series {
		s := byShard[sh]
		if s == nil {
			s = &series{}
			byShard[sh] = s
		}
		return s
	}
	for _, sm := range fams["test_hdr_seconds"].Samples {
		s := get("")
		switch sm.Name {
		case "test_hdr_seconds_bucket":
			if sm.Labels["le"] == "+Inf" {
				s.inf = sm.Value
				continue
			}
			le, err := strconv.ParseFloat(sm.Labels["le"], 64)
			if err != nil {
				t.Fatalf("unparseable le %q: %v", sm.Labels["le"], err)
			}
			s.les = append(s.les, le)
			s.counts = append(s.counts, sm.Value)
		case "test_hdr_seconds_count":
			s.count = sm.Value
		case "test_hdr_seconds_sum":
			s.sum = sm.Value
		}
	}
	s := get("")
	if len(s.les) == 0 {
		t.Fatal("no finite buckets exposed")
	}
	for i := 1; i < len(s.les); i++ {
		if s.les[i] <= s.les[i-1] {
			t.Fatalf("le edges not strictly increasing: %v then %v", s.les[i-1], s.les[i])
		}
		if s.counts[i] < s.counts[i-1] {
			t.Fatalf("cumulative counts decreasing: %v then %v at le=%v", s.counts[i-1], s.counts[i], s.les[i])
		}
	}
	if s.inf != 5000 || s.count != 5000 {
		t.Fatalf("+Inf=%v count=%v, want 5000", s.inf, s.count)
	}
	if s.counts[len(s.counts)-1] > s.inf {
		t.Fatalf("last finite bucket %v exceeds +Inf %v", s.counts[len(s.counts)-1], s.inf)
	}
	// Sum is recorded in whole microseconds; allow that much slack.
	if diff := s.sum - sum; diff > 0.01 || diff < -0.01 {
		t.Fatalf("sum %v, want ~%v", s.sum, sum)
	}

	// Vec children: every shard label present, each summing to its share.
	var vecTotal float64
	for _, sm := range fams["test_hdr_vec_seconds"].Samples {
		if sm.Name == "test_hdr_vec_seconds_count" {
			vecTotal += sm.Value
			if sm.Labels["shard"] == "" {
				t.Fatalf("vec sample missing shard label: %+v", sm)
			}
		}
	}
	if vecTotal != 5000 {
		t.Fatalf("vec counts sum %v, want 5000", vecTotal)
	}
}

// TestHDRSnapshotMerge checks Merge: counts, sums, and maxima combine.
func TestHDRSnapshotMerge(t *testing.T) {
	a, b := NewHDRHistogram(), NewHDRHistogram()
	for i := 0; i < 10; i++ {
		a.Record(time.Millisecond)
		b.Record(100 * time.Millisecond)
	}
	m := NewHDRSnapshot()
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	m.Merge(nil)
	if m.Count() != 20 {
		t.Fatalf("merged count %d, want 20", m.Count())
	}
	if m.Max() != 100*time.Millisecond {
		t.Fatalf("merged max %v, want 100ms", m.Max())
	}
	if q := m.Quantile(0.25); q < 900*time.Microsecond || q > 1100*time.Microsecond {
		t.Fatalf("merged q25 %v, want ~1ms", q)
	}
}

// TestHDRObserveSeconds checks the Observer-compat entry point records
// seconds, so an HDRHistogram drops into obs.StartSpan.
func TestHDRObserveSeconds(t *testing.T) {
	h := NewHDRHistogram()
	h.Observe(0.005)
	h.Observe(-1) // clamps to zero, still counts
	s := h.Snapshot()
	if s.Count() != 2 {
		t.Fatalf("count %d, want 2", s.Count())
	}
	if s.Max() != 5*time.Millisecond {
		t.Fatalf("max %v, want 5ms", s.Max())
	}
	sp := StartSpan("stage", h)
	if sp.End() < 0 {
		t.Fatal("span duration negative")
	}
	if h.Count() != 3 {
		t.Fatalf("span did not observe: count %d", h.Count())
	}
}
