// Package obs is the repo's dependency-free observability layer: atomic
// counters, gauges, and fixed-bucket latency histograms registered in a
// Registry with hand-rolled Prometheus text exposition, a leveled structured
// logger (logfmt or JSON), and a lightweight Span helper for per-stage
// timings. Everything is stdlib-only and safe for concurrent use; the hot
// paths (Counter.Inc, Histogram.Observe, resolved Vec children) are single
// atomic operations so instrumentation can sit inside the serving and
// training loops without measurable cost.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds, in seconds, spanning
// sub-millisecond HTTP handlers through multi-minute re-inference jobs.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// RequestLatencyBuckets are histogram bounds, in seconds, tuned for
// interactive HTTP handlers: dense below 100ms where queries live, topping
// out at 10s where anything slower is an outage, not a tail.
var RequestLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// JobDurationBuckets are histogram bounds, in seconds, tuned for pipeline
// stages and background jobs: sub-millisecond incremental window updates
// through half-hour full re-inference runs.
var JobDurationBuckets = []float64{
	0.0001, 0.00025, 0.001, 0.005, 0.025, 0.1, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800,
}

// metric is anything the registry can expose in Prometheus text format.
type metric interface {
	expose(w *bufio.Writer)
}

// Registry holds a named set of metrics and renders them in registration
// order. The zero value is not usable; call NewRegistry. Default is the
// process-wide registry every package-level metric registers into.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// Default is the process-wide registry served at GET /v1/metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds m under name, panicking on duplicates — metric names are
// package-level constants, so a collision is a programming error.
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Values are read atomically per sample;
// the exposition as a whole is not a consistent snapshot, which Prometheus
// scrapes tolerate by design.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		m.expose(bw)
	}
	return bw.Flush()
}

// Observer is anything that can record a single observation in seconds —
// both histogram kinds implement it, so span timings and instrumented stages
// accept either without caring about bucket layout.
type Observer interface {
	Observe(v float64)
}

// funcMetric adapts a callback into the registry's metric interface, for
// components that render their own exposition text (the cluster frontend
// re-exporting peer quality metrics, for example).
type funcMetric func(w io.Writer)

func (f funcMetric) expose(w *bufio.Writer) { f(w) }

// Exposer registers fn to append raw exposition text on every scrape. The
// callback owns its families end to end (HELP/TYPE lines included) and must
// not collide with names registered through the typed constructors — name is
// reserved in the registry to catch exactly that.
func (r *Registry) Exposer(name string, fn func(w io.Writer)) {
	r.register(name, funcMetric(fn))
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name   string
	labels string // pre-rendered {k="v",...} or ""
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a caller bug and are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is a binary
// search plus two atomic adds, safe from any number of goroutines.
type Histogram struct {
	name   string
	labels string
	bounds []float64      // upper bounds, strictly increasing
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Counter registers and returns a new unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name}
	r.register(name, &singleMetric{name: name, help: help, typ: "counter", m: c})
	return c
}

// Gauge registers and returns a new unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name}
	r.register(name, &singleMetric{name: name, help: help, typ: "gauge", m: g})
	return g
}

// Histogram registers and returns a new unlabelled histogram with the given
// upper bounds (nil means LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, "", bounds)
	r.register(name, &singleMetric{name: name, help: help, typ: "histogram", m: h})
	return h
}

func newHistogram(name, labels string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return &Histogram{
		name:   name,
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// singleMetric is the exposition wrapper of one unlabelled metric.
type singleMetric struct {
	name, help, typ string
	m               any
}

func (s *singleMetric) expose(w *bufio.Writer) {
	writeHeader(w, s.name, s.help, s.typ)
	switch m := s.m.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s %d\n", s.name, m.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(m.Value()))
	case *Histogram:
		exposeHistogram(w, m)
	case *HDRHistogram:
		exposeHDR(w, m)
	}
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func exposeHistogram(w *bufio.Writer, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(h.labels, `le="`+formatFloat(b)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(h.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.count.Load())
}

// mergeLabels appends extra to a pre-rendered {..} label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// escapeLabel escapes a label value for exposition.
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// renderLabels renders {k1="v1",k2="v2"} for the given keys and values.
func renderLabels(keys, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// vec is the shared child bookkeeping of the labelled metric families. The
// child lookup takes an RWMutex read lock; hot paths should resolve children
// once (With) and hold on to them.
type vec struct {
	name, help, typ string
	keys            []string
	mu              sync.RWMutex
	children        map[string]metricChild
	order           []string
}

type metricChild struct {
	labels string
	m      any
}

func (v *vec) child(values []string, mk func(labels string) any) any {
	if len(values) != len(v.keys) {
		panic("obs: " + v.name + ": label value count mismatch")
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.m
	}
	labels := renderLabels(v.keys, values)
	m := mk(labels)
	v.children[key] = metricChild{labels: labels, m: m}
	v.order = append(v.order, key)
	return m
}

func (v *vec) expose(w *bufio.Writer) {
	writeHeader(w, v.name, v.help, v.typ)
	v.mu.RLock()
	keys := make([]string, len(v.order))
	copy(keys, v.order)
	children := make([]metricChild, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	// Sort by rendered labels for a deterministic exposition.
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	for _, c := range children {
		switch m := c.m.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", v.name, c.labels, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", v.name, c.labels, formatFloat(m.Value()))
		case *Histogram:
			exposeHistogram(w, m)
		case *HDRHistogram:
			exposeHDR(w, m)
		}
	}
}

// CounterVec is a counter family with a fixed label-key set.
type CounterVec struct {
	v *vec
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	cv := &CounterVec{v: &vec{name: name, help: help, typ: "counter", keys: keys, children: make(map[string]metricChild)}}
	r.register(name, cv.v)
	return cv
}

// With returns (creating if needed) the child counter for the label values.
func (c *CounterVec) With(values ...string) *Counter {
	return c.v.child(values, func(labels string) any {
		return &Counter{name: c.v.name, labels: labels}
	}).(*Counter)
}

// GaugeVec is a gauge family with a fixed label-key set.
type GaugeVec struct {
	v *vec
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	gv := &GaugeVec{v: &vec{name: name, help: help, typ: "gauge", keys: keys, children: make(map[string]metricChild)}}
	r.register(name, gv.v)
	return gv
}

// With returns (creating if needed) the child gauge for the label values.
func (g *GaugeVec) With(values ...string) *Gauge {
	return g.v.child(values, func(labels string) any {
		return &Gauge{name: g.v.name, labels: labels}
	}).(*Gauge)
}

// HistogramVec is a histogram family with a fixed label-key set.
type HistogramVec struct {
	v      *vec
	bounds []float64
}

// HistogramVec registers a labelled histogram family with the given upper
// bounds (nil means LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	hv := &HistogramVec{
		v:      &vec{name: name, help: help, typ: "histogram", keys: keys, children: make(map[string]metricChild)},
		bounds: bounds,
	}
	r.register(name, hv.v)
	return hv
}

// With returns (creating if needed) the child histogram for the label values.
func (h *HistogramVec) With(values ...string) *Histogram {
	return h.v.child(values, func(labels string) any {
		return newHistogram(h.v.name, labels, h.bounds)
	}).(*Histogram)
}
