package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"dlinfma/internal/obs/trace"
)

// TestStartSpanCtxNoTrace checks the StartSpanCtx contract on untraced
// paths: metric behaviour identical to StartSpan, nil trace side.
func TestStartSpanCtxNoTrace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "", []float64{10})
	sp := StartSpanCtx(context.Background(), "stage", h)
	if sp.TraceSpan() != nil {
		t.Fatal("untraced SpanCtx carries a trace span")
	}
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 || h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("span end: d=%v count=%d sum=%v", d, h.Count(), h.Sum())
	}
}

func TestStartSpanCtxTraced(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "", []float64{10})
	st := trace.NewStore(4)
	tr := trace.NewTracer(trace.Options{SampleProb: 1, Store: st})
	ctx, root := tr.StartRoot(context.Background(), "job", trace.SpanContext{})

	sp := StartSpanCtx(ctx, "fit", h)
	inner := StartSpanCtx(sp.Context(), "predict", h)
	inner.End()
	sp.End()
	root.End()

	if h.Count() != 2 {
		t.Fatalf("histogram count = %d, want 2", h.Count())
	}
	got := st.Get(root.TraceID())
	if got == nil {
		t.Fatal("trace not stored")
	}
	byName := map[string]trace.SpanData{}
	for _, sd := range got.Spans {
		byName[sd.Name] = sd
	}
	fit, ok := byName["fit"]
	if !ok || fit.ParentID != byName["job"].SpanID {
		t.Fatalf("fit span %+v not a child of job %+v", fit, byName["job"])
	}
	if pred := byName["predict"]; pred.ParentID != fit.SpanID {
		t.Fatalf("predict parent %q, want fit %q", pred.ParentID, fit.SpanID)
	}
}

func TestLoggerWithTrace(t *testing.T) {
	tr := trace.NewTracer(trace.Options{SampleProb: 1})
	ctx, root := tr.StartRoot(context.Background(), "req", trace.SpanContext{})
	defer root.End()

	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, FormatLogfmt)
	l.WithTrace(ctx).Info("hello")
	line := sb.String()
	if !strings.Contains(line, "trace_id="+root.TraceID().String()) {
		t.Fatalf("log line missing trace_id: %q", line)
	}
	if !strings.Contains(line, "span_id="+root.ID().String()) {
		t.Fatalf("log line missing span_id: %q", line)
	}

	// No span in ctx: logger returned unchanged, no trace fields.
	sb.Reset()
	l.WithTrace(context.Background()).Info("plain")
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatalf("untraced line has trace_id: %q", sb.String())
	}
	if got := l.WithTrace(context.Background()); got != l {
		t.Fatal("WithTrace without span should return the same logger")
	}

	// Nil logger stays nil.
	var nl *Logger
	if nl.WithTrace(ctx) != nil {
		t.Fatal("nil logger WithTrace not nil")
	}
}
