package obs

import (
	"context"
	"time"

	"dlinfma/internal/obs/trace"
)

// Span times one stage of work into a histogram. It is a value type — no
// allocation — so the canonical use is a one-liner:
//
//	defer obs.StartSpan("fit", stageFit).End()
//
// or, when the duration is also needed:
//
//	sp := obs.StartSpan("reinfer", reinferDur)
//	...
//	d := sp.End()
type Span struct {
	name  string
	start time.Time
	hist  Observer
}

// StartSpan starts a span that will observe its duration, in seconds, into
// hist (nil hist: timing only). Either histogram kind satisfies Observer.
func StartSpan(name string, hist Observer) Span {
	return Span{name: name, start: time.Now(), hist: hist}
}

// Name returns the span's stage name.
func (s Span) Name() string { return s.name }

// End records the elapsed time into the span's histogram and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	return d
}

// EndLog is End plus a debug line on l with the duration and extra pairs.
func (s Span) EndLog(l *Logger, pairs ...any) time.Duration {
	d := s.End()
	if l.Enabled(LevelDebug) {
		l.Debug(s.name, append([]any{"dur", d}, pairs...)...)
	}
	return d
}

// SpanCtx is a Span that additionally participates in the request trace
// carried by the context it was started with. End observes the histogram
// exactly as Span.End does, so metric behaviour is identical whether or not
// a trace is active.
type SpanCtx struct {
	Span
	ctx context.Context
	tsp *trace.Span
}

// StartSpanCtx starts a stage span that both observes hist and, when ctx
// carries an active trace span, records a child span of the same name in the
// trace. With no active trace the trace side is a nil-span no-op and the
// call degrades to StartSpan.
func StartSpanCtx(ctx context.Context, name string, hist Observer) SpanCtx {
	tctx, tsp := trace.Start(ctx, name)
	return SpanCtx{Span: StartSpan(name, hist), ctx: tctx, tsp: tsp}
}

// Context returns the context carrying the trace span, for passing to nested
// stages so their spans parent under this one.
func (s SpanCtx) Context() context.Context { return s.ctx }

// TraceSpan returns the underlying trace span (nil when no trace is active)
// for attaching attributes or errors.
func (s SpanCtx) TraceSpan() *trace.Span { return s.tsp }

// End finishes both sides: the trace span and the histogram observation.
func (s SpanCtx) End() time.Duration {
	s.tsp.End()
	return s.Span.End()
}
