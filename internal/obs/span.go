package obs

import "time"

// Span times one stage of work into a histogram. It is a value type — no
// allocation — so the canonical use is a one-liner:
//
//	defer obs.StartSpan("fit", stageFit).End()
//
// or, when the duration is also needed:
//
//	sp := obs.StartSpan("reinfer", reinferDur)
//	...
//	d := sp.End()
type Span struct {
	name  string
	start time.Time
	hist  *Histogram
}

// StartSpan starts a span that will observe its duration, in seconds, into
// hist (nil hist: timing only).
func StartSpan(name string, hist *Histogram) Span {
	return Span{name: name, start: time.Now(), hist: hist}
}

// Name returns the span's stage name.
func (s Span) Name() string { return s.name }

// End records the elapsed time into the span's histogram and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	return d
}

// EndLog is End plus a debug line on l with the duration and extra pairs.
func (s Span) EndLog(l *Logger, pairs ...any) time.Duration {
	d := s.End()
	if l.Enabled(LevelDebug) {
		l.Debug(s.name, append([]any{"dur", d}, pairs...)...)
	}
	return d
}
