package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dlinfma/internal/obs/trace"
)

// Level is a log severity. Messages below the logger's level are dropped.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// Format selects the line encoding.
type Format int

// Line encodings.
const (
	FormatLogfmt Format = iota
	FormatJSON
)

// ParseFormat maps a format name to its Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "logfmt", "text", "":
		return FormatLogfmt, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatLogfmt, fmt.Errorf("obs: unknown log format %q (logfmt|json)", s)
}

// Logger writes leveled structured lines (key=value or JSON) to one writer.
// All methods are safe on a nil *Logger, which drops everything — callers
// can thread an optional logger without nil checks. Derived loggers from
// With share the writer, mutex, and level.
type Logger struct {
	w      io.Writer
	mu     *sync.Mutex
	level  *atomic.Int32
	format Format
	fields []kv
	// now is the clock, swappable in tests.
	now func() time.Time
}

type kv struct {
	k string
	v any
}

// NewLogger returns a logger writing to w at the given level and format.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	l := &Logger{w: w, mu: &sync.Mutex{}, level: &atomic.Int32{}, format: format, now: time.Now}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the level of this logger and everything derived from it.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether a message at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// With returns a logger that adds the given alternating key/value pairs to
// every line. With on a nil logger returns nil.
func (l *Logger) With(pairs ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.fields = append(append([]kv(nil), l.fields...), toKVs(pairs)...)
	return &d
}

// WithTrace returns a logger stamping trace_id and span_id from the span
// carried by ctx, so log lines correlate with /v1/debug/traces entries. When
// ctx carries no span (tracing off, background path) it returns l unchanged,
// so the call is safe to make unconditionally on hot log paths.
func (l *Logger) WithTrace(ctx context.Context) *Logger {
	if l == nil {
		return nil
	}
	sp := trace.SpanFromContext(ctx)
	if sp == nil {
		return l
	}
	return l.With("trace_id", sp.TraceID().String(), "span_id", sp.ID().String())
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, pairs ...any) { l.log(LevelDebug, msg, pairs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, pairs ...any) { l.log(LevelInfo, msg, pairs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, pairs ...any) { l.log(LevelWarn, msg, pairs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, pairs ...any) { l.log(LevelError, msg, pairs) }

func toKVs(pairs []any) []kv {
	out := make([]kv, 0, (len(pairs)+1)/2)
	for i := 0; i < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			k = fmt.Sprint(pairs[i])
		}
		var v any = "(MISSING)"
		if i+1 < len(pairs) {
			v = pairs[i+1]
		}
		out = append(out, kv{k: k, v: v})
	}
	return out
}

func (l *Logger) log(level Level, msg string, pairs []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	ts := l.now().UTC().Format(time.RFC3339Nano)
	fields := append(append([]kv(nil), l.fields...), toKVs(pairs)...)
	if l.format == FormatJSON {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(level.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for _, f := range fields {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(f.k))
			b.WriteByte(':')
			b.WriteString(jsonValue(f.v))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(logfmtValue(msg))
		for _, f := range fields {
			b.WriteByte(' ')
			b.WriteString(f.k)
			b.WriteByte('=')
			b.WriteString(logfmtValue(fmt.Sprint(f.v)))
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// jsonValue encodes one field value: numbers and bools raw, everything else
// as a quoted string.
func jsonValue(v any) string {
	switch x := v.(type) {
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		return strconv.Quote(x.String())
	case error:
		return strconv.Quote(x.Error())
	case string:
		return strconv.Quote(x)
	default:
		return strconv.Quote(fmt.Sprint(x))
	}
}

// logfmtValue quotes a value when it contains logfmt-breaking characters.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " =\"\n\t") {
		return strconv.Quote(s)
	}
	return s
}
