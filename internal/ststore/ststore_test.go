package ststore

import (
	"math/rand"
	"sync"
	"testing"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/synth"
	"dlinfma/internal/traj"
)

func lineTraj(t0 float64, pts ...geo.Point) traj.Trajectory {
	var tr traj.Trajectory
	for i, p := range pts {
		tr = append(tr, traj.GPSPoint{P: p, T: t0 + float64(i)*10})
	}
	return tr
}

func TestAddAndRetrieve(t *testing.T) {
	s := New(50, 600)
	tr := lineTraj(0, geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}, geo.Point{X: 200, Y: 0})
	id := s.AddTrajectory(3, tr)
	got, ok := s.Trajectory(id)
	if !ok || len(got) != 3 {
		t.Fatalf("Trajectory: %v %v", got, ok)
	}
	if c, ok := s.Courier(id); !ok || c != 3 {
		t.Errorf("Courier = %v %v", c, ok)
	}
	if _, ok := s.Trajectory(99); ok {
		t.Error("unknown id found")
	}
	if _, ok := s.Courier(-1); ok {
		t.Error("negative id found")
	}
	if s.Len() != 1 || s.Points() != 3 {
		t.Errorf("Len=%d Points=%d", s.Len(), s.Points())
	}
}

func TestSlice(t *testing.T) {
	s := New(50, 600)
	id := s.AddTrajectory(0, lineTraj(0, geo.Point{}, geo.Point{X: 10}, geo.Point{X: 20}, geo.Point{X: 30}))
	got := s.Slice(id, 5, 25)
	if len(got) != 2 {
		t.Errorf("slice has %d points, want 2", len(got))
	}
	if got := s.Slice(99, 0, 100); got != nil {
		t.Error("unknown id slice should be nil")
	}
}

func TestQueryWindow(t *testing.T) {
	s := New(50, 600)
	// Two trajectories crossing a region at different times.
	s.AddTrajectory(0, lineTraj(0, geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100}, geo.Point{X: 200, Y: 200}))
	s.AddTrajectory(1, lineTraj(5000, geo.Point{X: 100, Y: 100}, geo.Point{X: 300, Y: 300}))

	// Window around (100,100) at early times: only the first trajectory.
	r := geo.NewRect(geo.Point{X: 80, Y: 80}, geo.Point{X: 120, Y: 120})
	refs := s.QueryWindow(r, 0, 1000)
	if len(refs) != 1 || refs[0].Traj != 0 || refs[0].Index != 1 {
		t.Fatalf("refs = %v", refs)
	}
	// Same window, late times: only the second.
	refs = s.QueryWindow(r, 4000, 6000)
	if len(refs) != 1 || refs[0].Traj != 1 {
		t.Fatalf("late refs = %v", refs)
	}
	// Inverted time range.
	if refs := s.QueryWindow(r, 10, 0); refs != nil {
		t.Error("inverted range should be empty")
	}
}

func TestQueryWindowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(80, 500)
	var all []struct {
		ref PointRef
		p   traj.GPSPoint
	}
	for id := 0; id < 10; id++ {
		var tr traj.Trajectory
		tm := rng.Float64() * 5000
		for i := 0; i < 50; i++ {
			tm += 5 + rng.Float64()*20
			tr = append(tr, traj.GPSPoint{
				P: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				T: tm,
			})
		}
		tid := s.AddTrajectory(model.CourierID(id%3), tr)
		for i, p := range tr {
			all = append(all, struct {
				ref PointRef
				p   traj.GPSPoint
			}{PointRef{tid, i}, p})
		}
	}
	for trial := 0; trial < 30; trial++ {
		r := geo.NewRect(
			geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		)
		t0 := rng.Float64() * 6000
		t1 := t0 + rng.Float64()*2000
		got := s.QueryWindow(r, t0, t1)
		want := 0
		for _, e := range all {
			if e.p.T >= t0 && e.p.T <= t1 && r.Contains(e.p.P) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d refs, want %d", trial, len(got), want)
		}
	}
}

func TestVisitingCouriers(t *testing.T) {
	s := New(50, 600)
	s.AddTrajectory(2, lineTraj(0, geo.Point{X: 10, Y: 10}))
	s.AddTrajectory(5, lineTraj(100, geo.Point{X: 12, Y: 12}))
	s.AddTrajectory(2, lineTraj(200, geo.Point{X: 14, Y: 14}))
	s.AddTrajectory(9, lineTraj(0, geo.Point{X: 900, Y: 900}))
	cs := s.VisitingCouriers(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 50, Y: 50}), 0, 1000)
	if len(cs) != 2 || cs[0] != 2 || cs[1] != 5 {
		t.Errorf("couriers = %v, want [2 5]", cs)
	}
}

func TestWaybillsAndAnnotatedLocation(t *testing.T) {
	s := New(50, 600)
	id := s.AddTrajectory(0, lineTraj(0, geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}))
	w := model.Waybill{Addr: 7, RecordedDeliveryT: 5, ActualDeliveryT: 5}
	s.AddWaybill(id, w)
	refs := s.WaybillsOf(7)
	if len(refs) != 1 {
		t.Fatalf("WaybillsOf = %v", refs)
	}
	loc, ok := s.AnnotatedLocation(refs[0])
	if !ok {
		t.Fatal("no annotated location")
	}
	// Interpolated midpoint of the first segment at t=5.
	if geo.Dist(loc, geo.Point{X: 50, Y: 0}) > 1e-9 {
		t.Errorf("annotated location %v, want (50,0)", loc)
	}
	if _, ok := s.AnnotatedLocation(WaybillRef{Traj: 55}); ok {
		t.Error("bad ref should fail")
	}
	if got := s.WaybillsOf(99); len(got) != 0 {
		t.Errorf("unknown address waybills: %v", got)
	}
}

func TestIngestDataset(t *testing.T) {
	ds, _, err := synth.GenerateClean(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := New(100, 3600)
	ids := s.IngestDataset(ds)
	if len(ids) != len(ds.Trips) {
		t.Fatalf("ingested %d trips, want %d", len(ids), len(ds.Trips))
	}
	if s.Points() != ds.TrajectoryPoints() {
		t.Errorf("Points = %d, want %d", s.Points(), ds.TrajectoryPoints())
	}
	// Every address's waybills are retrievable and their annotated location
	// is close to the courier's position at the recorded time.
	checked := 0
	for _, tr := range ds.Trips[:3] {
		for _, w := range tr.Waybills {
			refs := s.WaybillsOf(w.Addr)
			if len(refs) == 0 {
				t.Fatalf("no waybills for address %d", w.Addr)
			}
			loc, ok := s.AnnotatedLocation(refs[0])
			if !ok {
				t.Fatal("no annotated location")
			}
			trj, _ := s.Trajectory(refs[0].Traj)
			want := trj.At(refs[0].Waybill.RecordedDeliveryT)
			if geo.Dist(loc, want) > 1e-9 {
				t.Fatal("annotated location mismatch")
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	s := New(50, 600)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				tr := lineTraj(float64(i)*100, geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500})
				id := s.AddTrajectory(model.CourierID(g), tr)
				s.AddWaybill(id, model.Waybill{Addr: model.AddressID(g)})
				s.QueryWindow(geo.Rect{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}, 0, 1e6)
				s.WaybillsOf(model.AddressID(g))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 300 {
		t.Errorf("Len = %d, want 300", s.Len())
	}
}

func TestDefaults(t *testing.T) {
	s := New(0, 0)
	if s.cell != 100 || s.timeBucket != 3600 {
		t.Errorf("defaults: cell=%v bucket=%v", s.cell, s.timeBucket)
	}
}
