// Package ststore is a compact spatio-temporal data engine standing in for
// JUST, the platform the deployed system uses to store and query couriers'
// raw trajectories and waybills (Section VI-A, Figure 14). It offers
// bulk ingestion, per-trajectory time slicing, and spatio-temporal window
// queries over an in-memory grid/time index. Reads and writes are safe for
// concurrent use.
package ststore

import (
	"math"
	"sort"
	"sync"

	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/traj"
)

// TrajectoryID identifies an ingested trajectory.
type TrajectoryID int32

// PointRef addresses one GPS fix inside a stored trajectory.
type PointRef struct {
	Traj  TrajectoryID
	Index int
}

// WaybillRef pairs a waybill with the trajectory of its trip.
type WaybillRef struct {
	Traj    TrajectoryID
	Waybill model.Waybill
}

// Store is the engine. The zero value is not usable; call New.
type Store struct {
	mu sync.RWMutex

	cell       float64
	timeBucket float64

	trajs    []traj.Trajectory
	couriers []model.CourierID
	index    map[[3]int32][]PointRef
	waybills map[model.AddressID][]WaybillRef
}

// New returns an empty store with the given spatial cell size (meters) and
// time bucket (seconds) for the window index. 100 m / 1 h are sensible
// defaults for delivery workloads; non-positive arguments select them.
func New(cellSize, timeBucket float64) *Store {
	if cellSize <= 0 {
		cellSize = 100
	}
	if timeBucket <= 0 {
		timeBucket = 3600
	}
	return &Store{
		cell:       cellSize,
		timeBucket: timeBucket,
		index:      make(map[[3]int32][]PointRef),
		waybills:   make(map[model.AddressID][]WaybillRef),
	}
}

func (s *Store) key(p geo.Point, t float64) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / s.cell)),
		int32(math.Floor(p.Y / s.cell)),
		int32(math.Floor(t / s.timeBucket)),
	}
}

// AddTrajectory ingests a trajectory and returns its id. The trajectory must
// be time-ordered; the slice is retained (not copied).
func (s *Store) AddTrajectory(courier model.CourierID, tr traj.Trajectory) TrajectoryID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := TrajectoryID(len(s.trajs))
	s.trajs = append(s.trajs, tr)
	s.couriers = append(s.couriers, courier)
	for i, p := range tr {
		k := s.key(p.P, p.T)
		s.index[k] = append(s.index[k], PointRef{Traj: id, Index: i})
	}
	return id
}

// AddWaybill attaches a waybill to an ingested trajectory.
func (s *Store) AddWaybill(id TrajectoryID, w model.Waybill) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waybills[w.Addr] = append(s.waybills[w.Addr], WaybillRef{Traj: id, Waybill: w})
}

// Len returns the number of stored trajectories.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.trajs)
}

// Points returns the total number of stored GPS fixes.
func (s *Store) Points() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, tr := range s.trajs {
		n += len(tr)
	}
	return n
}

// Trajectory returns the stored trajectory with the given id (shared
// storage; callers must not mutate).
func (s *Store) Trajectory(id TrajectoryID) (traj.Trajectory, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || int(id) >= len(s.trajs) {
		return nil, false
	}
	return s.trajs[id], true
}

// Courier returns the courier of a trajectory.
func (s *Store) Courier(id TrajectoryID) (model.CourierID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || int(id) >= len(s.couriers) {
		return 0, false
	}
	return s.couriers[id], true
}

// Slice returns the [t0, t1] time slice of a stored trajectory.
func (s *Store) Slice(id TrajectoryID, t0, t1 float64) traj.Trajectory {
	tr, ok := s.Trajectory(id)
	if !ok {
		return nil
	}
	return tr.Slice(t0, t1)
}

// QueryWindow returns references to every stored fix inside the spatial
// rectangle during [t0, t1], ordered by (trajectory, index).
func (s *Store) QueryWindow(r geo.Rect, t0, t1 float64) []PointRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t1 < t0 {
		return nil
	}
	var out []PointRef
	x0 := int32(math.Floor(r.MinX / s.cell))
	x1 := int32(math.Floor(r.MaxX / s.cell))
	y0 := int32(math.Floor(r.MinY / s.cell))
	y1 := int32(math.Floor(r.MaxY / s.cell))
	b0 := int32(math.Floor(t0 / s.timeBucket))
	b1 := int32(math.Floor(t1 / s.timeBucket))
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			for bt := b0; bt <= b1; bt++ {
				for _, ref := range s.index[[3]int32{cx, cy, bt}] {
					p := s.trajs[ref.Traj][ref.Index]
					if p.T >= t0 && p.T <= t1 && r.Contains(p.P) {
						out = append(out, ref)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Traj != out[j].Traj {
			return out[i].Traj < out[j].Traj
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// VisitingCouriers returns the distinct couriers with at least one fix in
// the window, sorted.
func (s *Store) VisitingCouriers(r geo.Rect, t0, t1 float64) []model.CourierID {
	refs := s.QueryWindow(r, t0, t1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[model.CourierID]bool)
	for _, ref := range refs {
		seen[s.couriers[ref.Traj]] = true
	}
	out := make([]model.CourierID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WaybillsOf returns the historical deliveries of an address.
func (s *Store) WaybillsOf(addr model.AddressID) []WaybillRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]WaybillRef(nil), s.waybills[addr]...)
}

// IngestDataset bulk-loads a dataset's trips. It returns the trajectory ids
// in trip order.
func (s *Store) IngestDataset(ds *model.Dataset) []TrajectoryID {
	ids := make([]TrajectoryID, len(ds.Trips))
	for i, tr := range ds.Trips {
		id := s.AddTrajectory(tr.Courier, tr.Traj)
		ids[i] = id
		for _, w := range tr.Waybills {
			s.AddWaybill(id, w)
		}
	}
	return ids
}

// AnnotatedLocation returns the courier's position at a waybill's recorded
// delivery time — the store-side primitive behind the annotation-based
// related work and the Env.Annotations computation.
func (s *Store) AnnotatedLocation(ref WaybillRef) (geo.Point, bool) {
	tr, ok := s.Trajectory(ref.Traj)
	if !ok || len(tr) == 0 {
		return geo.Point{}, false
	}
	return tr.At(ref.Waybill.RecordedDeliveryT), true
}
