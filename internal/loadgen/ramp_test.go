package loadgen

import (
	"context"
	"testing"
	"time"
)

// modelRunner fabricates stage results from a queueing-flavored latency
// model: p99 = base / (1 - rate/capacity), errors past an overload knee.
// The ramp controller only sees StageResults, so this exercises its full
// decision logic without a server or a clock.
func modelRunner(capacity float64, baseP99 time.Duration) StageRunner {
	return func(_ context.Context, rate float64, _ time.Duration) (StageResult, error) {
		res := StageResult{TargetQPS: rate, AchievedQPS: rate, Requests: int64(rate * 10)}
		util := rate / capacity
		if util >= 1 {
			res.P99 = 10 * time.Second
			res.Errors = res.Requests / 2
			res.AchievedQPS = capacity
		} else {
			res.P99 = time.Duration(float64(baseP99) / (1 - util))
		}
		res.P50 = res.P99 / 4
		return res, nil
	}
}

// TestRampStopsAtSLOBreach ramps against a model with capacity 1000 and a
// p99 SLO the model breaks around 80% utilization; the reported sustainable
// rate must be the last passing stage, not the breaching one.
func TestRampStopsAtSLOBreach(t *testing.T) {
	out, err := Ramp(context.Background(), RampConfig{
		StartQPS:      100,
		StepQPS:       100,
		StageDuration: time.Second,
		SLO:           SLO{P99: 50 * time.Millisecond, MaxErrorRate: 0.01},
	}, modelRunner(1000, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if out.Breach != BreachP99 {
		t.Fatalf("breach %q, want p99", out.Breach)
	}
	// Model: p99 = 10ms/(1-r/1000) > 50ms once r > 800.
	if out.MaxSustainableQPS != 800 {
		t.Fatalf("max sustainable %v, want 800", out.MaxSustainableQPS)
	}
	if out.Sustained == nil || out.Sustained.TargetQPS != 800 {
		t.Fatalf("sustained stage %+v", out.Sustained)
	}
	last := out.Stages[len(out.Stages)-1]
	if last.TargetQPS != 900 {
		t.Fatalf("breaching stage at %v, want 900", last.TargetQPS)
	}
}

// TestRampErrorRateBreach drives the model straight past its overload knee
// with a giant first step: even the first stage breaching must yield a
// zero-capacity outcome, not a panic or a stale rate.
func TestRampErrorRateBreach(t *testing.T) {
	out, err := Ramp(context.Background(), RampConfig{
		StartQPS:      2000,
		StepQPS:       100,
		StageDuration: time.Second,
		SLO:           SLO{MaxErrorRate: 0.01},
	}, modelRunner(1000, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if out.Breach != BreachErrors {
		t.Fatalf("breach %q, want error_rate", out.Breach)
	}
	if out.MaxSustainableQPS != 0 || out.Sustained != nil {
		t.Fatalf("first-stage breach must report 0 capacity, got %v", out.MaxSustainableQPS)
	}
}

// TestRampClientSaturation models a generator that can only push 300 qps:
// achieved plateaus while the SLO holds, and the controller must stop with
// the honest client_saturated verdict crediting the achieved rate.
func TestRampClientSaturation(t *testing.T) {
	run := func(_ context.Context, rate float64, _ time.Duration) (StageResult, error) {
		achieved := rate
		if achieved > 300 {
			achieved = 300
		}
		return StageResult{
			TargetQPS:   rate,
			AchievedQPS: achieved,
			Requests:    int64(achieved * 10),
			P99:         5 * time.Millisecond,
		}, nil
	}
	out, err := Ramp(context.Background(), RampConfig{
		StartQPS:      100,
		StepQPS:       100,
		StageDuration: time.Second,
		SLO:           SLO{P99: time.Second, MaxErrorRate: 0.01},
	}, run)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ClientSaturated || out.Breach != BreachClientSat {
		t.Fatalf("outcome %+v, want client saturation", out)
	}
	if out.MaxSustainableQPS != 300 {
		t.Fatalf("max sustainable %v, want the achieved 300", out.MaxSustainableQPS)
	}
}

// TestRampMaxQPSCap checks a ramp that never breaches ends cleanly at
// MaxQPS with BreachNone, and geometric growth actually multiplies.
func TestRampMaxQPSCap(t *testing.T) {
	var rates []float64
	run := func(_ context.Context, rate float64, _ time.Duration) (StageResult, error) {
		rates = append(rates, rate)
		return StageResult{TargetQPS: rate, AchievedQPS: rate, Requests: 100, P99: time.Millisecond}, nil
	}
	out, err := Ramp(context.Background(), RampConfig{
		StartQPS:      100,
		Growth:        2,
		MaxQPS:        1000,
		StageDuration: time.Second,
		SLO:           SLO{P99: time.Second},
	}, run)
	if err != nil {
		t.Fatal(err)
	}
	if out.Breach != BreachNone {
		t.Fatalf("breach %q, want none", out.Breach)
	}
	want := []float64{100, 200, 400, 800}
	if len(rates) != len(want) {
		t.Fatalf("stages at %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("stage %d at %v, want %v", i, rates[i], want[i])
		}
	}
	if out.MaxSustainableQPS != 800 {
		t.Fatalf("max sustainable %v, want 800", out.MaxSustainableQPS)
	}
}

// TestRampDroppedArrivalsBreach: a stage that dropped arrivals cannot pass
// even if every launched request met the SLO — the offered rate was not
// actually offered.
func TestRampDroppedArrivalsBreach(t *testing.T) {
	run := func(_ context.Context, rate float64, _ time.Duration) (StageResult, error) {
		return StageResult{TargetQPS: rate, AchievedQPS: rate, Requests: 100, Dropped: 5, P99: time.Millisecond}, nil
	}
	out, err := Ramp(context.Background(), RampConfig{
		StartQPS: 100, StepQPS: 100, StageDuration: time.Second,
		SLO: SLO{P99: time.Second},
	}, run)
	if err != nil {
		t.Fatal(err)
	}
	if out.Breach != BreachErrors || out.MaxSustainableQPS != 0 {
		t.Fatalf("outcome %+v, want error breach at stage one", out)
	}
}

// TestRampRowConversion checks the report row picks up the sustained
// stage's percentiles.
func TestRampRowConversion(t *testing.T) {
	out := RampOutcome{
		MaxSustainableQPS: 400,
		Sustained: &StageResult{
			TargetQPS: 400, Requests: 1000, Errors: 10,
			P50: 2 * time.Millisecond, P99: 20 * time.Millisecond,
		},
		Breach: BreachP99,
	}
	row := out.Row("shards=2", 2, 0)
	if row.Config != "shards=2" || row.Shards != 2 || row.MaxSustainableQPS != 400 {
		t.Fatalf("row %+v", row)
	}
	if row.P50MS != 2 || row.P99MS != 20 || row.ErrorRate != 0.01 {
		t.Fatalf("row percentiles %+v", row)
	}
}
