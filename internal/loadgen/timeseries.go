package loadgen

import (
	"context"
	"sync"
	"time"
)

// SeriesPoint is one sampling interval of a run: offered vs achieved rate
// and the latency percentiles of just that interval (delta histograms, not
// cumulative — a cumulative p99 hides when things went bad).
type SeriesPoint struct {
	// Offset is the interval's end, measured from the start of the run.
	Offset time.Duration `json:"offset_ms"`
	// TargetQPS is the arrival rate the schedule offered in this interval.
	TargetQPS float64 `json:"target_qps"`
	// AchievedQPS counts completed operations (any outcome) per second.
	AchievedQPS float64 `json:"achieved_qps"`
	P50    time.Duration `json:"p50_us"`
	P99    time.Duration `json:"p99_us"`
	Errors int64         `json:"errors"`
	// Backpressure counts 429 rejections in the interval (not errors).
	Backpressure int64 `json:"backpressure,omitempty"`
}

// Timeseries accumulates interval samples. Safe for one sampler and many
// readers.
type Timeseries struct {
	mu  sync.Mutex
	pts []SeriesPoint
}

// NewTimeseries returns an empty series.
func NewTimeseries() *Timeseries { return &Timeseries{} }

// Append adds one interval point.
func (ts *Timeseries) Append(p SeriesPoint) {
	ts.mu.Lock()
	ts.pts = append(ts.pts, p)
	ts.mu.Unlock()
}

// Points copies the accumulated samples.
func (ts *Timeseries) Points() []SeriesPoint {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]SeriesPoint, len(ts.pts))
	copy(out, ts.pts)
	return out
}

// Sample runs a sampling loop until ctx is done: every interval it takes a
// stats snapshot, diffs it against the previous one, and appends the
// interval's qps/percentiles to the series. target reports the currently
// offered rate (it changes across ramp stages). onSample, when non-nil, is
// called with each fresh point — the terminal dashboard hangs off this.
func Sample(ctx context.Context, stats *Stats, ts *Timeseries, interval time.Duration, start time.Time, target func() float64, onSample func(SeriesPoint)) {
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := stats.Snapshot()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		cur := stats.Snapshot()
		delta := cur.Sub(prev)
		prev = cur
		merged := delta.Merged()
		reqs, errs, bp := delta.Totals()
		p := SeriesPoint{
			Offset:       time.Since(start),
			TargetQPS:    target(),
			AchievedQPS:  float64(reqs) / interval.Seconds(),
			P50:          merged.Quantile(0.50),
			P99:          merged.Quantile(0.99),
			Errors:       errs,
			Backpressure: bp,
		}
		ts.Append(p)
		if onSample != nil {
			onSample(p)
		}
	}
}
