// Package loadgen is the open-loop load generator behind cmd/swarm: it
// synthesizes realistic request mixes against a live dlinfma server, paces
// arrivals on an absolute timer schedule (so slow responses never throttle
// the offered load — the coordinated-omission trap), records latency into
// log-linear histograms, and ramps the arrival rate until an SLO breaks to
// find the maximum sustainable throughput of a configuration.
package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is HdrHistogram-shaped: values bucket into power-of-two
// major buckets, each split into 2^subBits linear sub-buckets, giving a
// bounded relative error of 1/2^subBits (~3%) at every magnitude with a
// fixed, small footprint. Values are recorded in microseconds, so the same
// layout spans 1µs RTTs and multi-second stalls.
const (
	subBits  = 5
	subCount = 1 << subBits
	// histBuckets covers every uint64 microsecond value: the maximum major
	// exponent is 64-subBits, and each contributes subCount buckets on top
	// of the doubled-width linear region at the bottom.
	histBuckets = (64-subBits)*subCount + 2*subCount
)

// bucketIndex maps a non-negative microsecond value to its bucket. Values
// below 2*subCount land exactly (linear region); larger values keep the top
// subBits+1 significant bits.
func bucketIndex(us int64) int {
	u := uint64(us)
	if u < 2*subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1
	return exp*subCount + int(u>>exp)
}

// bucketValue is the inverse: a representative (midpoint) microsecond value
// for bucket i, used when reading quantiles back out.
func bucketValue(i int) int64 {
	if i < 2*subCount {
		return int64(i)
	}
	exp := i/subCount - 1
	m := uint64(i - exp*subCount)
	return int64(m<<exp | 1<<(exp-1))
}

// Histogram is a fixed-size, lock-free latency histogram. Record is safe for
// any number of concurrent writers; Snapshot gives a point-in-time copy for
// readers. The zero value is not usable — call NewHistogram.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // microseconds, for Mean
	max    atomic.Int64 // microseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read at
// leisure while writers keep recording into the source.
type HistSnapshot struct {
	counts []int64
	total  int64
	sumUS  int64
	maxUS  int64
}

// Snapshot copies the current counts. Concurrent Records may straddle the
// copy; the snapshot is consistent enough for monitoring (each observation
// appears at most once).
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{counts: make([]int64, histBuckets)}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		s.total += s.counts[i]
	}
	s.sumUS = h.sum.Load()
	s.maxUS = h.max.Load()
	return s
}

// Count returns the number of recorded observations.
func (s *HistSnapshot) Count() int64 { return s.total }

// Mean returns the arithmetic mean of the recorded durations.
func (s *HistSnapshot) Mean() time.Duration {
	if s.total == 0 {
		return 0
	}
	return time.Duration(s.sumUS/s.total) * time.Microsecond
}

// Max returns the largest recorded duration (exact, not bucketed).
func (s *HistSnapshot) Max() time.Duration {
	return time.Duration(s.maxUS) * time.Microsecond
}

// Quantile returns the value at quantile q in [0,1], with the histogram's
// bounded relative error. An empty snapshot answers 0.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sought observation in sorted order.
	rank := int64(q*float64(s.total-1)) + 1
	var seen int64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketValue(i)) * time.Microsecond
		}
	}
	return s.Max()
}

// Sub returns the delta snapshot s minus prev — the observations recorded
// between the two snapshots, for per-interval timeseries sampling. prev may
// be nil (treated as empty). Max carries s's max (maxima don't subtract).
func (s *HistSnapshot) Sub(prev *HistSnapshot) *HistSnapshot {
	if prev == nil {
		return s
	}
	d := &HistSnapshot{counts: make([]int64, histBuckets), maxUS: s.maxUS}
	for i := range s.counts {
		c := s.counts[i] - prev.counts[i]
		if c < 0 {
			c = 0
		}
		d.counts[i] = c
		d.total += c
	}
	d.sumUS = s.sumUS - prev.sumUS
	if d.sumUS < 0 {
		d.sumUS = 0
	}
	return d
}
