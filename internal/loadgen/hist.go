// Package loadgen is the open-loop load generator behind cmd/swarm: it
// synthesizes realistic request mixes against a live dlinfma server, paces
// arrivals on an absolute timer schedule (so slow responses never throttle
// the offered load — the coordinated-omission trap), records latency into
// log-linear histograms, and ramps the arrival rate until an SLO breaks to
// find the maximum sustainable throughput of a configuration.
package loadgen

import "dlinfma/internal/obs"

// Histogram is the shared log-linear HDR histogram from internal/obs, which
// this package originated: the server now records its own request latencies
// into the same layout, so client- and server-side quantiles are directly
// comparable. Record is safe for any number of concurrent writers; Snapshot
// gives a point-in-time copy for readers. The zero value of the aliased
// struct is usable, but call NewHistogram for symmetry with the obs side.
type Histogram = obs.HDRHistogram

// HistSnapshot is a point-in-time copy of a histogram, safe to read at
// leisure while writers keep recording into the source.
type HistSnapshot = obs.HDRSnapshot

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return obs.NewHDRHistogram() }
