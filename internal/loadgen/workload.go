package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dlinfma/internal/deploy/api"
	"dlinfma/internal/synth"
)

// Mix weighs the request kinds of a workload. Weights are relative (they
// need not sum to 100); a zero weight disables the endpoint entirely.
type Mix struct {
	// Lookup weighs GET /v1/locations/{key} single-address queries.
	Lookup int
	// Batch weighs POST /v1/locations:batch bulk lookups.
	Batch int
	// Stream weighs POST /v1/trajectories:stream NDJSON trajectory bursts.
	Stream int
	// Reinfer weighs POST /v1/reinfer retrain kicks (a 409 while one is
	// already running counts as success — that is the documented contract).
	Reinfer int
}

// DefaultMix is the read-heavy serving shape the capacity model uses:
// overwhelmingly lookups, a slice of batches, a trickle of trajectory
// ingest, no reinfer storms (a background retrain would measure the
// retrainer, not the serving path).
func DefaultMix() Mix { return Mix{Lookup: 80, Batch: 10, Stream: 10} }

// IngestHeavyMix is the write-dominant shape for exercising the streaming
// path: mostly trajectory bursts with a thin read mix to keep the serving
// path honest. Ramped hard enough it drives the engine into
// -max-pending-trips backpressure, which the collector records as 429
// rejections rather than errors.
func IngestHeavyMix() Mix { return Mix{Lookup: 10, Batch: 5, Stream: 85} }

// MixPreset resolves a named preset ("default", "ingest-heavy"). The second
// return is false for unknown names.
func MixPreset(name string) (Mix, bool) {
	switch name {
	case "default", "read-heavy":
		return DefaultMix(), true
	case "ingest-heavy":
		return IngestHeavyMix(), true
	}
	return Mix{}, false
}

// Total returns the weight sum.
func (m Mix) Total() int { return m.Lookup + m.Batch + m.Stream + m.Reinfer }

// WorkloadConfig assembles a Workload.
type WorkloadConfig struct {
	// Target is the base URL of the server under test, e.g.
	// "http://127.0.0.1:8080" — no trailing slash.
	Target string
	// Client is the HTTP client to use; nil builds one with a pooled
	// keep-alive transport sized for the swarm's concurrency.
	Client *http.Client
	Mix    Mix
	// Seed makes address sampling and pre-built bodies reproducible.
	Seed int64
	// BatchKeys is the number of addresses per batch request (default 64,
	// capped at api.MaxBatchKeys).
	BatchKeys int
	// StreamPoints caps the GPS fixes per trajectory burst (default 32).
	StreamPoints int
	// FallbackAddrs sizes the address universe when the server's /v1/healthz
	// reports none registered (cold engine). Default 1024.
	FallbackAddrs int
	// Timeout bounds one request (default 10s). Generous on purpose: an
	// open-loop generator must observe slow responses, not amputate them.
	Timeout time.Duration
}

// Workload synthesizes and executes requests against one target. It learns
// the address universe from the server's typed /v1/healthz status, samples
// addresses with a Zipf-shaped heavy tail (matching the order-frequency
// skew the synthetic city generates), and pre-serializes batch and
// trajectory-burst bodies so the per-arrival work is a slice pick, not a
// JSON encode.
type Workload struct {
	target string
	client *http.Client
	mix    Mix
	stats  *Stats

	addrs   int64 // universe size: keys are [0, addrs)
	zipf    *rand.Zipf
	rng     *rand.Rand
	batches [][]byte
	bursts  [][]byte
	next    atomic.Int64 // cycles pre-built bodies across ops
}

// streamCourierBase keeps swarm courier ids clear of any dataset's real
// couriers, so burst trips never interleave with seeded trajectories.
const streamCourierBase = 9_000_000

// NewWorkload probes the target's typed health status and pre-builds request
// bodies. The target must be reachable; it need not be ready (a cold engine
// still serves the fallback universe).
func NewWorkload(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Mix.Total() <= 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	w := &Workload{
		target: cfg.Target,
		client: cfg.Client,
		mix:    cfg.Mix,
		stats:  NewStats(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if w.client == nil {
		tr := &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
			IdleConnTimeout:     90 * time.Second,
		}
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		w.client = &http.Client{Transport: tr, Timeout: timeout}
	}

	st, err := w.Health(context.Background())
	if err != nil {
		return nil, fmt.Errorf("loadgen: probe %s/v1/healthz: %w", cfg.Target, err)
	}
	w.addrs = int64(st.Addresses)
	if w.addrs <= 0 {
		w.addrs = int64(cfg.FallbackAddrs)
		if w.addrs <= 0 {
			w.addrs = 1024
		}
	}
	// s=1.1, v=1 gives the gentle power law of order frequency per address;
	// imax is the largest sampled value.
	w.zipf = rand.NewZipf(w.rng, 1.1, 1, uint64(w.addrs-1))

	batchKeys := cfg.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 64
	}
	if batchKeys > api.MaxBatchKeys {
		batchKeys = api.MaxBatchKeys
	}
	if w.mix.Batch > 0 {
		w.batches = make([][]byte, 64)
		for i := range w.batches {
			req := api.BatchLocationsRequest{Addrs: make([]int64, batchKeys)}
			for j := range req.Addrs {
				req.Addrs[j] = w.sampleAddr()
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			w.batches[i] = body
		}
	}
	if w.mix.Stream > 0 {
		if err := w.buildBursts(cfg); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// buildBursts pre-serializes NDJSON trajectory bursts from synthetically
// generated courier trips: real stay-point shapes, not random walks. Each
// burst carries a distinct courier id so concurrent bursts never interleave
// into one stream; ids cycle, which is safe because every burst ends with an
// explicit end marker that closes the trip.
func (w *Workload) buildBursts(cfg WorkloadConfig) error {
	maxPts := cfg.StreamPoints
	if maxPts <= 0 {
		maxPts = 32
	}
	p := synth.Tiny()
	p.Seed = cfg.Seed + 1
	ds, _, err := synth.Generate(p)
	if err != nil {
		return fmt.Errorf("loadgen: generate burst trips: %w", err)
	}
	n := len(ds.Trips)
	if n > 128 {
		n = 128
	}
	w.bursts = make([][]byte, 0, n)
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.Reset()
		courier := int64(streamCourierBase + i)
		traj := ds.Trips[i].Traj
		if len(traj) > maxPts {
			traj = traj[:maxPts]
		}
		for _, pt := range traj {
			line, err := json.Marshal(api.StreamPoint{Courier: courier, X: pt.P.X, Y: pt.P.Y, T: pt.T})
			if err != nil {
				return err
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		end, err := json.Marshal(api.StreamPoint{Courier: courier, End: true})
		if err != nil {
			return err
		}
		buf.Write(end)
		buf.WriteByte('\n')
		w.bursts = append(w.bursts, append([]byte(nil), buf.Bytes()...))
	}
	return nil
}

// sampleAddr draws one address key with the heavy-tailed popularity shape.
func (w *Workload) sampleAddr() int64 { return int64(w.zipf.Uint64()) }

// Stats exposes the collector the workload records into.
func (w *Workload) Stats() *Stats { return w.stats }

// Health fetches and decodes the typed GET /v1/healthz payload. A non-2xx
// status still decodes (a cold engine answers 503 with the same body).
func (w *Workload) Health(ctx context.Context) (api.EngineStatus, error) {
	var st api.EngineStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.target+"/v1/healthz", nil)
	if err != nil {
		return st, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decode healthz: %w", err)
	}
	return st, nil
}

// Pick chooses the next operation's endpoint from the mix. It must be
// called from the pacing goroutine only (it uses the workload's rng).
func (w *Workload) Pick() Endpoint {
	n := w.rng.Intn(w.mix.Total())
	if n -= w.mix.Lookup; n < 0 {
		return EPLookup
	}
	if n -= w.mix.Batch; n < 0 {
		return EPBatch
	}
	if n -= w.mix.Stream; n < 0 {
		return EPStream
	}
	return EPReinfer
}

// Args pre-computed on the pacing goroutine so Do needs no rng.
type opArgs struct {
	ep   Endpoint
	addr int64
	body []byte
}

// Next returns one ready-to-fire operation: endpoint picked from the mix,
// arguments sampled, body chosen. The returned closure is what RunOpenLoop
// launches; it executes the request and records the outcome.
func (w *Workload) Next() func(context.Context) {
	args := opArgs{ep: w.Pick()}
	switch args.ep {
	case EPLookup:
		args.addr = w.sampleAddr()
	case EPBatch:
		args.body = w.batches[w.next.Add(1)%int64(len(w.batches))]
	case EPStream:
		args.body = w.bursts[w.next.Add(1)%int64(len(w.bursts))]
	}
	return func(ctx context.Context) { w.do(ctx, args) }
}

// do executes one operation and records latency + outcome. Expected
// non-2xx statuses per endpoint: a lookup 404 (key not in the served store)
// and a reinfer 409 (job already running) are correct server behavior under
// this workload, so they count as success; a 429 is the server shedding load
// by design and records as backpressure; everything else — 5xx, transport
// errors, timeouts — is an error.
func (w *Workload) do(ctx context.Context, args opArgs) {
	var (
		req *http.Request
		err error
	)
	switch args.ep {
	case EPLookup:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			w.target+"/v1/locations/"+strconv.FormatInt(args.addr, 10), nil)
	case EPBatch:
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			w.target+"/v1/locations:batch", bytes.NewReader(args.body))
	case EPStream:
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			w.target+"/v1/trajectories:stream", bytes.NewReader(args.body))
	case EPReinfer:
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			w.target+"/v1/reinfer", nil)
	}
	if err != nil {
		w.stats.Record(args.ep, 0, err)
		return
	}
	if args.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.stats.Record(args.ep, time.Since(start), err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	switch {
	case okStatus(args.ep, resp.StatusCode):
		w.stats.Record(args.ep, d, nil)
	case resp.StatusCode == http.StatusTooManyRequests:
		w.stats.RecordBackpressure(args.ep, d)
	default:
		w.stats.Record(args.ep, d, fmt.Errorf("%s: status %d", args.ep, resp.StatusCode))
	}
}

// okStatus classifies one response status for an endpoint.
func okStatus(ep Endpoint, code int) bool {
	if code >= 200 && code < 300 {
		return true
	}
	switch ep {
	case EPLookup:
		return code == http.StatusNotFound
	case EPReinfer:
		return code == http.StatusConflict
	}
	return false
}
