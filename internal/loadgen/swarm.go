package loadgen

import (
	"context"
	"time"
)

// StageOptions tunes the fixed-rate stages the orchestrator runs.
type StageOptions struct {
	// Poisson switches arrivals from exact 1/rate pacing to a seeded
	// Poisson process.
	Poisson bool
	// Seed reproduces a Poisson stage's arrival gaps.
	Seed int64
	// MaxInFlight bounds concurrent operations (see OpenLoopOptions).
	MaxInFlight int
}

// RunStage drives the workload open-loop at a fixed rate for d and measures
// just that window: results are computed from snapshot deltas, so stages
// sharing one workload (and its histograms) stay isolated. The stage waits
// for its in-flight tail, and AchievedQPS is completions over full wall
// time — a stage that queues a tail it can't finish inside d shows a
// depressed achieved rate rather than hiding it.
func RunStage(ctx context.Context, w *Workload, rate float64, d time.Duration, opts StageOptions) StageResult {
	before := w.stats.Snapshot()
	var sched *Schedule
	if opts.Poisson {
		sched = NewPoissonSchedule(rate, opts.Seed)
	} else {
		sched = NewUniformSchedule(rate)
	}
	res := RunOpenLoop(ctx, sched, d, OpenLoopOptions{MaxInFlight: opts.MaxInFlight}, w.Next)
	delta := w.stats.Snapshot().Sub(before)
	merged := delta.Merged()
	reqs, errs, bp := delta.Totals()
	out := StageResult{
		TargetQPS:    rate,
		Requests:     reqs,
		Errors:       errs,
		Backpressure: bp,
		Dropped:      res.Dropped,
		P50:          merged.Quantile(0.50),
		P95:          merged.Quantile(0.95),
		P99:          merged.Quantile(0.99),
		Max:          merged.Max(),
	}
	if res.Elapsed > 0 {
		out.AchievedQPS = float64(reqs) / res.Elapsed.Seconds()
	}
	return out
}
