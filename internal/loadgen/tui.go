package loadgen

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Dashboard renders a live terminal view of a running swarm: one line per
// endpoint (counts, error count, interval percentiles) plus a sparkline of
// achieved qps over the recent timeseries. It redraws in place with ANSI
// cursor movement; pass it a plain io.Writer and call Render on each
// timeseries sample. No escape codes are emitted until the first Render, so
// constructing one unconditionally is harmless.
type Dashboard struct {
	mu    sync.Mutex
	w     io.Writer
	ts    *Timeseries
	stats *Stats
	lines int // lines drawn last frame, to rewind
}

// NewDashboard wires a dashboard over the swarm's collectors.
func NewDashboard(w io.Writer, stats *Stats, ts *Timeseries) *Dashboard {
	return &Dashboard{w: w, stats: stats, ts: ts}
}

// sparkRunes are eighth-block characters, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled into the block-rune range.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// Render draws one frame from the current stats and series. cur is the most
// recent interval sample.
func (d *Dashboard) Render(cur SeriesPoint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lines > 0 {
		fmt.Fprintf(d.w, "\x1b[%dA", d.lines) // rewind to frame top
	}
	snap := d.stats.Snapshot()
	pts := d.ts.Points()
	qps := make([]float64, len(pts))
	for i, p := range pts {
		qps[i] = p.AchievedQPS
	}

	lines := 0
	put := func(format string, args ...any) {
		fmt.Fprintf(d.w, "\x1b[2K"+format+"\n", args...) // clear line, write
		lines++
	}
	put("swarm  target %.0f qps  achieved %.0f qps  p50 %s  p99 %s  errs %d",
		cur.TargetQPS, cur.AchievedQPS, fmtDur(cur.P50), fmtDur(cur.P99), cur.Errors)
	put("  qps %s", sparkline(qps, 60))
	put("  %-8s %10s %8s %10s %10s", "endpoint", "requests", "errors", "p50", "p99")
	for _, ep := range Endpoints() {
		e := snap.Endpoints[ep]
		if e.OK+e.Errors == 0 {
			continue
		}
		put("  %-8s %10d %8d %10s %10s", ep, e.OK+e.Errors, e.Errors,
			fmtDur(e.Hist.Quantile(0.50)), fmtDur(e.Hist.Quantile(0.99)))
	}
	d.lines = lines
}

// fmtDur prints sub-second durations compactly (µs under 1ms, ms otherwise).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
