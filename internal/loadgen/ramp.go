package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SLO is the service-level objective a configuration must hold under load.
// The ramp stops at the first stage that breaks either bound.
type SLO struct {
	// P99 bounds the 99th-percentile latency across all endpoints.
	P99 time.Duration
	// MaxErrorRate bounds errors/requests (0.01 = 1%).
	MaxErrorRate float64
}

// StageResult is the measured outcome of one ramp stage: a fixed arrival
// rate held for a fixed duration.
type StageResult struct {
	// TargetQPS is the offered arrival rate.
	TargetQPS float64 `json:"target_qps"`
	// AchievedQPS counts completed operations per second of stage wall time.
	AchievedQPS float64 `json:"achieved_qps"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	// Backpressure counts 429 rejections — the server shedding load by
	// design. Excluded from ErrorRate: a saturated ingest path that says so
	// is meeting its contract, not breaking it.
	Backpressure int64         `json:"backpressure,omitempty"`
	Dropped      int64         `json:"dropped"`
	P50          time.Duration `json:"p50_us"`
	P95          time.Duration `json:"p95_us"`
	P99          time.Duration `json:"p99_us"`
	Max          time.Duration `json:"max_us"`
}

// ErrorRate returns errors/requests (0 when no requests completed).
func (r StageResult) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// StageRunner executes one constant-rate stage and reports what happened.
// The orchestrator in cmd/swarm backs it with a real open-loop run; tests
// back it with a synthetic latency model, which is why the ramp controller
// is a pure function of stage results.
type StageRunner func(ctx context.Context, rate float64, d time.Duration) (StageResult, error)

// RampConfig shapes the search for the maximum sustainable rate.
type RampConfig struct {
	// StartQPS is the first stage's rate. Must be > 0.
	StartQPS float64
	// StepQPS is added after each passing stage when Growth <= 1.
	StepQPS float64
	// Growth, when > 1, multiplies the rate instead of stepping it —
	// geometric ramps cover a wide unknown range in few stages.
	Growth float64
	// MaxQPS stops the ramp even if the SLO still holds (0: unbounded).
	MaxQPS float64
	// StageDuration holds each rate long enough for percentiles to settle.
	StageDuration time.Duration
	// SLO is the breach condition.
	SLO SLO
	// MinAchievedFraction guards honesty: when the client completes less
	// than this fraction of the offered rate without the SLO breaking, the
	// *generator* (or the shared CPU) is the bottleneck, not the server.
	// The ramp stops and says so instead of reporting a fictitious pass.
	// Default 0.9.
	MinAchievedFraction float64
}

// Breach reasons reported in RampOutcome.
const (
	BreachNone      = ""                 // ramp ended at MaxQPS with the SLO intact
	BreachP99       = "p99"              // latency SLO broke
	BreachErrors    = "error_rate"       // error-rate SLO broke
	BreachClientSat = "client_saturated" // generator could not offer more load
)

// RampOutcome is the controller's verdict.
type RampOutcome struct {
	// Stages holds every executed stage in order, breaching stage included.
	Stages []StageResult `json:"stages"`
	// MaxSustainableQPS is the highest offered rate whose stage held the
	// SLO — the capacity number. Zero when even the first stage breached.
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	// Sustained is the stage behind MaxSustainableQPS, for its percentiles.
	Sustained *StageResult `json:"sustained,omitempty"`
	// Breach names what ended the ramp (BreachNone when MaxQPS did).
	Breach string `json:"breach,omitempty"`
	// ClientSaturated flags capacity numbers bounded by the generator: the
	// true server capacity is at least MaxSustainableQPS.
	ClientSaturated bool `json:"client_saturated,omitempty"`
}

// Ramp drives stages at increasing rates until the SLO breaks, the client
// saturates, MaxQPS passes, or ctx is cancelled. Open-loop inside each
// stage; the controller only looks at completed stage results between
// stages, so the arrival schedule never adapts to server behavior mid-stage.
func Ramp(ctx context.Context, cfg RampConfig, run StageRunner) (RampOutcome, error) {
	var out RampOutcome
	if cfg.StartQPS <= 0 {
		return out, fmt.Errorf("loadgen: ramp needs StartQPS > 0")
	}
	if cfg.StepQPS <= 0 && cfg.Growth <= 1 {
		return out, fmt.Errorf("loadgen: ramp needs StepQPS > 0 or Growth > 1")
	}
	minAchieved := cfg.MinAchievedFraction
	if minAchieved <= 0 {
		minAchieved = 0.9
	}
	rate := cfg.StartQPS
	for {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := run(ctx, rate, cfg.StageDuration)
		if err != nil {
			return out, err
		}
		out.Stages = append(out.Stages, res)

		if cfg.SLO.P99 > 0 && res.P99 > cfg.SLO.P99 {
			out.Breach = BreachP99
			return out, nil
		}
		if cfg.SLO.MaxErrorRate > 0 && res.ErrorRate() > cfg.SLO.MaxErrorRate {
			out.Breach = BreachErrors
			return out, nil
		}
		// Drops are offered load the client refused to launch; a stage that
		// drops is not sustaining its nominal rate even if every launched
		// request succeeded.
		if res.Dropped > 0 {
			out.Breach = BreachErrors
			return out, nil
		}
		if res.AchievedQPS < minAchieved*res.TargetQPS {
			// SLO held but the offered rate never materialized: the
			// generator is the wall. Credit the achieved rate, honestly
			// flagged.
			out.MaxSustainableQPS = res.AchievedQPS
			out.Sustained = &out.Stages[len(out.Stages)-1]
			out.Breach = BreachClientSat
			out.ClientSaturated = true
			return out, nil
		}
		out.MaxSustainableQPS = res.TargetQPS
		out.Sustained = &out.Stages[len(out.Stages)-1]

		if cfg.Growth > 1 {
			rate *= cfg.Growth
		} else {
			rate += cfg.StepQPS
		}
		if cfg.MaxQPS > 0 && rate > cfg.MaxQPS {
			out.Breach = BreachNone
			return out, nil
		}
	}
}
