package loadgen

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Schedule produces the arrival offsets of an open-loop workload: the i-th
// call to Next answers when the i-th request must start, measured from the
// beginning of the run. The schedule is fixed up front by the rate alone —
// response latency never feeds back into it, which is exactly what
// distinguishes open-loop from closed-loop load and keeps coordinated
// omission out of the measurements.
type Schedule struct {
	rate    float64 // arrivals per second
	poisson bool
	rng     *rand.Rand
	n       int64   // arrivals handed out (uniform)
	at      float64 // seconds of the last handed-out arrival (poisson)
}

// NewUniformSchedule paces arrivals at exact 1/rate intervals.
func NewUniformSchedule(rate float64) *Schedule {
	return &Schedule{rate: rate}
}

// NewPoissonSchedule paces arrivals as a Poisson process with the given mean
// rate: exponential inter-arrival gaps, the bursty shape real open traffic
// has. The seed makes a run reproducible.
func NewPoissonSchedule(rate float64, seed int64) *Schedule {
	return &Schedule{rate: rate, poisson: true, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the offset of the next arrival from the start of the run.
func (s *Schedule) Next() time.Duration {
	if s.poisson {
		s.at += s.rng.ExpFloat64() / s.rate
		return time.Duration(s.at * float64(time.Second))
	}
	off := float64(s.n) / s.rate
	s.n++
	return time.Duration(off * float64(time.Second))
}

// OpenLoopOptions tunes one open-loop run.
type OpenLoopOptions struct {
	// MaxInFlight bounds concurrently executing operations. When an arrival
	// fires with no slot free, the operation is not skipped-and-forgotten —
	// it counts as Dropped, which the caller must treat as an error: offered
	// load the system failed to absorb. Zero means 16384.
	MaxInFlight int
}

// OpenLoopResult summarizes the launch side of a run. Operation outcomes
// (latency, status) are whatever the ops themselves recorded.
type OpenLoopResult struct {
	// Launched counts operations actually started.
	Launched int64
	// Dropped counts arrivals refused because MaxInFlight was exhausted.
	Dropped int64
	// Elapsed is the wall time from first scheduled arrival to the return of
	// the last launched operation.
	Elapsed time.Duration
}

// RunOpenLoop fires operations on the schedule for the given duration and
// waits for in-flight ones to finish. Each arrival is launched at its
// absolute scheduled instant: if the loop falls behind (GC pause, scheduler
// delay), the backlog fires immediately in a catch-up burst rather than
// silently stretching the schedule — late arrivals are real offered load.
// next is called on the pacing goroutine at each arrival (so it may use
// unsynchronized state) and returns the operation to execute; the operation
// runs on its own goroutine, so one slow response never delays the next
// arrival.
func RunOpenLoop(ctx context.Context, sched *Schedule, d time.Duration, opts OpenLoopOptions, next func() func(context.Context)) OpenLoopResult {
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 16384
	}
	slots := make(chan struct{}, maxInFlight)
	var (
		wg    sync.WaitGroup
		res   OpenLoopResult
		start = time.Now()
	)
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		off := sched.Next()
		if off >= d {
			break
		}
		wait := time.Until(start.Add(off))
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				wg.Wait()
				res.Elapsed = time.Since(start)
				return res
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break
		}
		select {
		case slots <- struct{}{}:
			res.Launched++
			op := next()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				op(ctx)
			}()
		default:
			res.Dropped++
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// arrivalsIn answers how many arrivals a rate produces in a duration —
// handy for sizing expectations in tests and reports.
func arrivalsIn(rate float64, d time.Duration) int64 {
	return int64(math.Ceil(rate * d.Seconds()))
}
