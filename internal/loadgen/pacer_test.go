package loadgen

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestUniformScheduleExact checks uniform arrival offsets are exactly i/rate
// — the schedule is a pure function of the rate, decided before any request
// runs.
func TestUniformScheduleExact(t *testing.T) {
	s := NewUniformSchedule(200)
	for i := 0; i < 1000; i++ {
		want := time.Duration(float64(i) / 200 * float64(time.Second))
		if got := s.Next(); got != want {
			t.Fatalf("arrival %d at %v, want %v", i, got, want)
		}
	}
}

// TestPoissonScheduleMeanRate checks a seeded Poisson schedule is
// reproducible and its mean inter-arrival gap converges to 1/rate.
func TestPoissonScheduleMeanRate(t *testing.T) {
	const rate, n = 500.0, 20000
	a := NewPoissonSchedule(rate, 7)
	b := NewPoissonSchedule(rate, 7)
	var last time.Duration
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("arrival %d: same seed diverged (%v vs %v)", i, ga, gb)
		}
		if ga < last {
			t.Fatalf("arrival %d at %v before predecessor %v", i, ga, last)
		}
		last = ga
	}
	mean := last.Seconds() / float64(n)
	if math.Abs(mean-1/rate)/(1/rate) > 0.05 {
		t.Fatalf("mean gap %.6fs, want ~%.6fs", mean, 1/rate)
	}
}

// TestOpenLoopIndependentOfLatency is the open-loop property itself: with
// operations that each take far longer than the inter-arrival gap, a
// closed-loop driver would complete only duration/latency ≈ 3 requests,
// while the open-loop pacer must keep launching on schedule. This is the
// difference between measuring the system and measuring the generator's
// politeness (coordinated omission).
func TestOpenLoopIndependentOfLatency(t *testing.T) {
	const (
		rate    = 100.0
		dur     = 500 * time.Millisecond
		opSleep = 150 * time.Millisecond
	)
	var started atomic.Int64
	res := RunOpenLoop(context.Background(), NewUniformSchedule(rate), dur, OpenLoopOptions{},
		func() func(context.Context) {
			return func(context.Context) {
				started.Add(1)
				time.Sleep(opSleep)
			}
		})
	want := arrivalsIn(rate, dur) // 50
	closedLoopCeiling := int64(dur/opSleep) + 1
	if res.Launched <= closedLoopCeiling*2 {
		t.Fatalf("launched %d ops — latency throttled the arrival schedule (closed-loop would manage ~%d)",
			res.Launched, closedLoopCeiling)
	}
	// Allow generous scheduler slop on a loaded 1-CPU runner, but the bulk
	// of the schedule must fire.
	if res.Launched < want*6/10 {
		t.Fatalf("launched %d of %d scheduled arrivals", res.Launched, want)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d with default in-flight bound", res.Dropped)
	}
	if started.Load() != res.Launched {
		t.Fatalf("started %d != launched %d", started.Load(), res.Launched)
	}
	// RunOpenLoop waits for the in-flight tail: elapsed covers the last
	// op's sleep.
	if res.Elapsed < dur {
		t.Fatalf("elapsed %v < stage duration %v", res.Elapsed, dur)
	}
}

// TestOpenLoopArrivalSpacing records launch instants and checks the pacer
// follows the absolute schedule rather than chaining sleeps: arrival i must
// not drift later as i grows even though each op does work.
func TestOpenLoopArrivalSpacing(t *testing.T) {
	const rate = 50.0
	const dur = 400 * time.Millisecond
	var mu atomic.Int64
	start := time.Now()
	lateness := make(chan time.Duration, 64)
	res := RunOpenLoop(context.Background(), NewUniformSchedule(rate), dur, OpenLoopOptions{},
		func() func(context.Context) {
			i := mu.Add(1) - 1
			sched := time.Duration(float64(i) / rate * float64(time.Second))
			late := time.Since(start) - sched
			select {
			case lateness <- late:
			default:
			}
			return func(context.Context) { time.Sleep(30 * time.Millisecond) }
		})
	close(lateness)
	if res.Launched == 0 {
		t.Fatal("nothing launched")
	}
	var worst time.Duration
	for l := range lateness {
		if l > worst {
			worst = l
		}
	}
	// Each arrival fires within a loose bound of its absolute slot; chained
	// relative sleeps would accumulate the 30ms op latency per arrival and
	// blow far past this.
	if worst > 100*time.Millisecond {
		t.Fatalf("worst launch lateness %v — schedule is drifting", worst)
	}
}

// TestOpenLoopMaxInFlightDrops chokes the in-flight bound and checks excess
// arrivals surface as drops instead of blocking the schedule.
func TestOpenLoopMaxInFlightDrops(t *testing.T) {
	block := make(chan struct{})
	// Unblock only after the 200ms schedule has fully fired, so the two
	// launched ops pin both slots for every subsequent arrival; RunOpenLoop
	// then drains its in-flight tail and returns.
	unblock := time.AfterFunc(400*time.Millisecond, func() { close(block) })
	defer unblock.Stop()
	res := RunOpenLoop(context.Background(), NewUniformSchedule(200), 200*time.Millisecond,
		OpenLoopOptions{MaxInFlight: 2},
		func() func(context.Context) {
			return func(context.Context) { <-block }
		})
	if res.Launched != 2 {
		t.Fatalf("launched %d, want exactly the in-flight bound 2", res.Launched)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops despite a saturated in-flight bound")
	}
}

// TestOpenLoopContextCancel checks cancellation stops the schedule promptly
// and still waits for in-flight ops.
func TestOpenLoopContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var finished atomic.Int64
	go func() {
		res := RunOpenLoop(ctx, NewUniformSchedule(10), 10*time.Second, OpenLoopOptions{},
			func() func(context.Context) {
				return func(context.Context) {
					time.Sleep(20 * time.Millisecond)
					finished.Add(1)
				}
			})
		if int64(res.Launched) != finished.Load() {
			t.Errorf("returned before in-flight ops finished: %d launched, %d done",
				res.Launched, finished.Load())
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunOpenLoop did not return after cancellation")
	}
}
