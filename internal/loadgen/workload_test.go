package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dlinfma/internal/deploy/api"
)

// fakeServer is a minimal /v1 surface that counts hits per endpoint.
type fakeServer struct {
	lookups, batches, streams, reinfers atomic.Int64
	addresses                           int
	reinferBusy                         bool
}

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.EngineStatus{Ready: true, Addresses: f.addresses})
	})
	mux.HandleFunc("GET /v1/locations/{key}", func(w http.ResponseWriter, r *http.Request) {
		f.lookups.Add(1)
		_ = json.NewEncoder(w).Encode(api.Location{Addr: 1, X: 1, Y: 2, Source: "address"})
	})
	mux.HandleFunc("POST /v1/locations:batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		var req api.BatchLocationsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Addrs) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(api.BatchLocationsResponse{Found: len(req.Addrs)})
	})
	mux.HandleFunc("POST /v1/trajectories:stream", func(w http.ResponseWriter, r *http.Request) {
		f.streams.Add(1)
		dec := json.NewDecoder(r.Body)
		points, ends := 0, 0
		for dec.More() {
			var p api.StreamPoint
			if err := dec.Decode(&p); err != nil {
				http.Error(w, "bad line", http.StatusBadRequest)
				return
			}
			if p.End {
				ends++
			} else {
				points++
			}
		}
		if points == 0 || ends != 1 {
			http.Error(w, "burst must carry points and one end marker", http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(api.StreamIngestResponse{Points: points, Ends: ends})
	})
	mux.HandleFunc("POST /v1/reinfer", func(w http.ResponseWriter, r *http.Request) {
		f.reinfers.Add(1)
		if f.reinferBusy {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{Code: api.CodeReinferInFlight, Message: "running"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.JobStatus{ID: 1, State: api.JobRunning})
	})
	return mux
}

// TestWorkloadMixProportions runs a paced stage against the fake server and
// checks every endpoint with weight got traffic in roughly the configured
// ratio, with zero recorded errors.
func TestWorkloadMixProportions(t *testing.T) {
	f := &fakeServer{addresses: 500, reinferBusy: true}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	w, err := NewWorkload(WorkloadConfig{
		Target: srv.URL,
		Mix:    Mix{Lookup: 60, Batch: 20, Stream: 15, Reinfer: 5},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := RunStage(context.Background(), w, 400, 500*time.Millisecond, StageOptions{Seed: 3})
	if res.Requests < 100 {
		t.Fatalf("only %d requests completed", res.Requests)
	}
	if res.Errors != 0 {
		snap := w.Stats().Snapshot()
		for _, e := range snap.Endpoints {
			if e.Errors > 0 {
				t.Errorf("%s: %d errors, last: %s", e.Endpoint, e.Errors, e.LastErr)
			}
		}
		t.Fatalf("%d errors against a compliant server", res.Errors)
	}
	total := float64(f.lookups.Load() + f.batches.Load() + f.streams.Load() + f.reinfers.Load())
	for _, c := range []struct {
		name string
		got  int64
		frac float64
	}{
		{"lookup", f.lookups.Load(), 0.60},
		{"batch", f.batches.Load(), 0.20},
		{"stream", f.streams.Load(), 0.15},
		{"reinfer", f.reinfers.Load(), 0.05},
	} {
		gotFrac := float64(c.got) / total
		if gotFrac < c.frac/2 || gotFrac > c.frac*2 {
			t.Errorf("%s got %.0f%% of traffic, configured %.0f%%", c.name, gotFrac*100, c.frac*100)
		}
	}
	// A busy reinfer answers 409, which is the documented contract, not an
	// error — checked above via res.Errors == 0 with reinferBusy set.
}

// TestWorkloadLearnsUniverseFromHealthz checks the address universe comes
// from the typed health payload: every sampled lookup key must fall inside
// [0, Addresses).
func TestWorkloadLearnsUniverseFromHealthz(t *testing.T) {
	const universe = 37
	var bad atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.EngineStatus{Ready: true, Addresses: universe})
	})
	mux.HandleFunc("GET /v1/locations/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		var n int
		if _, err := jsonNumber(key, &n); err != nil || n < 0 || n >= universe {
			bad.Add(1)
		}
		_ = json.NewEncoder(w).Encode(api.Location{})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w, err := NewWorkload(WorkloadConfig{Target: srv.URL, Mix: Mix{Lookup: 1}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		w.Next()(context.Background())
	}
	if bad.Load() != 0 {
		t.Fatalf("%d lookups outside the advertised universe of %d", bad.Load(), universe)
	}
}

// jsonNumber parses a decimal string (helper keeping the test free of
// strconv noise in assertions).
func jsonNumber(s string, n *int) (int, error) {
	err := json.Unmarshal([]byte(s), n)
	return *n, err
}

// TestWorkloadHealthTyped checks Health decodes the typed EngineStatus.
func TestWorkloadHealthTyped(t *testing.T) {
	f := &fakeServer{addresses: 12}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	w, err := NewWorkload(WorkloadConfig{Target: srv.URL, Mix: DefaultMix(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Addresses != 12 {
		t.Fatalf("typed health %+v", st)
	}
}

// TestWorkloadErrorClassification checks 5xx and non-contract statuses are
// errors while contract statuses are not.
func TestWorkloadErrorClassification(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.EngineStatus{Ready: true, Addresses: 10})
	})
	mux.HandleFunc("GET /v1/locations/{key}", func(w http.ResponseWriter, r *http.Request) {
		switch r.PathValue("key") {
		case "0":
			w.WriteHeader(http.StatusNotFound) // contract: miss, not error
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	w, err := NewWorkload(WorkloadConfig{Target: srv.URL, Mix: Mix{Lookup: 1}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.do(context.Background(), opArgs{ep: EPLookup, addr: 0})
	w.do(context.Background(), opArgs{ep: EPLookup, addr: 5})
	snap := w.Stats().Snapshot()
	e := snap.Endpoints[EPLookup]
	if e.OK != 1 || e.Errors != 1 {
		t.Fatalf("ok=%d errs=%d, want 1/1 (404 is contract, 500 is error)", e.OK, e.Errors)
	}
	if !strings.Contains(e.LastErr, "500") {
		t.Fatalf("last error %q should name the status", e.LastErr)
	}
}
