package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// histSubCount mirrors the shared histogram's linear sub-bucket count (see
// internal/obs/hdr.go); the bucket-level invariants are tested there, this
// file exercises the aliased public surface the load generator depends on.
const histSubCount = 32

// TestHistogramQuantileVsSortedReference records a fixed-seed heavy-tailed
// latency sample and checks every interesting quantile against the exact
// answer from the sorted slice. The histogram's log-linear buckets promise
// a bounded relative error of 1/2^subBits; allow double that for boundary
// rank effects.
func TestHistogramQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Lognormal-ish: most requests fast, a long slow tail — the shape
		// real latency has and the one quantile estimators get wrong.
		us := 200 * (1 + rng.ExpFloat64()*rng.ExpFloat64()*50)
		vals[i] = us
		h.Record(time.Duration(us) * time.Microsecond)
	}
	sort.Float64s(vals)
	snap := h.Snapshot()
	if snap.Count() != int64(n) {
		t.Fatalf("count %d, want %d", snap.Count(), n)
	}
	tol := 2.0 / histSubCount
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(q * float64(n-1))
		want := vals[rank]
		got := float64(snap.Quantile(q).Microseconds())
		relErr := (got - want) / want
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > tol {
			t.Errorf("q=%v: got %.0fµs, sorted reference %.0fµs (rel err %.3f > %.3f)",
				q, got, want, relErr, tol)
		}
	}
}

// TestHistogramExactLinearRegion checks sub-64µs values land exactly.
func TestHistogramExactLinearRegion(t *testing.T) {
	h := NewHistogram()
	for us := 0; us < 2*histSubCount; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	snap := h.Snapshot()
	if got := snap.Quantile(0); got != 0 {
		t.Errorf("q0 = %v, want 0", got)
	}
	if got := snap.Quantile(1); got != time.Duration(2*histSubCount-1)*time.Microsecond {
		t.Errorf("q1 = %v, want %dµs", got, 2*histSubCount-1)
	}
	if got := snap.Max(); got != time.Duration(2*histSubCount-1)*time.Microsecond {
		t.Errorf("max = %v", got)
	}
}

// TestHistogramSubDelta checks interval deltas: the difference of two
// snapshots sees only the observations recorded in between.
func TestHistogramSubDelta(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	s1 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(10 * time.Millisecond)
	}
	d := h.Snapshot().Sub(s1)
	if d.Count() != 50 {
		t.Fatalf("delta count %d, want 50", d.Count())
	}
	if q := d.Quantile(0.5); q < 9*time.Millisecond || q > 11*time.Millisecond {
		t.Fatalf("delta median %v, want ~10ms", q)
	}
	// Nil prev is the full snapshot.
	if full := h.Snapshot().Sub(nil); full.Count() != 150 {
		t.Fatalf("nil-prev delta count %d, want 150", full.Count())
	}
}

// TestStatsBackpressureOutcome checks that 429s recorded via
// RecordBackpressure count toward requests and latency but not errors.
func TestStatsBackpressureOutcome(t *testing.T) {
	s := NewStats()
	s.Record(EPStream, time.Millisecond, nil)
	s.RecordBackpressure(EPStream, 2*time.Millisecond)
	s.RecordBackpressure(EPStream, 2*time.Millisecond)
	snap := s.Snapshot()
	reqs, errs, bp := snap.Totals()
	if reqs != 3 || errs != 0 || bp != 2 {
		t.Fatalf("totals = (%d, %d, %d), want (3, 0, 2)", reqs, errs, bp)
	}
	es := snap.Endpoints[EPStream]
	if es.OK != 1 || es.Errors != 0 || es.Backpressure != 2 {
		t.Fatalf("endpoint snapshot = %+v", es)
	}
	if es.Hist.Count() != 3 {
		t.Fatalf("hist count %d, want 3 (rejections still time the round-trip)", es.Hist.Count())
	}
	d := s.Snapshot().Sub(snap)
	if d.Endpoints[EPStream].Backpressure != 0 {
		t.Fatalf("delta backpressure = %d, want 0", d.Endpoints[EPStream].Backpressure)
	}
}
