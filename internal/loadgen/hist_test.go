package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramQuantileVsSortedReference records a fixed-seed heavy-tailed
// latency sample and checks every interesting quantile against the exact
// answer from the sorted slice. The histogram's log-linear buckets promise
// a bounded relative error of 1/2^subBits; allow double that for boundary
// rank effects.
func TestHistogramQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Lognormal-ish: most requests fast, a long slow tail — the shape
		// real latency has and the one quantile estimators get wrong.
		us := 200 * (1 + rng.ExpFloat64()*rng.ExpFloat64()*50)
		vals[i] = us
		h.Record(time.Duration(us) * time.Microsecond)
	}
	sort.Float64s(vals)
	snap := h.Snapshot()
	if snap.Count() != int64(n) {
		t.Fatalf("count %d, want %d", snap.Count(), n)
	}
	tol := 2.0 / subCount
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(q * float64(n-1))
		want := vals[rank]
		got := float64(snap.Quantile(q).Microseconds())
		relErr := (got - want) / want
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > tol {
			t.Errorf("q=%v: got %.0fµs, sorted reference %.0fµs (rel err %.3f > %.3f)",
				q, got, want, relErr, tol)
		}
	}
}

// TestHistogramExactLinearRegion checks sub-64µs values land exactly.
func TestHistogramExactLinearRegion(t *testing.T) {
	h := NewHistogram()
	for us := 0; us < 2*subCount; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	snap := h.Snapshot()
	if got := snap.Quantile(0); got != 0 {
		t.Errorf("q0 = %v, want 0", got)
	}
	if got := snap.Quantile(1); got != time.Duration(2*subCount-1)*time.Microsecond {
		t.Errorf("q1 = %v, want %dµs", got, 2*subCount-1)
	}
	if got := snap.Max(); got != time.Duration(2*subCount-1)*time.Microsecond {
		t.Errorf("max = %v", got)
	}
}

// TestBucketIndexMonotone walks the index across magnitudes: it must be
// monotone non-decreasing, contiguous, and invert to within the promised
// relative error.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for us := int64(0); us < 1<<22; us += 97 {
		i := bucketIndex(us)
		if i < prev {
			t.Fatalf("bucketIndex(%d)=%d < previous %d", us, i, prev)
		}
		if i > prev+1 && prev >= 0 && bucketIndex(us-97) == prev {
			// Jumps over a bucket are fine only if no value maps into it;
			// with a stride of 97µs below 4s every bucket is wider than the
			// stride past the linear region, so just check inversion.
			_ = i
		}
		prev = i
		back := bucketValue(i)
		diff := float64(back-us) / float64(us+1)
		if diff < 0 {
			diff = -diff
		}
		if diff > 1.0/subCount {
			t.Fatalf("bucketValue(bucketIndex(%d))=%d off by %.3f", us, back, diff)
		}
	}
}

// TestHistogramSubDelta checks interval deltas: the difference of two
// snapshots sees only the observations recorded in between.
func TestHistogramSubDelta(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	s1 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(10 * time.Millisecond)
	}
	d := h.Snapshot().Sub(s1)
	if d.Count() != 50 {
		t.Fatalf("delta count %d, want 50", d.Count())
	}
	if q := d.Quantile(0.5); q < 9*time.Millisecond || q > 11*time.Millisecond {
		t.Fatalf("delta median %v, want ~10ms", q)
	}
	// Nil prev is the full snapshot.
	if full := h.Snapshot().Sub(nil); full.Count() != 150 {
		t.Fatalf("nil-prev delta count %d, want 150", full.Count())
	}
}
