package loadgen

import (
	"sync/atomic"
	"time"
)

// Endpoint enumerates the fixed set of request kinds the swarm drives. A
// fixed enum (not a map keyed by route) keeps the hot recording path free of
// locks and allocation.
type Endpoint int

const (
	// EPLookup is GET /v1/locations/{key}.
	EPLookup Endpoint = iota
	// EPBatch is POST /v1/locations:batch.
	EPBatch
	// EPStream is POST /v1/trajectories:stream (one NDJSON burst per op).
	EPStream
	// EPReinfer is POST /v1/reinfer (a background retrain kick).
	EPReinfer
	numEndpoints
)

var endpointNames = [numEndpoints]string{"lookup", "batch", "stream", "reinfer"}

// String returns the short wire name used in reports and the dashboard.
func (e Endpoint) String() string {
	if e < 0 || e >= numEndpoints {
		return "unknown"
	}
	return endpointNames[e]
}

// Endpoints lists every endpoint in display order.
func Endpoints() []Endpoint {
	return []Endpoint{EPLookup, EPBatch, EPStream, EPReinfer}
}

// Stats aggregates outcomes per endpoint: a latency histogram plus success
// and error counters. All methods are safe for concurrent use.
type Stats struct {
	eps [numEndpoints]epStats
}

type epStats struct {
	hist Histogram
	ok   atomic.Int64
	errs atomic.Int64
	// lastErr keeps one representative error message for diagnostics.
	lastErr atomic.Pointer[string]
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

// Record logs one completed operation. Latency is recorded for successes and
// failures alike — an error that takes 30s to surface is part of the latency
// story, not outside it.
func (s *Stats) Record(ep Endpoint, d time.Duration, err error) {
	e := &s.eps[ep]
	e.hist.Record(d)
	if err == nil {
		e.ok.Add(1)
		return
	}
	e.errs.Add(1)
	msg := err.Error()
	e.lastErr.Store(&msg)
}

// EndpointSnapshot is the frozen view of one endpoint's counters.
type EndpointSnapshot struct {
	Endpoint Endpoint
	Hist     *HistSnapshot
	OK       int64
	Errors   int64
	LastErr  string
}

// StatsSnapshot freezes the whole collector at one instant.
type StatsSnapshot struct {
	Taken     time.Time
	Endpoints [numEndpoints]EndpointSnapshot
}

// Snapshot copies every endpoint's state.
func (s *Stats) Snapshot() *StatsSnapshot {
	out := &StatsSnapshot{Taken: time.Now()}
	for i := range s.eps {
		e := &s.eps[i]
		es := EndpointSnapshot{
			Endpoint: Endpoint(i),
			Hist:     e.hist.Snapshot(),
			OK:       e.ok.Load(),
			Errors:   e.errs.Load(),
		}
		if p := e.lastErr.Load(); p != nil {
			es.LastErr = *p
		}
		out.Endpoints[i] = es
	}
	return out
}

// Totals sums requests and errors across endpoints.
func (s *StatsSnapshot) Totals() (requests, errors int64) {
	for _, e := range s.Endpoints {
		requests += e.OK + e.Errors
		errors += e.Errors
	}
	return requests, errors
}

// Merged returns one histogram snapshot covering every endpoint, for
// whole-run quantiles.
func (s *StatsSnapshot) Merged() *HistSnapshot {
	m := &HistSnapshot{counts: make([]int64, histBuckets)}
	for _, e := range s.Endpoints {
		for i, c := range e.Hist.counts {
			m.counts[i] += c
		}
		m.total += e.Hist.total
		m.sumUS += e.Hist.sumUS
		if e.Hist.maxUS > m.maxUS {
			m.maxUS = e.Hist.maxUS
		}
	}
	return m
}

// Sub returns the per-endpoint delta between two snapshots (prev may be
// nil), for interval sampling into a timeseries.
func (s *StatsSnapshot) Sub(prev *StatsSnapshot) *StatsSnapshot {
	if prev == nil {
		return s
	}
	out := &StatsSnapshot{Taken: s.Taken}
	for i := range s.Endpoints {
		cur, old := s.Endpoints[i], prev.Endpoints[i]
		out.Endpoints[i] = EndpointSnapshot{
			Endpoint: cur.Endpoint,
			Hist:     cur.Hist.Sub(old.Hist),
			OK:       cur.OK - old.OK,
			Errors:   cur.Errors - old.Errors,
			LastErr:  cur.LastErr,
		}
	}
	return out
}
