package loadgen

import (
	"sync/atomic"
	"time"

	"dlinfma/internal/obs"
)

// Endpoint enumerates the fixed set of request kinds the swarm drives. A
// fixed enum (not a map keyed by route) keeps the hot recording path free of
// locks and allocation.
type Endpoint int

const (
	// EPLookup is GET /v1/locations/{key}.
	EPLookup Endpoint = iota
	// EPBatch is POST /v1/locations:batch.
	EPBatch
	// EPStream is POST /v1/trajectories:stream (one NDJSON burst per op).
	EPStream
	// EPReinfer is POST /v1/reinfer (a background retrain kick).
	EPReinfer
	numEndpoints
)

var endpointNames = [numEndpoints]string{"lookup", "batch", "stream", "reinfer"}

// String returns the short wire name used in reports and the dashboard.
func (e Endpoint) String() string {
	if e < 0 || e >= numEndpoints {
		return "unknown"
	}
	return endpointNames[e]
}

// Endpoints lists every endpoint in display order.
func Endpoints() []Endpoint {
	return []Endpoint{EPLookup, EPBatch, EPStream, EPReinfer}
}

// Stats aggregates outcomes per endpoint: a latency histogram plus success
// and error counters. All methods are safe for concurrent use.
type Stats struct {
	eps [numEndpoints]epStats
}

type epStats struct {
	hist Histogram
	ok   atomic.Int64
	errs atomic.Int64
	// bp counts backpressure rejections (HTTP 429): the server shedding load
	// by design, not a failure — kept out of the error rate so an SLO ramp
	// reports "saturated" rather than "broken".
	bp atomic.Int64
	// lastErr keeps one representative error message for diagnostics.
	lastErr atomic.Pointer[string]
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{} }

// Record logs one completed operation. Latency is recorded for successes and
// failures alike — an error that takes 30s to surface is part of the latency
// story, not outside it.
func (s *Stats) Record(ep Endpoint, d time.Duration, err error) {
	e := &s.eps[ep]
	e.hist.Record(d)
	if err == nil {
		e.ok.Add(1)
		return
	}
	e.errs.Add(1)
	msg := err.Error()
	e.lastErr.Store(&msg)
}

// RecordBackpressure logs one operation the server rejected with 429. The
// latency still counts (the rejection round-trip is real load), but the op is
// neither a success nor an error.
func (s *Stats) RecordBackpressure(ep Endpoint, d time.Duration) {
	e := &s.eps[ep]
	e.hist.Record(d)
	e.bp.Add(1)
}

// EndpointSnapshot is the frozen view of one endpoint's counters.
type EndpointSnapshot struct {
	Endpoint     Endpoint
	Hist         *HistSnapshot
	OK           int64
	Errors       int64
	Backpressure int64
	LastErr      string
}

// StatsSnapshot freezes the whole collector at one instant.
type StatsSnapshot struct {
	Taken     time.Time
	Endpoints [numEndpoints]EndpointSnapshot
}

// Snapshot copies every endpoint's state.
func (s *Stats) Snapshot() *StatsSnapshot {
	out := &StatsSnapshot{Taken: time.Now()}
	for i := range s.eps {
		e := &s.eps[i]
		es := EndpointSnapshot{
			Endpoint:     Endpoint(i),
			Hist:         e.hist.Snapshot(),
			OK:           e.ok.Load(),
			Errors:       e.errs.Load(),
			Backpressure: e.bp.Load(),
		}
		if p := e.lastErr.Load(); p != nil {
			es.LastErr = *p
		}
		out.Endpoints[i] = es
	}
	return out
}

// Totals sums requests, errors, and backpressure rejections across
// endpoints. Requests includes all three outcomes — a 429 round-trip is a
// completed request.
func (s *StatsSnapshot) Totals() (requests, errors, backpressure int64) {
	for _, e := range s.Endpoints {
		requests += e.OK + e.Errors + e.Backpressure
		errors += e.Errors
		backpressure += e.Backpressure
	}
	return requests, errors, backpressure
}

// Merged returns one histogram snapshot covering every endpoint, for
// whole-run quantiles.
func (s *StatsSnapshot) Merged() *HistSnapshot {
	m := obs.NewHDRSnapshot()
	for _, e := range s.Endpoints {
		m.Merge(e.Hist)
	}
	return m
}

// Sub returns the per-endpoint delta between two snapshots (prev may be
// nil), for interval sampling into a timeseries.
func (s *StatsSnapshot) Sub(prev *StatsSnapshot) *StatsSnapshot {
	if prev == nil {
		return s
	}
	out := &StatsSnapshot{Taken: s.Taken}
	for i := range s.Endpoints {
		cur, old := s.Endpoints[i], prev.Endpoints[i]
		out.Endpoints[i] = EndpointSnapshot{
			Endpoint:     cur.Endpoint,
			Hist:         cur.Hist.Sub(old.Hist),
			OK:           cur.OK - old.OK,
			Errors:       cur.Errors - old.Errors,
			Backpressure: cur.Backpressure - old.Backpressure,
			LastErr:      cur.LastErr,
		}
	}
	return out
}
