package loadgen

import "time"

// CapacityRow is one configuration's capacity verdict — the unit record of
// BENCH_capacity.json. cmd/swarm emits one per ramp run; cmd/benchjson
// -capacity collects rows into the committed report and gates regressions
// on MaxSustainableQPS.
type CapacityRow struct {
	// Config labels the deployment shape, e.g. "shards=1", "shards=4",
	// "cluster=2".
	Config string `json:"config"`
	// Shards is the in-process shard count (0 when the target is a cluster
	// frontend fanning out to remote peers).
	Shards int `json:"shards,omitempty"`
	// Peers counts remote cluster peers behind the target (0 in-process).
	Peers int `json:"peers,omitempty"`
	// MaxSustainableQPS is the gated capacity metric.
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	// P50MS/P99MS are the sustained stage's latency percentiles.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// ErrorRate is the sustained stage's errors/requests.
	ErrorRate float64 `json:"error_rate"`
	// Breach names what ended the ramp (see the Breach* constants).
	Breach string `json:"breach,omitempty"`
	// ClientSaturated marks rows bounded by the load generator, not the
	// server: true capacity is at least MaxSustainableQPS.
	ClientSaturated bool `json:"client_saturated,omitempty"`
	// Stages preserves the full ramp for charting.
	Stages []StageResult `json:"stages,omitempty"`
}

// Row converts a ramp outcome into the report record.
func (o RampOutcome) Row(config string, shards, peers int) CapacityRow {
	row := CapacityRow{
		Config:            config,
		Shards:            shards,
		Peers:             peers,
		MaxSustainableQPS: o.MaxSustainableQPS,
		Breach:            o.Breach,
		ClientSaturated:   o.ClientSaturated,
		Stages:            o.Stages,
	}
	if o.Sustained != nil {
		row.P50MS = durToMS(o.Sustained.P50)
		row.P99MS = durToMS(o.Sustained.P99)
		row.ErrorRate = o.Sustained.ErrorRate()
	}
	return row
}

// CapacityReport is the BENCH_capacity.json file: environment header plus
// one row per measured configuration.
type CapacityReport struct {
	Goos   string        `json:"goos,omitempty"`
	Goarch string        `json:"goarch,omitempty"`
	CPUs   int           `json:"cpus,omitempty"`
	Rows   []CapacityRow `json:"rows"`
}

// durToMS renders a duration as fractional milliseconds.
func durToMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
