package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestTensorConstruction(t *testing.T) {
	x := NewTensor([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.Rows() != 2 || x.Cols() != 3 || x.Numel() != 6 {
		t.Errorf("shape accessors wrong: %v", x.Shape)
	}
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	z := Zeros(3, 3)
	for _, v := range z.Data {
		if v != 0 {
			t.Error("Zeros not zero")
		}
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched data/shape")
		}
	}()
	NewTensor([]float64{1, 2, 3}, 2, 2)
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-scalar Backward")
		}
	}()
	p := NewParam([]float64{1, 2}, 2)
	Backward(Add(p, p))
}

func TestBackwardOnConstantIsNoop(t *testing.T) {
	c := NewTensor([]float64{5}, 1)
	Backward(c) // must not panic
	if c.Grad != nil {
		t.Error("constant gained a gradient")
	}
}

func TestCrossEntropyMatchesManual(t *testing.T) {
	logits := NewParam([]float64{1, 2, 3}, 3)
	l := CrossEntropy(logits, 1)
	// softmax(1,2,3) = e^{x-3}/Z with Z = e^-2+e^-1+1
	z := math.Exp(-2) + math.Exp(-1) + 1
	want := -math.Log(math.Exp(-1) / z)
	if math.Abs(l.Value()-want) > 1e-12 {
		t.Errorf("CE = %v, want %v", l.Value(), want)
	}
	probs := Softmax1D(logits)
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(probs[2] > probs[1] && probs[1] > probs[0]) {
		t.Errorf("softmax ordering wrong: %v", probs)
	}
}

func TestSoftmax1DNumericalStability(t *testing.T) {
	logits := NewTensor([]float64{1000, 1001, 999}, 3)
	probs := Softmax1D(logits)
	for _, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("softmax overflowed: %v", probs)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP(rng, 2, 8, 1)
	opt := NewAdam(0.05)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 400; epoch++ {
		ZeroGrads(m.Params())
		for i, x := range xs {
			loss := BCEWithLogits(m.Forward(NewTensor(x, 1, 2)), ys[i])
			Backward(loss)
		}
		opt.Step(m.Params(), float64(len(xs)))
	}
	for i, x := range xs {
		logit := m.Forward(NewTensor(x, 1, 2)).Value()
		pred := 0.0
		if logit > 0 {
			pred = 1
		}
		if pred != ys[i] {
			t.Errorf("XOR(%v) predicted %v, want %v (logit %v)", x, pred, ys[i], logit)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := NewParam([]float64{5, -3}, 2)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		w.ZeroGrad()
		loss := SumAll(Mul(w, w))
		Backward(loss)
		opt.Step([]*Tensor{w}, 1)
	}
	for _, v := range w.Data {
		if math.Abs(v) > 1e-2 {
			t.Errorf("Adam did not converge: w=%v", w.Data)
		}
	}
}

func TestSGDWithMomentumConverges(t *testing.T) {
	w := NewParam([]float64{4}, 1)
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 200; i++ {
		w.ZeroGrad()
		Backward(SumAll(Mul(w, w)))
		opt.Step([]*Tensor{w}, 1)
	}
	if math.Abs(w.Data[0]) > 1e-2 {
		t.Errorf("SGD did not converge: %v", w.Data[0])
	}
}

func TestAdamGradClipping(t *testing.T) {
	w := NewParam([]float64{0}, 1)
	opt := NewAdam(0.1)
	opt.ClipNorm = 1
	w.Grad[0] = 1e6
	opt.Step([]*Tensor{w}, 1)
	// First Adam step magnitude is at most LR regardless, but the clip must
	// not blow up or NaN.
	if math.IsNaN(w.Data[0]) || math.Abs(w.Data[0]) > 0.2 {
		t.Errorf("clipped step went to %v", w.Data[0])
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := NewStepLR(1e-4, 5)
	if s.At(0) != 1e-4 || s.At(4) != 1e-4 {
		t.Error("first window should keep the base rate")
	}
	if s.At(5) != 5e-5 {
		t.Errorf("At(5) = %v, want 5e-5", s.At(5))
	}
	if s.At(10) != 2.5e-5 {
		t.Errorf("At(10) = %v, want 2.5e-5", s.At(10))
	}
	flat := &StepLR{Base: 0.01, StepEpochs: 0}
	if flat.At(100) != 0.01 {
		t.Error("StepEpochs=0 should disable decay")
	}
}

func TestEarlyStopper(t *testing.T) {
	e := NewEarlyStopper(2)
	steps := []struct {
		loss           float64
		stop, improved bool
	}{
		{1.0, false, true},
		{0.8, false, true},
		{0.9, false, false},
		{0.85, true, false},
	}
	for i, s := range steps {
		stop, improved := e.Observe(s.loss)
		if stop != s.stop || improved != s.improved {
			t.Errorf("step %d: (stop=%v, improved=%v), want (%v, %v)", i, stop, improved, s.stop, s.improved)
		}
	}
	if e.Best() != 0.8 {
		t.Errorf("Best = %v, want 0.8", e.Best())
	}
}

func TestCloneAndCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 3, 2)
	snapshot := CloneParams(d.Params())
	orig := append([]float64(nil), d.W.Data...)
	d.W.Data[0] += 100
	CopyParams(d.Params(), snapshot)
	for i := range orig {
		if d.W.Data[i] != orig[i] {
			t.Fatal("CopyParams did not restore the snapshot")
		}
	}
}

func TestEmbeddingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(rng, 10, 4)
	out := e.Forward([]int{3, 7})
	if out.Rows() != 2 || out.Cols() != 4 {
		t.Fatalf("embedding shape %v", out.Shape)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != e.Table.At(3, j) {
			t.Error("embedding row mismatch")
		}
	}
}

func TestTransformerEncoderPermutationEquivariance(t *testing.T) {
	// With no positional encoding, permuting the input rows permutes the
	// output rows identically — the property that makes the transformer
	// suitable for candidate sets (Section IV-B).
	rng := rand.New(rand.NewSource(3))
	enc := NewTransformerEncoder(rng, 2, 8, 2, 16, 0)
	x := randParam(rng, 5, 8)
	out := enc.Forward(x, false, rng)

	perm := []int{4, 2, 0, 3, 1}
	permData := make([]float64, x.Numel())
	for i, p := range perm {
		copy(permData[i*8:(i+1)*8], x.Data[p*8:(p+1)*8])
	}
	outPerm := enc.Forward(NewTensor(permData, 5, 8), false, rng)
	for i, p := range perm {
		for j := 0; j < 8; j++ {
			if math.Abs(outPerm.At(i, j)-out.At(p, j)) > 1e-9 {
				t.Fatalf("not permutation-equivariant at (%d,%d)", i, j)
			}
		}
	}
}

func TestLSTMIsOrderSensitive(t *testing.T) {
	// Unlike the transformer, the LSTM encoder depends on input order — the
	// deficiency the DLInfMA-PN ablation exposes.
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(rng, 4, 6)
	x := randParam(rng, 3, 4)
	out1 := l.Forward(x)
	rev := make([]float64, x.Numel())
	for i := 0; i < 3; i++ {
		copy(rev[i*4:(i+1)*4], x.Data[(2-i)*4:(3-i)*4])
	}
	out2 := l.Forward(NewTensor(rev, 3, 4))
	diff := 0.0
	for i := range out1.Data {
		diff += math.Abs(out1.Data[i] - out2.Data[i])
	}
	if diff < 1e-6 {
		t.Error("LSTM output identical under input reversal; expected order sensitivity")
	}
}

func TestConvOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewConvLayer(rng, 3, 8, 3)
	out := l.Forward(Zeros(3, 9, 9))
	if out.Shape[0] != 8 || out.Shape[1] != 9 || out.Shape[2] != 9 {
		t.Errorf("conv output shape %v, want [8 9 9]", out.Shape)
	}
}

func TestMaxPoolCeilShapes(t *testing.T) {
	out := MaxPool2D(Zeros(2, 9, 9))
	if out.Shape[1] != 5 || out.Shape[2] != 5 {
		t.Errorf("pool 9x9 -> %v, want 5x5", out.Shape[1:])
	}
	out = MaxPool2D(out)
	if out.Shape[1] != 3 || out.Shape[2] != 3 {
		t.Errorf("pool 5x5 -> %v, want 3x3", out.Shape[1:])
	}
}

func TestUpsampleRoundTripShape(t *testing.T) {
	x := NewTensor([]float64{1, 2, 3, 4}, 1, 2, 2)
	up := UpsampleNearest(x, 5, 5)
	if up.Shape[1] != 5 || up.Shape[2] != 5 {
		t.Fatalf("upsample shape %v", up.Shape)
	}
	// Top-left quadrant replicates element (0,0).
	if up.Data[0] != 1 || up.Data[1] != 1 {
		t.Errorf("nearest upsample wrong: %v", up.Data[:5])
	}
}
