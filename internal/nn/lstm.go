package nn

import "math/rand"

// LSTM is a single-layer LSTM over a sequence of feature rows. It backs the
// DLInfMA-PN variant, which replaces LocMatcher's transformer encoder with a
// recurrent encoder (as [18] did) and therefore suffers from long-range
// dependency decay — the effect the paper's ablation demonstrates.
type LSTM struct {
	Hidden int
	// One Dense per gate over the concatenated [x_t, h_{t-1}] vector.
	GateI *Dense
	GateF *Dense
	GateO *Dense
	GateG *Dense
}

// NewLSTM returns an LSTM with the given input and hidden sizes.
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	mk := func() *Dense { return NewDense(rng, in+hidden, hidden) }
	l := &LSTM{Hidden: hidden, GateI: mk(), GateF: mk(), GateO: mk(), GateG: mk()}
	// Standard trick: initialize the forget-gate bias positive so early
	// training does not erase state.
	for i := range l.GateF.B.Data {
		l.GateF.B.Data[i] = 1
	}
	return l
}

// Forward runs the LSTM over x [n, in] and returns the hidden states
// [n, hidden], one row per timestep.
func (l *LSTM) Forward(x *Tensor) *Tensor {
	n := x.Shape[0]
	h := Zeros(1, l.Hidden)
	c := Zeros(1, l.Hidden)
	outs := make([]*Tensor, n)
	for t := 0; t < n; t++ {
		xt := Rows(x, []int{t}) // [1, in]
		xh := ConcatCols(xt, h) // [1, in+hidden]
		i := Sigmoid(l.GateI.Forward(xh))
		f := Sigmoid(l.GateF.Forward(xh))
		o := Sigmoid(l.GateO.Forward(xh))
		g := Tanh(l.GateG.Forward(xh))
		c = Add(Mul(f, c), Mul(i, g))
		h = Mul(o, Tanh(c))
		outs[t] = h
	}
	return ConcatRows(outs...)
}

// Params implements Layer.
func (l *LSTM) Params() []*Tensor {
	var ps []*Tensor
	for _, d := range []*Dense{l.GateI, l.GateF, l.GateO, l.GateG} {
		ps = append(ps, d.Params()...)
	}
	return ps
}
