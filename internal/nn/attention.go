package nn

import (
	"math"
	"math/rand"
)

// MultiHeadSelfAttention implements scaled dot-product self-attention with
// per-head projection matrices. For LocMatcher the sequence axis is the set
// of location candidates of one address; there is no positional encoding
// because candidate order carries no meaning (Section IV-B).
type MultiHeadSelfAttention struct {
	Heads int
	DK    int // per-head key dimension
	WQ    []*Dense
	WK    []*Dense
	WV    []*Dense
	WO    *Dense
}

// NewMultiHeadSelfAttention builds attention over model dimension d with the
// given number of heads. d must be divisible by heads.
func NewMultiHeadSelfAttention(rng *rand.Rand, d, heads int) *MultiHeadSelfAttention {
	if d%heads != 0 {
		panic("nn: model dimension must be divisible by the number of heads")
	}
	dk := d / heads
	m := &MultiHeadSelfAttention{Heads: heads, DK: dk, WO: NewDense(rng, d, d)}
	for h := 0; h < heads; h++ {
		m.WQ = append(m.WQ, NewDense(rng, d, dk))
		m.WK = append(m.WK, NewDense(rng, d, dk))
		m.WV = append(m.WV, NewDense(rng, d, dk))
	}
	return m
}

// Forward applies self-attention to x of shape [n, d].
func (m *MultiHeadSelfAttention) Forward(x *Tensor) *Tensor {
	outs := make([]*Tensor, m.Heads)
	scale := 1 / math.Sqrt(float64(m.DK))
	for h := 0; h < m.Heads; h++ {
		q := m.WQ[h].Forward(x) // [n, dk]
		k := m.WK[h].Forward(x)
		v := m.WV[h].Forward(x)
		scores := Scale(MatMul(q, Transpose(k)), scale) // [n, n]
		attn := SoftmaxRows(scores)
		outs[h] = MatMul(attn, v) // [n, dk]
	}
	return m.WO.Forward(ConcatCols(outs...))
}

// Params implements Layer.
func (m *MultiHeadSelfAttention) Params() []*Tensor {
	ps := m.WO.Params()
	for h := 0; h < m.Heads; h++ {
		ps = append(ps, m.WQ[h].Params()...)
		ps = append(ps, m.WK[h].Params()...)
		ps = append(ps, m.WV[h].Params()...)
	}
	return ps
}

// TransformerEncoderLayer is one pre-activation-free ("post-norm", as in the
// original transformer and the paper's Figure 8) encoder layer: multi-head
// self-attention and a position-wise feed-forward network, each wrapped in a
// residual connection followed by layer normalization.
type TransformerEncoderLayer struct {
	Attn    *MultiHeadSelfAttention
	FF1     *Dense
	FF2     *Dense
	Norm1   *LayerNormLayer
	Norm2   *LayerNormLayer
	Dropout float64
}

// NewTransformerEncoderLayer builds an encoder layer with model dimension d,
// the given head count, feed-forward dimension dff, and dropout probability.
func NewTransformerEncoderLayer(rng *rand.Rand, d, heads, dff int, dropout float64) *TransformerEncoderLayer {
	return &TransformerEncoderLayer{
		Attn:    NewMultiHeadSelfAttention(rng, d, heads),
		FF1:     NewDense(rng, d, dff),
		FF2:     NewDense(rng, dff, d),
		Norm1:   NewLayerNorm(d),
		Norm2:   NewLayerNorm(d),
		Dropout: dropout,
	}
}

// Forward applies the layer to x of shape [n, d].
func (l *TransformerEncoderLayer) Forward(x *Tensor, train bool, rng *rand.Rand) *Tensor {
	a := Dropout(l.Attn.Forward(x), l.Dropout, train, rng)
	x = l.Norm1.Forward(Add(x, a))
	f := l.FF2.Forward(ReLU(l.FF1.Forward(x)))
	f = Dropout(f, l.Dropout, train, rng)
	return l.Norm2.Forward(Add(x, f))
}

// Params implements Layer.
func (l *TransformerEncoderLayer) Params() []*Tensor {
	ps := l.Attn.Params()
	ps = append(ps, l.FF1.Params()...)
	ps = append(ps, l.FF2.Params()...)
	ps = append(ps, l.Norm1.Params()...)
	ps = append(ps, l.Norm2.Params()...)
	return ps
}

// TransformerEncoder stacks N encoder layers (the paper uses N = 3 with 2
// heads and 32 feed-forward neurons).
type TransformerEncoder struct {
	Layers []*TransformerEncoderLayer
}

// NewTransformerEncoder builds a stack of n encoder layers.
func NewTransformerEncoder(rng *rand.Rand, n, d, heads, dff int, dropout float64) *TransformerEncoder {
	enc := &TransformerEncoder{}
	for i := 0; i < n; i++ {
		enc.Layers = append(enc.Layers, NewTransformerEncoderLayer(rng, d, heads, dff, dropout))
	}
	return enc
}

// Forward applies all layers to x of shape [n, d].
func (e *TransformerEncoder) Forward(x *Tensor, train bool, rng *rand.Rand) *Tensor {
	for _, l := range e.Layers {
		x = l.Forward(x, train, rng)
	}
	return x
}

// Params implements Layer.
func (e *TransformerEncoder) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range e.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// AdditiveAttention implements the context-vector attention of Equation (3):
// s_k = v^T tanh(W z_k + U c + b), scoring each row z_k of the candidate
// embedding matrix against the address context vector c.
type AdditiveAttention struct {
	W *Dense  // z -> p (weight [z,p], bias plays the role of b)
	U *Tensor // [m, p], context projection (no second bias)
	V *Tensor // [p, 1]
}

// NewAdditiveAttention builds the attention with embedding dim z, context
// dim m, and hidden dim p (the paper sets p = 32).
func NewAdditiveAttention(rng *rand.Rand, z, m, p int) *AdditiveAttention {
	return &AdditiveAttention{
		W: NewDense(rng, z, p),
		U: XavierParam(rng, m, p, m, p),
		V: XavierParam(rng, p, 1, p, 1),
	}
}

// Scores returns the unnormalized matching scores [n,1] of candidate
// embeddings z [n, zdim] against context c [1, m]. Pass a nil context to
// drop the U·c term (the DLInfMA-nA ablation).
func (a *AdditiveAttention) Scores(z, c *Tensor) *Tensor {
	h := a.W.Forward(z) // W z + b, [n, p]
	if c != nil {
		uc := MatMul(c, a.U) // [1, p]
		h = AddRowVec(h, uc)
	}
	return MatMul(Tanh(h), a.V) // [n, 1]
}

// Params implements Layer.
func (a *AdditiveAttention) Params() []*Tensor {
	return append(a.W.Params(), a.U, a.V)
}
