package nn

import (
	"math/rand"
	"testing"
)

// buildLoss runs a small Dense -> LayerNorm -> Dropout-free graph ending in
// CrossEntropy, with x as the (already filled) input tensor.
func buildLoss(d *Dense, ln *LayerNormLayer, x *Tensor) *Tensor {
	h := Tanh(d.Forward(x))
	h = ln.Forward(h)
	return CrossEntropy(h, 1)
}

func fillInput(rng *rand.Rand, data []float64) {
	for i := range data {
		data[i] = rng.NormFloat64()
	}
}

func TestTapeGraphMatchesHeapBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(rng, 6, 4)
	ln := NewLayerNorm(4)
	params := append(d.Params(), ln.Params()...)
	in := make([]float64, 1*6)
	fillInput(rand.New(rand.NewSource(9)), in)

	// Heap reference.
	lossHeap := buildLoss(d, ln, NewTensor(append([]float64(nil), in...), 1, 6))
	Backward(lossHeap)
	gradsHeap := make([][]float64, len(params))
	for i, p := range params {
		gradsHeap[i] = append([]float64(nil), p.Grad...)
	}
	ZeroGrads(params)

	// Tape run.
	tape := NewTape()
	lossTape := buildLoss(d, ln, tape.NewConst(in, 1, 6))
	if lossTape.Value() != lossHeap.Value() {
		t.Fatalf("tape loss %v != heap loss %v", lossTape.Value(), lossHeap.Value())
	}
	Backward(lossTape)
	for i, p := range params {
		for j, g := range p.Grad {
			if g != gradsHeap[i][j] {
				t.Fatalf("param %d grad[%d]: tape %v != heap %v", i, j, g, gradsHeap[i][j])
			}
		}
	}
	tape.Reset()
}

func TestTapeResetReuseBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(rng, 6, 4)
	ln := NewLayerNorm(4)
	params := append(d.Params(), ln.Params()...)
	in := make([]float64, 1*6)
	fillInput(rand.New(rand.NewSource(9)), in)

	tape := NewTape()
	run := func() (float64, [][]float64) {
		loss := buildLoss(d, ln, tape.NewConst(in, 1, 6))
		Backward(loss)
		v := loss.Value()
		grads := make([][]float64, len(params))
		for i, p := range params {
			grads[i] = append([]float64(nil), p.Grad...)
		}
		ZeroGrads(params)
		tape.Reset()
		return v, grads
	}
	v1, g1 := run()
	v2, g2 := run() // second pass recycles every tensor and buffer
	if v1 != v2 {
		t.Fatalf("reused-tape loss %v != first-pass loss %v", v2, v1)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("param %d grad[%d] differs across tape reuse", i, j)
			}
		}
	}
}

func TestTapeReducesAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(rng, 6, 4)
	ln := NewLayerNorm(4)
	params := append(d.Params(), ln.Params()...)
	in := make([]float64, 1*6)
	fillInput(rand.New(rand.NewSource(9)), in)

	heap := testing.AllocsPerRun(50, func() {
		Backward(buildLoss(d, ln, NewTensor(in, 1, 6)))
		ZeroGrads(params)
	})
	tape := NewTape()
	taped := testing.AllocsPerRun(50, func() {
		Backward(buildLoss(d, ln, tape.NewConst(in, 1, 6)))
		ZeroGrads(params)
		tape.Reset()
	})
	if taped >= heap/2 {
		t.Fatalf("tape does not cut allocations: heap %.0f allocs/run, tape %.0f", heap, taped)
	}
}

func TestParallelMatMulMatchesSerialBitExact(t *testing.T) {
	old := matMulParallelFlops
	defer func() { matMulParallelFlops = old }()

	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 17, 11)
	b := randParam(rng, 11, 13)
	run := func() ([]float64, []float64, []float64) {
		out := MatMul(a, b)
		loss := SumAll(out)
		Backward(loss)
		data := append([]float64(nil), out.Data...)
		ga := append([]float64(nil), a.Grad...)
		gb := append([]float64(nil), b.Grad...)
		a.ZeroGrad()
		b.ZeroGrad()
		return data, ga, gb
	}
	matMulParallelFlops = 1 << 40 // force serial
	sd, sga, sgb := run()
	matMulParallelFlops = 1 // force parallel
	pd, pga, pgb := run()
	for i := range sd {
		if sd[i] != pd[i] {
			t.Fatalf("forward[%d]: serial %v != parallel %v", i, sd[i], pd[i])
		}
	}
	for i := range sga {
		if sga[i] != pga[i] {
			t.Fatalf("dA[%d]: serial %v != parallel %v", i, sga[i], pga[i])
		}
	}
	for i := range sgb {
		if sgb[i] != pgb[i] {
			t.Fatalf("dB[%d]: serial %v != parallel %v", i, sgb[i], pgb[i])
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		hits := make([]int, 23)
		ParallelFor(workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestDataParallelReduceIsOrderedAndZeroesReplicas(t *testing.T) {
	master := []*Tensor{ZeroParam(2)}
	repA := []*Tensor{ZeroParam(2)}
	repB := []*Tensor{ZeroParam(2)}
	repA[0].Grad = []float64{1, 2}
	repB[0].Grad = []float64{10, 20}
	dp := NewDataParallel(master, repA, repB)
	dp.Reduce()
	if master[0].Grad[0] != 11 || master[0].Grad[1] != 22 {
		t.Fatalf("reduced grads = %v, want [11 22]", master[0].Grad)
	}
	for _, g := range append(repA[0].Grad, repB[0].Grad...) {
		if g != 0 {
			t.Fatalf("replica grads not zeroed after Reduce")
		}
	}
}

func TestDataParallelRunShardsStatically(t *testing.T) {
	master := []*Tensor{ZeroParam(1)}
	reps := [][]*Tensor{{ZeroParam(1)}, {ZeroParam(1)}, {ZeroParam(1)}}
	dp := NewDataParallel(master, reps...)
	owner := make([]int, 10)
	dp.Run(len(owner), func(w, i int) { owner[i] = w })
	for i, w := range owner {
		if w != i%3 {
			t.Fatalf("index %d ran on worker %d, want %d", i, w, i%3)
		}
	}
}

func TestDataParallelSyncBroadcasts(t *testing.T) {
	master := []*Tensor{NewParam([]float64{3, 4}, 2)}
	rep := []*Tensor{ZeroParam(2)}
	dp := NewDataParallel(master, rep)
	dp.Sync()
	if rep[0].Data[0] != 3 || rep[0].Data[1] != 4 {
		t.Fatalf("replica data = %v after Sync", rep[0].Data)
	}
}
