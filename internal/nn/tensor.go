// Package nn is a self-contained neural-network substrate: a reverse-mode
// autodiff tensor engine with the layers, losses and optimizers the paper's
// models need — dense layers, layer normalization, multi-head self-attention
// and transformer encoders (LocMatcher), an LSTM (the DLInfMA-PN variant),
// 2-D convolutions, pooling and upsampling (the UNet-based baseline), and
// Adam with step-decay learning-rate scheduling and early stopping.
//
// The engine works one sample at a time — LocMatcher's input is a
// variable-length set of location candidates, so per-sample graphs with
// gradient accumulation across a mini-batch reproduce PyTorch's semantics
// without padding or masking. Gradient correctness is property-tested
// against finite differences.
//
// Two efficiency facilities support production-scale training (the paper's
// Section V-F trajectory-level parallelization, applied to the second
// stage): Tape, an arena that recycles one sample's graph tensors for the
// next sample instead of re-allocating them, and DataParallel, a
// deterministic data-parallel training harness with per-worker parameter
// replicas and ordered gradient reduction. Large MatMuls additionally split
// their row blocks across cores.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float64 tensor participating in a dynamically built
// computation graph. Leaf tensors created with NewParam accumulate gradients
// across calls to Backward until ZeroGrad.
type Tensor struct {
	Shape []int
	Data  []float64
	Grad  []float64

	needGrad bool
	parents  []*Tensor
	backFn   func()
	// tape, when non-nil, is the arena this tensor's storage came from; op
	// results inherit it from their parents (see Tape).
	tape *Tape
	// visited is Backward's traversal mark; always false outside Backward.
	visited bool
}

func numel(shape []int) int {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension in shape %v", shape))
		}
		n *= s
	}
	return n
}

// NewTensor wraps data in a constant (non-differentiable) tensor of the
// given shape. The data slice is used directly, not copied.
func NewTensor(data []float64, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Zeros returns a constant tensor of zeros.
func Zeros(shape ...int) *Tensor {
	return NewTensor(make([]float64, numel(shape)), shape...)
}

// NewParam returns a trainable tensor initialized to the given data.
func NewParam(data []float64, shape ...int) *Tensor {
	t := NewTensor(data, shape...)
	t.needGrad = true
	t.Grad = make([]float64, len(t.Data))
	return t
}

// XavierParam returns a trainable tensor with Glorot-uniform initialization
// for a layer with the given fan-in and fan-out.
func XavierParam(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	data := make([]float64, numel(shape))
	for i := range data {
		data[i] = (rng.Float64()*2 - 1) * limit
	}
	return NewParam(data, shape...)
}

// ZeroParam returns a trainable tensor initialized to zero (biases).
func ZeroParam(shape ...int) *Tensor {
	return NewParam(make([]float64, numel(shape)), shape...)
}

// OnesParam returns a trainable tensor initialized to one (layer-norm gains).
func OnesParam(shape ...int) *Tensor {
	data := make([]float64, numel(shape))
	for i := range data {
		data[i] = 1
	}
	return NewParam(data, shape...)
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Rows returns the first dimension of a 2-D tensor.
func (t *Tensor) Rows() int { return t.Shape[0] }

// Cols returns the second dimension of a 2-D tensor.
func (t *Tensor) Cols() int { return t.Shape[1] }

// At returns the element at row i, column j of a 2-D tensor.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Shape[1]+j] }

// ensureGrad allocates the gradient buffer if needed, from the tensor's tape
// when it has one.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		if t.tape != nil {
			t.Grad = t.tape.buf(len(t.Data))
		} else {
			t.Grad = make([]float64, len(t.Data))
		}
	}
}

// ZeroGrad clears the accumulated gradient.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// newResult allocates the output tensor of an op over the given parents. It
// propagates needGrad (wiring the backward closure only when some parent is
// differentiable) and the tape: when any parent lives on an arena, the
// result does too, so one NewLeaf at the graph's inputs routes the whole
// forward/backward pass through recycled storage. Graphs must not mix
// tensors from different tapes.
func newResult(shape []int, parents ...*Tensor) *Tensor {
	var tp *Tape
	need := false
	for _, p := range parents {
		if p.tape != nil && tp == nil {
			tp = p.tape
		}
		if p.needGrad {
			need = true
		}
	}
	var out *Tensor
	if tp != nil {
		out = tp.tensor()
		out.Shape = tp.newShape(shape)
		out.Data = tp.buf(numel(shape))
	} else {
		out = &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, numel(shape))}
	}
	if need {
		out.needGrad = true
		out.parents = parents
	}
	return out
}

// setBack installs fn as the backward step if the output is differentiable.
func (t *Tensor) setBack(fn func()) {
	if t.needGrad {
		t.backFn = fn
	}
}

// Backward runs reverse-mode differentiation from t, which must be a scalar
// (one element). Gradients accumulate into every reachable differentiable
// tensor.
//
// Concurrent Backward calls are allowed only on disjoint graphs (no shared
// differentiable tensors): gradient accumulation and the traversal marks
// both mutate the reachable tensors. Data-parallel training therefore gives
// each worker its own parameter replica (see DataParallel).
func Backward(t *Tensor) {
	if t.Numel() != 1 {
		panic(fmt.Sprintf("nn: Backward requires a scalar, got shape %v", t.Shape))
	}
	if !t.needGrad {
		return
	}
	// Topological order by post-order DFS, marking tensors in place instead
	// of tracking them in a map (the marks are cleared before returning).
	// The order slice is recycled through the tape when there is one.
	var order []*Tensor
	if t.tape != nil {
		order = t.tape.order[:0]
	}
	var visit func(n *Tensor)
	visit = func(n *Tensor) {
		if n.visited || !n.needGrad {
			return
		}
		n.visited = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(t)
	for _, n := range order {
		n.ensureGrad()
	}
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backFn != nil {
			order[i].backFn()
		}
	}
	for _, n := range order {
		n.visited = false
	}
	if t.tape != nil {
		t.tape.order = order
	}
}

// Value returns the single element of a scalar tensor.
func (t *Tensor) Value() float64 {
	if t.Numel() != 1 {
		panic(fmt.Sprintf("nn: Value requires a scalar, got shape %v", t.Shape))
	}
	return t.Data[0]
}
