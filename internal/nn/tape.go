package nn

// Tape is an arena and free-list for the tensors of one computation graph.
// LocMatcher-style training builds and discards a fresh graph per sample;
// without a tape every op allocates a Tensor struct plus data (and later
// gradient) buffers that become garbage as soon as the optimizer step runs.
// A tape hands out recycled structs and buffers instead: after Backward has
// run and the caller has read everything it needs, Reset returns all storage
// handed out since the previous Reset to the free lists, so the next
// sample's graph of the same shapes allocates (almost) nothing.
//
// Usage: create leaf input tensors with NewLeaf (or NewConst) and fill them.
// Every op whose inputs include a tape-resident tensor allocates its result
// from the same tape, so the arena propagates through the graph exactly like
// needGrad does. Trainable parameters stay heap-allocated and are never
// recycled — only graph intermediates live on the tape.
//
// A tape is NOT safe for concurrent use: one tape per goroutine (the
// data-parallel trainer gives each worker its own). All tensors, Data/Grad
// slices and Shape slices obtained from a tape are invalid after Reset;
// copy anything that must outlive the graph.
type Tape struct {
	freeBufs   map[int][][]float64 // recycled float64 buffers by exact length
	liveBufs   [][]float64         // buffers handed out since the last Reset
	freeTs     []*Tensor           // recycled Tensor structs
	liveTs     []*Tensor           // structs handed out since the last Reset
	freeShapes map[int][][]int     // recycled shape slices by length
	order      []*Tensor           // Backward's topological-order scratch
}

// NewTape returns an empty tape.
func NewTape() *Tape {
	return &Tape{
		freeBufs:   make(map[int][][]float64),
		freeShapes: make(map[int][][]int),
	}
}

// buf returns a zeroed float64 buffer of length n, recycled when possible.
func (tp *Tape) buf(n int) []float64 {
	var b []float64
	if l := tp.freeBufs[n]; len(l) > 0 {
		b = l[len(l)-1]
		tp.freeBufs[n] = l[:len(l)-1]
		for i := range b {
			b[i] = 0
		}
	} else {
		b = make([]float64, n)
	}
	tp.liveBufs = append(tp.liveBufs, b)
	return b
}

// newShape copies shape into a recycled slice.
func (tp *Tape) newShape(shape []int) []int {
	n := len(shape)
	if l := tp.freeShapes[n]; len(l) > 0 {
		s := l[len(l)-1]
		tp.freeShapes[n] = l[:len(l)-1]
		copy(s, shape)
		return s
	}
	return append([]int(nil), shape...)
}

// tensor returns a zeroed Tensor struct bound to the tape.
func (tp *Tape) tensor() *Tensor {
	var t *Tensor
	if n := len(tp.freeTs); n > 0 {
		t = tp.freeTs[n-1]
		tp.freeTs = tp.freeTs[:n-1]
	} else {
		t = &Tensor{}
	}
	t.tape = tp
	tp.liveTs = append(tp.liveTs, t)
	return t
}

// NewLeaf returns a zero-filled constant (non-differentiable) tensor
// allocated on the tape, for the caller to fill in place. Seeding a graph's
// inputs with NewLeaf is what routes all downstream op results through the
// arena.
func (tp *Tape) NewLeaf(shape ...int) *Tensor {
	t := tp.tensor()
	t.Shape = tp.newShape(shape)
	t.Data = tp.buf(numel(shape))
	return t
}

// NewConst is NewLeaf followed by copying data in; data is not retained.
func (tp *Tape) NewConst(data []float64, shape ...int) *Tensor {
	t := tp.NewLeaf(shape...)
	copy(t.Data, data)
	return t
}

// Reset recycles every tensor, buffer and shape handed out since the last
// Reset. The caller must be done reading all of them.
func (tp *Tape) Reset() {
	for _, b := range tp.liveBufs {
		tp.freeBufs[len(b)] = append(tp.freeBufs[len(b)], b)
	}
	tp.liveBufs = tp.liveBufs[:0]
	for _, t := range tp.liveTs {
		if t.Shape != nil {
			tp.freeShapes[len(t.Shape)] = append(tp.freeShapes[len(t.Shape)], t.Shape)
		}
		*t = Tensor{}
		tp.freeTs = append(tp.freeTs, t)
	}
	tp.liveTs = tp.liveTs[:0]
}

// graphScratch returns a zeroed scratch buffer tied to t's graph: arena
// storage when t lives on a tape, a plain allocation otherwise. Ops use it
// for forward/backward working memory (dropout masks, saved activations)
// that must live exactly as long as the graph.
func graphScratch(t *Tensor, n int) []float64 {
	if t.tape != nil {
		return t.tape.buf(n)
	}
	return make([]float64, n)
}
