package nn

import (
	"math"
	"math/rand"
	"testing"
)

// checkGrads verifies analytic gradients of loss() with respect to every
// params element against central finite differences. loss must rebuild the
// graph on every call and be deterministic.
func checkGrads(t *testing.T, loss func() *Tensor, params []*Tensor, tol float64) {
	t.Helper()
	ZeroGrads(params)
	l := loss()
	Backward(l)
	const eps = 1e-6
	for pi, p := range params {
		for i := range p.Data {
			old := p.Data[i]
			p.Data[i] = old + eps
			l1 := loss().Value()
			p.Data[i] = old - eps
			l2 := loss().Value()
			p.Data[i] = old
			num := (l1 - l2) / (2 * eps)
			got := p.Grad[i]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > tol {
				t.Errorf("param %d elem %d: analytic %v vs numeric %v", pi, i, got, num)
			}
		}
	}
}

func randParam(rng *rand.Rand, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 0.5
	}
	return NewParam(data, shape...)
}

func TestGradAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	checkGrads(t, func() *Tensor { return SumAll(Mul(Add(a, b), Sub(a, b))) }, []*Tensor{a, b}, 1e-5)
}

func TestGradScaleAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 5)
	checkGrads(t, func() *Tensor { return MeanAll(Scale(a, 3.5)) }, []*Tensor{a}, 1e-6)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 4, 3)
	b := randParam(rng, 3, 5)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(MatMul(a, b))) }, []*Tensor{a, b}, 1e-5)
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	checkGrads(t, func() *Tensor { return SumAll(MatMul(Transpose(a), b)) }, []*Tensor{a, b}, 1e-5)
}

func TestGradAddRowVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 4, 3)
	b := randParam(rng, 3)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(AddRowVec(a, b))) }, []*Tensor{a, b}, 1e-5)
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 2, 6)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(a)) }, []*Tensor{a}, 1e-5)
	checkGrads(t, func() *Tensor { return SumAll(Sigmoid(a)) }, []*Tensor{a}, 1e-5)
	// ReLU: keep inputs away from the kink.
	for i := range a.Data {
		if math.Abs(a.Data[i]) < 0.05 {
			a.Data[i] = 0.1
		}
	}
	checkGrads(t, func() *Tensor { return SumAll(Mul(ReLU(a), a)) }, []*Tensor{a}, 1e-5)
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 3, 4)
	w := randParam(rng, 3, 4)
	checkGrads(t, func() *Tensor { return SumAll(Mul(SoftmaxRows(a), w)) }, []*Tensor{a, w}, 1e-5)
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 3, 2)
	b := randParam(rng, 3, 4)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(ConcatCols(a, b))) }, []*Tensor{a, b}, 1e-5)
	c := randParam(rng, 2, 3)
	d := randParam(rng, 4, 3)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(ConcatRows(c, d))) }, []*Tensor{c, d}, 1e-5)
}

func TestGradRowsGather(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	table := randParam(rng, 5, 3)
	// Repeated index exercises gradient accumulation in the scatter.
	idx := []int{1, 3, 1}
	checkGrads(t, func() *Tensor { return SumAll(Tanh(Rows(table, idx))) }, []*Tensor{table}, 1e-5)
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 2, 6)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(Reshape(a, 3, 4))) }, []*Tensor{a}, 1e-5)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 3, 6)
	gain := randParam(rng, 6)
	bias := randParam(rng, 6)
	w := randParam(rng, 3, 6)
	checkGrads(t, func() *Tensor {
		return SumAll(Mul(LayerNorm(a, gain, bias, 1e-5), w))
	}, []*Tensor{a, gain, bias, w}, 1e-4)
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := randParam(rng, 5)
	checkGrads(t, func() *Tensor { return CrossEntropy(logits, 2) }, []*Tensor{logits}, 1e-5)
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := randParam(rng, 3, 1)
	x := NewTensor([]float64{0.5, -1.2, 2.0}, 1, 3)
	for _, y := range []float64{0, 1} {
		checkGrads(t, func() *Tensor { return BCEWithLogits(MatMul(x, w), y) }, []*Tensor{w}, 1e-5)
	}
	checkGrads(t, func() *Tensor { return WeightedBCEWithLogits(MatMul(x, w), 1, 0.8) }, []*Tensor{w}, 1e-5)
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randParam(rng, 4)
	checkGrads(t, func() *Tensor { return MSE(a, []float64{1, -1, 0.5, 2}) }, []*Tensor{a}, 1e-5)
}

func TestGradDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDense(rng, 4, 3)
	x := NewTensor([]float64{1, 0.5, -0.3, 0.2, -1, 2, 0.1, 0.7}, 2, 4)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(d.Forward(x))) }, d.Params(), 1e-5)
}

func TestGradMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := NewMLP(rng, 3, 8, 1)
	x := NewTensor([]float64{0.3, -0.6, 0.9}, 1, 3)
	checkGrads(t, func() *Tensor { return BCEWithLogits(m.Forward(x), 1) }, m.Params(), 1e-4)
}

func TestGradMultiHeadAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mha := NewMultiHeadSelfAttention(rng, 8, 2)
	x := randParam(rng, 5, 8)
	params := append(mha.Params(), x)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(mha.Forward(x))) }, params, 1e-4)
}

func TestGradTransformerEncoderLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewTransformerEncoderLayer(rng, 8, 2, 16, 0) // no dropout for determinism
	x := randParam(rng, 4, 8)
	params := append(l.Params(), x)
	checkGrads(t, func() *Tensor { return SumAll(l.Forward(x, false, rng)) }, params, 2e-4)
}

func TestGradAdditiveAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	att := NewAdditiveAttention(rng, 8, 4, 16)
	z := randParam(rng, 6, 8)
	c := randParam(rng, 1, 4)
	params := append(att.Params(), z, c)
	checkGrads(t, func() *Tensor { return CrossEntropy(att.Scores(z, c), 3) }, params, 1e-4)
	// nil context (DLInfMA-nA ablation) must also be differentiable.
	checkGrads(t, func() *Tensor { return CrossEntropy(att.Scores(z, nil), 1) }, append(att.W.Params(), att.V, z), 1e-4)
}

func TestGradLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	l := NewLSTM(rng, 3, 4)
	x := randParam(rng, 5, 3)
	params := append(l.Params(), x)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(l.Forward(x))) }, params, 1e-4)
}

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewConvLayer(rng, 2, 3, 3)
	x := randParam(rng, 2, 5, 5)
	params := append(l.Params(), x)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(l.Forward(x))) }, params, 1e-4)
}

func TestGradMaxPoolAndUpsample(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randParam(rng, 1, 5, 5) // odd size exercises ceil pooling
	checkGrads(t, func() *Tensor { return SumAll(Tanh(MaxPool2D(x))) }, []*Tensor{x}, 1e-5)
	small := randParam(rng, 2, 3, 3)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(UpsampleNearest(small, 7, 7))) }, []*Tensor{small}, 1e-5)
}

func TestGradConcatChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randParam(rng, 1, 3, 3)
	b := randParam(rng, 2, 3, 3)
	checkGrads(t, func() *Tensor { return SumAll(Tanh(ConcatChannels(a, b))) }, []*Tensor{a, b}, 1e-5)
}

func TestGradDropoutMaskIsConsistent(t *testing.T) {
	// With a fixed mask (replayed rng), dropout's backward must use the same
	// mask as forward. We verify by applying dropout once and checking the
	// gradient matches the mask.
	rng := rand.New(rand.NewSource(24))
	a := randParam(rng, 1, 10)
	out := Dropout(a, 0.5, true, rng)
	loss := SumAll(out)
	Backward(loss)
	for i := range a.Data {
		var wantGrad float64
		if out.Data[i] != 0 {
			wantGrad = 2 // 1/(1-0.5)
		}
		if a.Data[i] == 0 {
			continue // can't distinguish dropped from zero input
		}
		if math.Abs(a.Grad[i]-wantGrad) > 1e-12 {
			t.Errorf("elem %d: grad %v, want %v", i, a.Grad[i], wantGrad)
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randParam(rng, 2, 3)
	out := Dropout(a, 0.5, false, rng)
	if out != a {
		t.Error("eval-mode dropout should return its input unchanged")
	}
}

func TestGradientAccumulationAcrossSamples(t *testing.T) {
	// Two backward passes without ZeroGrad accumulate, mirroring mini-batch
	// accumulation.
	rng := rand.New(rand.NewSource(26))
	w := randParam(rng, 2, 1)
	x := NewTensor([]float64{1, 2}, 1, 2)
	Backward(MatMul(x, w))
	g1 := append([]float64(nil), w.Grad...)
	Backward(MatMul(x, w))
	for i := range w.Grad {
		if math.Abs(w.Grad[i]-2*g1[i]) > 1e-12 {
			t.Errorf("grad did not accumulate: %v vs %v", w.Grad[i], 2*g1[i])
		}
	}
	w.ZeroGrad()
	for _, g := range w.Grad {
		if g != 0 {
			t.Error("ZeroGrad left nonzero gradient")
		}
	}
}
