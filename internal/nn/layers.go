package nn

import "math/rand"

// Layer is anything holding trainable parameters.
type Layer interface {
	Params() []*Tensor
}

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	W *Tensor // [in, out]
	B *Tensor // [out]
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W: XavierParam(rng, in, out, in, out),
		B: ZeroParam(out),
	}
}

// Forward applies the layer to x of shape [n, in].
func (d *Dense) Forward(x *Tensor) *Tensor {
	return AddRowVec(MatMul(x, d.W), d.B)
}

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// LayerNormLayer is layer normalization with learned gain and bias.
type LayerNormLayer struct {
	Gain *Tensor
	Bias *Tensor
	Eps  float64
}

// NewLayerNorm returns a LayerNormLayer over vectors of dimension d.
func NewLayerNorm(d int) *LayerNormLayer {
	return &LayerNormLayer{Gain: OnesParam(d), Bias: ZeroParam(d), Eps: 1e-5}
}

// Forward normalizes each row of x.
func (l *LayerNormLayer) Forward(x *Tensor) *Tensor {
	return LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params implements Layer.
func (l *LayerNormLayer) Params() []*Tensor { return []*Tensor{l.Gain, l.Bias} }

// Embedding maps integer ids to dense vectors.
type Embedding struct {
	Table *Tensor // [vocab, dim]
}

// NewEmbedding returns an Embedding with small random initialization.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	data := make([]float64, vocab*dim)
	for i := range data {
		data[i] = rng.NormFloat64() * 0.1
	}
	return &Embedding{Table: NewParam(data, vocab, dim)}
}

// Forward looks up the embeddings of ids, returning [len(ids), dim].
func (e *Embedding) Forward(ids []int) *Tensor { return Rows(e.Table, ids) }

// Params implements Layer.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.Table} }

// MLP is a stack of Dense layers with ReLU activations between them (none
// after the last). It implements the DLInfMA-MLP variant and RankNet's
// scoring tower.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes, e.g. (rng, 10, 16, 1) is
// a 10 -> 16 -> 1 network.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewDense(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Forward applies the network to x of shape [n, sizes[0]].
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params implements Layer.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
