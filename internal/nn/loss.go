package nn

import (
	"fmt"
	"math"
)

// CrossEntropy computes -log softmax(logits)[target] for a logits tensor
// with one element per class (any shape; it is flattened). This is the
// LocMatcher training loss: the candidates' matching scores are normalized
// by softmax and the true candidate's probability is maximized.
func CrossEntropy(logits *Tensor, target int) *Tensor {
	n := logits.Numel()
	if target < 0 || target >= n {
		panic(fmt.Sprintf("nn: CrossEntropy target %d out of range [0,%d)", target, n))
	}
	out := newResult([]int{1}, logits)
	maxv := logits.Data[0]
	for _, v := range logits.Data[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := graphScratch(out, n)
	for i, v := range logits.Data {
		e := math.Exp(v - maxv)
		probs[i] = e
		sum += e
	}
	for i := range probs {
		probs[i] /= sum
	}
	out.Data[0] = -math.Log(math.Max(probs[target], 1e-300))
	out.setBack(func() {
		logits.ensureGrad()
		g := out.Grad[0]
		for i := range probs {
			d := probs[i]
			if i == target {
				d -= 1
			}
			logits.Grad[i] += g * d
		}
	})
	return out
}

// Softmax1D returns the softmax of a flattened tensor as a probability
// vector of the same shape. Inference-time counterpart of CrossEntropy.
func Softmax1D(logits *Tensor) []float64 {
	n := logits.Numel()
	out := make([]float64, n)
	maxv := logits.Data[0]
	for _, v := range logits.Data[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits.Data {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// BCEWithLogits computes the binary cross-entropy of a single logit against
// label y in {0,1}, using the numerically stable formulation
// max(x,0) - x*y + log(1+exp(-|x|)). It drives the binary classifiers
// (DLInfMA-MLP) and RankNet's pairwise loss.
func BCEWithLogits(logit *Tensor, y float64) *Tensor {
	if logit.Numel() != 1 {
		panic(fmt.Sprintf("nn: BCEWithLogits requires a scalar logit, got %v", logit.Shape))
	}
	out := newResult([]int{1}, logit)
	x := logit.Data[0]
	out.Data[0] = math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	out.setBack(func() {
		logit.ensureGrad()
		p := 1 / (1 + math.Exp(-x))
		logit.Grad[0] += out.Grad[0] * (p - y)
	})
	return out
}

// WeightedBCEWithLogits is BCEWithLogits scaled by a per-sample weight,
// used to implement the paper's 8:2 class weighting for imbalanced labels.
func WeightedBCEWithLogits(logit *Tensor, y, weight float64) *Tensor {
	return Scale(BCEWithLogits(logit, y), weight)
}

// MSE computes the mean squared error between a tensor and a constant
// target of the same length.
func MSE(pred *Tensor, target []float64) *Tensor {
	if pred.Numel() != len(target) {
		panic(fmt.Sprintf("nn: MSE size mismatch %d vs %d", pred.Numel(), len(target)))
	}
	out := newResult([]int{1}, pred)
	var s float64
	for i, v := range pred.Data {
		d := v - target[i]
		s += d * d
	}
	n := float64(len(target))
	out.Data[0] = s / n
	out.setBack(func() {
		pred.ensureGrad()
		g := out.Grad[0]
		for i, v := range pred.Data {
			pred.Grad[i] += g * 2 * (v - target[i]) / n
		}
	})
	return out
}

// PixelCrossEntropy computes -log softmax(logits over all elements)[target]
// where logits is a [1,H,W] or [H,W] map and target is a flat pixel index.
// This is the UNet-based baseline's training loss: the ground-truth pixel's
// probability is maximized over the whole spatial grid.
func PixelCrossEntropy(logits *Tensor, target int) *Tensor {
	return CrossEntropy(logits, target)
}
