package nn

import (
	"context"
	"fmt"
	"sync"
)

// ParallelFor runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines — the non-cancellable form used by pure compute kernels (matrix
// multiplication rows) where a context check per index would be dead weight.
// It is ParallelForCtx with a background context.
func ParallelFor(workers, n int, fn func(i int)) {
	_ = ParallelForCtx(context.Background(), workers, n, fn)
}

// ParallelForCtx runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines pulling indices from a shared channel — a bounded fan-out that
// never spawns more than workers goroutines no matter how large n is (the
// goroutine-per-item pattern does, and DowBJ-scale inputs have tens of
// thousands of trips). workers <= 1 (or n <= 1) runs inline, preserving the
// exact serial execution order. fn must be safe to call concurrently for
// distinct i; iterations must not depend on each other.
//
// Cancellation is cooperative: each worker checks ctx before starting the
// next index and stops pulling once ctx is done, so the call returns after
// at most one in-flight fn per worker. The returned error is ctx.Err() when
// the context was cancelled (some indices then never ran), nil otherwise.
func ParallelForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		done := ctx.Done()
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// DataParallel coordinates data-parallel training over worker-local
// parameter replicas: each worker runs forward/backward against its own
// copy of the parameters (so concurrent Backward calls never touch shared
// tensors), then Reduce folds the workers' accumulated gradients into the
// master parameters in worker order — a deterministic reduction — and Sync
// re-broadcasts the master data after the optimizer step.
//
// Combined with Run's static sample sharding and per-worker seeded RNGs,
// training with a fixed worker count is reproducible run to run; only the
// floating-point summation order differs from the serial path.
type DataParallel struct {
	master   []*Tensor
	replicas [][]*Tensor
}

// NewDataParallel wires master parameters to position-aligned replica
// parameter slices (one per worker). Every replica must have the same
// number, order and sizes of tensors as master.
func NewDataParallel(master []*Tensor, replicas ...[]*Tensor) *DataParallel {
	for w, rep := range replicas {
		if len(rep) != len(master) {
			panic(fmt.Sprintf("nn: replica %d has %d params, master has %d", w, len(rep), len(master)))
		}
		for i, p := range rep {
			if len(p.Data) != len(master[i].Data) {
				panic(fmt.Sprintf("nn: replica %d param %d size %d, master %d",
					w, i, len(p.Data), len(master[i].Data)))
			}
		}
	}
	return &DataParallel{master: master, replicas: replicas}
}

// Workers returns the number of replicas.
func (dp *DataParallel) Workers() int { return len(dp.replicas) }

// Sync copies the master parameter data into every replica. Call after each
// optimizer step (and once before training starts).
func (dp *DataParallel) Sync() {
	for _, rep := range dp.replicas {
		for i, p := range rep {
			copy(p.Data, dp.master[i].Data)
		}
	}
}

// Reduce accumulates every replica's gradients into the master gradients —
// summed in worker order, so the result is independent of goroutine
// scheduling — and zeroes the replica gradients for the next batch.
func (dp *DataParallel) Reduce() {
	for i, mp := range dp.master {
		for _, rep := range dp.replicas {
			rg := rep[i].Grad
			if rg == nil {
				continue
			}
			mp.ensureGrad()
			for j, g := range rg {
				mp.Grad[j] += g
			}
		}
	}
	for _, rep := range dp.replicas {
		ZeroGrads(rep)
	}
}

// Run shards the indices [0, n) statically across the workers — worker w
// handles i = w, w+W, w+2W, ... — and executes fn(worker, i) concurrently,
// one goroutine per worker. The static assignment keeps each worker's
// sample set (and therefore its RNG consumption and gradient sum) fixed for
// a given worker count, which is what makes parallel training reproducible.
// It is RunCtx with a background context.
func (dp *DataParallel) Run(n int, fn func(worker, i int)) {
	_ = dp.RunCtx(context.Background(), n, fn)
}

// RunCtx is Run with cooperative cancellation: every worker checks ctx
// before each index and abandons its remaining shard once ctx is done.
// Returns ctx.Err() when cancelled — the accumulated gradients are then
// incomplete and the caller must not step the optimizer with them.
func (dp *DataParallel) RunCtx(ctx context.Context, n int, fn func(worker, i int)) error {
	w := len(dp.replicas)
	done := ctx.Done()
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(0, i)
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
	return ctx.Err()
}
