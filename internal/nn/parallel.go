package nn

import (
	"fmt"
	"sync"
)

// ParallelFor runs fn(i) for every i in [0, n) on a fixed pool of workers
// goroutines pulling indices from a shared channel — a bounded fan-out that
// never spawns more than workers goroutines no matter how large n is (the
// goroutine-per-item pattern does, and DowBJ-scale inputs have tens of
// thousands of trips). workers <= 1 (or n <= 1) runs inline, preserving the
// exact serial execution order. fn must be safe to call concurrently for
// distinct i; iterations must not depend on each other.
func ParallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DataParallel coordinates data-parallel training over worker-local
// parameter replicas: each worker runs forward/backward against its own
// copy of the parameters (so concurrent Backward calls never touch shared
// tensors), then Reduce folds the workers' accumulated gradients into the
// master parameters in worker order — a deterministic reduction — and Sync
// re-broadcasts the master data after the optimizer step.
//
// Combined with Run's static sample sharding and per-worker seeded RNGs,
// training with a fixed worker count is reproducible run to run; only the
// floating-point summation order differs from the serial path.
type DataParallel struct {
	master   []*Tensor
	replicas [][]*Tensor
}

// NewDataParallel wires master parameters to position-aligned replica
// parameter slices (one per worker). Every replica must have the same
// number, order and sizes of tensors as master.
func NewDataParallel(master []*Tensor, replicas ...[]*Tensor) *DataParallel {
	for w, rep := range replicas {
		if len(rep) != len(master) {
			panic(fmt.Sprintf("nn: replica %d has %d params, master has %d", w, len(rep), len(master)))
		}
		for i, p := range rep {
			if len(p.Data) != len(master[i].Data) {
				panic(fmt.Sprintf("nn: replica %d param %d size %d, master %d",
					w, i, len(p.Data), len(master[i].Data)))
			}
		}
	}
	return &DataParallel{master: master, replicas: replicas}
}

// Workers returns the number of replicas.
func (dp *DataParallel) Workers() int { return len(dp.replicas) }

// Sync copies the master parameter data into every replica. Call after each
// optimizer step (and once before training starts).
func (dp *DataParallel) Sync() {
	for _, rep := range dp.replicas {
		for i, p := range rep {
			copy(p.Data, dp.master[i].Data)
		}
	}
}

// Reduce accumulates every replica's gradients into the master gradients —
// summed in worker order, so the result is independent of goroutine
// scheduling — and zeroes the replica gradients for the next batch.
func (dp *DataParallel) Reduce() {
	for i, mp := range dp.master {
		for _, rep := range dp.replicas {
			rg := rep[i].Grad
			if rg == nil {
				continue
			}
			mp.ensureGrad()
			for j, g := range rg {
				mp.Grad[j] += g
			}
		}
	}
	for _, rep := range dp.replicas {
		ZeroGrads(rep)
	}
}

// Run shards the indices [0, n) statically across the workers — worker w
// handles i = w, w+W, w+2W, ... — and executes fn(worker, i) concurrently,
// one goroutine per worker. The static assignment keeps each worker's
// sample set (and therefore its RNG consumption and gradient sum) fixed for
// a given worker count, which is what makes parallel training reproducible.
func (dp *DataParallel) Run(n int, fn func(worker, i int)) {
	w := len(dp.replicas)
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
}
