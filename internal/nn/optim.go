package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba; paper ref [27]) with the
// paper's settings beta1 = 0.9, beta2 = 0.999.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	// ClipNorm, when positive, rescales the global gradient norm to at most
	// this value before the update.
	ClipNorm float64

	t int
	m map[*Tensor][]float64
	v map[*Tensor][]float64
}

// NewAdam returns an Adam optimizer with the paper's hyper-parameters and
// the given learning rate (the paper uses 1e-4 for LocMatcher).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Tensor][]float64),
		v: make(map[*Tensor][]float64),
	}
}

// Step applies one update to params using their accumulated gradients,
// divided by scale (the mini-batch size), then leaves the gradients
// untouched; callers usually ZeroGrad afterwards.
func (a *Adam) Step(params []*Tensor, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	if a.ClipNorm > 0 {
		var norm float64
		for _, p := range params {
			for _, g := range p.Grad {
				g /= scale
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.ClipNorm {
			scale *= norm / a.ClipNorm
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i := range p.Data {
			g := p.Grad[i] / scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Data[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
	}
}

// SGD implements plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Tensor][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Tensor][]float64)}
}

// Step applies one SGD update; see Adam.Step for the scale convention.
func (s *SGD) Step(params []*Tensor, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.vel[p]
			if !ok {
				v = make([]float64, len(p.Data))
				s.vel[p] = v
			}
			for i := range p.Data {
				v[i] = s.Momentum*v[i] + p.Grad[i]/scale
				p.Data[i] -= s.LR * v[i]
			}
			continue
		}
		for i := range p.Data {
			p.Data[i] -= s.LR * p.Grad[i] / scale
		}
	}
}

// StepLR halves (or scales by Gamma) the learning rate every StepEpochs
// epochs — the paper reduces LocMatcher's rate by half every 5 epochs.
type StepLR struct {
	Base       float64
	StepEpochs int
	Gamma      float64
}

// NewStepLR returns the paper's schedule: halve every stepEpochs.
func NewStepLR(base float64, stepEpochs int) *StepLR {
	return &StepLR{Base: base, StepEpochs: stepEpochs, Gamma: 0.5}
}

// At returns the learning rate for a zero-based epoch index.
func (s *StepLR) At(epoch int) float64 {
	if s.StepEpochs <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.StepEpochs))
}

// EarlyStopper stops training once the validation loss has not improved for
// Patience consecutive epochs (the paper stops when validation loss no
// longer decreases).
type EarlyStopper struct {
	Patience int
	MinDelta float64

	best    float64
	bad     int
	started bool
}

// NewEarlyStopper returns a stopper with the given patience.
func NewEarlyStopper(patience int) *EarlyStopper {
	return &EarlyStopper{Patience: patience}
}

// Observe records a validation loss. It returns true when training should
// stop and whether this loss is the best seen so far.
func (e *EarlyStopper) Observe(loss float64) (stop, improved bool) {
	if !e.started || loss < e.best-e.MinDelta {
		e.best = loss
		e.started = true
		e.bad = 0
		return false, true
	}
	e.bad++
	return e.bad >= e.Patience, false
}

// Best returns the best validation loss observed.
func (e *EarlyStopper) Best() float64 { return e.best }

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// CopyParams copies the data of src params into dst (checkpointing for
// early-stopping restore). The two slices must be position-aligned.
func CopyParams(dst, src []*Tensor) {
	for i, s := range src {
		copy(dst[i].Data, s.Data)
	}
}

// CloneParams returns detached copies of params (no gradients).
func CloneParams(params []*Tensor) []*Tensor {
	out := make([]*Tensor, len(params))
	for i, p := range params {
		data := append([]float64(nil), p.Data...)
		out[i] = NewTensor(data, p.Shape...)
	}
	return out
}
