package nn

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestParallelForCtxRunsAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var n int64
		hit := make([]int32, 57)
		if err := ParallelForCtx(context.Background(), workers, len(hit), func(i int) {
			atomic.AddInt64(&n, 1)
			atomic.AddInt32(&hit[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != int64(len(hit)) {
			t.Fatalf("workers=%d: ran %d of %d indices", workers, n, len(hit))
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var n int64
		err := ParallelForCtx(ctx, workers, 1000, func(i int) { atomic.AddInt64(&n, 1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n != 0 {
			t.Fatalf("workers=%d: %d iterations ran on a pre-cancelled context", workers, n)
		}
	}
}

func TestParallelForCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	err := ParallelForCtx(ctx, 4, 10000, func(i int) {
		if atomic.AddInt64(&n, 1) == 8 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Each worker may have had one fn in flight at cancellation, no more.
	if got := atomic.LoadInt64(&n); got > 8+4 {
		t.Errorf("%d iterations ran after mid-flight cancel", got)
	}
}

func TestDataParallelRunCtxCancelled(t *testing.T) {
	master := []*Tensor{ZeroParam(2)}
	mkRep := func() []*Tensor { return []*Tensor{ZeroParam(2)} }
	for _, replicas := range [][][]*Tensor{{mkRep()}, {mkRep(), mkRep(), mkRep()}} {
		dp := NewDataParallel(master, replicas...)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var n int64
		err := dp.RunCtx(ctx, 500, func(worker, i int) { atomic.AddInt64(&n, 1) })
		if err != context.Canceled {
			t.Fatalf("%d replicas: got %v, want context.Canceled", dp.Workers(), err)
		}
		if n != 0 {
			t.Fatalf("%d replicas: %d iterations ran on a pre-cancelled context", dp.Workers(), n)
		}
		if err := dp.RunCtx(context.Background(), 500, func(worker, i int) { atomic.AddInt64(&n, 1) }); err != nil {
			t.Fatal(err)
		}
		if n != 500 {
			t.Fatalf("%d replicas: ran %d of 500 after un-cancelled rerun", dp.Workers(), n)
		}
	}
}
