package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D applies a 2-D convolution with stride 1 and "same" zero padding.
// x has shape [C,H,W], w has shape [F,C,KH,KW] with odd kernel sizes, and
// bias has shape [F]. The output has shape [F,H,W].
func Conv2D(x, w, bias *Tensor) *Tensor {
	if len(x.Shape) != 3 || len(w.Shape) != 4 {
		panic(fmt.Sprintf("nn: Conv2D shapes x=%v w=%v", x.Shape, w.Shape))
	}
	c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2]
	f, wc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if wc != c || kh%2 == 0 || kw%2 == 0 || bias.Numel() != f {
		panic(fmt.Sprintf("nn: Conv2D incompatible shapes x=%v w=%v bias=%v", x.Shape, w.Shape, bias.Shape))
	}
	ph, pw := kh/2, kw/2
	out := newResult([]int{f, h, wd}, x, w, bias)
	xAt := func(ci, yi, xi int) float64 {
		if yi < 0 || yi >= h || xi < 0 || xi >= wd {
			return 0
		}
		return x.Data[(ci*h+yi)*wd+xi]
	}
	for fi := 0; fi < f; fi++ {
		for y := 0; y < h; y++ {
			for xx := 0; xx < wd; xx++ {
				s := bias.Data[fi]
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							s += xAt(ci, y+ky-ph, xx+kx-pw) * w.Data[((fi*c+ci)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(fi*h+y)*wd+xx] = s
			}
		}
	}
	out.setBack(func() {
		if bias.needGrad {
			bias.ensureGrad()
			for fi := 0; fi < f; fi++ {
				var s float64
				for i := 0; i < h*wd; i++ {
					s += out.Grad[fi*h*wd+i]
				}
				bias.Grad[fi] += s
			}
		}
		if w.needGrad {
			w.ensureGrad()
			for fi := 0; fi < f; fi++ {
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							var s float64
							for y := 0; y < h; y++ {
								for xx := 0; xx < wd; xx++ {
									s += out.Grad[(fi*h+y)*wd+xx] * xAt(ci, y+ky-ph, xx+kx-pw)
								}
							}
							w.Grad[((fi*c+ci)*kh+ky)*kw+kx] += s
						}
					}
				}
			}
		}
		if x.needGrad {
			x.ensureGrad()
			for fi := 0; fi < f; fi++ {
				for y := 0; y < h; y++ {
					for xx := 0; xx < wd; xx++ {
						g := out.Grad[(fi*h+y)*wd+xx]
						if g == 0 {
							continue
						}
						for ci := 0; ci < c; ci++ {
							for ky := 0; ky < kh; ky++ {
								yi := y + ky - ph
								if yi < 0 || yi >= h {
									continue
								}
								for kx := 0; kx < kw; kx++ {
									xi := xx + kx - pw
									if xi < 0 || xi >= wd {
										continue
									}
									x.Grad[(ci*h+yi)*wd+xi] += g * w.Data[((fi*c+ci)*kh+ky)*kw+kx]
								}
							}
						}
					}
				}
			}
		}
	})
	return out
}

// MaxPool2D applies 2x2 max pooling with stride 2 and ceil semantics
// (partial windows at the right/bottom edges are pooled over the available
// elements), so odd spatial sizes like the UNet baseline's 9x9 grid work.
func MaxPool2D(x *Tensor) *Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: MaxPool2D requires [C,H,W], got %v", x.Shape))
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := (h+1)/2, (w+1)/2
	out := newResult([]int{c, oh, ow}, x)
	argmax := make([]int, c*oh*ow)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				best := math.Inf(-1)
				bestIdx := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						yi, xi := y*2+dy, xx*2+dx
						if yi >= h || xi >= w {
							continue
						}
						idx := (ci*h+yi)*w + xi
						if v := x.Data[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				o := (ci*oh+y)*ow + xx
				out.Data[o] = best
				argmax[o] = bestIdx
			}
		}
	}
	out.setBack(func() {
		x.ensureGrad()
		for o, idx := range argmax {
			x.Grad[idx] += out.Grad[o]
		}
	})
	return out
}

// UpsampleNearest resizes x [C,h,w] to [C,H,W] by nearest-neighbor sampling.
func UpsampleNearest(x *Tensor, H, W int) *Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: UpsampleNearest requires [C,H,W], got %v", x.Shape))
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := newResult([]int{c, H, W}, x)
	src := make([]int, c*H*W)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < H; y++ {
			yi := y * h / H
			for xx := 0; xx < W; xx++ {
				xi := xx * w / W
				o := (ci*H+y)*W + xx
				s := (ci*h+yi)*w + xi
				out.Data[o] = x.Data[s]
				src[o] = s
			}
		}
	}
	out.setBack(func() {
		x.ensureGrad()
		for o, s := range src {
			x.Grad[s] += out.Grad[o]
		}
	})
	return out
}

// ConcatChannels concatenates [C_i,H,W] tensors along the channel axis.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatChannels of nothing")
	}
	h, w := ts[0].Shape[1], ts[0].Shape[2]
	total := 0
	for _, t := range ts {
		if len(t.Shape) != 3 || t.Shape[1] != h || t.Shape[2] != w {
			panic(fmt.Sprintf("nn: ConcatChannels spatial mismatch %v", t.Shape))
		}
		total += t.Shape[0]
	}
	out := newResult([]int{total, h, w}, ts...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+t.Numel()], t.Data)
		off += t.Numel()
	}
	out.setBack(func() {
		off := 0
		for _, t := range ts {
			if t.needGrad {
				t.ensureGrad()
				for i := range t.Data {
					t.Grad[i] += out.Grad[off+i]
				}
			}
			off += t.Numel()
		}
	})
	return out
}

// ConvLayer is a convolution with trainable kernel and bias.
type ConvLayer struct {
	W *Tensor // [F,C,K,K]
	B *Tensor // [F]
}

// NewConvLayer returns a ConvLayer mapping c input channels to f output
// channels with a k x k kernel (k odd).
func NewConvLayer(rng *rand.Rand, c, f, k int) *ConvLayer {
	fanIn, fanOut := c*k*k, f*k*k
	return &ConvLayer{
		W: XavierParam(rng, fanIn, fanOut, f, c, k, k),
		B: ZeroParam(f),
	}
}

// Forward applies the convolution to x [C,H,W].
func (l *ConvLayer) Forward(x *Tensor) *Tensor { return Conv2D(x, l.W, l.B) }

// Params implements Layer.
func (l *ConvLayer) Params() []*Tensor { return []*Tensor{l.W, l.B} }
