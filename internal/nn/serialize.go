package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// savedTensor is the serialized form of a parameter tensor.
type savedTensor struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// SaveParams writes params as JSON. The order of params defines the layout;
// LoadParams must receive position-aligned tensors (the usual contract of a
// model's Params method with fixed architecture).
func SaveParams(w io.Writer, params []*Tensor) error {
	out := make([]savedTensor, len(params))
	for i, p := range params {
		out[i] = savedTensor{Shape: p.Shape, Data: p.Data}
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadParams reads JSON written by SaveParams into params. Shapes must
// match exactly.
func LoadParams(r io.Reader, params []*Tensor) error {
	var in []savedTensor
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(in) != len(params) {
		return fmt.Errorf("nn: got %d tensors, model has %d", len(in), len(params))
	}
	for i, st := range in {
		p := params[i]
		if len(st.Data) != p.Numel() {
			return fmt.Errorf("nn: tensor %d has %d elements, model expects %d", i, len(st.Data), p.Numel())
		}
		for d := range st.Shape {
			if d >= len(p.Shape) || st.Shape[d] != p.Shape[d] {
				return fmt.Errorf("nn: tensor %d shape %v, model expects %v", i, st.Shape, p.Shape)
			}
		}
		copy(p.Data, st.Data)
	}
	return nil
}
