package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
)

func sameShape(a, b *Tensor) {
	if len(a.Shape) != len(b.Shape) {
		panic(fmt.Sprintf("nn: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("nn: shape mismatch %v vs %v", a.Shape, b.Shape))
		}
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.setBack(func() {
		if a.needGrad {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.needGrad {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] += g
			}
		}
	})
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	out.setBack(func() {
		if a.needGrad {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.needGrad {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] -= g
			}
		}
	})
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := newResult(a.Shape, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	out.setBack(func() {
		if a.needGrad {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.needGrad {
			b.ensureGrad()
			for i, g := range out.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	})
	return out
}

// Scale returns a * s for a constant scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	out := newResult(a.Shape, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * s
		}
	})
	return out
}

// AddRowVec adds the row vector b (shape [n] or [1,n]) to every row of the
// 2-D tensor a (shape [m,n]).
func AddRowVec(a, b *Tensor) *Tensor {
	n := a.Shape[len(a.Shape)-1]
	if b.Numel() != n {
		panic(fmt.Sprintf("nn: AddRowVec %v + %v", a.Shape, b.Shape))
	}
	out := newResult(a.Shape, a, b)
	m := a.Numel() / n
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + b.Data[j]
		}
	}
	out.setBack(func() {
		if a.needGrad {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.needGrad {
			b.ensureGrad()
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					b.Grad[j] += out.Grad[i*n+j]
				}
			}
		}
	})
	return out
}

// matMulParallelFlops is the m*k*n product above which MatMul splits its
// row blocks across cores. The threshold sits far above LocMatcher's
// per-sample matrix sizes on purpose: data-parallel training already
// saturates the cores with sample-level workers, and nesting goroutines
// under them would only add scheduling overhead. Large single-graph models
// (the UNet baseline's im2col products) do cross it.
var matMulParallelFlops = 1 << 17

// MatMul returns the matrix product of a [m,k] and b [k,n]. Products whose
// m*k*n exceeds matMulParallelFlops are computed with their independent row
// blocks spread over GOMAXPROCS workers; because each output (and gradient)
// row is written by exactly one worker in the serial per-row order, the
// result is bit-identical to the serial computation.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("nn: MatMul %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := newResult([]int{m, n}, a, b)
	workers := 1
	if m*k*n >= matMulParallelFlops {
		workers = runtime.GOMAXPROCS(0)
	}
	ParallelFor(workers, m, func(i int) {
		arow := a.Data[i*k : i*k+k]
		orow := out.Data[i*n : i*n+n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : kk*n+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	out.setBack(func() {
		if a.needGrad {
			a.ensureGrad()
			// dA = dOut * B^T; rows of dA are independent.
			ParallelFor(workers, m, func(i int) {
				grow := out.Grad[i*n : i*n+n]
				for kk := 0; kk < k; kk++ {
					var s float64
					brow := b.Data[kk*n : kk*n+n]
					for j := range grow {
						s += grow[j] * brow[j]
					}
					a.Grad[i*k+kk] += s
				}
			})
		}
		if b.needGrad {
			b.ensureGrad()
			// dB = A^T * dOut; rows of dB (indexed by kk) are independent.
			ParallelFor(workers, k, func(kk int) {
				brow := b.Grad[kk*n : kk*n+n]
				for i := 0; i < m; i++ {
					av := a.Data[i*k+kk]
					if av == 0 {
						continue
					}
					grow := out.Grad[i*n : i*n+n]
					for j := range grow {
						brow[j] += av * grow[j]
					}
				}
			})
		}
	})
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("nn: Transpose requires 2-D, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := newResult([]int{n, m}, a)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	out.setBack(func() {
		a.ensureGrad()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Grad[i*n+j] += out.Grad[j*m+i]
			}
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor {
	out := newResult(a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			y := out.Data[i]
			a.Grad[i] += g * (1 - y*y)
		}
	})
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := newResult(a.Shape, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	})
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := newResult(a.Shape, a)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			y := out.Data[i]
			a.Grad[i] += g * y * (1 - y)
		}
	})
	return out
}

// SoftmaxRows applies softmax independently to each row of a 2-D tensor.
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxRows requires 2-D, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := newResult(a.Shape, a)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : i*n+n]
		orow := out.Data[i*n : i*n+n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	out.setBack(func() {
		a.ensureGrad()
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : i*n+n]
			orow := out.Data[i*n : i*n+n]
			var dot float64
			for j := range grow {
				dot += grow[j] * orow[j]
			}
			arow := a.Grad[i*n : i*n+n]
			for j := range grow {
				arow[j] += orow[j] * (grow[j] - dot)
			}
		}
	})
	return out
}

// SumAll reduces a tensor to the scalar sum of its elements.
func SumAll(a *Tensor) *Tensor {
	out := newResult([]int{1}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	out.setBack(func() {
		a.ensureGrad()
		g := out.Grad[0]
		for i := range a.Grad {
			a.Grad[i] += g
		}
	})
	return out
}

// MeanAll reduces a tensor to the scalar mean of its elements.
func MeanAll(a *Tensor) *Tensor {
	out := newResult([]int{1}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	n := float64(a.Numel())
	out.Data[0] = s / n
	out.setBack(func() {
		a.ensureGrad()
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	})
	return out
}

// ConcatCols concatenates 2-D tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	m := ts[0].Shape[0]
	total := 0
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[0] != m {
			panic(fmt.Sprintf("nn: ConcatCols row mismatch: %v", t.Shape))
		}
		total += t.Shape[1]
	}
	out := newResult([]int{m, total}, ts...)
	off := 0
	for _, t := range ts {
		n := t.Shape[1]
		for i := 0; i < m; i++ {
			copy(out.Data[i*total+off:i*total+off+n], t.Data[i*n:i*n+n])
		}
		off += n
	}
	out.setBack(func() {
		off := 0
		for _, t := range ts {
			n := t.Shape[1]
			if t.needGrad {
				t.ensureGrad()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						t.Grad[i*n+j] += out.Grad[i*total+off+j]
					}
				}
			}
			off += n
		}
	})
	return out
}

// Rows selects the given rows of a 2-D tensor (gather along dim 0). Used for
// embedding lookups: table [V,d] gathered with k indices yields [k,d].
func Rows(a *Tensor, idx []int) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("nn: Rows requires 2-D, got %v", a.Shape))
	}
	n := a.Shape[1]
	out := newResult([]int{len(idx), n}, a)
	for i, r := range idx {
		copy(out.Data[i*n:i*n+n], a.Data[r*n:r*n+n])
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, r := range idx {
			for j := 0; j < n; j++ {
				a.Grad[r*n+j] += out.Grad[i*n+j]
			}
		}
	})
	return out
}

// Dropout randomly zeroes elements with probability p at train time, scaling
// survivors by 1/(1-p) (inverted dropout). When train is false or p <= 0 it
// is the identity.
func Dropout(a *Tensor, p float64, train bool, rng *rand.Rand) *Tensor {
	if !train || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("nn: dropout probability must be < 1")
	}
	out := newResult(a.Shape, a)
	mask := graphScratch(out, a.Numel())
	scale := 1 / (1 - p)
	for i := range mask {
		if rng.Float64() >= p {
			mask[i] = scale
		}
	}
	for i, v := range a.Data {
		out.Data[i] = v * mask[i]
	}
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g * mask[i]
		}
	})
	return out
}

// LayerNorm normalizes each row of a 2-D tensor to zero mean and unit
// variance, then applies a learned per-column gain and bias.
func LayerNorm(a, gain, bias *Tensor, eps float64) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("nn: LayerNorm requires 2-D, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	if gain.Numel() != n || bias.Numel() != n {
		panic("nn: LayerNorm gain/bias size mismatch")
	}
	out := newResult(a.Shape, a, gain, bias)
	xhat := graphScratch(out, m*n)
	invStd := graphScratch(out, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : i*n+n]
		var mu float64
		for _, v := range row {
			mu += v
		}
		mu /= float64(n)
		var va float64
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= float64(n)
		is := 1 / math.Sqrt(va+eps)
		invStd[i] = is
		for j, v := range row {
			h := (v - mu) * is
			xhat[i*n+j] = h
			out.Data[i*n+j] = gain.Data[j]*h + bias.Data[j]
		}
	}
	out.setBack(func() {
		dh := graphScratch(out, n)
		for i := 0; i < m; i++ {
			grow := out.Grad[i*n : i*n+n]
			hrow := xhat[i*n : i*n+n]
			if gain.needGrad {
				gain.ensureGrad()
				for j := range grow {
					gain.Grad[j] += grow[j] * hrow[j]
				}
			}
			if bias.needGrad {
				bias.ensureGrad()
				for j := range grow {
					bias.Grad[j] += grow[j]
				}
			}
			if a.needGrad {
				a.ensureGrad()
				// dL/dxhat_j = g_j * gain_j; standard layer-norm backward.
				var sumDh, sumDhH float64
				for j := range grow {
					dh[j] = grow[j] * gain.Data[j]
					sumDh += dh[j]
					sumDhH += dh[j] * hrow[j]
				}
				nf := float64(n)
				for j := range grow {
					a.Grad[i*n+j] += invStd[i] * (dh[j] - sumDh/nf - hrow[j]*sumDhH/nf)
				}
			}
		}
	})
	return out
}

// ConcatRows concatenates 2-D tensors with equal column counts along rows.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	n := ts[0].Shape[1]
	total := 0
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[1] != n {
			panic(fmt.Sprintf("nn: ConcatRows column mismatch: %v", t.Shape))
		}
		total += t.Shape[0]
	}
	out := newResult([]int{total, n}, ts...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+t.Numel()], t.Data)
		off += t.Numel()
	}
	out.setBack(func() {
		off := 0
		for _, t := range ts {
			if t.needGrad {
				t.ensureGrad()
				for i := range t.Data {
					t.Grad[i] += out.Grad[off+i]
				}
			}
			off += t.Numel()
		}
	})
	return out
}

// Reshape returns a view-like tensor with the same data in a new shape. The
// element count must match. Gradients flow through unchanged.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if numel(shape) != a.Numel() {
		panic(fmt.Sprintf("nn: Reshape %v -> %v", a.Shape, shape))
	}
	out := newResult(shape, a)
	copy(out.Data, a.Data)
	out.setBack(func() {
		a.ensureGrad()
		for i, g := range out.Grad {
			a.Grad[i] += g
		}
	})
	return out
}
