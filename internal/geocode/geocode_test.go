package geocode

import (
	"testing"

	"dlinfma/internal/geo"
)

func TestPOICategories(t *testing.T) {
	if NumPOICategories != 21 {
		t.Fatalf("NumPOICategories = %d, want 21 (as the paper states)", NumPOICategories)
	}
	seen := map[string]bool{}
	for c := POICategory(0); c < NumPOICategories; c++ {
		if !c.Valid() {
			t.Errorf("category %d should be valid", c)
		}
		name := c.String()
		if name == "" || name == "invalid" {
			t.Errorf("category %d has bad name %q", c, name)
		}
		if seen[name] {
			t.Errorf("duplicate category name %q", name)
		}
		seen[name] = true
	}
	if POICategory(-1).Valid() || POICategory(21).Valid() {
		t.Error("out-of-range categories should be invalid")
	}
	if POICategory(99).String() != "invalid" {
		t.Error("out-of-range String should be invalid")
	}
}

func TestErrorModeStrings(t *testing.T) {
	cases := map[ErrorMode]string{
		ErrAccurate:   "accurate",
		ErrCoarsePOI:  "coarse-poi",
		ErrWrongParse: "wrong-parse",
		ErrorMode(9):  "invalid",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestStaticGeocoder(t *testing.T) {
	table := map[int32]Result{
		1: {Loc: geo.Point{X: 10, Y: 20}, Category: POIResidence, Mode: ErrAccurate},
		2: {Loc: geo.Point{X: 30, Y: 40}, Category: POIMall, Mode: ErrCoarsePOI},
	}
	g := NewStatic(table)
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
	r, ok := g.Geocode(1)
	if !ok || r.Loc != (geo.Point{X: 10, Y: 20}) || r.Category != POIResidence {
		t.Errorf("Geocode(1) = %+v, %v", r, ok)
	}
	if _, ok := g.Geocode(99); ok {
		t.Error("unknown address should not geocode")
	}
	// Static satisfies the Geocoder interface.
	var _ Geocoder = g
}
