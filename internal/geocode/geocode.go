// Package geocode models the commercial geocoding service and address
// segmentation tool the paper depends on. Since those services are
// proprietary, this package provides (a) the POI category taxonomy the
// paper's address features use (21 categories), and (b) a simulated geocoder
// exhibiting the paper's three documented failure modes: plain imprecision,
// coarse POI databases that collapse several buildings onto one point, and
// wrong address parsing that resolves to a similarly named sibling community
// (the Figure 12 case studies).
package geocode

import "dlinfma/internal/geo"

// POICategory is the category the geocoder returns with each address. The
// paper reports 21 categories; the taxonomy below follows common Chinese POI
// schemes.
type POICategory int8

// The 21 POI categories.
const (
	POIResidence POICategory = iota
	POIVilla
	POIDormitory
	POICompany
	POIOfficeBuilding
	POIGovernment
	POISchool
	POIUniversity
	POIHospital
	POIClinic
	POIMall
	POIConvenienceStore
	POIRestaurant
	POIHotel
	POIBank
	POIPostOffice
	POIFactory
	POIWarehouse
	POIGym
	POIPark
	POIOther

	NumPOICategories = 21
)

var poiNames = [...]string{
	"residence", "villa", "dormitory", "company", "office building",
	"government", "school", "university", "hospital", "clinic", "mall",
	"convenience store", "restaurant", "hotel", "bank", "post office",
	"factory", "warehouse", "gym", "park", "other",
}

// String returns the category name.
func (c POICategory) String() string {
	if c < 0 || int(c) >= len(poiNames) {
		return "invalid"
	}
	return poiNames[c]
}

// Valid reports whether c is one of the 21 categories.
func (c POICategory) Valid() bool { return c >= 0 && c < NumPOICategories }

// ErrorMode classifies why a geocode deviates from the building location.
type ErrorMode int8

// Geocoding failure modes observed in the paper's case studies (Fig. 12).
const (
	// ErrAccurate: small Gaussian imprecision only.
	ErrAccurate ErrorMode = iota
	// ErrCoarsePOI: the POI database has one entry for a whole residential
	// area, so several buildings share a geocode at the area centroid
	// (Fig. 12(b)).
	ErrCoarsePOI
	// ErrWrongParse: the address parsed to a similarly named sibling
	// community, producing a large error (Fig. 12(a), "San Yi Li" vs
	// "San Yi Xi Li").
	ErrWrongParse
)

// String returns a short label for the mode.
func (m ErrorMode) String() string {
	switch m {
	case ErrAccurate:
		return "accurate"
	case ErrCoarsePOI:
		return "coarse-poi"
	case ErrWrongParse:
		return "wrong-parse"
	default:
		return "invalid"
	}
}

// Result is what the geocoder returns for an address.
type Result struct {
	Loc      geo.Point
	Category POICategory
	Mode     ErrorMode
}

// Geocoder resolves an address id to a geocoded location. Implementations
// must be safe for concurrent use after construction.
type Geocoder interface {
	Geocode(addr int32) (Result, bool)
}

// Static is a Geocoder backed by a fixed table, as produced by the synthetic
// world generator (and, in the deployed system, by the batch geocoding job).
type Static struct {
	table map[int32]Result
}

// NewStatic returns a Static geocoder over the given table. The map is used
// directly, not copied.
func NewStatic(table map[int32]Result) *Static { return &Static{table: table} }

// Geocode implements Geocoder.
func (s *Static) Geocode(addr int32) (Result, bool) {
	r, ok := s.table[addr]
	return r, ok
}

// Len returns the number of known addresses.
func (s *Static) Len() int { return len(s.table) }
