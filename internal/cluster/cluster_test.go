package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dlinfma/internal/cluster"
	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/model"
	"dlinfma/internal/obs/trace"
	"dlinfma/internal/shard"
	"dlinfma/internal/synth"
)

// quickCfg caps training so lifecycle tests run in seconds and pins the
// LC-normalization trip universe: automatic pinning cannot cross the wire
// (see engine.NewShardedBackends), so bit-identical local-vs-remote features
// require the explicit count on both sides.
func quickCfg(totalTrips int) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Matcher.MaxEpochs = 2
	cfg.Matcher.LR = 1e-3
	cfg.Core.Workers = 1
	cfg.Matcher.Workers = 1
	cfg.Core.LCTotalTrips = totalTrips
	return cfg
}

// shardProc is one simulated shard process: a single engine behind the real
// /v1 HTTP service, with its own tracer so cross-process trace parenting is
// observable.
type shardProc struct {
	eng    *engine.Engine
	tracer *trace.Tracer
	srv    *httptest.Server
}

func newShardProc(t *testing.T, cfg engine.Config) *shardProc {
	t.Helper()
	p := &shardProc{
		eng:    engine.New(cfg),
		tracer: trace.NewTracer(trace.Options{SampleProb: 1, Store: trace.NewStore(64)}),
	}
	p.srv = httptest.NewServer(deploy.NewService(p.eng, deploy.Options{Tracer: p.tracer}))
	t.Cleanup(func() {
		p.srv.Close()
		p.eng.Close()
	})
	return p
}

func tinyDataset(t *testing.T) *model.Dataset {
	t.Helper()
	ds, _, err := synth.Generate(synth.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newRouter(t *testing.T, n int) *shard.Router {
	t.Helper()
	r, err := shard.NewRouter(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHTTPBackendShardedEquivalence is the acceptance gate of the backend
// seam: a sharded engine whose shards sit behind HTTP loopback backends must
// answer bit-identically to the fully in-process sharded engine — single
// queries, batch queries, and the per-shard health breakdown.
func TestHTTPBackendShardedEquivalence(t *testing.T) {
	const nShards = 3
	ctx := context.Background()
	ds := tinyDataset(t)
	cfg := quickCfg(len(ds.Trips))

	local := engine.NewSharded(cfg, newRouter(t, nShards))
	defer local.Close()

	procs := make([]*shardProc, nShards)
	backends := make([]cluster.ShardBackend, nShards)
	for i := range procs {
		procs[i] = newShardProc(t, cfg)
		c, err := cluster.NewClient(cluster.ClientOptions{Endpoints: []string{procs[i].srv.URL}})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	remote, err := engine.NewShardedBackends(cfg, newRouter(t, nShards), backends)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	for _, e := range []engine.Runtime{local, remote} {
		if err := e.IngestDataset(ctx, ds); err != nil {
			t.Fatal(err)
		}
		if err := e.Reinfer(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Single-key reads: every known address plus misses must agree exactly.
	keys := make([]model.AddressID, 0, len(ds.Addresses)+2)
	for _, a := range ds.Addresses {
		keys = append(keys, a.ID)
	}
	keys = append(keys, model.AddressID(1<<30), model.AddressID(1<<30+1))
	served := 0
	for _, id := range keys {
		lp, ls := local.Query(id)
		rp, rs := remote.Query(id)
		if lp != rp || ls != rs {
			t.Fatalf("addr %d: local (%v, %v) != remote (%v, %v)", id, lp, ls, rp, rs)
		}
		if ls != deploy.SourceNone {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no address answered; equivalence is vacuous")
	}

	// Batch reads share one scatter across shards on both sides.
	lout, err := local.QueryBatch(ctx, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	rout, err := remote.QueryBatch(ctx, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lout) != len(rout) {
		t.Fatalf("batch sizes differ: %d vs %d", len(lout), len(rout))
	}
	for i := range lout {
		if lout[i] != rout[i] {
			t.Fatalf("batch[%d] (addr %d): local %+v != remote %+v", i, keys[i], lout[i], rout[i])
		}
	}

	// The /healthz shard breakdown must describe the same cluster.
	lst, rst := local.Status(), remote.Status()
	if lst.Ready != rst.Ready || lst.Addresses != rst.Addresses || lst.Inferred != rst.Inferred ||
		lst.PendingTrips != rst.PendingTrips || lst.Trips != rst.Trips {
		t.Fatalf("top-level status differs:\nlocal  %+v\nremote %+v", lst, rst)
	}
	if len(lst.Shards) != nShards || len(rst.Shards) != nShards {
		t.Fatalf("shard breakdown sizes: local %d, remote %d", len(lst.Shards), len(rst.Shards))
	}
	for i := range lst.Shards {
		l, r := lst.Shards[i], rst.Shards[i]
		if l.Shard != r.Shard || l.Ready != r.Ready || l.Failed != r.Failed ||
			l.Addresses != r.Addresses || l.Inferred != r.Inferred ||
			l.PoolLocations != r.PoolLocations || l.PendingTrips != r.PendingTrips ||
			l.Reinfers != r.Reinfers || l.Trips != r.Trips {
			t.Fatalf("shard %d status differs:\nlocal  %+v\nremote %+v", i, l, r)
		}
		if r.Peer != procs[i].srv.URL {
			t.Fatalf("shard %d peer = %q, want %q", i, r.Peer, procs[i].srv.URL)
		}
		if l.Peer != "" {
			t.Fatalf("local shard %d unexpectedly reports peer %q", i, l.Peer)
		}
	}
}

// TestClientReplicatedWritesAndFailover drives one shard through a
// two-endpoint client: ingest and reinfer must replicate to both endpoints,
// and killing the owner must leave reads answering from the replica.
func TestClientReplicatedWritesAndFailover(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	cfg := quickCfg(len(ds.Trips))
	owner := newShardProc(t, cfg)
	replica := newShardProc(t, cfg)

	c, err := cluster.NewClient(cluster.ClientOptions{
		Endpoints: []string{owner.srv.URL, replica.srv.URL},
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, ds.Trips, ds.Addresses, ds.Truth); err != nil {
		t.Fatal(err)
	}
	if got, want := owner.eng.Status().Trips, len(ds.Trips); got != want {
		t.Fatalf("owner holds %d trips, want %d", got, want)
	}
	if got, want := replica.eng.Status().Trips, len(ds.Trips); got != want {
		t.Fatalf("replica holds %d trips, want %d", got, want)
	}
	if err := c.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}

	// Both replicas trained on identical data: answers agree before the
	// failure, so post-failover reads are indistinguishable.
	answers := map[model.AddressID]struct {
		p   [2]float64
		src deploy.Source
	}{}
	served := 0
	for _, a := range ds.Addresses {
		p, src := c.Query(a.ID)
		answers[a.ID] = struct {
			p   [2]float64
			src deploy.Source
		}{[2]float64{p.X, p.Y}, src}
		if src != deploy.SourceNone {
			served++
		}
	}
	if served == 0 {
		t.Fatal("nothing served before failover")
	}

	owner.srv.Close() // the shard owner dies

	for _, a := range ds.Addresses {
		p, src := c.Query(a.ID)
		want := answers[a.ID]
		if [2]float64{p.X, p.Y} != want.p || src != want.src {
			t.Fatalf("addr %d after failover: (%v, %v), want (%v, %v)", a.ID, p, src, want.p, want.src)
		}
	}
	st := c.Status()
	if st.Failed || !st.Ready {
		t.Fatalf("replica status after failover: %+v", st)
	}

	replica.srv.Close() // and then the whole shard is gone
	if st := c.Status(); !st.Failed || st.LastError == "" {
		t.Fatalf("status with no endpoints alive should report failure, got %+v", st)
	}
	if _, src := c.Query(ds.Addresses[0].ID); src != deploy.SourceNone {
		t.Fatalf("query with no endpoints alive answered source %v", src)
	}
}

// TestFrontendTraceParenting asserts the request-scoped tracing contract
// across the shard hop: the frontend's outbound client span must appear as
// the parent of the remote shard's server-side root span, in the shard's own
// /v1/debug/traces buffer.
func TestFrontendTraceParenting(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	cfg := quickCfg(len(ds.Trips))
	proc := newShardProc(t, cfg)

	router := newRouter(t, 1)
	backends, _, err := cluster.NewFrontendBackends(router, cluster.FrontendOptions{
		Peers: []string{proc.srv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	feTracer := trace.NewTracer(trace.Options{SampleProb: 1, Store: trace.NewStore(64)})
	feCfg := cfg
	feCfg.Tracer = feTracer
	fe, err := engine.NewShardedBackends(feCfg, router, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	feSrv := httptest.NewServer(deploy.NewService(fe, deploy.Options{Tracer: feTracer}))
	defer feSrv.Close()

	if err := fe.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if err := fe.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}
	var addr model.AddressID
	found := false
	for _, a := range ds.Addresses {
		if _, src := fe.Query(a.ID); src != deploy.SourceNone {
			addr, found = a.ID, true
			break
		}
	}
	if !found {
		t.Fatal("no servable address")
	}

	resp, err := http.Get(feSrv.URL + "/v1/locations/" + addrKey(addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontend query answered %d", resp.StatusCode)
	}

	// The frontend trace: a /v1/locations/{key} root with a cluster.rpc
	// child carrying the outbound hop.
	var rpcSpan, feRoot *trace.SpanData
	var feTrace *trace.Trace
	for _, tr := range feTracer.Store().List(trace.Filter{}) {
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			if sp.Name == "cluster.rpc" {
				rpcSpan, feTrace = sp, tr
			}
			if sp.Name == "/v1/locations/{key}" {
				feRoot = sp
			}
		}
		if rpcSpan != nil {
			break
		}
	}
	if rpcSpan == nil || feRoot == nil {
		t.Fatal("frontend trace is missing the cluster.rpc hop or its root")
	}
	if rpcSpan.ParentID != feRoot.SpanID {
		t.Fatalf("cluster.rpc parent = %q, want frontend root %q", rpcSpan.ParentID, feRoot.SpanID)
	}

	// The shard's server span: same trace id, parented under the frontend's
	// outbound client span.
	var shardRoot *trace.SpanData
	for _, tr := range proc.tracer.Store().List(trace.Filter{}) {
		if tr.ID != feTrace.ID {
			continue
		}
		for i := range tr.Spans {
			if tr.Spans[i].Name == "/v1/locations/{key}" {
				shardRoot = &tr.Spans[i]
			}
		}
	}
	if shardRoot == nil {
		t.Fatalf("shard never recorded a server span for trace %s", feTrace.ID)
	}
	if shardRoot.ParentID != rpcSpan.SpanID {
		t.Fatalf("shard server span parent = %q, want frontend client span %q", shardRoot.ParentID, rpcSpan.SpanID)
	}
}

// TestFrontendRingFailover is the in-process twin of the cluster smoke
// script: two peers, replication 2, every shard's writes on both; killing a
// peer must leave every answer intact through ring-ordered failover.
func TestFrontendRingFailover(t *testing.T) {
	const nShards = 4
	ctx := context.Background()
	ds := tinyDataset(t)
	cfg := quickCfg(len(ds.Trips))
	peerA := newShardProc(t, cfg)
	peerB := newShardProc(t, cfg)

	router := newRouter(t, nShards)
	backends, ring, err := cluster.NewFrontendBackends(router, cluster.FrontendOptions{
		Peers:       []string{peerA.srv.URL, peerB.srv.URL},
		Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := engine.NewShardedBackends(cfg, router, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	if err := fe.IngestDataset(ctx, ds); err != nil {
		t.Fatal(err)
	}
	if err := fe.Reinfer(ctx); err != nil {
		t.Fatal(err)
	}

	type answer struct {
		p   [2]float64
		src deploy.Source
	}
	before := map[model.AddressID]answer{}
	served := 0
	for _, a := range ds.Addresses {
		p, src := fe.Query(a.ID)
		before[a.ID] = answer{[2]float64{p.X, p.Y}, src}
		if src != deploy.SourceNone {
			served++
		}
	}
	if served == 0 {
		t.Fatal("nothing served before the kill")
	}

	// Kill the peer owning shard 0 — replicas own the rest of the walk.
	victim := ring.ShardOwners(0, 1)[0]
	if victim == peerA.srv.URL {
		peerA.srv.Close()
	} else {
		peerB.srv.Close()
	}

	for _, a := range ds.Addresses {
		p, src := fe.Query(a.ID)
		if got := (answer{[2]float64{p.X, p.Y}, src}); got != before[a.ID] {
			t.Fatalf("addr %d after killing %s: %+v, want %+v", a.ID, victim, got, before[a.ID])
		}
	}
	// Batch reads fail over chunk by chunk too.
	keys := make([]model.AddressID, 0, len(ds.Addresses))
	for _, a := range ds.Addresses {
		keys = append(keys, a.ID)
	}
	out, err := fe.QueryBatch(ctx, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range keys {
		if got := (answer{[2]float64{out[i].Loc.X, out[i].Loc.Y}, out[i].Src}); got != before[id] {
			t.Fatalf("batch addr %d after kill: %+v, want %+v", id, got, before[id])
		}
	}
	if st := fe.Status(); !st.Ready {
		t.Fatalf("frontend not ready after failover: %+v", st)
	}
}

// addrKey renders an address id the way the /v1 path wildcard expects it.
func addrKey(id model.AddressID) string {
	return strconv.Itoa(int(id))
}
