package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlinfma/internal/geo"
)

func TestGridMergeBasic(t *testing.T) {
	pts := []geo.Point{
		{X: 5, Y: 5}, {X: 8, Y: 6}, // same 40m cell
		{X: 100, Y: 100}, // different cell
	}
	cs := GridMerge(pts, 40)
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2", len(cs))
	}
}

func TestGridMergeBoundarySplit(t *testing.T) {
	// Two points 2 m apart straddling a cell boundary split into two
	// clusters — the deficiency the paper ascribes to grid merging.
	pts := []geo.Point{{X: 39, Y: 0}, {X: 41, Y: 0}}
	cs := GridMerge(pts, 40)
	if len(cs) != 2 {
		t.Errorf("boundary points merged into %d clusters, want 2 (split artifact)", len(cs))
	}
}

func TestGridMergeEmptyAndInvalid(t *testing.T) {
	if got := GridMerge(nil, 40); got != nil {
		t.Errorf("GridMerge(nil) = %v", got)
	}
	cs := GridMerge([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, 0)
	if len(cs) != 2 {
		t.Errorf("d=0 should keep singletons, got %d", len(cs))
	}
}

func TestGridMergeCoversAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: r.Float64()*1000 - 500, Y: r.Float64()*1000 - 500}
		}
		cs := GridMerge(pts, 40)
		seen := make(map[int]bool)
		for _, c := range cs {
			// Each cluster extent is bounded by the cell size.
			var member []geo.Point
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
				member = append(member, pts[m])
			}
			r := geo.BoundingRect(member)
			if r.Width() > 40 || r.Height() > 40 {
				return false
			}
			if !r.Expand(1e-9).Contains(c.Centroid) {
				return false
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGridMergeDeterministicOrder(t *testing.T) {
	pts := []geo.Point{{X: 100, Y: 100}, {X: 0, Y: 0}, {X: 200, Y: 0}}
	a := GridMerge(pts, 40)
	b := GridMerge(pts, 40)
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if a[i].Centroid != b[i].Centroid {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestGridMergeProducesMoreClustersThanHierarchical(t *testing.T) {
	// The paper observes grid merging yields many more locations than
	// hierarchical clustering on the same stay points. Generate dense
	// clusters that straddle boundaries to reproduce the effect.
	r := rand.New(rand.NewSource(3))
	var pts []geo.Point
	for c := 0; c < 30; c++ {
		cx, cy := r.Float64()*2000, r.Float64()*2000
		for i := 0; i < 10; i++ {
			pts = append(pts, geo.Point{X: cx + r.NormFloat64()*8, Y: cy + r.NormFloat64()*8})
		}
	}
	ng := len(GridMerge(pts, 40))
	nh := len(Hierarchical(pts, 40))
	if ng < nh {
		t.Errorf("grid=%d hierarchical=%d: expected grid >= hierarchical", ng, nh)
	}
}
