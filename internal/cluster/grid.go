package cluster

import (
	"math"
	"sort"

	"dlinfma/internal/geo"
)

// GridMerge clusters points by snapping them to an axis-aligned grid of
// d x d cells (paper ref [12]; the DLInfMA-Grid variant). Every non-empty
// cell becomes one cluster whose centroid is the mean of its members, so the
// spatial extent of a cluster is bounded by d x d — comparable to the
// hierarchical cutoff — but locations that straddle a cell boundary split
// into several clusters, which is exactly the deficiency the paper observes.
func GridMerge(pts []geo.Point, d float64) []Cluster {
	if len(pts) == 0 {
		return nil
	}
	if d <= 0 {
		out := make([]Cluster, len(pts))
		for i, p := range pts {
			out[i] = Cluster{Centroid: p, Members: []int{i}, Weight: 1}
		}
		return out
	}
	byCell := make(map[[2]int64][]int)
	for i, p := range pts {
		k := [2]int64{int64(math.Floor(p.X / d)), int64(math.Floor(p.Y / d))}
		byCell[k] = append(byCell[k], i)
	}
	keys := make([][2]int64, 0, len(byCell))
	for k := range byCell {
		keys = append(keys, k)
	}
	// Deterministic output order.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Cluster, 0, len(keys))
	for _, k := range keys {
		members := byCell[k]
		sub := make([]geo.Point, len(members))
		for i, m := range members {
			sub[i] = pts[m]
		}
		out = append(out, Cluster{Centroid: geo.Centroid(sub), Members: members, Weight: float64(len(members))})
	}
	return out
}
