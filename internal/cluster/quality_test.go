package cluster_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dlinfma/internal/cluster"
	"dlinfma/internal/obs"
)

// peerMetrics is a minimal /v1/metrics document carrying two whitelisted
// quality families (one gauge, one histogram) plus a family the poller must
// NOT re-export.
const peerMetrics = `# HELP dlinfma_reinfer_churn_ratio Fraction moved.
# TYPE dlinfma_reinfer_churn_ratio gauge
dlinfma_reinfer_churn_ratio{shard="0"} 0.25
# HELP dlinfma_reinfer_confidence Top-1 probability.
# TYPE dlinfma_reinfer_confidence histogram
dlinfma_reinfer_confidence_bucket{shard="0",le="0.5"} 1
dlinfma_reinfer_confidence_bucket{shard="0",le="+Inf"} 4
dlinfma_reinfer_confidence_sum{shard="0"} 3.1
dlinfma_reinfer_confidence_count{shard="0"} 4
# HELP dlinfma_engine_hot_swaps_total Not whitelisted.
# TYPE dlinfma_engine_hot_swaps_total counter
dlinfma_engine_hot_swaps_total 7
`

func servePeerMetrics(t *testing.T, body string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// waitPoll waits until the registry's exposition contains want (the poller
// scrapes asynchronously right after start).
func waitPoll(t *testing.T, reg *obs.Registry, want string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(buf.String(), want) {
			return buf.String()
		}
		if time.Now().After(deadline) {
			t.Fatalf("exposition never contained %q:\n%s", want, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQualityPollerReExportsPeers(t *testing.T) {
	peerA := servePeerMetrics(t, peerMetrics)
	peerB := servePeerMetrics(t, strings.ReplaceAll(peerMetrics, "0.25", "0.75"))
	reg := obs.NewRegistry()
	p, err := cluster.StartQualityPoller(cluster.QualityOptions{
		Peers:    []string{peerA.URL, peerB.URL},
		Interval: 10 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	text := waitPoll(t, reg, `dlinfma_peer_reinfer_churn_ratio{peer="`+peerB.URL+`"`)

	// The whole exposition must stay parseable — renamed families declare
	// HELP/TYPE once even with two peers contributing samples.
	fams, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("frontend exposition unparseable: %v\n%s", err, text)
	}
	churn := fams["dlinfma_peer_reinfer_churn_ratio"]
	if churn == nil || churn.Type != "gauge" || len(churn.Samples) != 2 {
		t.Fatalf("re-exported churn family = %+v", churn)
	}
	byPeer := map[string]float64{}
	for _, s := range churn.Samples {
		if s.Labels["shard"] != "0" {
			t.Errorf("peer sample lost its original labels: %+v", s)
		}
		byPeer[s.Labels["peer"]] = s.Value
	}
	if byPeer[peerA.URL] != 0.25 || byPeer[peerB.URL] != 0.75 {
		t.Errorf("per-peer values = %v", byPeer)
	}
	conf := fams["dlinfma_peer_reinfer_confidence"]
	if conf == nil || conf.Type != "histogram" {
		t.Fatalf("re-exported confidence family = %+v", conf)
	}
	if strings.Contains(text, "dlinfma_peer_engine_hot_swaps_total") {
		t.Error("non-whitelisted family was re-exported")
	}
}

// TestQualityPollerKeepsLastGood pins the failure behavior: a peer that dies
// keeps serving its last snapshot instead of vanishing from the exposition.
func TestQualityPollerKeepsLastGood(t *testing.T) {
	peer := servePeerMetrics(t, peerMetrics)
	reg := obs.NewRegistry()
	p, err := cluster.StartQualityPoller(cluster.QualityOptions{
		Peers:    []string{peer.URL},
		Interval: 10 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	waitPoll(t, reg, "dlinfma_peer_reinfer_churn_ratio")

	peer.Close() // peer dies; snapshots must survive
	time.Sleep(50 * time.Millisecond)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dlinfma_peer_reinfer_churn_ratio") {
		t.Error("last good snapshot vanished after the peer died")
	}
	if !strings.Contains(buf.String(), `dlinfma_cluster_quality_polls_total{outcome="error"}`) {
		t.Error("failed scrape not counted")
	}
}
