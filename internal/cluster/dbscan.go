package cluster

import "dlinfma/internal/geo"

// DBSCANNoise marks points not assigned to any cluster by DBSCAN.
const DBSCANNoise = -1

// DBSCAN clusters pts with the classic density-based algorithm (paper
// ref [10]). It returns a label per point (DBSCANNoise for noise) and the
// number of clusters. The GeoCloud baseline runs DBSCAN over annotated
// delivery locations with minPts = 1 so that sparsely delivered addresses
// still form clusters.
func DBSCAN(pts []geo.Point, eps float64, minPts int) (labels []int, nClusters int) {
	n := len(pts)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = DBSCANNoise
	}
	if n == 0 || eps <= 0 {
		return labels, 0
	}
	if minPts < 1 {
		minPts = 1
	}
	idx := geo.NewIndex(pts, eps)
	visited := make([]bool, n)
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neigh := idx.Within(pts[i], eps)
		if len(neigh) < minPts {
			continue // noise (may be claimed as a border point later)
		}
		// Expand a new cluster from the core point i.
		labels[i] = cluster
		queue := append([]int(nil), neigh...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == DBSCANNoise {
				labels[j] = cluster // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			jn := idx.Within(pts[j], eps)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		cluster++
	}
	return labels, cluster
}

// LargestDBSCANCluster runs DBSCAN and returns the centroid and size of the
// biggest cluster. When every point is noise it falls back to the overall
// centroid with size 0, matching GeoCloud's behaviour of always producing a
// location.
func LargestDBSCANCluster(pts []geo.Point, eps float64, minPts int) (geo.Point, int) {
	labels, k := DBSCAN(pts, eps, minPts)
	if k == 0 {
		return geo.Centroid(pts), 0
	}
	counts := make([]int, k)
	for _, l := range labels {
		if l >= 0 {
			counts[l]++
		}
	}
	best := 0
	for c := 1; c < k; c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	var members []geo.Point
	for i, l := range labels {
		if l == best {
			members = append(members, pts[i])
		}
	}
	return geo.Centroid(members), counts[best]
}
