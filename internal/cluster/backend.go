package cluster

import (
	"context"
	"io"

	"dlinfma/internal/deploy"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
)

// ShardBackend is the transport seam between a sharded engine's fan-out
// logic and the shard that executes it. engine.ShardedEngine used to reach
// into sibling *engine.Engine structs directly; everything it needs from a
// shard is now behind this interface, so a shard can be an in-process engine
// (*engine.Engine implements ShardBackend as-is) or a remote process spoken
// to over HTTP (Client below). The seam covers exactly the operations that
// fan out per shard — single query, batch query, window ingest,
// re-inference, health, and snapshot streaming; stream assembly, the WAL,
// and snapshot files stay owners' local concerns.
//
// Contract notes, written against the in-process implementation so a remote
// backend cannot drift from it:
//
//   - Query never blocks on ingest or retraining and answers
//     deploy.SourceNone for unknown addresses and cold shards. The
//     in-process form is lock-free and allocation-free; remote forms bound
//     the hop with their own timeout.
//   - QueryBatchIdx answers addrs[i] into out[i] for each position i in idx
//     (idx nil: every position), touching no other slot of out — a sharded
//     scatter/gather hands every backend the same addrs/out pair and
//     disjoint idx sets.
//   - Ingest applies one already-partitioned window; it returns
//     deploy.ErrBackpressure (possibly wrapped) when the shard's backlog is
//     full.
//   - Reinfer blocks until the shard's retrain finished, failed, or ctx
//     ended, like engine.Engine.Reinfer does.
//   - Status never fails: a backend that cannot reach its shard reports
//     Failed with the reason in LastError.
type ShardBackend interface {
	// Query answers one address from the shard's served state.
	Query(addr model.AddressID) (geo.Point, deploy.Source)
	// QueryBatchIdx answers the idx positions of addrs into the same
	// positions of out (idx nil: all of addrs).
	QueryBatchIdx(ctx context.Context, addrs []model.AddressID, idx []int32, out []deploy.BatchAnswer) error
	// Ingest applies one partitioned window of trips, addresses, and truth.
	Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error
	// Reinfer retrains the shard and swaps its serving state, synchronously.
	Reinfer(ctx context.Context) error
	// Status summarizes the shard's health for /healthz aggregation.
	Status() deploy.EngineStatus
	// WriteSnapshot streams the shard's serving snapshot to w.
	WriteSnapshot(w io.Writer) error
}
