package cluster

import (
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
)

func TestKMeansSeparatedBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var pts []geo.Point
	centers := []geo.Point{{X: 0, Y: 0}, {X: 500, Y: 0}, {X: 0, Y: 500}}
	for _, c := range centers {
		for i := 0; i < 30; i++ {
			pts = append(pts, geo.Point{X: c.X + r.NormFloat64()*5, Y: c.Y + r.NormFloat64()*5})
		}
	}
	cs := KMeans(pts, 3, 50, rand.New(rand.NewSource(2)))
	if len(cs) != 3 {
		t.Fatalf("got %d clusters, want 3", len(cs))
	}
	// Every found centroid should be near one true center.
	for _, c := range cs {
		best := 1e18
		for _, tc := range centers {
			if d := geo.Dist(c.Centroid, tc); d < best {
				best = d
			}
		}
		if best > 20 {
			t.Errorf("centroid %v far from any true center (%.1f m)", c.Centroid, best)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := KMeans(nil, 3, 10, rng); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := KMeans([]geo.Point{{X: 1, Y: 1}}, 0, 10, rng); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// k > n clamps to n.
	got := KMeans([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, 5, 10, rng)
	if len(got) != 2 {
		t.Errorf("k>n: got %d clusters, want 2", len(got))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := []geo.Point{{X: 7, Y: 7}, {X: 7, Y: 7}, {X: 7, Y: 7}}
	cs := KMeans(pts, 2, 10, rand.New(rand.NewSource(3)))
	var total int
	for _, c := range cs {
		total += len(c.Members)
	}
	if total != 3 {
		t.Errorf("members cover %d points, want 3", total)
	}
}

func TestKMeansPartition(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
	}
	cs := KMeans(pts, 7, 50, rand.New(rand.NewSource(5)))
	seen := make(map[int]bool)
	for _, c := range cs {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("point %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("partition covers %d points, want 100", len(seen))
	}
}
