package cluster

import (
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
)

func TestDBSCANTwoBlobsAndNoise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var pts []geo.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, geo.Point{X: r.NormFloat64() * 3, Y: r.NormFloat64() * 3})
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, geo.Point{X: 200 + r.NormFloat64()*3, Y: r.NormFloat64() * 3})
	}
	pts = append(pts, geo.Point{X: 100, Y: 100}) // isolated noise point

	labels, k := DBSCAN(pts, 15, 3)
	if k != 2 {
		t.Fatalf("got %d clusters, want 2", k)
	}
	if labels[len(labels)-1] != DBSCANNoise {
		t.Errorf("isolated point labeled %d, want noise", labels[len(labels)-1])
	}
	// Points within one blob share a label.
	for i := 1; i < 30; i++ {
		if labels[i] != labels[0] {
			t.Errorf("blob 1 split: labels[%d]=%d labels[0]=%d", i, labels[i], labels[0])
		}
	}
}

func TestDBSCANMinPtsOne(t *testing.T) {
	// With minPts=1 (GeoCloud's setting) every point becomes a core point,
	// so there is no noise.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 1000}}
	labels, k := DBSCAN(pts, 10, 1)
	if k != 2 {
		t.Fatalf("got %d clusters, want 2", k)
	}
	for i, l := range labels {
		if l == DBSCANNoise {
			t.Errorf("point %d is noise; minPts=1 should prevent that", i)
		}
	}
}

func TestDBSCANEmptyAndInvalid(t *testing.T) {
	labels, k := DBSCAN(nil, 10, 3)
	if len(labels) != 0 || k != 0 {
		t.Errorf("empty input: labels=%v k=%d", labels, k)
	}
	labels, k = DBSCAN([]geo.Point{{X: 0, Y: 0}}, 0, 3)
	if k != 0 || labels[0] != DBSCANNoise {
		t.Errorf("eps=0: labels=%v k=%d, want all noise", labels, k)
	}
}

func TestDBSCANChainConnectivity(t *testing.T) {
	// Density-connected chain: consecutive points within eps must end up in
	// one cluster even though the endpoints are far apart.
	var pts []geo.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geo.Point{X: float64(i) * 8, Y: 0})
	}
	labels, k := DBSCAN(pts, 10, 2)
	if k != 1 {
		t.Fatalf("chain split into %d clusters, want 1", k)
	}
	for i, l := range labels {
		if l != 0 {
			t.Errorf("labels[%d] = %d, want 0", i, l)
		}
	}
}

func TestLargestDBSCANCluster(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var pts []geo.Point
	// Big blob at (0,0) with 40 points, small blob at (300,0) with 5.
	for i := 0; i < 40; i++ {
		pts = append(pts, geo.Point{X: r.NormFloat64() * 2, Y: r.NormFloat64() * 2})
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, geo.Point{X: 300 + r.NormFloat64()*2, Y: r.NormFloat64() * 2})
	}
	c, size := LargestDBSCANCluster(pts, 15, 1)
	if size != 40 {
		t.Fatalf("largest cluster size = %d, want 40", size)
	}
	if geo.Dist(c, geo.Point{X: 0, Y: 0}) > 5 {
		t.Errorf("largest cluster centroid %v, want near origin", c)
	}
}

func TestLargestDBSCANClusterAllNoiseFallback(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}
	c, size := LargestDBSCANCluster(pts, 10, 3)
	if size != 0 {
		t.Errorf("size = %d, want 0 for all-noise", size)
	}
	if c.X != 500 {
		t.Errorf("fallback centroid = %v, want overall centroid (500,0)", c)
	}
}

func TestDBSCANBorderPointAssigned(t *testing.T) {
	// A border point (within eps of a core point but itself not core) must
	// be claimed by the cluster, not left as noise.
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, // dense core
		{X: 10, Y: 0}, // border: near the core, no own neighborhood
	}
	labels, k := DBSCAN(pts, 11, 3)
	if k != 1 {
		t.Fatalf("got %d clusters, want 1", k)
	}
	if labels[3] == DBSCANNoise {
		t.Error("border point left as noise")
	}
}
