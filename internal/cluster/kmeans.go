package cluster

import (
	"math"
	"math/rand"

	"dlinfma/internal/geo"
)

// KMeans clusters pts into k clusters with Lloyd's algorithm and k-means++
// initialization (paper ref [9]). rng supplies the seeding randomness; pass a
// fixed-seed source for deterministic output. Empty clusters are reseeded
// from the farthest point. The paper rejects k-means for candidate pool
// construction because k must be known in advance; it is kept here as the
// comparison utility.
func KMeans(pts []geo.Point, k, maxIter int, rng *rand.Rand) []Cluster {
	n := len(pts)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centers := kmeansPlusPlus(pts, k, rng)
	labels := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ct := range centers {
				if d := geo.SqDist(p, ct); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centers.
		sums := make([]geo.Point, k)
		counts := make([]int, k)
		for i, p := range pts {
			l := labels[i]
			sums[l].X += p.X
			sums[l].Y += p.Y
			counts[l]++
		}
		for c := range centers {
			if counts[c] == 0 {
				// Reseed an empty cluster at the point farthest from its center.
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := geo.SqDist(p, centers[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				centers[c] = pts[far]
				continue
			}
			centers[c] = geo.Point{X: sums[c].X / float64(counts[c]), Y: sums[c].Y / float64(counts[c])}
		}
		if !changed && iter > 0 {
			break
		}
	}

	out := make([]Cluster, k)
	for c := range out {
		out[c] = Cluster{Centroid: centers[c]}
	}
	for i, l := range labels {
		out[l].Members = append(out[l].Members, i)
		out[l].Weight++
	}
	// Drop clusters that ended empty after the final assignment.
	kept := out[:0]
	for _, c := range out {
		if len(c.Members) > 0 {
			kept = append(kept, c)
		}
	}
	return kept
}

func kmeansPlusPlus(pts []geo.Point, k int, rng *rand.Rand) []geo.Point {
	centers := make([]geo.Point, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		var sum float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := geo.SqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining points coincide with existing centers.
			centers = append(centers, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * sum
		acc := 0.0
		pick := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, pts[pick])
	}
	return centers
}
