package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dlinfma/internal/obs"
)

// QualityFamilies is the whitelist of model-quality metric families a
// cluster frontend re-exports from its peers. A frontend's own registry has
// these families too (its local engine is a router with no model), so peer
// values are re-rendered under new names — dlinfma_peer_* with a peer label
// — rather than merged into the local families: the Prometheus exposition
// format forbids emitting one family twice, and an operator scraping only
// the frontend still wants per-peer model quality, not a lossy blend.
var QualityFamilies = []string{
	"dlinfma_reinfer_churn_ratio",
	"dlinfma_reinfer_moved_distance_meters",
	"dlinfma_reinfer_confidence",
	"dlinfma_serving_low_confidence_addresses",
	"dlinfma_engine_low_confidence_queries_total",
}

// DefaultQualityInterval is the peer metrics polling cadence when
// QualityOptions leaves Interval zero. Model quality moves at re-inference
// cadence (minutes), so seconds of staleness is invisible.
const DefaultQualityInterval = 15 * time.Second

// QualityOptions configures a peer-quality poller.
type QualityOptions struct {
	// Peers are the base URLs whose /v1/metrics to poll (the same list the
	// frontend routes to). At least one is required.
	Peers []string
	// Interval between polling rounds (0 = DefaultQualityInterval).
	Interval time.Duration
	// Timeout bounds one peer's metrics fetch (0 = DefaultTimeout).
	Timeout time.Duration
	// HTTPClient replaces the default transport (tests inject httptest
	// clients). nil uses a plain client.
	HTTPClient *http.Client
	// Logger receives fetch warnings. nil drops them.
	Logger *obs.Logger
	// Registry is where the re-exported exposition registers (nil =
	// obs.Default). A registry accepts each exposer name once, so start at
	// most one poller per registry.
	Registry *obs.Registry
}

// QualityPoller periodically scrapes each peer's /v1/metrics, keeps the
// QualityFamilies whitelist, and re-renders those samples into the local
// registry's exposition as dlinfma_peer_* families with a peer label. Peers
// that fail a round keep their last good snapshot (the scrape that follows a
// peer restart refreshes it); peers that never answered contribute nothing.
type QualityPoller struct {
	peers    []string
	interval time.Duration
	timeout  time.Duration
	hc       *http.Client
	log      *obs.Logger

	mu        sync.Mutex
	perPeer   map[string]map[string]*obs.Family // whitelisted families per peer
	lastErrs  map[string]error
	stop      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
	pollsOK   *obs.Counter
	pollsFail *obs.Counter
}

// StartQualityPoller registers the dlinfma_peer_* exposer and launches the
// polling loop. Stop tears the loop down; the exposer stays registered (a
// registry has no unregister) and keeps serving the last snapshots.
func StartQualityPoller(o QualityOptions) (*QualityPoller, error) {
	if len(o.Peers) == 0 {
		return nil, fmt.Errorf("cluster: quality poller needs at least one peer")
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.Default
	}
	p := &QualityPoller{
		peers:    append([]string(nil), o.Peers...),
		interval: o.Interval,
		timeout:  o.Timeout,
		hc:       o.HTTPClient,
		log:      o.Logger,
		perPeer:  make(map[string]map[string]*obs.Family),
		lastErrs: make(map[string]error),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if p.interval <= 0 {
		p.interval = DefaultQualityInterval
	}
	if p.timeout <= 0 {
		p.timeout = DefaultTimeout
	}
	if p.hc == nil {
		p.hc = &http.Client{}
	}
	pollVec := reg.CounterVec("dlinfma_cluster_quality_polls_total",
		"Peer /v1/metrics quality scrapes by outcome.", "outcome")
	p.pollsOK = pollVec.With("ok")
	p.pollsFail = pollVec.With("error")
	reg.Exposer("dlinfma_peer_quality", p.expose)
	go p.loop()
	return p, nil
}

// Stop ends the polling loop and waits for it to exit.
func (p *QualityPoller) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// loop polls immediately, then on the interval until stopped.
func (p *QualityPoller) loop() {
	defer close(p.done)
	p.pollAll()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.pollAll()
		}
	}
}

// pollAll scrapes every peer once, sequentially — the peer count is small
// and the fetches are tiny text documents.
func (p *QualityPoller) pollAll() {
	for _, peer := range p.peers {
		fams, err := p.fetchPeer(peer)
		p.mu.Lock()
		if err != nil {
			p.lastErrs[peer] = err
			p.mu.Unlock()
			p.pollsFail.Inc()
			p.log.Warn("peer quality scrape failed", "peer", peer, "err", err)
			continue
		}
		p.lastErrs[peer] = nil
		p.perPeer[peer] = fams
		p.mu.Unlock()
		p.pollsOK.Inc()
	}
}

// fetchPeer downloads and parses one peer's /v1/metrics and keeps the
// whitelisted families.
func (p *QualityPoller) fetchPeer(peer string) (map[string]*obs.Family, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(peer, "/")+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer metrics http %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: parse peer metrics: %w", err)
	}
	kept := make(map[string]*obs.Family, len(QualityFamilies))
	for _, name := range QualityFamilies {
		if f, ok := fams[name]; ok && len(f.Samples) > 0 {
			kept[name] = f
		}
	}
	return kept, nil
}

// writePeerLabels writes a sample's label set with the peer label prepended,
// remaining labels in sorted order for a deterministic exposition.
func writePeerLabels(buf *bytes.Buffer, peer string, labels map[string]string) {
	buf.WriteString(`{peer="` + escapeLabel(peer) + `"`)
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(`,` + k + `="` + escapeLabel(labels[k]) + `"`)
	}
	buf.WriteString("}")
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// expose re-renders the last snapshots into the local exposition: one
// dlinfma_peer_* family per whitelisted name — HELP/TYPE declared once, then
// every peer's samples with a peer label, peers in stable order. Sample names
// keep their family-relative suffix (_bucket/_sum/_count for histograms), so
// the renamed family is itself valid exposition.
func (p *QualityPoller) expose(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	for _, name := range QualityFamilies {
		renamed := "dlinfma_peer_" + strings.TrimPrefix(name, "dlinfma_")
		declared := false
		for _, peer := range p.peers {
			f, ok := p.perPeer[peer][name]
			if !ok {
				continue
			}
			if !declared {
				declared = true
				fmt.Fprintf(&buf, "# HELP %s Peer re-export: %s\n", renamed, f.Help)
				fmt.Fprintf(&buf, "# TYPE %s %s\n", renamed, f.Type)
			}
			for _, s := range f.Samples {
				buf.WriteString(renamed + strings.TrimPrefix(s.Name, name))
				writePeerLabels(&buf, peer, s.Labels)
				fmt.Fprintf(&buf, " %v\n", s.Value)
			}
		}
	}
	_, _ = w.Write(buf.Bytes())
}
