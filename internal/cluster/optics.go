package cluster

import (
	"container/heap"
	"math"
	"sort"

	"dlinfma/internal/geo"
)

// OPTICSPoint is one entry of the OPTICS ordering (paper ref [11]).
type OPTICSPoint struct {
	Index        int
	Reachability float64 // +Inf for ordering roots
	Core         float64 // core distance, +Inf if not a core point
}

// OPTICS computes the density ordering of pts with parameters eps and
// minPts. The ordering plus reachability profile generalizes DBSCAN: cutting
// the reachability plot at any eps' <= eps yields the DBSCAN clustering at
// eps'. The paper lists OPTICS among the clustering methods adoptable for
// candidate generation; it is provided for completeness and comparison.
func OPTICS(pts []geo.Point, eps float64, minPts int) []OPTICSPoint {
	n := len(pts)
	if n == 0 || eps <= 0 {
		return nil
	}
	if minPts < 1 {
		minPts = 1
	}
	idx := geo.NewIndex(pts, eps)
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}

	coreDist := func(p int) float64 {
		neigh := idx.Within(pts[p], eps)
		if len(neigh) < minPts {
			return math.Inf(1)
		}
		ds := make([]float64, len(neigh))
		for i, q := range neigh {
			ds[i] = geo.Dist(pts[p], pts[q])
		}
		sort.Float64s(ds)
		return ds[minPts-1]
	}

	var order []OPTICSPoint
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		processed[start] = true
		cd := coreDist(start)
		order = append(order, OPTICSPoint{Index: start, Reachability: math.Inf(1), Core: cd})
		if math.IsInf(cd, 1) {
			continue
		}
		// Expand with a priority queue on reachability.
		seeds := &reachHeap{}
		update := func(center int, centerCore float64) {
			for _, q := range idx.Within(pts[center], eps) {
				if processed[q] {
					continue
				}
				nd := math.Max(centerCore, geo.Dist(pts[center], pts[q]))
				if nd < reach[q] {
					reach[q] = nd
					heap.Push(seeds, reachEntry{dist: nd, p: q})
				}
			}
		}
		update(start, cd)
		for seeds.Len() > 0 {
			e := heap.Pop(seeds).(reachEntry)
			if processed[e.p] || e.dist != reach[e.p] {
				continue // stale entry
			}
			processed[e.p] = true
			pcd := coreDist(e.p)
			order = append(order, OPTICSPoint{Index: e.p, Reachability: reach[e.p], Core: pcd})
			if !math.IsInf(pcd, 1) {
				update(e.p, pcd)
			}
		}
	}
	return order
}

type reachEntry struct {
	dist float64
	p    int
}

type reachHeap []reachEntry

func (h reachHeap) Len() int            { return len(h) }
func (h reachHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h reachHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reachHeap) Push(x interface{}) { *h = append(*h, x.(reachEntry)) }
func (h *reachHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ExtractDBSCAN cuts an OPTICS ordering at epsPrime, returning per-point
// labels equivalent to DBSCAN at that radius (DBSCANNoise for noise).
func ExtractDBSCAN(order []OPTICSPoint, n int, epsPrime float64) (labels []int, nClusters int) {
	labels = make([]int, n)
	for i := range labels {
		labels[i] = DBSCANNoise
	}
	cluster := -1
	for _, o := range order {
		if o.Reachability > epsPrime {
			if o.Core <= epsPrime {
				cluster++
				labels[o.Index] = cluster
			}
			// else: noise
			continue
		}
		if cluster >= 0 {
			labels[o.Index] = cluster
		}
	}
	return labels, cluster + 1
}
