// Package cluster implements the clustering algorithms the paper uses or
// compares against for candidate pool construction — centroid-linkage
// hierarchical clustering with a distance cutoff (the paper's choice,
// Section III-B), DBSCAN (the GeoCloud baseline), grid merging (the
// DLInfMA-Grid variant) and k-means (a comparison utility) — and, in its
// second role, the process-cluster transport of the serving system: the
// ShardBackend seam engine.ShardedEngine fans out through, its HTTP
// implementation speaking the /v1 wire schema (backend.go, httpbackend.go),
// and the ring-routed query frontend (frontend.go).
package cluster

import (
	"container/heap"
	"math"

	"dlinfma/internal/geo"
)

// Cluster is a group of input points represented by its centroid.
type Cluster struct {
	Centroid geo.Point
	Members  []int   // indices into the input point slice
	Weight   float64 // number of underlying points (> len(Members) after pool merges)
}

// mergeItem is one active cluster during agglomeration.
type mergeItem struct {
	centroid geo.Point
	members  []int
	weight   float64
	version  int  // bumped on every merge so heap entries can detect staleness
	alive    bool // false once merged into another cluster
}

// pairEntry is a candidate merge in the lazy priority queue.
type pairEntry struct {
	dist   float64
	a, b   int
	av, bv int // versions of a and b at push time
}

type pairHeap []pairEntry

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairEntry)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// cellGrid tracks alive cluster ids by spatial cell for neighbor discovery.
// Entries are append-only; readers filter out dead or moved clusters.
type cellGrid struct {
	cell  float64
	cells map[[2]int32][]int
}

func newCellGrid(cell float64) *cellGrid {
	return &cellGrid{cell: cell, cells: make(map[[2]int32][]int)}
}

func (g *cellGrid) key(p geo.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

func (g *cellGrid) add(id int, p geo.Point) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
}

// neighbors appends to dst the ids stored in the 3x3 cell block around p.
// The result may contain dead or moved clusters; callers must verify.
func (g *cellGrid) neighbors(p geo.Point, dst []int) []int {
	k := g.key(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			dst = append(dst, g.cells[[2]int32{k[0] + dx, k[1] + dy}]...)
		}
	}
	return dst
}

// Hierarchical performs centroid-linkage agglomerative clustering with
// distance cutoff d: starting from singleton clusters, it repeatedly merges
// the two clusters whose centroids are closest, until no two centroids are
// within d of each other. This is the paper's candidate-pool construction
// algorithm (D = 40 m by default).
//
// The implementation uses a lazy pair heap plus a uniform cell grid over
// centroids, so only pairs within d are ever considered; runtime is
// O(m log m) in the number of candidate pairs for geographically dispersed
// inputs.
func Hierarchical(pts []geo.Point, d float64) []Cluster {
	items := make([]WeightedPoint, len(pts))
	for i, p := range pts {
		items[i] = WeightedPoint{P: p, W: 1}
	}
	return HierarchicalWeighted(items, d)
}

// WeightedPoint is an input to HierarchicalWeighted: a point standing for W
// underlying observations.
type WeightedPoint struct {
	P geo.Point
	W float64
}

// HierarchicalWeighted is Hierarchical over weighted points: merged centroids
// are weight-averaged. It powers the paper's bi-weekly incremental pool
// maintenance, where previously generated candidates (carrying their stay
// point counts as weights) are re-clustered together with the new batch.
func HierarchicalWeighted(pts []WeightedPoint, d float64) []Cluster {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if d <= 0 {
		out := make([]Cluster, n)
		for i, p := range pts {
			out[i] = Cluster{Centroid: p.P, Members: []int{i}, Weight: p.W}
		}
		return out
	}
	items := make([]mergeItem, n)
	grid := newCellGrid(d)
	for i, p := range pts {
		w := p.W
		if w <= 0 {
			w = 1
		}
		items[i] = mergeItem{centroid: p.P, members: []int{i}, weight: w, alive: true}
		grid.add(i, p.P)
	}

	h := &pairHeap{}
	var scratch []int
	pushPairs := func(id int) {
		scratch = grid.neighbors(items[id].centroid, scratch[:0])
		for _, o := range scratch {
			if o == id || !items[o].alive {
				continue
			}
			dist := geo.Dist(items[id].centroid, items[o].centroid)
			if dist <= d {
				a, b := id, o
				heap.Push(h, pairEntry{dist: dist, a: a, b: b, av: items[a].version, bv: items[b].version})
			}
		}
	}
	for i := range items {
		// Push each pair once by ordering on id.
		scratch = grid.neighbors(items[i].centroid, scratch[:0])
		for _, o := range scratch {
			if o <= i {
				continue
			}
			dist := geo.Dist(items[i].centroid, items[o].centroid)
			if dist <= d {
				heap.Push(h, pairEntry{dist: dist, a: i, b: o, av: 0, bv: 0})
			}
		}
	}

	next := n // ids for newly created clusters
	for h.Len() > 0 {
		e := heap.Pop(h).(pairEntry)
		ia, ib := &items[e.a], &items[e.b]
		if !ia.alive || !ib.alive || ia.version != e.av || ib.version != e.bv {
			continue // stale entry
		}
		// Merge b into a new cluster.
		ia.alive = false
		ib.alive = false
		w := ia.weight + ib.weight
		c := geo.Point{
			X: (ia.centroid.X*ia.weight + ib.centroid.X*ib.weight) / w,
			Y: (ia.centroid.Y*ia.weight + ib.centroid.Y*ib.weight) / w,
		}
		members := make([]int, 0, len(ia.members)+len(ib.members))
		members = append(members, ia.members...)
		members = append(members, ib.members...)
		items = append(items, mergeItem{centroid: c, members: members, weight: w, alive: true})
		grid.add(next, c)
		pushPairs(next)
		next++
	}

	var out []Cluster
	for _, it := range items {
		if it.alive {
			out = append(out, Cluster{Centroid: it.centroid, Members: it.members, Weight: it.weight})
		}
	}
	return out
}
