package cluster

import (
	"fmt"
	"net/http"
	"time"

	"dlinfma/internal/obs"
	"dlinfma/internal/shard"
)

// FrontendOptions configures a ring-routed frontend's shard backends.
type FrontendOptions struct {
	// Peers are the base URLs of the shard-serving processes. Order does not
	// matter: the consistent-hash ring sorts members, so every frontend given
	// the same peer set routes identically.
	Peers []string
	// Replication is how many distinct peers serve each shard (owner +
	// replicas, clamped to the peer count; 0 = 1). Writes go to all of them;
	// reads try them in ring order.
	Replication int
	// VirtualNodes per peer on the ring (0 = shard.DefaultVirtualNodes).
	VirtualNodes int
	// Timeout, Retries, PollInterval, HTTPClient, Logger configure each
	// backend client; see ClientOptions.
	Timeout      time.Duration
	Retries      int
	PollInterval time.Duration
	HTTPClient   *http.Client
	Logger       *obs.Logger
}

// NewFrontendBackends builds one HTTP shard backend per shard of r, each
// pointing at the peers the ring assigns that shard — the owner first, then
// the replicas in ring order, which is also the failover order. The result
// plugs straight into engine.NewShardedBackends: the frontend is then a
// normal sharded engine whose shards happen to live in other processes, and
// the whole /v1 surface (queries with replica failover, replicated ingest,
// fan-out re-inference, aggregated health, manifest snapshots) rides the
// existing deploy stack.
func NewFrontendBackends(r *shard.Router, o FrontendOptions) ([]ShardBackend, *shard.Ring, error) {
	ring, err := shard.NewRing(o.Peers, o.VirtualNodes)
	if err != nil {
		return nil, nil, err
	}
	repl := o.Replication
	if repl < 1 {
		repl = 1
	}
	backends := make([]ShardBackend, r.N())
	for sh := range backends {
		c, err := NewClient(ClientOptions{
			Endpoints:    ring.ShardOwners(sh, repl),
			Timeout:      o.Timeout,
			Retries:      o.Retries,
			PollInterval: o.PollInterval,
			HTTPClient:   o.HTTPClient,
			Logger:       o.Logger,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: shard %d: %w", sh, err)
		}
		c.frontend = true
		backends[sh] = c
	}
	return backends, ring, nil
}
