package cluster

import (
	"math"
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
)

func twoBlobs(r *rand.Rand) []geo.Point {
	var pts []geo.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, geo.Point{X: r.NormFloat64() * 4, Y: r.NormFloat64() * 4})
	}
	for i := 0; i < 25; i++ {
		pts = append(pts, geo.Point{X: 300 + r.NormFloat64()*4, Y: r.NormFloat64() * 4})
	}
	return pts
}

func TestOPTICSOrderingCoversAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := twoBlobs(r)
	order := OPTICS(pts, 50, 4)
	if len(order) != len(pts) {
		t.Fatalf("ordering has %d entries, want %d", len(order), len(pts))
	}
	seen := make(map[int]bool)
	for _, o := range order {
		if seen[o.Index] {
			t.Fatalf("point %d ordered twice", o.Index)
		}
		seen[o.Index] = true
	}
}

func TestOPTICSReachabilityValleyStructure(t *testing.T) {
	// Two dense blobs far apart: the ordering must contain exactly two
	// low-reachability valleys separated by an infinite jump (the second
	// blob starts as a new root or with reachability > eps).
	r := rand.New(rand.NewSource(2))
	pts := twoBlobs(r)
	order := OPTICS(pts, 50, 4)
	jumps := 0
	for i, o := range order {
		if i == 0 {
			continue
		}
		if math.IsInf(o.Reachability, 1) || o.Reachability > 50 {
			jumps++
		}
	}
	if jumps != 1 {
		t.Errorf("got %d inter-cluster jumps, want 1", jumps)
	}
}

func TestExtractDBSCANMatchesDBSCAN(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := twoBlobs(r)
	const eps, minPts = 30.0, 4
	order := OPTICS(pts, eps, minPts)
	oLabels, oK := ExtractDBSCAN(order, len(pts), eps)
	dLabels, dK := DBSCAN(pts, eps, minPts)
	if oK != dK {
		t.Fatalf("OPTICS cut found %d clusters, DBSCAN %d", oK, dK)
	}
	// Labels may be permuted; compare partitions.
	mapping := make(map[int]int)
	for i := range pts {
		a, b := oLabels[i], dLabels[i]
		if (a == DBSCANNoise) != (b == DBSCANNoise) {
			t.Fatalf("point %d: noise disagreement (%d vs %d)", i, a, b)
		}
		if a == DBSCANNoise {
			continue
		}
		if m, ok := mapping[a]; ok {
			if m != b {
				t.Fatalf("partition mismatch at %d", i)
			}
		} else {
			mapping[a] = b
		}
	}
}

func TestOPTICSEdgeCases(t *testing.T) {
	if got := OPTICS(nil, 10, 3); got != nil {
		t.Error("empty input should yield nil")
	}
	if got := OPTICS([]geo.Point{{X: 1, Y: 1}}, 0, 3); got != nil {
		t.Error("eps=0 should yield nil")
	}
	// A single isolated point is ordered but has no core distance.
	order := OPTICS([]geo.Point{{X: 0, Y: 0}}, 10, 2)
	if len(order) != 1 || !math.IsInf(order[0].Core, 1) {
		t.Errorf("lone point order = %+v", order)
	}
}

func TestExtractDBSCANTighterCut(t *testing.T) {
	// Cutting at a smaller eps' splits a two-density blob arrangement.
	var pts []geo.Point
	r := rand.New(rand.NewSource(4))
	// Tight blob and a loose halo 60 m away.
	for i := 0; i < 20; i++ {
		pts = append(pts, geo.Point{X: r.NormFloat64() * 2, Y: r.NormFloat64() * 2})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, geo.Point{X: 60 + r.NormFloat64()*2, Y: r.NormFloat64() * 2})
	}
	order := OPTICS(pts, 100, 4)
	_, kWide := ExtractDBSCAN(order, len(pts), 100)
	_, kTight := ExtractDBSCAN(order, len(pts), 20)
	if kWide != 1 {
		t.Errorf("wide cut found %d clusters, want 1 (bridged)", kWide)
	}
	if kTight != 2 {
		t.Errorf("tight cut found %d clusters, want 2", kTight)
	}
}
