package cluster

import "dlinfma/internal/obs"

// Transport metrics. Route labels are the fixed /v1 route table, endpoint
// identity is deliberately not a label (peer sets are operator input and
// would blow up cardinality); per-peer failures surface in logs and the
// aggregated /healthz instead.
var (
	rpcOutcomes = obs.Default.CounterVec("dlinfma_cluster_rpcs_total",
		"Shard-backend RPCs by route and outcome (ok/error). One RPC may try several endpoints.",
		"route", "outcome")
	rpcFailovers = obs.Default.Counter("dlinfma_cluster_rpc_failovers_total",
		"Shard-backend attempts made past the first endpoint (owner down, replica tried).")

	frontendFailovers = obs.Default.Counter("dlinfma_cluster_frontend_failovers_total",
		"Frontend queries answered by a replica because the ring owner failed.")
	frontendPeerErrors = obs.Default.Counter("dlinfma_cluster_frontend_peer_errors_total",
		"Frontend peer calls that failed after exhausting their retry budget.")
)

// countRPC records one finished backend RPC.
func countRPC(route string, err error) {
	if err != nil {
		rpcOutcomes.With(route, "error").Inc()
		return
	}
	rpcOutcomes.With(route, "ok").Inc()
}
