package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlinfma/internal/geo"
)

func TestHierarchicalEmpty(t *testing.T) {
	if got := Hierarchical(nil, 40); got != nil {
		t.Errorf("Hierarchical(nil) = %v, want nil", got)
	}
}

func TestHierarchicalSinglePoint(t *testing.T) {
	got := Hierarchical([]geo.Point{{X: 5, Y: 5}}, 40)
	if len(got) != 1 || got[0].Centroid != (geo.Point{X: 5, Y: 5}) || got[0].Weight != 1 {
		t.Errorf("single point: %+v", got)
	}
}

func TestHierarchicalTwoGroups(t *testing.T) {
	// Two tight groups 500 m apart must become exactly two clusters.
	var pts []geo.Point
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		pts = append(pts, geo.Point{X: r.NormFloat64() * 5, Y: r.NormFloat64() * 5})
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, geo.Point{X: 500 + r.NormFloat64()*5, Y: r.NormFloat64() * 5})
	}
	cs := Hierarchical(pts, 40)
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2", len(cs))
	}
	var total int
	for _, c := range cs {
		total += len(c.Members)
	}
	if total != len(pts) {
		t.Errorf("members cover %d points, want %d", total, len(pts))
	}
}

func TestHierarchicalCutoffInvariant(t *testing.T) {
	// After clustering, no two centroids may be within D of each other.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(100)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: r.Float64() * 400, Y: r.Float64() * 400}
		}
		const d = 40.0
		cs := Hierarchical(pts, d)
		for i := range cs {
			for j := i + 1; j < len(cs); j++ {
				if geo.Dist(cs[i].Centroid, cs[j].Centroid) <= d {
					return false
				}
			}
		}
		// Every input point appears in exactly one cluster.
		seen := make(map[int]bool)
		for _, c := range cs {
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalNonPositiveDistance(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	cs := Hierarchical(pts, 0)
	if len(cs) != 2 {
		t.Errorf("d=0 should keep singletons, got %d clusters", len(cs))
	}
}

func TestHierarchicalWeightedCentroid(t *testing.T) {
	// A weight-3 point at x=0 merged with a weight-1 point at x=20 lands at x=5.
	pts := []WeightedPoint{
		{P: geo.Point{X: 0, Y: 0}, W: 3},
		{P: geo.Point{X: 20, Y: 0}, W: 1},
	}
	cs := HierarchicalWeighted(pts, 40)
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
	if cs[0].Centroid.X != 5 || cs[0].Weight != 4 {
		t.Errorf("weighted merge: centroid %v weight %v, want x=5 w=4", cs[0].Centroid, cs[0].Weight)
	}
}

func TestHierarchicalWeightedZeroWeightDefaultsToOne(t *testing.T) {
	pts := []WeightedPoint{
		{P: geo.Point{X: 0, Y: 0}, W: 0},
		{P: geo.Point{X: 10, Y: 0}, W: 0},
	}
	cs := HierarchicalWeighted(pts, 40)
	if len(cs) != 1 || cs[0].Centroid.X != 5 {
		t.Errorf("zero weights should default to 1: %+v", cs)
	}
}

func TestHierarchicalChainMerging(t *testing.T) {
	// A chain of points each 30 m apart with D=40: centroid linkage merges
	// greedily, and the resulting centroids must still respect the cutoff.
	var pts []geo.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, geo.Point{X: float64(i) * 30, Y: 0})
	}
	cs := Hierarchical(pts, 40)
	for i := range cs {
		for j := i + 1; j < len(cs); j++ {
			if geo.Dist(cs[i].Centroid, cs[j].Centroid) <= 40 {
				t.Fatalf("centroids %v and %v within cutoff", cs[i].Centroid, cs[j].Centroid)
			}
		}
	}
}

func TestHierarchicalMergesClosestFirst(t *testing.T) {
	// Three points: a and b are 10 m apart, c is 35 m from their midpoint.
	// Closest-first merging joins a+b first; the merged centroid is then
	// within 40 m of c, so everything collapses to one cluster.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 40, Y: 0}}
	cs := Hierarchical(pts, 40)
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
	if len(cs[0].Members) != 3 {
		t.Errorf("cluster members = %v, want all 3", cs[0].Members)
	}
}

func TestHierarchicalMatchesNaiveImplementation(t *testing.T) {
	// Compare cluster count against a straightforward O(n^3) reference.
	naive := func(pts []geo.Point, d float64) int {
		type cl struct {
			c geo.Point
			w float64
		}
		var cs []cl
		for _, p := range pts {
			cs = append(cs, cl{p, 1})
		}
		for {
			bi, bj, bd := -1, -1, d
			for i := range cs {
				for j := i + 1; j < len(cs); j++ {
					if dd := geo.Dist(cs[i].c, cs[j].c); dd <= bd {
						bi, bj, bd = i, j, dd
					}
				}
			}
			if bi < 0 {
				break
			}
			w := cs[bi].w + cs[bj].w
			m := geo.Point{
				X: (cs[bi].c.X*cs[bi].w + cs[bj].c.X*cs[bj].w) / w,
				Y: (cs[bi].c.Y*cs[bi].w + cs[bj].c.Y*cs[bj].w) / w,
			}
			cs[bi] = cl{m, w}
			cs = append(cs[:bj], cs[bj+1:]...)
		}
		return len(cs)
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(40)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: r.Float64() * 300, Y: r.Float64() * 300}
		}
		got := len(Hierarchical(pts, 40))
		want := naive(pts, 40)
		if got != want {
			t.Errorf("trial %d: fast=%d naive=%d", trial, got, want)
		}
	}
}
