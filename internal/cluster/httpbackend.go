package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/deploy/api"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/obs"
	"dlinfma/internal/obs/trace"
)

// Route labels for the RPC metrics (fixed set, mirroring the /v1 table).
const (
	routeLocation = "/v1/locations/{key}"
	routeBatch    = "/v1/locations:batch"
	routeIngest   = "/v1/ingest"
	routeReinfer  = "/v1/reinfer"
	routeSnapshot = "/v1/snapshot"
	routeHealthz  = "/v1/healthz"
)

// DefaultTimeout bounds one HTTP call of a backend RPC when ClientOptions
// leaves Timeout zero. Reads are sub-millisecond server-side, so five seconds
// is network headroom, not a latency target.
const DefaultTimeout = 5 * time.Second

// DefaultPollInterval is how often Reinfer polls the remote job when
// ClientOptions leaves PollInterval zero.
const DefaultPollInterval = 250 * time.Millisecond

// snapshotTimeoutFactor scales the per-call timeout for snapshot downloads,
// which stream megabytes where every other route moves kilobytes.
const snapshotTimeoutFactor = 12

// ClientOptions configures an HTTP shard backend.
type ClientOptions struct {
	// Endpoints are the base URLs serving the shard, the ring owner first and
	// its replicas after. Every call walks the list in order until one
	// endpoint answers; at least one endpoint is required.
	Endpoints []string
	// Timeout bounds each HTTP call (0 = DefaultTimeout). Reinfer applies it
	// per poll, not to the whole retrain.
	Timeout time.Duration
	// Retries is how many extra passes over the endpoint list a failing call
	// makes after the first (<0 = 0). The total attempt budget per call is
	// (1+Retries) * len(Endpoints).
	Retries int
	// PollInterval is the Reinfer job polling cadence (0 = DefaultPollInterval).
	PollInterval time.Duration
	// HTTPClient, when set, replaces the default transport (tests inject
	// httptest clients here). Per-call timeouts still come from Timeout.
	HTTPClient *http.Client
	// Logger receives failover warnings. nil drops them.
	Logger *obs.Logger
}

// Client is the HTTP ShardBackend: every operation of the seam mapped onto
// the existing /v1 wire surface, with per-call timeouts, bounded retry across
// the owner-then-replicas endpoint list, and W3C traceparent plus
// X-Request-ID propagation on every hop so the remote server span parents
// under the caller's trace.
type Client struct {
	endpoints []string
	timeout   time.Duration
	rounds    int
	poll      time.Duration
	hc        *http.Client
	log       *obs.Logger
	// frontend marks clients built by NewFrontendBackends so ring-owner
	// failovers surface on the frontend-facing counters too.
	frontend bool
}

// NewClient returns an HTTP backend over o.Endpoints.
func NewClient(o ClientOptions) (*Client, error) {
	if len(o.Endpoints) == 0 {
		return nil, errors.New("cluster: no endpoints")
	}
	eps := make([]string, len(o.Endpoints))
	for i, ep := range o.Endpoints {
		for len(ep) > 0 && ep[len(ep)-1] == '/' {
			ep = ep[:len(ep)-1]
		}
		if ep == "" {
			return nil, fmt.Errorf("cluster: empty endpoint at index %d", i)
		}
		eps[i] = ep
	}
	c := &Client{
		endpoints: eps,
		timeout:   o.Timeout,
		rounds:    1 + o.Retries,
		poll:      o.PollInterval,
		hc:        o.HTTPClient,
		log:       o.Logger,
	}
	if c.timeout <= 0 {
		c.timeout = DefaultTimeout
	}
	if c.rounds < 1 {
		c.rounds = 1
	}
	if c.poll <= 0 {
		c.poll = DefaultPollInterval
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	return c, nil
}

// Endpoint returns the client's primary (owner) endpoint.
func (c *Client) Endpoint() string { return c.endpoints[0] }

// roundTrip performs one attempt against one endpoint: per-attempt timeout,
// its own client span (so the remote server span parents under this exact
// hop), and trace/correlation header injection.
func (c *Client) roundTrip(ctx context.Context, endpoint, method, path string, body []byte) (int, []byte, error) {
	ctx, sp := trace.Start(ctx, "cluster.rpc")
	sp.SetAttr("endpoint", endpoint)
	sp.SetAttr("path", path)
	defer sp.End()
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(cctx, method, endpoint+path, rd)
	if err != nil {
		sp.RecordError(err)
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tsp := trace.SpanFromContext(ctx); tsp != nil {
		req.Header.Set("traceparent", tsp.Traceparent())
	}
	if id := deploy.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		sp.RecordError(err)
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		sp.RecordError(err)
		return 0, nil, err
	}
	sp.SetAttr("status", resp.StatusCode)
	return resp.StatusCode, data, nil
}

// call walks the endpoint list (owner first) up to the retry budget and
// returns the first delivered response. Transport failures and 5xx statuses
// other than 503 fail over to the next endpoint; everything else — including
// 503, which is a meaningful engine_not_ready answer — is the caller's to
// interpret.
func (c *Client) call(ctx context.Context, route, method, path string, body []byte) (int, []byte, error) {
	var lastErr error
	for round := 0; round < c.rounds; round++ {
		for i, ep := range c.endpoints {
			if err := ctx.Err(); err != nil {
				countRPC(route, err)
				return 0, nil, err
			}
			if round > 0 || i > 0 {
				rpcFailovers.Inc()
			}
			status, data, err := c.roundTrip(ctx, ep, method, path, body)
			if err != nil {
				lastErr = fmt.Errorf("cluster: %s %s%s: %w", method, ep, path, err)
				c.log.Warn("backend endpoint failed", "endpoint", ep, "path", path, "err", err)
				continue
			}
			if status >= http.StatusInternalServerError && status != http.StatusServiceUnavailable {
				lastErr = apiError(status, data)
				c.log.Warn("backend endpoint errored", "endpoint", ep, "path", path, "status", status)
				continue
			}
			if c.frontend && (round > 0 || i > 0) {
				frontendFailovers.Inc()
			}
			countRPC(route, nil)
			return status, data, nil
		}
	}
	if c.frontend {
		frontendPeerErrors.Inc()
	}
	countRPC(route, lastErr)
	return 0, nil, lastErr
}

// callEndpoint is call pinned to one endpoint: the same retry budget and 5xx
// semantics, no failover. The replicated write paths use it so every replica
// is driven individually.
func (c *Client) callEndpoint(ctx context.Context, route, method, path string, body []byte, ep string) (int, []byte, error) {
	var lastErr error
	for round := 0; round < c.rounds; round++ {
		if err := ctx.Err(); err != nil {
			countRPC(route, err)
			return 0, nil, err
		}
		status, data, err := c.roundTrip(ctx, ep, method, path, body)
		if err != nil {
			lastErr = fmt.Errorf("cluster: %s %s%s: %w", method, ep, path, err)
			c.log.Warn("backend endpoint failed", "endpoint", ep, "path", path, "err", err)
			continue
		}
		if status >= http.StatusInternalServerError && status != http.StatusServiceUnavailable {
			lastErr = apiError(status, data)
			c.log.Warn("backend endpoint errored", "endpoint", ep, "path", path, "status", status)
			continue
		}
		countRPC(route, nil)
		return status, data, nil
	}
	countRPC(route, lastErr)
	return 0, nil, lastErr
}

// apiError turns a non-2xx response into an error, preserving the uniform
// envelope's code when the body carries one.
func apiError(status int, data []byte) error {
	var env api.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error != nil {
		if env.Error.Code == api.CodeBackpressure {
			return fmt.Errorf("%w (remote: %s)", deploy.ErrBackpressure, env.Error.Message)
		}
		return fmt.Errorf("cluster: remote %s", env.Error)
	}
	body := string(data)
	if len(body) > 200 {
		body = body[:200] + "..."
	}
	return fmt.Errorf("cluster: remote http %d: %s", status, body)
}

// Query answers one address (ShardBackend). The plain form has no context —
// it sits behind the engine's lock-free Query signature — so the hop runs
// under the client's own timeout; total transport failure answers
// SourceNone, matching a cold local shard.
func (c *Client) Query(addr model.AddressID) (geo.Point, deploy.Source) {
	p, src, _ := c.QueryOne(context.Background(), addr)
	return p, src
}

// QueryOne is the context-carrying single-key read: the error is non-nil
// only when every endpoint failed to deliver any answer — a served "unknown
// address" (404) or cold shard (503) is a nil-error SourceNone.
func (c *Client) QueryOne(ctx context.Context, addr model.AddressID) (geo.Point, deploy.Source, error) {
	path := "/v1/locations/" + strconv.FormatInt(int64(addr), 10)
	status, data, err := c.call(ctx, routeLocation, http.MethodGet, path, nil)
	if err != nil {
		return geo.Point{}, deploy.SourceNone, err
	}
	switch status {
	case http.StatusOK:
		var loc api.Location
		if err := json.Unmarshal(data, &loc); err != nil {
			return geo.Point{}, deploy.SourceNone, fmt.Errorf("cluster: decode location: %w", err)
		}
		return geo.Point{X: loc.X, Y: loc.Y}, deploy.ParseSource(loc.Source), nil
	case http.StatusNotFound, http.StatusServiceUnavailable:
		return geo.Point{}, deploy.SourceNone, nil
	default:
		return geo.Point{}, deploy.SourceNone, apiError(status, data)
	}
}

// QueryBatchIdx answers the idx positions of addrs into out (ShardBackend),
// chunked to the wire's MaxBatchKeys bound. A cold remote shard (503)
// answers SourceNone for the whole chunk, like a cold local shard does.
func (c *Client) QueryBatchIdx(ctx context.Context, addrs []model.AddressID, idx []int32, out []deploy.BatchAnswer) error {
	n := len(addrs)
	if idx != nil {
		n = len(idx)
	}
	pos := func(j int) int {
		if idx == nil {
			return j
		}
		return int(idx[j])
	}
	req := api.BatchLocationsRequest{Addrs: make([]int64, 0, min(n, api.MaxBatchKeys))}
	for base := 0; base < n; base += api.MaxBatchKeys {
		end := min(base+api.MaxBatchKeys, n)
		req.Addrs = req.Addrs[:0]
		for j := base; j < end; j++ {
			req.Addrs = append(req.Addrs, int64(addrs[pos(j)]))
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		status, data, err := c.call(ctx, routeBatch, http.MethodPost, "/v1/locations:batch", body)
		if err != nil {
			return err
		}
		if status == http.StatusServiceUnavailable {
			for j := base; j < end; j++ {
				out[pos(j)] = deploy.BatchAnswer{Src: deploy.SourceNone}
			}
			continue
		}
		if status != http.StatusOK {
			return apiError(status, data)
		}
		var resp api.BatchLocationsResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("cluster: decode batch response: %w", err)
		}
		if len(resp.Results) != end-base {
			return fmt.Errorf("cluster: batch answered %d of %d keys", len(resp.Results), end-base)
		}
		for k, res := range resp.Results {
			p := pos(base + k)
			if res.Location != nil {
				out[p] = deploy.BatchAnswer{
					Loc: geo.Point{X: res.Location.X, Y: res.Location.Y},
					Src: deploy.ParseSource(res.Location.Source),
				}
			} else {
				out[p] = deploy.BatchAnswer{Src: deploy.SourceNone}
			}
		}
	}
	return nil
}

// Ingest posts one partitioned window to EVERY endpoint of the shard — the
// owner and each replica — because a replica can only answer correctly after
// failover if it holds the same trips (ShardBackend). Each endpoint gets the
// full retry budget; endpoints that still fail are joined into the returned
// error. A remote backlog-full answer maps back to deploy.ErrBackpressure so
// sharded ingest keeps its sentinel semantics across the hop. Retrying a
// window after a partial failure re-applies it to the endpoints that already
// accepted — the same "retry the whole window" trade-off the in-process
// sharded ingest documents.
func (c *Client) Ingest(ctx context.Context, trips []model.Trip, addrs []model.AddressInfo, truth map[model.AddressID]geo.Point) error {
	req := api.IngestRequest{Trips: trips, Addresses: addrs}
	if len(truth) > 0 {
		req.Truth = make(map[string][2]float64, len(truth))
		for id, p := range truth {
			req.Truth[strconv.FormatInt(int64(id), 10)] = [2]float64{p.X, p.Y}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var errs []error
	for _, ep := range c.endpoints {
		status, data, err := c.callEndpoint(ctx, routeIngest, http.MethodPost, "/v1/ingest", body, ep)
		if err == nil && status != http.StatusOK {
			err = apiError(status, data)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("cluster: ingest %s: %w", ep, err))
		}
	}
	return errors.Join(errs...)
}

// Reinfer retrains EVERY endpoint of the shard concurrently and blocks until
// each finished (ShardBackend's synchronous contract): replicas hold the
// same trips after replicated ingest, and retraining is deterministic, so
// owner and replicas converge to the same served state. A job already
// running on an endpoint (409) is adopted and polled like our own; ctx
// cancellation stops the polling but not the remote jobs.
func (c *Client) Reinfer(ctx context.Context) error {
	if len(c.endpoints) == 1 {
		return c.reinferEndpoint(ctx, c.endpoints[0])
	}
	errs := make([]error, len(c.endpoints))
	var wg sync.WaitGroup
	for i, ep := range c.endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			errs[i] = c.reinferEndpoint(ctx, ep)
		}(i, ep)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// reinferEndpoint starts one endpoint's background re-inference job and
// polls it to completion.
func (c *Client) reinferEndpoint(ctx context.Context, ep string) error {
	status, data, err := c.callEndpoint(ctx, routeReinfer, http.MethodPost, "/v1/reinfer", nil, ep)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted && status != http.StatusConflict {
		return apiError(status, data)
	}
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		status, data, err := c.callEndpoint(ctx, routeReinfer, http.MethodGet, "/v1/reinfer", nil, ep)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return apiError(status, data)
		}
		var job api.JobStatus
		if err := json.Unmarshal(data, &job); err != nil {
			return fmt.Errorf("cluster: decode job status: %w", err)
		}
		switch job.State {
		case api.JobRunning:
		case api.JobDone:
			return nil
		case api.JobFailed:
			return fmt.Errorf("cluster: remote reinfer failed on %s: %s", ep, job.Error)
		default:
			return fmt.Errorf("cluster: unknown remote job state %q from %s", job.State, ep)
		}
	}
}

// Status fetches the shard's typed /v1/healthz summary (ShardBackend). An unreachable
// shard reports Failed with the transport error, never panics or blocks past
// the retry budget — Status has no error channel by design.
func (c *Client) Status() deploy.EngineStatus {
	status, data, err := c.call(context.Background(), routeHealthz, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return deploy.EngineStatus{Failed: true, LastError: "backend unreachable: " + err.Error()}
	}
	var st deploy.EngineStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return deploy.EngineStatus{Failed: true, LastError: fmt.Sprintf("backend sent bad healthz (http %d): %v", status, err)}
	}
	return st
}

// WriteSnapshot streams the shard's /v1/snapshot to w (ShardBackend).
// Failover applies only until the first body byte lands in w; a download
// broken mid-stream is the caller's error to handle, like a local write.
func (c *Client) WriteSnapshot(w io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), snapshotTimeoutFactor*c.timeout)
	defer cancel()
	var lastErr error
	for round := 0; round < c.rounds; round++ {
		for i, ep := range c.endpoints {
			if round > 0 || i > 0 {
				rpcFailovers.Inc()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/v1/snapshot", nil)
			if err != nil {
				countRPC(routeSnapshot, err)
				return err
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				lastErr = apiError(resp.StatusCode, data)
				continue
			}
			_, err = io.Copy(w, resp.Body)
			resp.Body.Close()
			countRPC(routeSnapshot, err)
			return err
		}
	}
	countRPC(routeSnapshot, lastErr)
	return fmt.Errorf("cluster: snapshot download failed: %w", lastErr)
}

// statically assert the client implements the seam.
var _ ShardBackend = (*Client)(nil)
