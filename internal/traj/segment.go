package traj

import "dlinfma/internal/geo"

// SegmentByGap splits a raw, continuous GPS stream into trip-sized
// sub-trajectories at temporal gaps larger than maxGapSeconds. The deployed
// system ingests couriers' all-day streams; delivery trips are the segments
// between depot idle periods (the paper's Definition 5 trips come out of
// this preprocessing).
func SegmentByGap(tr Trajectory, maxGapSeconds float64) []Trajectory {
	if len(tr) == 0 {
		return nil
	}
	if maxGapSeconds <= 0 {
		maxGapSeconds = 600
	}
	var out []Trajectory
	start := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].T-tr[i-1].T > maxGapSeconds {
			out = append(out, tr[start:i])
			start = i
		}
	}
	return append(out, tr[start:])
}

// SegmentByDwell splits a stream wherever the courier dwells within radius
// meters for at least minDwellSeconds (e.g. back at the station). The dwell
// itself is attached to the preceding segment. Segments shorter than two
// points are dropped.
func SegmentByDwell(tr Trajectory, radius, minDwellSeconds float64) []Trajectory {
	if len(tr) < 2 {
		return nil
	}
	sps := DetectStayPoints(tr, StayPointConfig{DMax: radius, TMin: minDwellSeconds})
	if len(sps) == 0 {
		return []Trajectory{tr}
	}
	var out []Trajectory
	startIdx := 0
	for _, sp := range sps {
		// Find the index right after the dwell ends.
		end := startIdx
		for end < len(tr) && tr[end].T <= sp.LeaveT {
			end++
		}
		if end-startIdx >= 2 {
			out = append(out, tr[startIdx:end])
		}
		startIdx = end
	}
	if len(tr)-startIdx >= 2 {
		out = append(out, tr[startIdx:])
	}
	return out
}

// Simplify reduces a trajectory with the Douglas-Peucker algorithm under a
// spatial tolerance in meters, always keeping the endpoints. Timestamps are
// preserved on the kept points. Used to compress archived trajectories in
// the storage layer without disturbing stay-point geometry beyond tol.
func Simplify(tr Trajectory, tol float64) Trajectory {
	if len(tr) <= 2 || tol <= 0 {
		return tr
	}
	keep := make([]bool, len(tr))
	keep[0], keep[len(tr)-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		maxD, maxI := -1.0, -1
		for i := lo + 1; i < hi; i++ {
			if d := pointSegmentDist(tr[i].P, tr[lo].P, tr[hi].P); d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tol {
			keep[maxI] = true
			rec(lo, maxI)
			rec(maxI, hi)
		}
	}
	rec(0, len(tr)-1)
	out := make(Trajectory, 0, len(tr)/2)
	for i, k := range keep {
		if k {
			out = append(out, tr[i])
		}
	}
	return out
}

// pointSegmentDist returns the distance from p to segment ab.
func pointSegmentDist(p, a, b geo.Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return geo.Dist(p, a)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := geo.Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return geo.Dist(p, proj)
}

// Stats summarizes a trajectory's kinematics: used by data-quality checks
// before ingestion.
type Stats struct {
	Points    int
	Duration  float64
	Length    float64
	MeanSpeed float64 // m/s over moving time
	MaxSpeed  float64
	MeanGap   float64 // seconds between fixes
	MaxGap    float64
}

// ComputeStats returns kinematic statistics for tr.
func ComputeStats(tr Trajectory) Stats {
	s := Stats{Points: len(tr)}
	if len(tr) < 2 {
		return s
	}
	s.Duration = tr.Duration()
	s.Length = tr.Length()
	if s.Duration > 0 {
		s.MeanSpeed = s.Length / s.Duration
	}
	for i := 1; i < len(tr); i++ {
		gap := tr[i].T - tr[i-1].T
		s.MeanGap += gap
		if gap > s.MaxGap {
			s.MaxGap = gap
		}
		if gap > 0 {
			if v := geo.Dist(tr[i-1].P, tr[i].P) / gap; v > s.MaxSpeed {
				s.MaxSpeed = v
			}
		}
	}
	s.MeanGap /= float64(len(tr) - 1)
	return s
}
