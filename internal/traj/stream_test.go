package traj

import (
	"math/rand"
	"testing"

	"dlinfma/internal/geo"
)

// streamAll pushes every fix of tr through a fresh StreamExtractor and
// returns the concatenation of everything emitted, including the Flush.
func streamAll(tr Trajectory, nf NoiseFilterConfig, sp StayPointConfig) []StayPoint {
	x := NewStreamExtractor(nf, sp)
	var out []StayPoint
	for _, p := range tr {
		out = append(out, x.Push(p)...)
	}
	return append(out, x.Flush()...)
}

// requireBitIdentical fails unless streamed and batch stay points agree on
// every field with exact float equality — the streaming contract is
// bit-identity, not approximation.
func requireBitIdentical(t *testing.T, tr Trajectory, nf NoiseFilterConfig, sp StayPointConfig) {
	t.Helper()
	want := ExtractStayPoints(tr, nf, sp)
	got := streamAll(tr, nf, sp)
	if len(got) != len(want) {
		t.Fatalf("streamed %d stay points, batch %d\nstreamed: %+v\nbatch: %+v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stay %d differs\nstreamed: %+v\nbatch:    %+v", i, got[i], want[i])
		}
	}
}

// buildNoisyDay builds a randomized trajectory exercising every branch of
// the noise filter and detector: walks, dwells of varying length (some under
// TMin), speed spikes, spike runs that trigger re-anchoring, and
// sub-MinInterval duplicate timestamps.
func buildNoisyDay(r *rand.Rand) Trajectory {
	var tr Trajectory
	t0, prev := 0.0, geo.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	for seg := 0; seg < 3+r.Intn(6); seg++ {
		next := geo.Point{X: r.Float64() * 600, Y: r.Float64() * 600}
		w := walk(prev, next, 2+r.Float64()*6, 5+r.Float64()*10, t0)
		tr = append(tr, w...)
		t0 = w[len(w)-1].T + 5 + r.Float64()*10
		// Dwell between 10s (below TMin) and 250s.
		d := dwell(next, 10+r.Float64()*240, 5+r.Float64()*8, t0, r)
		tr = append(tr, d...)
		t0 = d[len(d)-1].T + 5 + r.Float64()*10
		prev = next
		switch r.Intn(4) {
		case 0: // single impossible spike (one-point outlier)
			tr = append(tr, GPSPoint{
				P: geo.Point{X: prev.X + 5000 + r.Float64()*5000, Y: prev.Y},
				T: t0,
			})
			t0 += 5 + r.Float64()*10
		case 1: // spike run: two mutually consistent outliers force re-anchoring
			far := geo.Point{X: prev.X + 8000, Y: prev.Y + 8000}
			tr = append(tr,
				GPSPoint{P: far, T: t0},
				GPSPoint{P: geo.Point{X: far.X + 10, Y: far.Y}, T: t0 + 10},
				GPSPoint{P: geo.Point{X: far.X + 20, Y: far.Y}, T: t0 + 20},
			)
			prev = geo.Point{X: far.X + 20, Y: far.Y}
			t0 += 30
		case 2: // duplicate / sub-interval timestamps
			tr = append(tr,
				GPSPoint{P: geo.Point{X: prev.X + 1, Y: prev.Y}, T: t0},
				GPSPoint{P: geo.Point{X: prev.X + 2, Y: prev.Y}, T: t0},
				GPSPoint{P: geo.Point{X: prev.X + 3, Y: prev.Y}, T: t0 + 0.3},
			)
			t0 += 5 + r.Float64()*10
		}
	}
	return tr
}

func TestStreamExtractorBitIdenticalRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := buildNoisyDay(r)
		requireBitIdentical(t, tr, DefaultNoiseFilter(), DefaultStayPointConfig())
	}
}

func TestStreamExtractorBitIdenticalConfigs(t *testing.T) {
	// Sweep thresholds, including zero configs that trigger defaulting in
	// both implementations.
	cfgs := []struct {
		nf NoiseFilterConfig
		sp StayPointConfig
	}{
		{NoiseFilterConfig{}, StayPointConfig{}},
		{NoiseFilterConfig{MaxSpeed: 5, MinInterval: 1}, StayPointConfig{DMax: 10, TMin: 15}},
		{NoiseFilterConfig{MaxSpeed: 50, MinInterval: 0}, StayPointConfig{DMax: 60, TMin: 120}},
		{DefaultNoiseFilter(), StayPointConfig{DMax: 20, TMin: 1}},
	}
	for _, cfg := range cfgs {
		for seed := int64(100); seed < 110; seed++ {
			r := rand.New(rand.NewSource(seed))
			tr := buildNoisyDay(r)
			requireBitIdentical(t, tr, cfg.nf, cfg.sp)
		}
	}
}

func TestStreamExtractorEdgeCases(t *testing.T) {
	nf, sp := DefaultNoiseFilter(), DefaultStayPointConfig()
	r := rand.New(rand.NewSource(42))

	cases := map[string]Trajectory{
		"empty":     nil,
		"single":    {{P: geo.Point{X: 1, Y: 2}, T: 0}},
		"two close": {{P: geo.Point{X: 0, Y: 0}, T: 0}, {P: geo.Point{X: 1, Y: 0}, T: 40}},
		"trailing dwell (end-of-input emission)": concat(
			walk(geo.Point{}, geo.Point{X: 200, Y: 0}, 5, 10, 0),
			dwell(geo.Point{X: 200, Y: 0}, 120, 10, 500, r),
		),
		"pure dwell": dwell(geo.Point{X: 7, Y: 7}, 300, 10, 0, r),
		"all spikes": {
			{P: geo.Point{X: 0, Y: 0}, T: 0},
			{P: geo.Point{X: 9000, Y: 0}, T: 10},
			{P: geo.Point{X: 0, Y: 9000}, T: 20},
			{P: geo.Point{X: 9000, Y: 9000}, T: 30},
		},
	}
	for name, tr := range cases {
		t.Run(name, func(t *testing.T) {
			requireBitIdentical(t, tr, nf, sp)
		})
	}
}

func TestStreamExtractorReusableAcrossTrips(t *testing.T) {
	// Flush must fully reset the extractor: running trip B after trip A
	// through the same extractor must match a fresh extractor on trip B.
	r := rand.New(rand.NewSource(7))
	a := buildNoisyDay(r)
	b := buildNoisyDay(r)

	x := NewStreamExtractor(DefaultNoiseFilter(), DefaultStayPointConfig())
	for _, p := range a {
		x.Push(p)
	}
	x.Flush()
	var got []StayPoint
	for _, p := range b {
		got = append(got, x.Push(p)...)
	}
	got = append(got, x.Flush()...)

	want := streamAll(b, DefaultNoiseFilter(), DefaultStayPointConfig())
	if len(got) != len(want) {
		t.Fatalf("reused extractor emitted %d stays, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stay %d differs after reuse: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestStreamExtractorCompaction(t *testing.T) {
	// A long slow walk never emits but must not pin the whole history: the
	// buffer should stay bounded by the open window, not the trip length.
	x := NewStreamExtractor(DefaultNoiseFilter(), DefaultStayPointConfig())
	for i := 0; i < 10000; i++ {
		x.Push(GPSPoint{P: geo.Point{X: float64(i) * 25, Y: 0}, T: float64(i) * 10})
	}
	if n := x.PendingPoints(); n > 16 {
		t.Fatalf("open window holds %d points after a long walk, want small", n)
	}
}
