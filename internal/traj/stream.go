package traj

import "dlinfma/internal/geo"

// StreamExtractor is the incremental form of ExtractStayPoints: it consumes
// one courier's GPS fixes one at a time and emits each stay point at the
// moment it closes — when the courier finally leaves the D_max disc around
// the stay's anchor, or when the trip ends (Flush). The emitted sequence is
// bit-identical to ExtractStayPoints(tr, nf, sp) over the same fixes in the
// same order: the noise filter is causal (each accept/reject decision
// depends only on earlier fixes) and the seek-forward detector of Li et al.
// only ever looks at fixes up to the first one that breaks the current
// anchor's disc, so both replay exactly under streaming.
//
// A StreamExtractor holds one open trip. Flush closes it (applying the
// detector's end-of-input rule) and resets the extractor for the courier's
// next trip, which matches the batch pipeline's per-trip extraction. It is
// not safe for concurrent use; the serving engine keeps one per courier
// behind its ingest lock.
type StreamExtractor struct {
	nf NoiseFilterConfig
	sp StayPointConfig

	// Noise-filter state: the last accepted fix (the anchor of FilterNoise)
	// and the last rejected fix awaiting a consistent successor.
	started    bool
	last       GPSPoint
	pending    GPSPoint
	hasPending bool

	// Detector state: accepted fixes from the current anchor onward.
	// buf[head] is the anchor; brk is the head-relative index of the first
	// fix outside the anchor's D_max disc (-1 while the window is open).
	buf  []GPSPoint
	head int
	brk  int

	// emitted is the reusable return slice of Push/Flush.
	emitted []StayPoint

	// accepted counts noise-accepted fixes for the current trip (reset by
	// Flush); with the pushed count it gives the per-trip noise drop rate.
	accepted int
}

// NewStreamExtractor returns an extractor with the given noise-filter and
// stay-point thresholds, applying the same defaulting rules as the batch
// FilterNoise and DetectStayPoints.
func NewStreamExtractor(nf NoiseFilterConfig, sp StayPointConfig) *StreamExtractor {
	if sp.DMax <= 0 || sp.TMin <= 0 {
		sp = DefaultStayPointConfig()
	}
	if nf.MaxSpeed <= 0 {
		nf.MaxSpeed = DefaultNoiseFilter().MaxSpeed
	}
	return &StreamExtractor{nf: nf, sp: sp, brk: -1}
}

// Push consumes the next fix and returns the stay points it closed (usually
// none; at most a handful when a re-anchored outlier run collapses). The
// returned slice is reused by the next Push or Flush call — callers must
// consume it before pushing again.
func (x *StreamExtractor) Push(p GPSPoint) []StayPoint {
	x.emitted = x.emitted[:0]
	// The streaming replica of FilterNoise: accept, re-anchor via the
	// pending fix, or reject. Expressions mirror the batch filter exactly so
	// division edge cases (dt == 0 => +Inf or NaN speed) decide identically.
	if !x.started {
		x.started = true
		x.last = p
		x.accept(p)
		return x.emitted
	}
	dt := p.T - x.last.T
	if dt < x.nf.MinInterval {
		return x.emitted
	}
	if geo.Dist(p.P, x.last.P)/dt <= x.nf.MaxSpeed {
		x.last = p
		x.hasPending = false
		x.accept(p)
		return x.emitted
	}
	// Outlier with respect to the anchor. If it is consistent with the
	// previous rejected fix, the anchor itself was the outlier: accept both.
	if x.hasPending {
		pdt := p.T - x.pending.T
		if pdt >= x.nf.MinInterval && geo.Dist(p.P, x.pending.P)/pdt <= x.nf.MaxSpeed {
			x.accept(x.pending)
			x.last = p
			x.hasPending = false
			x.accept(p)
			return x.emitted
		}
	}
	x.pending = p
	x.hasPending = true
	return x.emitted
}

// Flush ends the trip: it applies the detector's end-of-input rule (a still
// open window whose span reaches T_min emits even without a disc-breaking
// fix), returns any stay points that closed, and resets the extractor for
// the courier's next trip. The returned slice is reused by the next call.
func (x *StreamExtractor) Flush() []StayPoint {
	x.emitted = x.emitted[:0]
	x.drain(true)
	x.started = false
	x.hasPending = false
	x.buf = x.buf[:0]
	x.head = 0
	x.brk = -1
	x.accepted = 0
	return x.emitted
}

// Accepted reports how many fixes of the current open trip passed the noise
// filter (Flush resets it with the rest of the trip state). Callers that
// also count the fixes they pushed get the trip's noise drop rate for free.
func (x *StreamExtractor) Accepted() int { return x.accepted }

// PendingPoints reports how many accepted fixes are buffered in the open
// detection window (diagnostics; bounded by the courier's dwell length).
func (x *StreamExtractor) PendingPoints() int { return len(x.buf) - x.head }

// accept feeds one noise-accepted fix to the incremental detector.
func (x *StreamExtractor) accept(p GPSPoint) {
	x.accepted++
	x.buf = append(x.buf, p)
	if n := len(x.buf) - x.head; x.brk == -1 && n >= 2 {
		if geo.Dist(x.buf[x.head].P, p.P) > x.sp.DMax {
			x.brk = n - 1
		}
	}
	x.drain(false)
}

// drain advances the detector as far as the batch algorithm could with the
// fixes seen so far: while the current anchor's window is closed by a
// disc-breaking fix (or by end of input when final), emit or slide exactly
// as DetectStayPoints would. With final unset it stops as soon as the
// window is open again — more fixes may still extend it.
func (x *StreamExtractor) drain(final bool) {
	for {
		n := len(x.buf) - x.head
		if n < 2 {
			// The batch loop runs while i < n-1: a lone trailing fix can
			// never anchor a stay.
			break
		}
		var last int // head-relative index of the window's last member
		switch {
		case x.brk != -1:
			last = x.brk - 1
		case final:
			last = n - 1
		default:
			return // window still open; wait for more fixes
		}
		a := x.head
		if last > 0 && x.buf[a+last].T-x.buf[a].T >= x.sp.TMin {
			x.emit(a, a+last)
			if x.brk != -1 {
				x.head += x.brk // i = j: the breaker anchors the next scan
			} else {
				x.head += n // end of input consumed the whole window
			}
		} else {
			x.head++ // too short: slide the anchor forward one fix
		}
		x.recomputeBreak()
		x.compact()
	}
}

// emit appends the stay point over buf[lo..hi] (inclusive), accumulating the
// centroid in the same index order as the batch detector so the float sums
// are bit-identical.
func (x *StreamExtractor) emit(lo, hi int) {
	var sx, sy float64
	for k := lo; k <= hi; k++ {
		sx += x.buf[k].P.X
		sy += x.buf[k].P.Y
	}
	m := float64(hi - lo + 1)
	x.emitted = append(x.emitted, StayPoint{
		Loc:     geo.Point{X: sx / m, Y: sy / m},
		ArriveT: x.buf[lo].T,
		LeaveT:  x.buf[hi].T,
		NPoints: hi - lo + 1,
	})
}

// recomputeBreak rescans the buffer for the new anchor's first disc-breaking
// fix. The batch algorithm stops its j-scan at the first break, so only the
// first one matters even when later fixes re-enter the disc.
func (x *StreamExtractor) recomputeBreak() {
	x.brk = -1
	if len(x.buf)-x.head < 2 {
		return
	}
	anchor := x.buf[x.head].P
	for j := x.head + 1; j < len(x.buf); j++ {
		if geo.Dist(anchor, x.buf[j].P) > x.sp.DMax {
			x.brk = j - x.head
			return
		}
	}
}

// compact reclaims consumed buffer prefix once it dominates the slice, so a
// long-running stream does not pin every fix it ever accepted.
func (x *StreamExtractor) compact() {
	if x.head >= 64 && x.head*2 >= len(x.buf) {
		n := copy(x.buf, x.buf[x.head:])
		x.buf = x.buf[:n]
		x.head = 0
	}
}
