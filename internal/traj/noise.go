package traj

import (
	"sort"

	"dlinfma/internal/geo"
)

// NoiseFilterConfig controls the heuristics-based outlier filter of
// Zheng's trajectory preprocessing chapter (paper ref [8]).
type NoiseFilterConfig struct {
	// MaxSpeed is the maximum plausible courier speed in m/s. Fixes that
	// imply a higher speed from the last accepted fix are dropped. Couriers
	// ride e-bikes; 25 m/s (90 km/h) is already generous.
	MaxSpeed float64
	// MinInterval drops fixes closer than this many seconds to the last
	// accepted fix (duplicate or out-of-order timestamps).
	MinInterval float64
}

// DefaultNoiseFilter returns the configuration used throughout the paper
// reproduction.
func DefaultNoiseFilter() NoiseFilterConfig {
	return NoiseFilterConfig{MaxSpeed: 25, MinInterval: 1}
}

// FilterNoise returns a new trajectory with implausible fixes removed.
//
// The heuristic walks the trajectory keeping a last-accepted anchor; a fix is
// rejected when it implies a speed above MaxSpeed from the anchor or repeats
// the anchor's timestamp. A single spike therefore costs one point, while a
// genuine fast segment (many consistent fixes) re-anchors after the filter
// sees that the next fix is consistent with the rejected one — implemented by
// allowing the anchor to move to the rejected candidate when two consecutive
// candidates agree with each other but not with the anchor.
func FilterNoise(tr Trajectory, cfg NoiseFilterConfig) Trajectory {
	if len(tr) == 0 {
		return nil
	}
	if cfg.MaxSpeed <= 0 {
		cfg.MaxSpeed = DefaultNoiseFilter().MaxSpeed
	}
	out := make(Trajectory, 0, len(tr))
	out = append(out, tr[0])
	var pending *GPSPoint // last rejected fix, candidate for re-anchoring
	for i := 1; i < len(tr); i++ {
		p := tr[i]
		last := out[len(out)-1]
		dt := p.T - last.T
		if dt < cfg.MinInterval {
			continue
		}
		speed := geo.Dist(p.P, last.P) / dt
		if speed <= cfg.MaxSpeed {
			out = append(out, p)
			pending = nil
			continue
		}
		// Outlier with respect to the anchor. If it is consistent with the
		// previous rejected fix, the anchor itself was the outlier: accept
		// both rejected fixes.
		if pending != nil {
			pdt := p.T - pending.T
			if pdt >= cfg.MinInterval && geo.Dist(p.P, pending.P)/pdt <= cfg.MaxSpeed {
				out = append(out, *pending, p)
				pending = nil
				continue
			}
		}
		cp := p
		pending = &cp
	}
	return out
}

// MedianFilter smooths a trajectory by replacing each fix's position with
// the componentwise median over a centered window of the given (odd) size —
// the mean/median filter alternative from the trajectory-preprocessing
// chapter (paper ref [8]). Timestamps are unchanged; windows shrink at the
// boundaries.
func MedianFilter(tr Trajectory, window int) Trajectory {
	if len(tr) == 0 {
		return nil
	}
	if window < 3 {
		window = 3
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make(Trajectory, len(tr))
	xs := make([]float64, 0, window)
	ys := make([]float64, 0, window)
	for i := range tr {
		lo := max(0, i-half)
		hi := min(len(tr)-1, i+half)
		xs, ys = xs[:0], ys[:0]
		for j := lo; j <= hi; j++ {
			xs = append(xs, tr[j].P.X)
			ys = append(ys, tr[j].P.Y)
		}
		out[i] = GPSPoint{P: geo.Point{X: medianOf(xs), Y: medianOf(ys)}, T: tr[i].T}
	}
	return out
}

// medianOf returns the median of v, mutating its order.
func medianOf(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
