// Package traj implements courier trajectory handling: the trajectory type,
// the heuristics-based GPS noise filter, and stay-point detection
// (Definition 4 of the paper, with the paper's defaults D_max = 20 m and
// T_min = 30 s).
package traj

import (
	"fmt"
	"sort"

	"dlinfma/internal/geo"
)

// GPSPoint is one spatio-temporal fix of a courier.
type GPSPoint struct {
	P geo.Point
	T float64 // seconds since the dataset epoch
}

// Trajectory is a chronologically ordered sequence of GPS points.
type Trajectory []GPSPoint

// Validate returns an error if the trajectory is not strictly ordered in
// time.
func (tr Trajectory) Validate() error {
	for i := 1; i < len(tr); i++ {
		if tr[i].T <= tr[i-1].T {
			return fmt.Errorf("traj: point %d at t=%v not after point %d at t=%v", i, tr[i].T, i-1, tr[i-1].T)
		}
	}
	return nil
}

// Sort orders the trajectory by time in place.
func (tr Trajectory) Sort() {
	sort.Slice(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Duration returns the time span covered by the trajectory in seconds.
func (tr Trajectory) Duration() float64 {
	if len(tr) < 2 {
		return 0
	}
	return tr[len(tr)-1].T - tr[0].T
}

// Length returns the traveled path length in meters.
func (tr Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(tr); i++ {
		sum += geo.Dist(tr[i-1].P, tr[i].P)
	}
	return sum
}

// Slice returns the sub-trajectory with t0 <= T <= t1. The returned slice
// shares storage with tr.
func (tr Trajectory) Slice(t0, t1 float64) Trajectory {
	lo := sort.Search(len(tr), func(i int) bool { return tr[i].T >= t0 })
	hi := sort.Search(len(tr), func(i int) bool { return tr[i].T > t1 })
	if lo >= hi {
		return nil
	}
	return tr[lo:hi]
}

// At returns the interpolated position of the courier at time t. Times
// outside the trajectory clamp to the first/last fix. It returns the zero
// point for an empty trajectory.
func (tr Trajectory) At(t float64) geo.Point {
	if len(tr) == 0 {
		return geo.Point{}
	}
	if t <= tr[0].T {
		return tr[0].P
	}
	if t >= tr[len(tr)-1].T {
		return tr[len(tr)-1].P
	}
	i := sort.Search(len(tr), func(i int) bool { return tr[i].T >= t })
	a, b := tr[i-1], tr[i]
	if b.T == a.T {
		return b.P
	}
	f := (t - a.T) / (b.T - a.T)
	return geo.Point{
		X: a.P.X + f*(b.P.X-a.P.X),
		Y: a.P.Y + f*(b.P.Y-a.P.Y),
	}
}
