package traj

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlinfma/internal/geo"
)

func TestSegmentByGap(t *testing.T) {
	tr := Trajectory{
		{T: 0}, {T: 10}, {T: 20},
		{T: 2000}, {T: 2010}, // 1980 s gap
		{T: 9000}, // another gap
	}
	segs := SegmentByGap(tr, 600)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if len(segs[0]) != 3 || len(segs[1]) != 2 || len(segs[2]) != 1 {
		t.Errorf("segment sizes %d %d %d", len(segs[0]), len(segs[1]), len(segs[2]))
	}
	if got := SegmentByGap(nil, 600); got != nil {
		t.Error("empty stream should yield nil")
	}
	if segs := SegmentByGap(tr, 0); len(segs) != 3 {
		t.Errorf("default gap: got %d segments", len(segs))
	}
}

func TestSegmentByGapPreservesAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trajectory
		tm := 0.0
		for i := 0; i < 100; i++ {
			tm += 5 + r.Float64()*1200 // some gaps exceed the threshold
			tr = append(tr, GPSPoint{T: tm})
		}
		segs := SegmentByGap(tr, 600)
		total := 0
		for _, s := range segs {
			total += len(s)
			if err := s.Validate(); err != nil {
				return false
			}
		}
		return total == len(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSegmentByDwell(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Move, long dwell at depot, move again.
	part1 := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 0}, 4, 10, 0)
	t1 := part1[len(part1)-1].T
	depot := dwell(geo.Point{X: 300, Y: 0}, 1200, 10, t1+10, r)
	t2 := depot[len(depot)-1].T
	part2 := walk(geo.Point{X: 300, Y: 0}, geo.Point{X: 600, Y: 0}, 4, 10, t2+10)
	tr := concat(part1, depot, part2)

	segs := SegmentByDwell(tr, 30, 900)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	// First segment ends after the dwell; second is the onward leg.
	if segs[1][0].T <= t2 {
		t.Error("second segment starts inside the dwell")
	}
}

func TestSegmentByDwellNoDwell(t *testing.T) {
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 0}, 4, 10, 0)
	segs := SegmentByDwell(tr, 30, 900)
	if len(segs) != 1 || len(segs[0]) != len(tr) {
		t.Errorf("moving stream should stay one segment, got %d", len(segs))
	}
	if got := SegmentByDwell(Trajectory{{T: 0}}, 30, 900); got != nil {
		t.Error("single point should yield nil")
	}
}

func TestSimplifyStraightLine(t *testing.T) {
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 0}, 5, 10, 0)
	got := Simplify(tr, 5)
	if len(got) != 2 {
		t.Errorf("straight line simplified to %d points, want 2", len(got))
	}
	if got[0] != tr[0] || got[len(got)-1] != tr[len(tr)-1] {
		t.Error("endpoints not preserved")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	a := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 0}, 5, 10, 0)
	b := walk(geo.Point{X: 500, Y: 0}, geo.Point{X: 500, Y: 500}, 5, 10, a[len(a)-1].T+10)
	tr := concat(a, b)
	got := Simplify(tr, 5)
	if len(got) < 3 {
		t.Fatalf("corner lost: %d points", len(got))
	}
	// Some kept point is near the corner.
	found := false
	for _, p := range got {
		if geo.Dist(p.P, geo.Point{X: 500, Y: 0}) < 10 {
			found = true
		}
	}
	if !found {
		t.Error("no kept point near the corner")
	}
}

func TestSimplifyErrorBoundProperty(t *testing.T) {
	// Every dropped point must lie within tol of the simplified polyline.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trajectory
		pos := geo.Point{}
		tm := 0.0
		for i := 0; i < 80; i++ {
			pos = pos.Add(geo.Point{X: r.NormFloat64() * 20, Y: r.NormFloat64() * 20})
			tm += 10
			tr = append(tr, GPSPoint{P: pos, T: tm})
		}
		const tol = 15.0
		simp := Simplify(tr, tol)
		for _, p := range tr {
			best := 1e18
			for i := 1; i < len(simp); i++ {
				if d := pointSegmentDist(p.P, simp[i-1].P, simp[i].P); d < best {
					best = d
				}
			}
			if best > tol+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	short := Trajectory{{T: 0}, {T: 1}}
	if got := Simplify(short, 5); len(got) != 2 {
		t.Error("two points must pass through")
	}
	// Zero tolerance: identity.
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}, 5, 10, 0)
	if got := Simplify(tr, 0); len(got) != len(tr) {
		t.Error("tol=0 must keep everything")
	}
	// Coincident endpoints exercise the zero-length-segment branch.
	loop := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 50, Y: 50}, T: 10},
		{P: geo.Point{X: 0, Y: 0}, T: 20},
	}
	got := Simplify(loop, 5)
	if len(got) != 3 {
		t.Errorf("loop apex lost: %d points", len(got))
	}
}

func TestComputeStats(t *testing.T) {
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 30, Y: 0}, T: 10},
		{P: geo.Point{X: 30, Y: 40}, T: 30},
	}
	s := ComputeStats(tr)
	if s.Points != 3 || s.Duration != 30 || s.Length != 70 {
		t.Errorf("stats %+v", s)
	}
	if s.MaxSpeed != 3 { // 30 m in 10 s
		t.Errorf("MaxSpeed = %v, want 3", s.MaxSpeed)
	}
	if s.MaxGap != 20 || s.MeanGap != 15 {
		t.Errorf("gaps: %+v", s)
	}
	if got := ComputeStats(Trajectory{{T: 5}}); got.Points != 1 || got.Duration != 0 {
		t.Errorf("single-point stats %+v", got)
	}
}
