package traj

import "dlinfma/internal/geo"

// StayPoint is a maximal sub-trajectory during which the courier stayed
// within DMax meters of the segment's first fix for at least TMin seconds
// (Definition 4). Its location is the spatial centroid of the member fixes
// and its representative time is the middle of its interval.
type StayPoint struct {
	Loc     geo.Point
	ArriveT float64 // time of the first member fix
	LeaveT  float64 // time of the last member fix
	NPoints int     // number of member fixes
}

// MidT returns the stay point's representative time: the midpoint of its
// interval, as Definition 4 prescribes.
func (sp StayPoint) MidT() float64 { return (sp.ArriveT + sp.LeaveT) / 2 }

// Duration returns the stay duration in seconds.
func (sp StayPoint) Duration() float64 { return sp.LeaveT - sp.ArriveT }

// StayPointConfig holds the two thresholds of Definition 4.
type StayPointConfig struct {
	DMax float64 // meters
	TMin float64 // seconds
}

// DefaultStayPointConfig returns the paper's thresholds: D_max = 20 m,
// T_min = 30 s (Section III-A, following ref [5]).
func DefaultStayPointConfig() StayPointConfig {
	return StayPointConfig{DMax: 20, TMin: 30}
}

// DetectStayPoints extracts stay points from tr using the seek-forward
// algorithm of Li et al. (paper ref [7]): anchor at p_i, extend j while
// distance(p_i, p_j) <= DMax, and emit a stay point if the accumulated span
// reaches TMin. The scan resumes after the emitted segment, so stay points
// never overlap.
func DetectStayPoints(tr Trajectory, cfg StayPointConfig) []StayPoint {
	if cfg.DMax <= 0 || cfg.TMin <= 0 {
		cfg = DefaultStayPointConfig()
	}
	var out []StayPoint
	i := 0
	n := len(tr)
	for i < n-1 {
		j := i + 1
		for j < n && geo.Dist(tr[i].P, tr[j].P) <= cfg.DMax {
			j++
		}
		// Members are tr[i..j-1].
		if last := j - 1; last > i && tr[last].T-tr[i].T >= cfg.TMin {
			var sx, sy float64
			for k := i; k <= last; k++ {
				sx += tr[k].P.X
				sy += tr[k].P.Y
			}
			m := float64(last - i + 1)
			out = append(out, StayPoint{
				Loc:     geo.Point{X: sx / m, Y: sy / m},
				ArriveT: tr[i].T,
				LeaveT:  tr[last].T,
				NPoints: last - i + 1,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

// ExtractStayPoints runs the full stay-point extraction step of the paper's
// Location Candidate Generation component: noise filtering followed by stay
// point detection.
func ExtractStayPoints(tr Trajectory, nf NoiseFilterConfig, sp StayPointConfig) []StayPoint {
	return DetectStayPoints(FilterNoise(tr, nf), sp)
}
