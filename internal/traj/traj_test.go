package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dlinfma/internal/geo"
)

// walk builds a trajectory that moves from a toward b at the given speed,
// sampled every dt seconds starting at t0.
func walk(a, b geo.Point, speed, dt, t0 float64) Trajectory {
	d := geo.Dist(a, b)
	if d == 0 {
		return Trajectory{{P: a, T: t0}}
	}
	steps := int(d/(speed*dt)) + 1
	var tr Trajectory
	for i := 0; i <= steps; i++ {
		f := float64(i) / float64(steps)
		tr = append(tr, GPSPoint{
			P: geo.Point{X: a.X + f*(b.X-a.X), Y: a.Y + f*(b.Y-a.Y)},
			T: t0 + float64(i)*dt,
		})
	}
	return tr
}

// dwell builds a trajectory that stays at p (with jitter) for dur seconds.
func dwell(p geo.Point, dur, dt, t0 float64, r *rand.Rand) Trajectory {
	var tr Trajectory
	for t := 0.0; t <= dur; t += dt {
		j := geo.Point{X: p.X + r.NormFloat64()*2, Y: p.Y + r.NormFloat64()*2}
		tr = append(tr, GPSPoint{P: j, T: t0 + t})
	}
	return tr
}

func concat(parts ...Trajectory) Trajectory {
	var out Trajectory
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func TestValidate(t *testing.T) {
	good := Trajectory{{T: 1}, {T: 2}, {T: 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	bad := Trajectory{{T: 1}, {T: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for duplicate timestamps")
	}
	var empty Trajectory
	if err := empty.Validate(); err != nil {
		t.Errorf("empty trajectory should validate: %v", err)
	}
}

func TestSort(t *testing.T) {
	tr := Trajectory{{T: 3}, {T: 1}, {T: 2}}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trajectory invalid: %v", err)
	}
}

func TestDurationAndLength(t *testing.T) {
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 3, Y: 4}, T: 10},
		{P: geo.Point{X: 3, Y: 10}, T: 20},
	}
	if got := tr.Duration(); got != 20 {
		t.Errorf("Duration = %v, want 20", got)
	}
	if got := tr.Length(); !almostEqual(got, 11, 1e-9) {
		t.Errorf("Length = %v, want 11", got)
	}
	var empty Trajectory
	if empty.Duration() != 0 || empty.Length() != 0 {
		t.Error("empty trajectory should have zero duration and length")
	}
}

func TestSlice(t *testing.T) {
	tr := Trajectory{{T: 0}, {T: 10}, {T: 20}, {T: 30}}
	got := tr.Slice(5, 25)
	if len(got) != 2 || got[0].T != 10 || got[1].T != 20 {
		t.Errorf("Slice(5,25) = %v", got)
	}
	if got := tr.Slice(40, 50); got != nil {
		t.Errorf("Slice outside range = %v, want nil", got)
	}
	if got := tr.Slice(0, 30); len(got) != 4 {
		t.Errorf("Slice full range has %d points, want 4", len(got))
	}
}

func TestAtInterpolates(t *testing.T) {
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 10, Y: 0}, T: 10},
	}
	if got := tr.At(5); !almostEqual(got.X, 5, 1e-9) {
		t.Errorf("At(5) = %v, want x=5", got)
	}
	if got := tr.At(-5); got != (geo.Point{X: 0, Y: 0}) {
		t.Errorf("At before start = %v, want clamp to first", got)
	}
	if got := tr.At(99); got != (geo.Point{X: 10, Y: 0}) {
		t.Errorf("At after end = %v, want clamp to last", got)
	}
	var empty Trajectory
	if got := empty.At(1); got != (geo.Point{}) {
		t.Errorf("At on empty = %v, want zero", got)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFilterNoiseRemovesSpike(t *testing.T) {
	// A single fix 1 km away implies an impossible speed and must go.
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 10, Y: 0}, T: 10},
		{P: geo.Point{X: 1000, Y: 0}, T: 20}, // spike: 99 m/s
		{P: geo.Point{X: 20, Y: 0}, T: 30},
	}
	got := FilterNoise(tr, DefaultNoiseFilter())
	if len(got) != 3 {
		t.Fatalf("filtered has %d points, want 3: %v", len(got), got)
	}
	for _, p := range got {
		if p.P.X == 1000 {
			t.Error("spike survived the filter")
		}
	}
}

func TestFilterNoiseKeepsCleanTrajectory(t *testing.T) {
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 0}, 5, 13.5, 0)
	got := FilterNoise(tr, DefaultNoiseFilter())
	if len(got) != len(tr) {
		t.Errorf("clean trajectory lost points: %d -> %d", len(tr), len(got))
	}
}

func TestFilterNoiseReanchorsAfterBadStart(t *testing.T) {
	// The first fix is the outlier; the rest is a consistent cluster. After
	// one rejection the filter should re-anchor onto the consistent fixes.
	tr := Trajectory{
		{P: geo.Point{X: 5000, Y: 5000}, T: 0},
		{P: geo.Point{X: 0, Y: 0}, T: 10},
		{P: geo.Point{X: 5, Y: 0}, T: 20},
		{P: geo.Point{X: 10, Y: 0}, T: 30},
	}
	got := FilterNoise(tr, DefaultNoiseFilter())
	if len(got) < 3 {
		t.Fatalf("filter dropped the consistent cluster: %v", got)
	}
	tail := got[len(got)-1]
	if tail.P.X != 10 {
		t.Errorf("expected trailing cluster to survive, got %v", got)
	}
}

func TestFilterNoiseDropsDuplicateTimestamps(t *testing.T) {
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 1, Y: 0}, T: 0.2}, // within MinInterval
		{P: geo.Point{X: 2, Y: 0}, T: 10},
	}
	got := FilterNoise(tr, DefaultNoiseFilter())
	if len(got) != 2 {
		t.Errorf("filtered = %v, want 2 points", got)
	}
}

func TestFilterNoiseEmpty(t *testing.T) {
	if got := FilterNoise(nil, DefaultNoiseFilter()); got != nil {
		t.Errorf("FilterNoise(nil) = %v, want nil", got)
	}
}

func TestDetectStayPointsBasic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Walk, dwell 120 s, walk: exactly one stay point at the dwell site.
	p1 := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 200, Y: 0}, 5, 10, 0)
	t1 := p1[len(p1)-1].T
	d := dwell(geo.Point{X: 200, Y: 0}, 120, 10, t1+10, r)
	t2 := d[len(d)-1].T
	p2 := walk(geo.Point{X: 200, Y: 0}, geo.Point{X: 400, Y: 0}, 5, 10, t2+10)
	tr := concat(p1, d, p2)

	sps := DetectStayPoints(tr, DefaultStayPointConfig())
	if len(sps) != 1 {
		t.Fatalf("got %d stay points, want 1: %+v", len(sps), sps)
	}
	sp := sps[0]
	if geo.Dist(sp.Loc, geo.Point{X: 200, Y: 0}) > 10 {
		t.Errorf("stay point at %v, want near (200,0)", sp.Loc)
	}
	if sp.Duration() < 100 {
		t.Errorf("stay duration = %v, want >= 100", sp.Duration())
	}
	if sp.MidT() <= sp.ArriveT || sp.MidT() >= sp.LeaveT {
		t.Errorf("MidT %v outside [%v, %v]", sp.MidT(), sp.ArriveT, sp.LeaveT)
	}
}

func TestDetectStayPointsTooShort(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// 20-second dwell is under TMin=30: no stay point.
	d := dwell(geo.Point{X: 50, Y: 50}, 20, 5, 0, r)
	if sps := DetectStayPoints(d, DefaultStayPointConfig()); len(sps) != 0 {
		t.Errorf("got %d stay points for a 20s dwell, want 0", len(sps))
	}
}

func TestDetectStayPointsMovingCourier(t *testing.T) {
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 0}, 5, 13.5, 0)
	if sps := DetectStayPoints(tr, DefaultStayPointConfig()); len(sps) != 0 {
		t.Errorf("moving courier produced %d stay points, want 0", len(sps))
	}
}

func TestDetectStayPointsMultiple(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var parts []Trajectory
	t0 := 0.0
	stops := []geo.Point{{X: 100, Y: 0}, {X: 300, Y: 100}, {X: 500, Y: 0}}
	prev := geo.Point{X: 0, Y: 0}
	for _, s := range stops {
		w := walk(prev, s, 5, 10, t0)
		t0 = w[len(w)-1].T + 10
		d := dwell(s, 90, 10, t0, r)
		t0 = d[len(d)-1].T + 10
		parts = append(parts, w, d)
		prev = s
	}
	tr := concat(parts...)
	sps := DetectStayPoints(tr, DefaultStayPointConfig())
	if len(sps) != len(stops) {
		t.Fatalf("got %d stay points, want %d", len(sps), len(stops))
	}
	for i, sp := range sps {
		if geo.Dist(sp.Loc, stops[i]) > 10 {
			t.Errorf("stay %d at %v, want near %v", i, sp.Loc, stops[i])
		}
	}
}

func TestDetectStayPointsNonOverlappingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random alternation of walks and dwells.
		var parts []Trajectory
		t0, prev := 0.0, geo.Point{X: 0, Y: 0}
		for i := 0; i < 5; i++ {
			next := geo.Point{X: r.Float64() * 500, Y: r.Float64() * 500}
			w := walk(prev, next, 3+r.Float64()*5, 10, t0)
			t0 = w[len(w)-1].T + 10
			d := dwell(next, 20+r.Float64()*200, 10, t0, r)
			t0 = d[len(d)-1].T + 10
			parts = append(parts, w, d)
			prev = next
		}
		sps := DetectStayPoints(concat(parts...), DefaultStayPointConfig())
		for i := 1; i < len(sps); i++ {
			if sps[i].ArriveT < sps[i-1].LeaveT {
				return false
			}
		}
		for _, sp := range sps {
			if sp.Duration() < DefaultStayPointConfig().TMin {
				return false
			}
			if sp.NPoints < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDetectStayPointsInvalidConfigFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := dwell(geo.Point{X: 10, Y: 10}, 120, 10, 0, r)
	sps := DetectStayPoints(d, StayPointConfig{})
	if len(sps) != 1 {
		t.Errorf("zero config should fall back to defaults, got %d stay points", len(sps))
	}
}

func TestExtractStayPointsFiltersNoiseFirst(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := dwell(geo.Point{X: 100, Y: 100}, 120, 10, 0, r)
	// Inject a spike in the middle of the dwell that would otherwise split
	// the stay point.
	tr := make(Trajectory, 0, len(d)+1)
	tr = append(tr, d[:len(d)/2]...)
	tr = append(tr, GPSPoint{P: geo.Point{X: 9000, Y: 9000}, T: d[len(d)/2-1].T + 5})
	// Shift the remainder by 10 s to keep timestamps increasing.
	for _, p := range d[len(d)/2:] {
		p.T += 10
		tr = append(tr, p)
	}
	sps := ExtractStayPoints(tr, DefaultNoiseFilter(), DefaultStayPointConfig())
	if len(sps) != 1 {
		t.Fatalf("got %d stay points, want 1 (noise filter should remove the spike)", len(sps))
	}
	if geo.Dist(sps[0].Loc, geo.Point{X: 100, Y: 100}) > 10 {
		t.Errorf("stay point at %v, want near (100,100)", sps[0].Loc)
	}
}

func TestMedianFilterRemovesSpike(t *testing.T) {
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 10, Y: 0}, T: 10},
		{P: geo.Point{X: 500, Y: 0}, T: 20}, // spike
		{P: geo.Point{X: 30, Y: 0}, T: 30},
		{P: geo.Point{X: 40, Y: 0}, T: 40},
	}
	got := MedianFilter(tr, 3)
	if len(got) != len(tr) {
		t.Fatalf("filter changed length: %d", len(got))
	}
	if got[2].P.X != 30 { // median of 10, 500, 30
		t.Errorf("spike smoothed to %v, want 30", got[2].P.X)
	}
	if got[2].T != 20 {
		t.Error("timestamps must be preserved")
	}
}

func TestMedianFilterEdges(t *testing.T) {
	if got := MedianFilter(nil, 3); got != nil {
		t.Error("empty input")
	}
	// Even/too-small windows are normalized; boundaries use shrunk windows.
	tr := Trajectory{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 10, Y: 10}, T: 10},
	}
	got := MedianFilter(tr, 2)
	if len(got) != 2 {
		t.Fatalf("length %d", len(got))
	}
	// Window at index 0 covers both points: median is their midpoint.
	if got[0].P.X != 5 || got[0].P.Y != 5 {
		t.Errorf("boundary median = %v", got[0].P)
	}
}

func TestMedianFilterPreservesCleanPath(t *testing.T) {
	tr := walk(geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 0}, 5, 10, 0)
	got := MedianFilter(tr, 3)
	for i := 1; i < len(got)-1; i++ {
		if math.Abs(got[i].P.X-tr[i].P.X) > 1e-9 {
			t.Fatalf("monotone path distorted at %d", i)
		}
	}
}
