package wal

import "dlinfma/internal/obs"

// WAL metrics live on the obs default registry so they surface on
// /v1/metrics alongside the engine and pipeline families. All WALs in a
// process share the families (one serve process runs one WAL).
var (
	appendsTotal = obs.Default.Counter("dlinfma_wal_appends_total",
		"Records appended to the write-ahead log.")
	appendBytes = obs.Default.Counter("dlinfma_wal_append_bytes_total",
		"Bytes appended to the write-ahead log, headers included.")
	appendDuration = obs.Default.Histogram("dlinfma_wal_append_duration_seconds",
		"Wall time of one WAL append, including any policy-mandated fsync.",
		obs.RequestLatencyBuckets)
	fsyncsTotal = obs.Default.Counter("dlinfma_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log.")
	rotationsTotal = obs.Default.Counter("dlinfma_wal_rotations_total",
		"Segment rotations (active segment sealed, fresh one opened).")
	segmentsDeleted = obs.Default.Counter("dlinfma_wal_segments_deleted_total",
		"Sealed segments deleted after a snapshot made them redundant.")
	replayRecords = obs.Default.Counter("dlinfma_wal_replay_records_total",
		"Records decoded during WAL replay at startup.")
	tornTailTruncations = obs.Default.Counter("dlinfma_wal_torn_tail_truncations_total",
		"Torn tail records discarded when opening the log after a crash.")
)
