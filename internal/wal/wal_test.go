package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays w and returns every payload (copied) in order.
func collect(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var out [][]byte
	err := w.Replay(func(seq uint64, p []byte) error {
		if want := uint64(len(out) + 1); seq != want {
			t.Fatalf("replay seq %d, want %d", seq, want)
		}
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append seq %d, want %d", seq, i+1)
		}
		want = append(want, p)
	}
	got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence continues, records survive.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 100 {
		t.Fatalf("LastSeq after reopen = %d, want 100", w2.LastSeq())
	}
	if seq, err := w2.Append([]byte("after")); err != nil || seq != 101 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	if got := collect(t, w2); len(got) != 101 {
		t.Fatalf("replayed %d records after reopen, want 101", len(got))
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than 64 bytes forces a rotation.
	w, err := Open(dir, Options{SegmentBytes: 64, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if n := w.SegmentCount(); n < 5 {
		t.Fatalf("expected many segments, got %d", n)
	}
	if got := collect(t, w); len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}

	// Truncate through record 5: sealed segments holding only records <= 5
	// are deleted; replay starts at the first surviving segment.
	if err := w.TruncateThrough(5); err != nil {
		t.Fatal(err)
	}
	var first uint64
	err = w.Replay(func(seq uint64, p []byte) error {
		if first == 0 {
			first = seq
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == 1 || first > 6 {
		t.Fatalf("replay after truncate starts at %d, want in (1, 6]", first)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after truncation: sequence numbering still derives from the
	// surviving segments' filenames.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 10 {
		t.Fatalf("LastSeq after truncate+reopen = %d, want 10", w2.LastSeq())
	}
}

// corrupt opens the file and overwrites one byte at off.
func corrupt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{0xFF}, off); err != nil {
		t.Fatal(err)
	}
}

func lastSegment(t *testing.T, dir string) (path string, size int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		path = filepath.Join(dir, e.Name())
		size = fi.Size()
	}
	if path == "" {
		t.Fatal("no segments")
	}
	return path, size
}

func fill(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	// A crash mid-append leaves a partial record at the very end of the last
	// segment. Open must drop it silently and keep everything before it.
	cases := []struct {
		name string
		tear func(t *testing.T, path string, size int64)
	}{
		{"partial header", func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-14); err != nil { // record is 8+10 bytes
				t.Fatal(err)
			}
		}},
		{"partial payload", func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-4); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt final record", func(t *testing.T, path string, size int64) {
			corrupt(t, path, size-1) // payload byte of the last record
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fill(t, dir, 10, Options{})
			path, size := lastSegment(t, dir)
			tc.tear(t, path, size)

			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			defer w.Close()
			got := collect(t, w)
			if len(got) != 9 {
				t.Fatalf("survived %d records, want 9", len(got))
			}
			if w.LastSeq() != 9 {
				t.Fatalf("LastSeq = %d, want 9", w.LastSeq())
			}
			// The torn bytes are gone from disk: appending works and replay
			// stays consistent.
			if seq, err := w.Append([]byte("recovered")); err != nil || seq != 10 {
				t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
			}
			if got := collect(t, w); len(got) != 10 || string(got[9]) != "recovered" {
				t.Fatalf("replay after recovery: %d records", len(got))
			}
		})
	}
}

func TestCorruptMidSegmentRejected(t *testing.T) {
	// A CRC mismatch that is NOT the final record cannot be a torn write —
	// something rewrote history. Open must refuse rather than silently skip.
	dir := t.TempDir()
	fill(t, dir, 10, Options{})
	path, _ := lastSegment(t, dir)
	corrupt(t, path, headerSize+2) // payload of the first record

	_, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-segment corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestCorruptSealedSegmentRejected(t *testing.T) {
	// Damage in a sealed (non-last) segment is never torn-tail tolerable,
	// even at its end.
	dir := t.TempDir()
	fill(t, dir, 10, Options{SegmentBytes: 64})
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(entries))
	}
	firstPath := filepath.Join(dir, entries[0].Name())
	fi, err := entries[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	corrupt(t, firstPath, fi.Size()-1) // last byte of a sealed segment

	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with sealed-segment corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestEmptyActiveSegmentRecovery(t *testing.T) {
	// Rotation creates a fresh segment; crashing before the first append to
	// it must not lose the sequence position.
	dir := t.TempDir()
	fill(t, dir, 3, Options{})
	// Simulate a rotation that never got a record: an empty segment whose
	// name claims the next sequence.
	if err := os.WriteFile(filepath.Join(dir, segmentName(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", w.LastSeq())
	}
	if seq, err := w.Append([]byte("next")); err != nil || seq != 4 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"Interval", FsyncInterval}, {" never ", FsyncNever}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy should reject unknown spellings")
	}
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		if rt, err := ParsePolicy(p.String()); err != nil || rt != p {
			t.Errorf("round trip %v failed: %v %v", p, rt, err)
		}
	}
}

func TestClosedWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed: %v", err)
	}
	if err := w.Replay(func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay on closed: %v", err)
	}
}

func TestFsyncIntervalFlushesToKernel(t *testing.T) {
	// Under FsyncInterval every append is flushed to the OS, so a process
	// kill (simulated: abandon without Close) loses nothing.
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the file descriptor leaks (process-death simulation).
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 5 {
		t.Fatalf("survived %d records after abandonment, want 5", len(got))
	}
}
