// Package wal implements the write-ahead log behind the engine's streaming
// ingest path. Every mutation is appended as a length-prefixed,
// CRC32C-checksummed record before it is acknowledged; after a crash the
// engine replays the log on top of the last snapshot, so no acknowledged
// write is lost. Segments rotate at a byte bound and sealed segments are
// deleted once a snapshot has captured everything up to their last record.
//
// On-disk format, little-endian, per record:
//
//	[4B payload length][4B CRC32-C of payload][payload bytes]
//
// Segment files are named wal-%016x.log where the hex field is the sequence
// number of the segment's first record; sequence numbers are global,
// 1-based, and dense, so (filename, record ordinal) recovers every record's
// sequence without an index file.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// headerSize is the fixed per-record prefix: 4 bytes payload length plus
// 4 bytes CRC32-C of the payload.
const headerSize = 8

// castagnoli is the CRC32-C table; Castagnoli has hardware support on both
// amd64 and arm64, so the checksum is nearly free next to the fsync.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects how durability is traded against append latency.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged record survives
	// power loss, at the cost of one fsync per record.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per Options.Interval, batching
	// appends in between: a crash can lose up to one interval of
	// acknowledged records, but kill -9 (process death with a live kernel)
	// loses nothing once the buffer is flushed.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache. Fastest; a power loss
	// can lose everything since the last rotation.
	FsyncNever
)

// ParsePolicy maps the CLI spellings ("always", "interval", "never") to a
// policy, for the serve -wal-fsync flag.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval, or never)", s)
}

// String returns the CLI spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configures a WAL. The zero value is usable: 64 MiB segments,
// FsyncAlways.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Zero means 64 MiB.
	SegmentBytes int64
	// Policy selects the fsync discipline; the zero value is FsyncAlways.
	Policy FsyncPolicy
	// Interval is the maximum time acknowledged-but-unsynced records can sit
	// in the OS under FsyncInterval. Zero means 100 ms.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// ErrCorrupt is wrapped by errors reporting a damaged record that cannot be
// explained as a torn tail write (CRC mismatch mid-segment, or any damage in
// a sealed segment). A torn tail — a partial record at the very end of the
// last segment — is the expected signature of a crash mid-append and is
// silently truncated instead.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

type segmentInfo struct {
	path     string
	firstSeq uint64 // sequence of the segment's first record
	lastSeq  uint64 // sequence of its last record (0 if empty)
}

// WAL is a segmented write-ahead log. All methods are safe for concurrent
// use, though the engine serializes appends under its ingest lock anyway.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64  // bytes written to the active segment
	seq      uint64 // sequence of the last appended record (global, 1-based)
	firstSeq uint64 // first record sequence of the active segment
	sealed   []segmentInfo
	closed   bool
	lastSync time.Time // last fsync under FsyncInterval

	head [headerSize]byte // append scratch
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (or creates) the WAL in dir. Existing segments are scanned in
// sequence order; a torn record at the tail of the last segment — the
// signature of a crash mid-append — is truncated away, while damage anywhere
// else returns an error wrapping ErrCorrupt. After Open, Replay iterates the
// surviving records and Append continues the sequence.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), firstSeq: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })

	w := &WAL{dir: dir, opts: opts}
	// Scan every segment to validate it and learn its record count. Only the
	// last segment may end in a torn record; earlier segments were sealed by
	// a rotation, after which nothing ever wrote to them again.
	for i := range segs {
		last := i == len(segs)-1
		n, validBytes, err := scanSegment(segs[i].path, last)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			segs[i].lastSeq = 0
		} else {
			segs[i].lastSeq = segs[i].firstSeq + uint64(n) - 1
		}
		if last {
			if fi, err := os.Stat(segs[i].path); err == nil && fi.Size() > validBytes {
				tornTailTruncations.Inc()
				if err := os.Truncate(segs[i].path, validBytes); err != nil {
					return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", segs[i].path, err)
				}
			}
			w.size = validBytes
		}
		if n > 0 {
			w.seq = segs[i].lastSeq
		} else {
			// Empty segment (rotation or fresh creation, then crash before
			// any append): the last sequence is still firstSeq-1.
			w.seq = segs[i].firstSeq - 1
		}
	}

	if len(segs) == 0 {
		// Fresh log: first record will be sequence 1.
		if err := w.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		w.f = f
		w.w = bufio.NewWriter(f)
		w.firstSeq = active.firstSeq
		w.sealed = segs[:len(segs)-1]
	}
	return w, nil
}

// scanSegment reads a segment, returning the number of valid records and the
// byte offset just past the last valid one. With tolerateTail set, a partial
// or checksum-failing record at the very end of the file is treated as a
// torn write (the scan stops cleanly before it); any other damage, and any
// damage at all with tolerateTail unset, returns ErrCorrupt.
func scanSegment(path string, tolerateTail bool) (records int, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	size := fi.Size()
	br := bufio.NewReader(f)
	var (
		head [headerSize]byte
		buf  []byte
		off  int64
	)
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				return records, off, nil // clean end
			}
			// Partial header: torn only if nothing follows it.
			if err == io.ErrUnexpectedEOF && tolerateTail {
				return records, off, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: partial header at offset %d", ErrCorrupt, path, off)
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		want := binary.LittleEndian.Uint32(head[4:8])
		end := off + headerSize + int64(length)
		if end > size {
			// Payload runs past the file: torn write if this is the tail.
			if tolerateTail {
				return records, off, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: truncated payload at offset %d", ErrCorrupt, path, off)
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			if tolerateTail && end == size {
				return records, off, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: short payload at offset %d", ErrCorrupt, path, off)
		}
		if crc32.Checksum(buf, castagnoli) != want {
			// A CRC mismatch on the final record of the last segment is a
			// torn payload write; anywhere else it is real corruption.
			if tolerateTail && end == size {
				return records, off, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: checksum mismatch at offset %d", ErrCorrupt, path, off)
		}
		records++
		off = end
	}
}

// openSegment creates a fresh active segment whose first record will carry
// the given sequence number.
func (w *WAL) openSegment(firstSeq uint64) error {
	path := filepath.Join(w.dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.firstSeq = firstSeq
	w.size = 0
	return nil
}

// Append writes one record and returns its sequence number. Under
// FsyncAlways the record is on disk when Append returns; under the other
// policies durability follows the policy's contract. An error means the
// record must NOT be acknowledged to the client.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	binary.LittleEndian.PutUint32(w.head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.head[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(w.head[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.size += headerSize + int64(len(payload))
	w.seq++
	seq := w.seq
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	appendsTotal.Inc()
	appendBytes.Add(int64(headerSize + len(payload)))
	appendDuration.Observe(time.Since(start).Seconds())
	return seq, nil
}

// syncLocked applies the fsync policy after an append. Callers hold w.mu.
func (w *WAL) syncLocked() error {
	switch w.opts.Policy {
	case FsyncAlways:
		if err := w.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		fsyncsTotal.Inc()
	case FsyncInterval:
		// Flush to the kernel on every append (surviving process death),
		// fsync at most once per interval (bounding power-loss exposure).
		if err := w.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if now := time.Now(); now.Sub(w.lastSync) >= w.opts.Interval {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("wal: fsync: %w", err)
			}
			w.lastSync = now
			fsyncsTotal.Inc()
		}
	case FsyncNever:
		// Leave records in the bufio buffer until it spills; rotation and
		// Close flush them.
	}
	return nil
}

// rotateLocked seals the active segment and opens a fresh one.
func (w *WAL) rotateLocked() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wal: rotate flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	w.sealed = append(w.sealed, segmentInfo{
		path:     w.f.Name(),
		firstSeq: w.firstSeq,
		lastSeq:  w.seq,
	})
	rotationsTotal.Inc()
	return w.openSegment(w.seq + 1)
}

// Sync forces buffered records to disk regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	fsyncsTotal.Inc()
	return nil
}

// LastSeq returns the sequence number of the most recently appended record
// (0 if the log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Replay calls fn for every record in sequence order, from the oldest
// retained segment through the active one. The payload slice is reused
// between calls; fn must copy it if it retains it. Replay stops at fn's
// first error and returns it.
func (w *WAL) Replay(fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	// Flush so the active segment's tail is visible to the read below; the
	// segment list is snapshotted under the lock, then the files are read
	// without it (segments never change once written, and Append only adds
	// past the point we will read).
	if err := w.w.Flush(); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: replay flush: %w", err)
	}
	segs := make([]segmentInfo, 0, len(w.sealed)+1)
	segs = append(segs, w.sealed...)
	segs = append(segs, segmentInfo{path: w.f.Name(), firstSeq: w.firstSeq, lastSeq: w.seq})
	w.mu.Unlock()

	for _, seg := range segs {
		if err := replaySegment(seg, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg segmentInfo, fn func(uint64, []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var (
		head [headerSize]byte
		buf  []byte
	)
	seq := seg.firstSeq
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w: %s: replay header", ErrCorrupt, seg.path)
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		want := binary.LittleEndian.Uint32(head[4:8])
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: %s: replay payload", ErrCorrupt, seg.path)
		}
		if crc32.Checksum(buf, castagnoli) != want {
			return fmt.Errorf("%w: %s: replay checksum", ErrCorrupt, seg.path)
		}
		replayRecords.Inc()
		if err := fn(seq, buf); err != nil {
			return err
		}
		seq++
	}
}

// TruncateThrough deletes sealed segments whose every record has sequence
// <= seq — called after a snapshot has durably captured state through seq.
// The active segment is never deleted, so truncation can leave already
// snapshotted records in place; they are re-applied harmlessly on replay
// only if the caller replays from a snapshot older than they are.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	kept := w.sealed[:0]
	for _, seg := range w.sealed {
		if seg.lastSeq != 0 && seg.lastSeq <= seq {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				// Keep the entry so a later truncate retries the delete.
				kept = append(kept, seg)
				continue
			}
			segmentsDeleted.Inc()
			continue
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	return nil
}

// SegmentCount returns the number of on-disk segments (sealed + active).
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// Close flushes, fsyncs, and closes the active segment. The WAL cannot be
// used afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close fsync: %w", err)
	}
	return w.f.Close()
}
