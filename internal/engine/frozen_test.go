package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dlinfma/internal/deploy"
	"dlinfma/internal/engine"
	"dlinfma/internal/geo"
	"dlinfma/internal/model"
	"dlinfma/internal/shard"
)

// snapshotDoc marshals a store-only single-engine snapshot for restore-based
// read-path tests (no training needed).
func snapshotDoc(t testing.TB, addrs []model.AddressInfo, locs map[model.AddressID]geo.Point) []byte {
	t.Helper()
	sn := struct {
		Name      string                `json:"name"`
		Addresses []model.AddressInfo   `json:"addresses"`
		Locations map[string][2]float64 `json:"locations"`
	}{Name: "frozen-test", Addresses: addrs, Locations: map[string][2]float64{}}
	for id, p := range locs {
		sn.Locations[fmt.Sprint(id)] = [2]float64{p.X, p.Y}
	}
	doc, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestFrozenSwapNeverTearsFallbackChain hammers Query while snapshot
// restores flip the serving state between two versions with *conflicting*
// fallback chains. Version A serves address 1 at the address level, which
// also makes it building 10's majority, so address 2 answers (P1, building).
// Version B serves address 2 at the address level, demoting address 1 to
// (P2, building). A reader must always observe one whole chain or the other
// — e.g. (P1, building) for address 1 would mean it saw A's majority through
// B's address-level miss, a torn chain. Run with -race.
func TestFrozenSwapNeverTearsFallbackChain(t *testing.T) {
	p1 := geo.Point{X: 1, Y: 1}
	p2 := geo.Point{X: 2, Y: 2}
	addrs := []model.AddressInfo{
		{ID: 1, Building: 10, Geocode: geo.Point{X: 11, Y: 11}},
		{ID: 2, Building: 10, Geocode: geo.Point{X: 22, Y: 22}},
	}
	docA := snapshotDoc(t, addrs, map[model.AddressID]geo.Point{1: p1})
	docB := snapshotDoc(t, addrs, map[model.AddressID]geo.Point{2: p2})

	valid := map[model.AddressID]map[deploy.BatchAnswer]bool{
		1: {
			{Loc: p1, Src: deploy.SourceAddress}:  true, // version A
			{Loc: p2, Src: deploy.SourceBuilding}: true, // version B
		},
		2: {
			{Loc: p1, Src: deploy.SourceBuilding}: true, // version A
			{Loc: p2, Src: deploy.SourceAddress}:  true, // version B
		},
	}

	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.RestoreSnapshot(bytes.NewReader(docA)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := model.AddressID(g%2 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				loc, src := e.Query(id)
				if !valid[id][deploy.BatchAnswer{Loc: loc, Src: src}] {
					select {
					case errs <- fmt.Errorf("torn chain: addr %d observed (%v, %v)", id, loc, src):
					default:
					}
					return
				}
			}
		}(g)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		doc := docA
		if i%2 == 0 {
			doc = docB
		}
		if err := e.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestFrozenQueryZeroAllocs guards the steady-state read path of both engine
// shapes: zero allocations per query.
func TestFrozenQueryZeroAllocs(t *testing.T) {
	addrs := []model.AddressInfo{
		{ID: 1, Building: 10, Geocode: geo.Point{X: 11, Y: 11}},
		{ID: 2, Building: 10, Geocode: geo.Point{X: 22, Y: 22}},
		{ID: 3, Building: 11, Geocode: geo.Point{X: 33, Y: 33}},
	}
	doc := snapshotDoc(t, addrs, map[model.AddressID]geo.Point{1: {X: 1, Y: 1}, 3: {X: 3, Y: 3}})
	keys := []model.AddressID{1, 2, 3, 99}

	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		e.Query(keys[i%len(keys)])
		i++
	}); n != 0 {
		t.Errorf("Engine.Query allocates %.1f/op, want 0", n)
	}

	r, err := shard.NewRouter(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSharded(quickConfig(), r)
	defer s.Close()
	if err := s.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	i = 0
	if n := testing.AllocsPerRun(1000, func() {
		s.Query(keys[i%len(keys)])
		i++
	}); n != 0 {
		t.Errorf("ShardedEngine.Query allocates %.1f/op, want 0", n)
	}
}

// TestQueryBatchInputOrder drives the scatter/gather bulk path of the
// sharded engine over a shuffled key mix (every shard plus unknown keys) and
// checks the contract: out[i] answers addrs[i], identically to a per-key
// Query, with recycled result slices.
func TestQueryBatchInputOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var addrs []model.AddressInfo
	locs := map[model.AddressID]geo.Point{}
	for i := 1; i <= 400; i++ {
		a := model.AddressInfo{
			ID:       model.AddressID(i),
			Building: model.BuildingID(i / 4),
			Geocode:  geo.Point{X: float64(rng.Intn(20000) - 10000), Y: float64(rng.Intn(20000) - 10000)},
		}
		addrs = append(addrs, a)
		if i%3 != 0 { // every third address answers via a fallback level
			locs[a.ID] = geo.Point{X: a.Geocode.X + 5, Y: a.Geocode.Y + 5}
		}
	}
	doc := snapshotDoc(t, addrs, locs)

	r, err := shard.NewRouter(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSharded(quickConfig(), r)
	defer s.Close()
	if err := s.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}

	keys := make([]model.AddressID, 0, 1200)
	for len(keys) < 1200 {
		keys = append(keys, model.AddressID(rng.Intn(450)+1)) // ids past 400 are unknown
	}
	scratch := make([]deploy.BatchAnswer, 0, 4)
	out, err := s.QueryBatch(context.Background(), keys, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("got %d answers for %d keys", len(out), len(keys))
	}
	for i, id := range keys {
		loc, src := s.Query(id)
		if out[i].Loc != loc || out[i].Src != src {
			t.Fatalf("key %d (addr %d): batch (%v,%v) != query (%v,%v)",
				i, id, out[i].Loc, out[i].Src, loc, src)
		}
	}

	// The single engine's bulk path honours the same contract.
	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	out, err = e.QueryBatch(context.Background(), keys, out)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range keys {
		loc, src := e.Query(id)
		if out[i].Loc != loc || out[i].Src != src {
			t.Fatalf("single engine key %d (addr %d): batch (%v,%v) != query (%v,%v)",
				i, id, out[i].Loc, out[i].Src, loc, src)
		}
	}
}

// TestQueryBatchCancelled pins the context contract: a cancelled caller gets
// ctx's error back instead of a full (and wasted) scan.
func TestQueryBatchCancelled(t *testing.T) {
	addrs := []model.AddressInfo{{ID: 1, Building: 1, Geocode: geo.Point{X: 1}}}
	doc := snapshotDoc(t, addrs, map[model.AddressID]geo.Point{1: {X: 1}})
	e := engine.New(quickConfig())
	defer e.Close()
	if err := e.RestoreSnapshot(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	keys := make([]model.AddressID, 2048)
	if _, err := e.QueryBatch(ctx, keys, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryBatchColdEngine: before any serving state, every key answers
// SourceNone (the HTTP layer turns that into a batch-wide 503 instead).
func TestQueryBatchColdEngine(t *testing.T) {
	r, err := shard.NewRouter(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSharded(quickConfig(), r)
	defer s.Close()
	out, err := s.QueryBatch(context.Background(), []model.AddressID{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range out {
		if a.Src != deploy.SourceNone {
			t.Fatalf("cold answer %d = %v", i, a.Src)
		}
	}
}
