package engine

import (
	"dlinfma/internal/deploy"
	"dlinfma/internal/obs"
)

// Engine-lifecycle metrics. Everything is process-global (the obs default
// registry); a sharded engine's shards share the families, with per-shard
// breakdowns carried by the shard label where cardinality is bounded by the
// shard count.
var (
	ingestTrips = obs.Default.Counter("dlinfma_engine_ingested_trips_total",
		"Trips accepted by Ingest across all windows.")
	ingestAddrs = obs.Default.Counter("dlinfma_engine_ingested_addresses_total",
		"Distinct new addresses registered during ingest.")
	ingestWindows = obs.Default.Counter("dlinfma_engine_ingest_windows_total",
		"Non-empty trip windows merged into the candidate pool.")

	reinferDuration = obs.Default.HDRHistogram("dlinfma_engine_reinfer_duration_seconds",
		"Wall time of one full re-inference (pool finalize, featurize, train, predict, swap); log-linear HDR buckets.")
	reinferOutcome = obs.Default.CounterVec("dlinfma_engine_reinfer_total",
		"Re-inference attempts by outcome. Cancellation (shutdown) is not a failure.",
		"outcome")
	reinferSuccess  = reinferOutcome.With("success")
	reinferFailure  = reinferOutcome.With("failure")
	reinferCanceled = reinferOutcome.With("canceled")

	hotSwaps = obs.Default.Counter("dlinfma_engine_hot_swaps_total",
		"Atomic serving-state swaps (completed re-inferences plus snapshot restores).")

	streamPoints = obs.Default.Counter("dlinfma_engine_stream_points_total",
		"GPS fixes accepted on the streaming ingest path.")
	streamTripsByReason = obs.Default.CounterVec("dlinfma_engine_stream_trips_total",
		"Streamed trips closed, by close reason (gap rule vs explicit end marker).",
		"reason")
	streamTripsGap   = streamTripsByReason.With("gap")
	streamTripsEnd   = streamTripsByReason.With("end")
	openStreamsGauge = obs.Default.Gauge("dlinfma_engine_open_streams",
		"Couriers with an open trajectory stream (points accepted, trip not yet closed).")
	backpressureRejects = obs.Default.Counter("dlinfma_engine_backpressure_rejections_total",
		"Ingest operations rejected because the pending-trip backlog hit MaxPendingTrips.")

	ingestShardTrips = obs.Default.GaugeVec("dlinfma_engine_ingest_shard_trips",
		"Cumulative trips routed to each shard of a sharded engine.",
		"shard")
	ingestSkew = obs.Default.Gauge("dlinfma_engine_ingest_skew",
		"Max/mean ratio of cumulative per-shard ingested trips (1 = perfectly balanced).")

	autoReinferTriggers = obs.Default.CounterVec("dlinfma_engine_auto_reinfer_triggers_total",
		"Re-inferences fired by the auto-reinfer monitor, by tripping condition (backlog size vs backlog age).",
		"reason")
	autoReinferBacklog = autoReinferTriggers.With("backlog")
	autoReinferAge     = autoReinferTriggers.With("age")

	snapshotOps = obs.Default.CounterVec("dlinfma_engine_snapshot_ops_total",
		"Snapshot operations by kind (save/restore) and outcome (ok/error).",
		"op", "outcome")
	snapshotSaveOK     = snapshotOps.With("save", "ok")
	snapshotSaveErr    = snapshotOps.With("save", "error")
	snapshotRestoreOK  = snapshotOps.With("restore", "ok")
	snapshotRestoreErr = snapshotOps.With("restore", "error")
	shardRoutedQueries = obs.Default.CounterVec("dlinfma_engine_shard_queries_total",
		"Queries routed to each shard of a sharded engine.",
		"shard")
	shardUnroutedQueries = shardRoutedQueries.With("none")

	queryBySource = obs.Default.CounterVec("dlinfma_engine_queries_total",
		"Engine queries by answering store level (address/building/geocode/none).",
		"source")
	// querySources pre-resolves one child per deploy.Source so the query hot
	// path is a single atomic add.
	querySources = [...]*obs.Counter{
		deploy.SourceAddress:  queryBySource.With("address"),
		deploy.SourceBuilding: queryBySource.With("building"),
		deploy.SourceGeocode:  queryBySource.With("geocode"),
		deploy.SourceNone:     queryBySource.With("none"),
	}
)

// countQuery records a query's answering source, tolerating out-of-range
// values defensively.
func countQuery(src deploy.Source) {
	if int(src) >= 0 && int(src) < len(querySources) {
		querySources[src].Inc()
	}
}

// flushQueryTally bulk-adds a batch worker's local per-source counts, so a
// thousand-key batch costs four atomic adds instead of a thousand.
func flushQueryTally(tally *[deploy.SourceNone + 1]int64) {
	for src, n := range tally {
		if n > 0 {
			querySources[src].Add(n)
			tally[src] = 0
		}
	}
}
